//! Golden tests for the diagnostics contract: exact error codes and
//! source spans for the canonical rejection cases. These pin the `P0xx` /
//! `X0xx` / `M0xx` / `V0xx` taxonomy documented in
//! `segbus_model::diag` — a code change here is a breaking change for
//! anything that matches on codes.

use segbus_model::SegbusError;

fn span_of(e: &SegbusError) -> (u32, u32) {
    let s = e
        .span
        .unwrap_or_else(|| panic!("error {e} must carry a span"));
    (s.line, s.col)
}

// ---------------------------------------------------------------------------
// DSL

const VALID_DSL: &str = "\
application a {
    process A initial;
    process B final;
    flow A -> B { items 72; order 1; ticks 10; }
}
platform p {
    package_size 36;
    ca { freq_mhz 111; }
    segment S1 { freq_mhz 100; hosts A B; }
}";

#[test]
fn valid_baseline_parses() {
    segbus_dsl::parse_system(VALID_DSL).expect("baseline must be valid");
}

#[test]
fn dsl_undefined_flow_target_is_p005_at_the_name() {
    let src = VALID_DSL.replace("flow A -> B", "flow A -> Nope");
    let e = segbus_dsl::parse_system(&src).unwrap_err();
    assert_eq!(e.code, "P005");
    assert_eq!(span_of(&e), (4, 15), "span must point at `Nope`");
    assert!(e.message.contains("Nope"), "{e}");
}

#[test]
fn dsl_duplicate_process_name_is_p006_at_the_redefinition() {
    let src = VALID_DSL.replace("process B final", "process A final");
    let e = segbus_dsl::parse_system(&src).unwrap_err();
    assert_eq!(e.code, "P006");
    assert_eq!(span_of(&e), (3, 13), "span must point at the second `A`");
}

#[test]
fn dsl_zero_frequency_clock_is_p003_at_the_value() {
    let src = VALID_DSL.replace("ca { freq_mhz 111; }", "ca { freq_mhz 0; }");
    let e = segbus_dsl::parse_system(&src).unwrap_err();
    assert_eq!(e.code, "P003");
    assert_eq!(span_of(&e), (8, 19), "span must point at the `0`");
}

#[test]
fn dsl_unallocated_process_is_v003() {
    let src = VALID_DSL.replace("hosts A B", "hosts A");
    let e = segbus_dsl::parse_system(&src).unwrap_err();
    assert_eq!(e.code, "V003");
    assert!(e.message.contains('B'), "{e}");
}

#[test]
fn dsl_out_of_range_literal_is_p003_not_truncation() {
    let src = VALID_DSL.replace("package_size 36", "package_size 4294967297");
    let e = segbus_dsl::parse_system(&src).unwrap_err();
    assert_eq!(e.code, "P003");
    assert_eq!(span_of(&e).0, 7, "span must be on the package_size line");
}

// ---------------------------------------------------------------------------
// XML

fn exported_schemes() -> (String, String) {
    let psm = segbus_dsl::parse_system(VALID_DSL).unwrap();
    (
        segbus_xml::m2t::export_psdf(psm.application()).to_xml_string(),
        segbus_xml::m2t::export_psm(&psm).to_xml_string(),
    )
}

#[test]
fn truncated_xml_is_x001_with_a_span() {
    let (psdf, _) = exported_schemes();
    let cut = &psdf[..psdf.len() / 2];
    let e = segbus_xml::parse(cut).unwrap_err();
    assert_eq!(e.code, "X001");
    let (line, col) = span_of(&e);
    assert!(line >= 1 && col >= 1, "{e}");
}

#[test]
fn undefined_xml_flow_target_is_x002() {
    let (psdf, _) = exported_schemes();
    // The M2T flow naming convention is `<target>_<items>_<order>_<ticks>`;
    // point the flow at a process that does not exist.
    let broken = psdf.replace("B_72_1_10", "Nope_72_1_10");
    assert_ne!(psdf, broken, "fixture must contain the flow element");
    let doc = segbus_xml::parse(&broken).unwrap();
    let e = segbus_xml::import::import_psdf(&doc).unwrap_err();
    assert_eq!(e.code, "X002");
    assert!(e.message.contains("Nope"), "{e}");
}

#[test]
fn zero_period_xml_clock_is_x003() {
    let (psdf, psm) = exported_schemes();
    let mut broken = None;
    // Zero out whichever periodPs attribute the exporter emitted.
    for needle in ["periodPs=\"9009\"", "periodPs=\"10000\""] {
        if psm.contains(needle) {
            broken = Some(psm.replace(needle, "periodPs=\"0\""));
            break;
        }
    }
    let broken = broken.expect("fixture must contain a known periodPs");
    let pd = segbus_xml::parse(&psdf).unwrap();
    let pm = segbus_xml::parse(&broken).unwrap();
    let e = segbus_xml::import::import_system(&pd, &pm).unwrap_err();
    assert_eq!(e.code, "X003");
    assert!(e.message.contains("periodPs"), "{e}");
}

// ---------------------------------------------------------------------------
// model / engine pre-flight

#[test]
fn display_format_is_stable() {
    let e = SegbusError::new("P003", "integer literal out of range").with_span(3, 14);
    assert_eq!(
        e.to_string(),
        "error[P003] at 3:14: integer literal out of range"
    );
    let e = SegbusError::new("C001", "frame count must be non-zero");
    assert_eq!(e.to_string(), "error[C001]: frame count must be non-zero");
}

#[test]
fn engine_preflight_rejects_zero_frames_as_c001() {
    let psm = segbus_dsl::parse_system(VALID_DSL).unwrap();
    let e = segbus_core::Emulator::default()
        .try_run_frames(&psm, 0)
        .unwrap_err();
    assert_eq!(e.code, "C001");
}

#[test]
fn engine_preflight_bounds_absurd_frame_counts_as_c008() {
    let psm = segbus_dsl::parse_system(VALID_DSL).unwrap();
    let e = segbus_core::Emulator::default()
        .try_run_frames(&psm, u64::MAX)
        .unwrap_err();
    assert_eq!(e.code, "C008");
}
