//! Trace-level differential testing over the committed scenario corpus.
//!
//! The fast core's traced instantiations promise the interpreter's trace
//! *event for event* — and the `.sbt` binary format promises a lossless
//! round trip. This suite drives both promises end to end on every
//! committed `corpus/` scenario: the fast core streams its trace to an
//! `.sbt` file, the file is decoded, and both the raw events and every
//! analytics counter derived from them (utilisation, waits, gaps, BU
//! occupancy, latencies) must equal what the interpreter's in-memory
//! `TraceLog` yields.

use segbus_core::{
    analyze_trace, read_trace, trace_latency_stats, trace_package_latencies, EmulatorConfig,
    Engine, EngineKind, SbtWriter,
};
use segbus_model::mapping::Psm;

/// The committed stochastic scenarios under `corpus/`, one family
/// directory deep, as (name, parsed PSM) pairs.
fn corpus_psms() -> Vec<(String, Psm)> {
    let corpus_root = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus"));
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(corpus_root)
        .expect("corpus/ directory")
        .filter_map(|e| {
            let p = e.ok()?.path();
            p.is_dir().then_some(p)
        })
        .flat_map(|dir| {
            std::fs::read_dir(dir)
                .expect("corpus family dir")
                .filter_map(|e| {
                    let p = e.ok()?.path();
                    (p.extension()? == "sbd").then_some(p)
                })
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "corpus must contain scenarios");
    files
        .into_iter()
        .map(|p| {
            let text = std::fs::read_to_string(&p).expect("readable scenario");
            let psm = segbus_dsl::parse_system(&text).expect("committed scenario parses");
            (p.display().to_string(), psm)
        })
        .collect()
}

fn engine(kind: EngineKind) -> Engine {
    Engine::new(EmulatorConfig {
        engine: kind,
        ..EmulatorConfig::traced()
    })
}

#[test]
fn fast_core_sbt_traces_match_interpreter_counters_on_corpus() {
    let dir = std::env::temp_dir().join(format!("segbus-trace-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (frames, (name, psm)) in corpus_psms().into_iter().enumerate() {
        let frames = 1 + (frames as u64 % 2); // alternate 1- and 2-frame runs
        let reference = engine(EngineKind::Interpreter)
            .try_run_frames(&psm, frames)
            .unwrap_or_else(|e| panic!("{name}: interpreter: {e}"));
        let ref_log = reference.trace.as_ref().expect("interpreter trace");

        // Stream the fast core's trace to disk and decode it back.
        let path = dir.join("scenario.sbt");
        let mut writer = SbtWriter::create(
            &path,
            psm.platform().segment_count() as u32,
            psm.application().process_count() as u32,
        )
        .unwrap();
        let streamed = engine(EngineKind::Fast)
            .try_run_frames_with_sink(&psm, frames, &mut writer)
            .unwrap_or_else(|e| panic!("{name}: fast: {e}"));
        writer.finish().unwrap();
        let decoded = read_trace(&path).unwrap_or_else(|e| panic!("{name}: read_trace: {e}"));

        assert!(!decoded.truncated, "{name}: fresh file must not truncate");
        assert_eq!(streamed.makespan, reference.makespan, "{name}: makespan");
        assert_eq!(
            decoded.log.events(),
            ref_log.events(),
            "{name}: decoded events differ"
        );

        // Counters derived from the .sbt must match the interpreter's.
        let nseg = psm.platform().segment_count();
        let a = analyze_trace(&decoded.log, nseg);
        let b = analyze_trace(ref_log, nseg);
        assert_eq!(a.makespan, b.makespan, "{name}: analysis makespan");
        for (x, y) in a.segments.iter().zip(b.segments.iter()) {
            assert_eq!(x.busy, y.busy, "{name}: {} busy", x.segment);
            assert_eq!(x.serves, y.serves, "{name}: {} serves", x.segment);
            assert_eq!(x.total_wait, y.total_wait, "{name}: {} wait", x.segment);
            assert_eq!(
                x.wait.count(),
                y.wait.count(),
                "{name}: {} waits",
                x.segment
            );
            assert_eq!(
                x.wait.nonzero_buckets(),
                y.wait.nonzero_buckets(),
                "{name}: {} wait histogram",
                x.segment
            );
            assert_eq!(x.gaps, y.gaps, "{name}: {} gaps", x.segment);
            assert_eq!(x.gap_total, y.gap_total, "{name}: {} gap total", x.segment);
            assert_eq!(x.gap_max, y.gap_max, "{name}: {} gap max", x.segment);
        }
        assert_eq!(a.bus_units, b.bus_units, "{name}: BU occupancy");
        assert_eq!(
            trace_package_latencies(&decoded.log),
            trace_package_latencies(ref_log),
            "{name}: package latencies"
        );
        assert_eq!(
            trace_latency_stats(&decoded.log),
            trace_latency_stats(ref_log),
            "{name}: latency stats"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
