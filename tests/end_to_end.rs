//! Cross-crate integration tests: the complete design flow of the paper's
//! Fig. 3 (DSL → validation → M2T → XML import → emulation → estimation)
//! exercised through the public facade.

use segbus::apps::{generators, mp3};
use segbus::dsl;
use segbus::emu::{Emulator, EmulatorConfig};
use segbus::model::prelude::*;
use segbus::place::{Objective, PlaceTool};
use segbus::rtl::RtlSimulator;
use segbus::xml::{import, m2t, parse};

/// DSL text → PSM → XML schemes → import → identical emulation results.
#[test]
fn dsl_to_xml_to_emulation_is_consistent() {
    let psm = mp3::three_segment_psm();

    // Through the DSL.
    let text = dsl::printer::to_dsl(&psm);
    let from_dsl = dsl::parse_system(&text).expect("round trip parses");

    // Through the XML schemes.
    let psdf = parse(&m2t::export_psdf(psm.application()).to_xml_string()).unwrap();
    let psm_doc = parse(&m2t::export_psm(&psm).to_xml_string()).unwrap();
    let from_xml = import::import_system(&psdf, &psm_doc).expect("schemes import");

    let emulator = Emulator::default();
    let direct = emulator.run(&psm);
    let via_dsl = emulator.run(&from_dsl);
    let via_xml = emulator.run(&from_xml);
    assert_eq!(direct.makespan, via_dsl.makespan);
    assert_eq!(direct.makespan, via_xml.makespan);
    assert_eq!(direct.sas, via_xml.sas);
    assert_eq!(direct.bus, via_dsl.bus);
}

/// The estimator and the reference simulator agree on every structural
/// counter for a variety of applications (they differ only in timing).
#[test]
fn engines_agree_structurally_across_apps() {
    let cfg = generators::GeneratorConfig {
        items_per_flow: 3 * 36,
        ticks_per_package: 80,
    };
    let apps = vec![
        generators::chain(5, cfg),
        generators::diamond(3, cfg),
        generators::butterfly(2, cfg),
        generators::random_layered(4, 3, 99, cfg),
    ];
    for app in apps {
        for segments in [1usize, 2, 3] {
            let alloc = generators::block_allocation(&app, segments);
            let platform = generators::uniform_platform(segments, 36);
            let psm = Psm::new(platform, app.clone(), alloc).expect("valid");
            let est = Emulator::default().run(&psm);
            let act = RtlSimulator::default()
                .run(&psm)
                .unwrap_or_else(|e| panic!("{} on {} segs: {e}", app.name(), segments));
            for i in 0..est.bus.len() {
                assert_eq!(
                    est.bus[i].total_in(),
                    act.bus[i].total_in(),
                    "{}",
                    app.name()
                );
                assert_eq!(est.bus[i].total_out(), act.bus[i].total_out());
            }
            assert_eq!(est.ca.grants, act.ca.grants);
            assert_eq!(est.ca.inter_requests, act.ca.inter_requests);
            for i in 0..est.sas.len() {
                assert_eq!(est.sas[i].inter_requests, act.sas[i].inter_requests);
                assert_eq!(est.sas[i].packets_to_left, act.sas[i].packets_to_left);
                assert_eq!(est.sas[i].packets_to_right, act.sas[i].packets_to_right);
            }
            // The reference pays for every signal, so it is slower —
            // up to scheduling luck: its round-robin arbiter can pack
            // contended work slightly better than the estimator's FIFO,
            // so allow a 5 % reversal margin on synthetic graphs (the
            // MP3 accuracy tests assert strict underestimation).
            assert!(
                act.execution_time().0 * 100 >= est.execution_time().0 * 95,
                "{} on {segments} segs: reference much faster than estimator",
                app.name()
            );
        }
    }
}

/// PlaceTool allocations always validate and never lose to the naive
/// round-robin mapping when emulated.
#[test]
fn placetool_output_emulates_no_worse_than_round_robin() {
    let cfg = generators::GeneratorConfig::default();
    for seed in [1u64, 2, 3] {
        let app = generators::random_layered(5, 3, seed, cfg);
        let tool = PlaceTool::new(&app, 3).with_objective(Objective::Packages(36));
        let best = tool.best(seed);
        let platform = generators::uniform_platform(3, 36);
        let psm_best = Psm::new(platform.clone(), app.clone(), best.allocation).expect("valid");
        let psm_rr = Psm::new(
            platform,
            app.clone(),
            generators::round_robin_allocation(&app, 3),
        )
        .expect("valid");
        let t_best = Emulator::default().run(&psm_best).execution_time();
        let t_rr = Emulator::default().run(&psm_rr).execution_time();
        assert!(
            t_best.0 <= t_rr.0 + t_rr.0 / 10,
            "seed {seed}: best {t_best:?} much worse than round-robin {t_rr:?}"
        );
    }
}

/// Process status flags: the monitor's end condition holds in every report.
#[test]
fn all_runs_end_with_flags_raised_and_conservation() {
    for (_, psm) in [
        ("1seg", mp3::one_segment_psm()),
        ("2seg", mp3::two_segment_psm()),
        ("3seg", mp3::three_segment_psm()),
    ] {
        let r = Emulator::new(EmulatorConfig::traced()).run(&psm);
        assert!(r.all_flags_raised());
        let total: u64 = psm
            .application()
            .flows()
            .iter()
            .map(|f| f.packages(psm.platform().package_size()))
            .sum();
        let sent: u64 = r.fus.iter().map(|f| f.packages_sent).sum();
        let recv: u64 = r.fus.iter().map(|f| f.packages_received).sum();
        assert_eq!(sent, total);
        assert_eq!(recv, total);
        for b in &r.bus {
            assert_eq!(b.total_in(), b.total_out(), "no package stuck in a BU");
        }
    }
}

/// The facade re-exports compose: a user can drive the whole flow through
/// `segbus::*` only.
#[test]
fn facade_paths_compose() {
    let app = segbus::apps::chain(4, generators::GeneratorConfig::default());
    let alloc = generators::block_allocation(&app, 2);
    let platform = generators::uniform_platform(2, 36);
    let psm = segbus::model::Psm::new(platform, app, alloc).unwrap();
    let report = segbus::emu::Emulator::default().run(&psm);
    assert!(report.execution_time() > segbus::model::Picos::ZERO);
    let table = segbus::report::fig8_matrix();
    assert_eq!(table.len(), 15);
}

/// Ring platforms survive the full DSL and XML round trips and emulate
/// identically afterwards.
#[test]
fn ring_round_trips_through_dsl_and_xml() {
    let app = generators::diamond(3, generators::GeneratorConfig::default());
    let alloc = generators::round_robin_allocation(&app, 4);
    let ring = generators::ring_platform(4, 36);
    let psm = Psm::new(ring, app, alloc).expect("valid ring PSM");

    // DSL.
    let text = dsl::printer::to_dsl(&psm);
    assert!(text.contains("topology ring;"), "{text}");
    let from_dsl = dsl::parse_system(&text).expect("ring DSL parses");
    assert_eq!(from_dsl.platform(), psm.platform());

    // XML.
    let psm_doc = parse(&m2t::export_psm(&psm).to_xml_string()).unwrap();
    let (platform, alloc2) = import::import_psm(&psm_doc, psm.application()).unwrap();
    assert_eq!(&platform, psm.platform());
    assert_eq!(&alloc2, psm.allocation());
    assert_eq!(platform.border_unit_count(), 4, "wrap unit survives");

    // Both restored systems emulate identically.
    let direct = Emulator::default().run(&psm);
    let via_dsl = Emulator::default().run(&from_dsl);
    assert_eq!(direct.makespan, via_dsl.makespan);
    assert_eq!(direct.bus, via_dsl.bus);
}
