//! Differential fuzzing of the whole front end: generated and byte-mutated
//! `.sbd` / XML sources are pushed through parse → validate → emulate.
//!
//! Two properties are enforced on every input:
//!
//! 1. **No panics.** Every rejection must surface as a typed
//!    [`segbus_model::SegbusError`] — the lexer, parser, importer,
//!    validator and engine pre-flight must never unwind on hostile input.
//! 2. **Differential agreement.** For every *accepted* input of sane size,
//!    the optimised indexed engine and the vendored pre-optimisation
//!    [`ReferenceEmulator`] must produce bit-identical reports.
//!
//! All randomness comes from the repo's own [`SmallRng`] (no external
//! fuzzing dependency), so every case is reproducible from its seed. The
//! default test runs a quick slice; the `#[ignore]`d smoke test runs the
//! full 10 000-input budget and is executed by `scripts/verify.sh`.

use std::panic::{catch_unwind, AssertUnwindSafe};

use segbus_core::{Emulator, EmulatorConfig, EngineKind, QueueKind, ReferenceEmulator};
use segbus_model::mapping::Psm;
use segbus_model::rng::SmallRng;
use segbus_xml::m2t;

/// Run the reference comparison only below this many total packages:
/// the vendored engine is slow, and the point is agreement, not load.
const DIFF_PACKAGE_BUDGET: u64 = 4_096;

// ---------------------------------------------------------------------------
// input generators

/// A structured-but-unreliable `.sbd` source: usually close to valid,
/// sometimes exactly valid, with targeted corruption of the spots the
/// diagnostics must cover (overflowing literals, zero frequencies,
/// duplicate names, unknown hosts, missing blocks).
fn gen_dsl(rng: &mut SmallRng) -> String {
    let np = rng.range_usize(2, 6);
    let nseg = rng.range_usize(1, 3);
    let mut out = String::from("application fz {\n");
    if rng.below(4) == 0 {
        out.push_str(&format!(
            "  cost per_item reference {};\n",
            [0u64, 1, 36, u64::MAX][rng.range_usize(0, 3)]
        ));
    }
    for i in 0..np {
        let kind = if i == 0 {
            " initial"
        } else if i == np - 1 {
            " final"
        } else {
            ""
        };
        // Occasionally duplicate a name (P006 / V011 territory).
        let name = if rng.below(16) == 0 { 0 } else { i };
        out.push_str(&format!("  process P{name}{kind};\n"));
    }
    for i in 0..np - 1 {
        let items = match rng.below(8) {
            0 => 0,              // EmptyFlow
            1 => rng.next_u64(), // overflow territory
            _ => 1 + rng.below(2_000),
        };
        let order = match rng.below(8) {
            0 => rng.next_u64(),   // out of u32 range (P003)
            1 => 1 + rng.below(2), // possible dependency breach
            _ => (i + 1) as u64,
        };
        let ticks = 1 + rng.below(10_000);
        // Occasionally point at a process that does not exist (P005).
        let dst = if rng.below(16) == 0 { np } else { i + 1 };
        out.push_str(&format!(
            "  flow P{i} -> P{dst} {{ items {items}; order {order}; ticks {ticks}; }}\n"
        ));
    }
    out.push_str("}\n");
    if rng.below(12) == 0 {
        return out; // missing platform block (P004)
    }
    out.push_str("platform fzp {\n");
    let pkg = match rng.below(8) {
        0 => 0,
        1 => rng.next_u64(),
        _ => [9u64, 18, 36, 72][rng.range_usize(0, 3)],
    };
    out.push_str(&format!("  package_size {pkg};\n"));
    let ca_mhz = match rng.below(8) {
        0 => 0,
        _ => 50 + rng.below(200),
    };
    out.push_str(&format!("  ca {{ freq_mhz {ca_mhz}; }}\n"));
    for s in 0..nseg {
        let mhz = match rng.below(8) {
            0 => 0, // zero-frequency clock (P003)
            _ => 50 + rng.below(150),
        };
        let mut hosts = String::new();
        for p in 0..np {
            // Occasionally leave a process unhosted (V003) or host it twice.
            if p % nseg == s || rng.below(16) == 0 {
                hosts.push_str(&format!(" P{p}"));
            }
        }
        out.push_str(&format!(
            "  segment S{s} {{ freq_mhz {mhz}; hosts{hosts}; }}\n"
        ));
    }
    out.push_str("}\n");
    out
}

/// Byte-level mutation: flip, overwrite, insert, delete or truncate.
fn mutate(rng: &mut SmallRng, src: &str) -> String {
    let mut bytes = src.as_bytes().to_vec();
    for _ in 0..rng.range_usize(1, 8) {
        if bytes.is_empty() {
            break;
        }
        let at = rng.range_usize(0, bytes.len() - 1);
        match rng.below(5) {
            0 => bytes[at] ^= 1 << rng.below(8),
            1 => bytes[at] = rng.below(256) as u8,
            2 => bytes.insert(at, rng.below(256) as u8),
            3 => {
                bytes.remove(at);
            }
            _ => bytes.truncate(at), // truncated input
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

// ---------------------------------------------------------------------------
// the pipeline under test

/// Parse → validate → pre-flight → emulate; every rejection must be a
/// typed error (a panic anywhere unwinds into the harness and fails).
fn drive_dsl(src: &str) -> Option<Psm> {
    match segbus_dsl::parse_system(src) {
        Ok(psm) => Some(psm),
        Err(e) => {
            assert!(!e.code.is_empty(), "rejection without a code for {src:?}");
            None
        }
    }
}

fn drive_xml(psdf: &str, psm: &str) -> Option<Psm> {
    let pd = match segbus_xml::parse(psdf) {
        Ok(d) => d,
        Err(e) => {
            assert!(!e.code.is_empty());
            return None;
        }
    };
    let pm = match segbus_xml::parse(psm) {
        Ok(d) => d,
        Err(e) => {
            assert!(!e.code.is_empty());
            return None;
        }
    };
    match segbus_xml::import::import_system(&pd, &pm) {
        Ok(psm) => Some(psm),
        Err(e) => {
            assert!(!e.code.is_empty());
            None
        }
    }
}

/// Emulate an accepted PSM through the fallible entry point; if the
/// pre-flight accepts it and the run is small, the interpreter, the fast
/// core and the vendored reference engine must agree bit for bit. All
/// engines take the un-prechecked input through their `try_` surfaces,
/// so accept / reject decisions (and rejection codes) must agree too.
fn emulate_and_compare(psm: &Psm, label: &str) {
    let indexed = EmulatorConfig {
        queue: QueueKind::Indexed,
        engine: EngineKind::Interpreter,
        ..EmulatorConfig::default()
    };
    let fast = EmulatorConfig {
        engine: EngineKind::Fast,
        ..EmulatorConfig::default()
    };
    let heap = EmulatorConfig {
        queue: QueueKind::BinaryHeap,
        engine: EngineKind::Interpreter,
        ..EmulatorConfig::default()
    };
    let a = match Emulator::new(indexed).try_run(psm) {
        Ok(report) => report,
        Err(e) => {
            assert!(!e.code.is_empty(), "{label}: rejection without a code");
            // The reference `try_` surface must reject the same input with
            // the same typed code — and must not panic on it.
            let r = match ReferenceEmulator::new(heap).try_run(psm) {
                Err(r) => r,
                Ok(_) => panic!("{label}: reference accepted what the indexed engine rejected"),
            };
            assert_eq!(e.code, r.code, "{label}: rejection codes diverge");
            // The fast core shares the pre-flight, so it must bounce the
            // input with the same code — and must not panic on it.
            let f = match Emulator::new(fast).try_run(psm) {
                Err(f) => f,
                Ok(_) => panic!("{label}: fast core accepted what the interpreter rejected"),
            };
            assert_eq!(e.code, f.code, "{label}: fast-core rejection codes diverge");
            return;
        }
    };
    // Fast-core arm: the specialised core must accept exactly the same
    // inputs and reproduce the interpreter's report bit for bit.
    let f = Emulator::new(fast)
        .try_run(psm)
        .unwrap_or_else(|e| panic!("{label}: fast core rejected an accepted input: {e}"));
    assert_eq!(a.makespan, f.makespan, "{label}: fast makespan");
    assert_eq!(a.sas, f.sas, "{label}: fast SA stats");
    assert_eq!(a.ca, f.ca, "{label}: fast CA stats");
    assert_eq!(a.bus, f.bus, "{label}: fast bus counters");
    assert_eq!(a.fus, f.fus, "{label}: fast FU counters");
    let s = psm.platform().package_size();
    let total_pkgs: u64 = psm
        .application()
        .flows()
        .iter()
        .map(|f| f.packages(s))
        .sum();
    if total_pkgs > DIFF_PACKAGE_BUDGET {
        return;
    }
    let r = ReferenceEmulator::new(heap)
        .try_run(psm)
        .unwrap_or_else(|e| panic!("{label}: reference rejected an accepted input: {e}"));
    assert_eq!(a.makespan, r.makespan, "{label}: makespan");
    assert_eq!(a.sas, r.sas, "{label}: SA stats");
    assert_eq!(a.ca, r.ca, "{label}: CA stats");
    assert_eq!(a.bus, r.bus, "{label}: bus counters");
    assert_eq!(a.fus, r.fus, "{label}: FU counters");

    // Frame pipelining arm: the streaming (`--frames 2`) path exercises
    // frame-boundary bookkeeping the single-shot run never touches.
    let a2 = match Emulator::new(indexed).try_run_frames(psm, 2) {
        Ok(report) => report,
        Err(e) => {
            assert!(
                !e.code.is_empty(),
                "{label}: frames-2 rejection without a code"
            );
            let r = match ReferenceEmulator::new(heap).try_run_frames(psm, 2) {
                Err(r) => r,
                Ok(_) => panic!("{label}: reference accepted a rejected frames-2 job"),
            };
            assert_eq!(e.code, r.code, "{label}: frames-2 rejection codes diverge");
            let f = match Emulator::new(fast).try_run_frames(psm, 2) {
                Err(f) => f,
                Ok(_) => panic!("{label}: fast core accepted a rejected frames-2 job"),
            };
            assert_eq!(
                e.code, f.code,
                "{label}: fast frames-2 rejection codes diverge"
            );
            return;
        }
    };
    let f2 = Emulator::new(fast)
        .try_run_frames(psm, 2)
        .unwrap_or_else(|e| panic!("{label}: fast core rejected an accepted frames-2 job: {e}"));
    assert_eq!(a2.makespan, f2.makespan, "{label}: fast frames-2 makespan");
    assert_eq!(a2.sas, f2.sas, "{label}: fast frames-2 SA stats");
    assert_eq!(a2.ca, f2.ca, "{label}: fast frames-2 CA stats");
    assert_eq!(a2.bus, f2.bus, "{label}: fast frames-2 bus counters");
    assert_eq!(a2.fus, f2.fus, "{label}: fast frames-2 FU counters");
    let r2 = ReferenceEmulator::new(heap)
        .try_run_frames(psm, 2)
        .unwrap_or_else(|e| panic!("{label}: reference rejected an accepted frames-2 job: {e}"));
    assert_eq!(a2.makespan, r2.makespan, "{label}: frames-2 makespan");
    assert_eq!(a2.sas, r2.sas, "{label}: frames-2 SA stats");
    assert_eq!(a2.ca, r2.ca, "{label}: frames-2 CA stats");
    assert_eq!(a2.bus, r2.bus, "{label}: frames-2 bus counters");
    assert_eq!(a2.fus, r2.fus, "{label}: frames-2 FU counters");
    assert!(
        a2.makespan >= a.makespan,
        "{label}: a second frame cannot finish earlier than the first"
    );
}

/// The repo's model corpus, as (name, source) pairs: the hand-written
/// `models/` examples plus the committed stochastic scenarios under
/// `corpus/` (one family directory deep).
fn corpus() -> Vec<(String, String)> {
    let mut dirs = vec![std::path::PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/models"
    ))];
    let corpus_root = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus"));
    for entry in std::fs::read_dir(corpus_root).expect("corpus/ directory") {
        let p = entry.expect("corpus entry").path();
        if p.is_dir() {
            dirs.push(p);
        }
    }
    let mut out: Vec<(String, String)> = Vec::new();
    for dir in dirs {
        out.extend(
            std::fs::read_dir(&dir)
                .expect("corpus dir")
                .filter_map(|e| {
                    let p = e.ok()?.path();
                    (p.extension()? == "sbd")
                        .then(|| (p.display().to_string(), std::fs::read_to_string(&p).ok()))?
                        .1
                        .map(|text| (p.display().to_string(), text))
                }),
        );
    }
    out.sort();
    assert!(
        out.iter().any(|(name, _)| name.contains("corpus")),
        "the committed scenario corpus must seed the fuzzer"
    );
    out
}

/// One fuzz campaign of `budget` inputs, mixing generated DSL, byte- and
/// structure-mutated corpus DSL, and byte- and structure-mutated exported
/// XML.
fn campaign(seed: u64, budget: usize) {
    campaign_to(seed, budget, None);
}

/// Like [`campaign`], but a failing input is also written to
/// `artifacts/failing-case-<n>.txt` (for CI artifact upload) before the
/// harness panics.
fn campaign_to(seed: u64, budget: usize, artifacts: Option<&std::path::Path>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let corpus = corpus();
    // Exported XML pairs for the XML mutation arm, built from the models
    // that parse (all of them, by tier-1 guarantee).
    let xml_corpus: Vec<(String, String)> = corpus
        .iter()
        .filter_map(|(_, text)| {
            let psm = segbus_dsl::parse_system(text).ok()?;
            Some((
                m2t::export_psdf(psm.application()).to_xml_string(),
                m2t::export_psm(&psm).to_xml_string(),
            ))
        })
        .collect();
    assert!(!xml_corpus.is_empty());

    let mut accepted = 0usize;
    for case in 0..budget {
        let arm = rng.below(10);
        let result = if arm < 3 {
            // Arm A: structured generated DSL.
            let src = gen_dsl(&mut rng);
            catch_unwind(AssertUnwindSafe(|| {
                if let Some(psm) = drive_dsl(&src) {
                    emulate_and_compare(&psm, "generated dsl");
                    true
                } else {
                    false
                }
            }))
            .map_err(|_| src)
        } else if arm < 5 {
            // Arm B: byte-mutated corpus DSL.
            let (_, base) = &corpus[rng.range_usize(0, corpus.len() - 1)];
            let src = mutate(&mut rng, base);
            catch_unwind(AssertUnwindSafe(|| {
                if let Some(psm) = drive_dsl(&src) {
                    emulate_and_compare(&psm, "mutated dsl");
                    true
                } else {
                    false
                }
            }))
            .map_err(|_| src)
        } else if arm < 6 {
            // Arm D: structure-aware mutation (segbus-gen): grammar-level
            // edits of a canonicalised corpus model, biased to reach the
            // semantic checks (P00x/V0xx and the new distribution codes)
            // instead of bouncing off the tokenizer.
            let (_, base) = &corpus[rng.range_usize(0, corpus.len() - 1)];
            let src = segbus_gen::mutate_dsl(base, &mut rng);
            catch_unwind(AssertUnwindSafe(|| {
                if let Some(psm) = drive_dsl(&src) {
                    emulate_and_compare(&psm, "structure-mutated dsl");
                    true
                } else {
                    false
                }
            }))
            .map_err(|_| src)
        } else if arm < 8 {
            // Arm C: byte-mutated exported XML schemes. Mutate one of the
            // two documents, keep the other intact.
            let (psdf, psm_doc) = &xml_corpus[rng.range_usize(0, xml_corpus.len() - 1)];
            let (pd, pm) = if rng.below(2) == 0 {
                (mutate(&mut rng, psdf), psm_doc.clone())
            } else {
                (psdf.clone(), mutate(&mut rng, psm_doc))
            };
            let joined = format!("{pd}\n----\n{pm}");
            catch_unwind(AssertUnwindSafe(|| {
                if let Some(psm) = drive_xml(&pd, &pm) {
                    emulate_and_compare(&psm, "mutated xml");
                    true
                } else {
                    false
                }
            }))
            .map_err(|_| joined)
        } else {
            // Arm E: structure-aware XML mutation (segbus-gen): line-level
            // edits plus distribution-attribute injection/corruption, so
            // the campaign reaches the XML semantic checks (X0xx and the
            // distribution validators) instead of only the tokenizer.
            let (psdf, psm_doc) = &xml_corpus[rng.range_usize(0, xml_corpus.len() - 1)];
            let (pd, pm) = if rng.below(2) == 0 {
                (segbus_gen::mutate_xml(psdf, &mut rng), psm_doc.clone())
            } else {
                (psdf.clone(), segbus_gen::mutate_xml(psm_doc, &mut rng))
            };
            let joined = format!("{pd}\n----\n{pm}");
            catch_unwind(AssertUnwindSafe(|| {
                if let Some(psm) = drive_xml(&pd, &pm) {
                    emulate_and_compare(&psm, "structure-mutated xml");
                    true
                } else {
                    false
                }
            }))
            .map_err(|_| joined)
        };
        match result {
            Ok(true) => accepted += 1,
            Ok(false) => {}
            Err(src) => {
                if let Some(dir) = artifacts {
                    let _ = std::fs::create_dir_all(dir);
                    let _ = std::fs::write(
                        dir.join(format!("failing-case-{case}.txt")),
                        format!("seed: {seed}\ncase: {case}\n----\n{src}"),
                    );
                }
                panic!("seed {seed} case {case} panicked on input:\n{src}");
            }
        }
    }
    // The campaign must exercise the accept path, not just bounce inputs.
    assert!(
        accepted > budget / 50,
        "campaign accepted only {accepted}/{budget} inputs — generators degenerated"
    );
}

// ---------------------------------------------------------------------------
// tests

/// Quick slice for the default `cargo test` run.
#[test]
fn fuzz_differential_quick() {
    campaign(0xF0221, 1_500);
}

/// The full 10 000-input budget (ISSUE acceptance). Run by
/// `scripts/verify.sh` via `cargo test -- --ignored`.
#[test]
#[ignore = "10k-input smoke run; executed by scripts/verify.sh"]
fn fuzz_differential_smoke_10k() {
    campaign(0xF0222, 10_000);
}

/// The nightly campaign (CI `nightly.yml`): budget comes from
/// `SEGBUS_FUZZ_BUDGET` (default 100 000); failing inputs are written to
/// `SEGBUS_FUZZ_ARTIFACT_DIR` (default `target/fuzz-artifacts`) so the
/// workflow can upload them.
#[test]
#[ignore = "nightly 100k-input campaign; run via .github/workflows/nightly.yml"]
fn fuzz_differential_nightly() {
    let budget = std::env::var("SEGBUS_FUZZ_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000usize);
    let artifacts = std::env::var("SEGBUS_FUZZ_ARTIFACT_DIR")
        .unwrap_or_else(|_| "target/fuzz-artifacts".to_string());
    campaign_to(0xF0223, budget, Some(std::path::Path::new(&artifacts)));
}

/// Valid corpus models must stay accepted end to end: parse, pre-flight,
/// emulate, and agree with the reference engine.
#[test]
fn corpus_models_accepted_and_queue_invariant() {
    for (name, text) in corpus() {
        let psm = segbus_dsl::parse_system(&text)
            .unwrap_or_else(|e| panic!("{name} must stay valid: {e}"));
        emulate_and_compare(&psm, &name);
    }
}

/// Digest collision sanity over the fuzz generator's accepted output:
/// whenever two accepted models share a digest, they must also share
/// their canonical M2T export (i.e. they really are the same system).
/// A few thousand structurally varied models give decent birthday-bound
/// confidence that the FNV canonicalisation does not collapse distinct
/// systems.
#[test]
fn digest_collisions_only_for_identical_systems() {
    use std::collections::HashMap;

    let mut rng = SmallRng::seed_from_u64(0xD16E57);
    let mut by_digest: HashMap<u64, String> = HashMap::new();
    let mut accepted = 0usize;
    for _ in 0..4_000 {
        let Some(psm) = segbus_dsl::parse_system(&gen_dsl(&mut rng)).ok() else {
            continue;
        };
        accepted += 1;
        let digest = psm.digest();
        // The generator names deterministically (P0.., S0..), so the XML
        // export is a faithful structural fingerprint.
        let canon = format!(
            "{}\n{}",
            m2t::export_psdf(psm.application()).to_xml_string(),
            m2t::export_psm(&psm).to_xml_string()
        );
        match by_digest.entry(digest) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(canon);
            }
            std::collections::hash_map::Entry::Occupied(o) => {
                assert_eq!(
                    o.get(),
                    &canon,
                    "digest {digest:#018x} collided across distinct systems"
                );
            }
        }
    }
    assert!(
        accepted > 300,
        "generator degenerated: only {accepted} accepted"
    );
    assert!(
        by_digest.len() > 100,
        "generator produced too few distinct systems: {}",
        by_digest.len()
    );
}
