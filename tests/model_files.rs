//! The shipped `.sbd` model files under `models/` stay valid, emulable
//! and consistent with the programmatic builders they were generated from.

use segbus::cli;

fn run(args: &[&str]) -> Result<String, String> {
    let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    cli::run(&owned).map_err(|e| e.message)
}

fn model(name: &str) -> String {
    format!("{}/models/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn every_shipped_model_validates_and_emulates() {
    for name in [
        "mp3_three_segments.sbd",
        "jpeg_encoder.sbd",
        "gsm_encoder.sbd",
        "ring_hub.sbd",
    ] {
        let path = model(name);
        let v = run(&["validate", &path]).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(v.contains("OK"), "{name}: {v}");
        let e = run(&["emulate", &path]).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(e.contains("Execution time"), "{name}");
    }
}

#[test]
fn shipped_mp3_matches_the_programmatic_model() {
    let text = std::fs::read_to_string(model("mp3_three_segments.sbd")).unwrap();
    let from_file = segbus::dsl::parse_system(&text).unwrap();
    let built = segbus::apps::mp3::three_segment_psm();
    assert_eq!(from_file.application(), built.application());
    assert_eq!(from_file.platform(), built.platform());
    assert_eq!(from_file.allocation(), built.allocation());
}

#[test]
fn ring_hub_uses_the_wrap_unit() {
    let text = std::fs::read_to_string(model("ring_hub.sbd")).unwrap();
    let psm = segbus::dsl::parse_system(&text).unwrap();
    assert_eq!(psm.platform().topology(), segbus::model::Topology::Ring);
    let report = segbus::emu::Emulator::default().run(&psm);
    // The wrap unit (BU41) carries worker W2's return traffic.
    let wrap = report.bu_refs.last().unwrap();
    assert_eq!(wrap.to_string(), "BU41");
    assert!(
        report.bus.last().unwrap().total_in() > 0,
        "wrap unit unused"
    );
}

#[test]
fn cli_accuracy_and_codegen_on_shipped_models() {
    let path = model("gsm_encoder.sbd");
    let acc = run(&["accuracy", &path]).unwrap();
    assert!(acc.contains('%'), "{acc}");
    let vhdl = run(&["codegen", &path]).unwrap();
    assert!(vhdl.contains("entity sa1_scheduler"), "{vhdl}");
}
