//! Property-based tests over randomly generated applications, platforms
//! and mappings. Cases are drawn from a seeded [`SmallRng`] stream
//! (the workspace builds offline and cannot depend on `proptest`), so
//! every failure reproduces exactly; the failing `SystemSpec` is printed
//! in the panic message.

use segbus::apps::generators::{
    block_allocation, random_layered, ring_platform, round_robin_allocation, uniform_platform,
    GeneratorConfig,
};
use segbus::dsl;
use segbus::emu::{Emulator, EmulatorConfig};
use segbus::model::prelude::*;
use segbus::model::SmallRng;
use segbus::rtl::RtlSimulator;
use segbus::xml::{import, m2t, parse};

/// A random but always-valid PSM, described by a handful of scalars so a
/// failure report stays meaningful.
#[derive(Clone, Debug)]
struct SystemSpec {
    layers: usize,
    width: usize,
    seed: u64,
    segments: usize,
    package_size: u32,
    block: bool,
    ring: bool,
    items_per_flow: u64,
    ticks: u64,
}

fn arb_system(rng: &mut SmallRng) -> SystemSpec {
    let layers = rng.range_usize(2, 4);
    let width = rng.range_usize(1, 3);
    let seed = rng.below(1000);
    let segments = rng.range_usize(1, 3).min(layers * width);
    let package_size = [9u32, 12, 18, 36][rng.range_usize(0, 3)];
    let items_per_flow = [36u64, 72, 144, 360][rng.range_usize(0, 3)];
    SystemSpec {
        layers,
        width,
        seed,
        segments,
        package_size,
        block: rng.gen_bool(0.5),
        // Rings need at least three segments.
        ring: rng.gen_bool(0.5) && segments >= 3,
        items_per_flow,
        ticks: rng.range_u64(1, 300),
    }
}

fn build(spec: &SystemSpec) -> Psm {
    let cfg = GeneratorConfig {
        items_per_flow: spec.items_per_flow,
        ticks_per_package: spec.ticks,
    };
    let app = random_layered(spec.layers, spec.width, spec.seed, cfg);
    let alloc = if spec.block {
        block_allocation(&app, spec.segments)
    } else {
        round_robin_allocation(&app, spec.segments)
    };
    let platform = if spec.ring {
        ring_platform(spec.segments, spec.package_size)
    } else {
        uniform_platform(spec.segments, spec.package_size)
    };
    Psm::new(platform, app, alloc).expect("generated systems validate")
}

/// Run `cases` generated systems through `check`, labelling any panic
/// with the offending spec.
fn for_each_system(test_seed: u64, cases: usize, check: impl Fn(&SystemSpec, &Psm)) {
    let mut rng = SmallRng::seed_from_u64(test_seed);
    for case in 0..cases {
        let spec = arb_system(&mut rng);
        let psm = build(&spec);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&spec, &psm)));
        if let Err(e) = result {
            eprintln!("failing case {case}: {spec:?}");
            std::panic::resume_unwind(e);
        }
    }
}

/// Every run terminates with all status flags raised, and packages are
/// conserved end to end (sent = received = total; BU in = BU out).
#[test]
fn conservation_and_flags() {
    for_each_system(0xC0_0001, 48, |_, psm| {
        let r = Emulator::default().run(psm);
        assert!(r.all_flags_raised());
        let s = psm.platform().package_size();
        let total: u64 = psm
            .application()
            .flows()
            .iter()
            .map(|f| f.packages(s))
            .sum();
        let sent: u64 = r.fus.iter().map(|f| f.packages_sent).sum();
        let recv: u64 = r.fus.iter().map(|f| f.packages_received).sum();
        assert_eq!(sent, total);
        assert_eq!(recv, total);
        for b in &r.bus {
            assert_eq!(b.total_in(), b.total_out());
            assert_eq!(b.tct, b.useful_period(s) + b.waiting_ticks);
        }
    });
}

/// The emulator is deterministic.
#[test]
fn estimator_determinism() {
    for_each_system(0xC0_0002, 48, |_, psm| {
        let a = Emulator::default().run(psm);
        let b = Emulator::default().run(psm);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.sas, b.sas);
        assert_eq!(a.ca, b.ca);
        assert_eq!(a.bus, b.bus);
    });
}

/// The makespan respects the schedule's compute lower bound:
/// waves are barriers, producers serialise their own packages.
#[test]
fn makespan_lower_bound() {
    for_each_system(0xC0_0003, 48, |_, psm| {
        let app = psm.application();
        let s = psm.platform().package_size();
        let mut bound = 0u64; // picoseconds
        for wave in app.waves() {
            let mut per_producer: std::collections::BTreeMap<ProcessId, u64> =
                std::collections::BTreeMap::new();
            for f in &wave.flows {
                let flow = app.flow(*f);
                let seg = psm.segment_of(flow.src);
                let period = psm.platform().segment_clock(seg).period_ps();
                let ticks = app.ticks_per_package(*f, s) * flow.packages(s);
                *per_producer.entry(flow.src).or_default() += ticks * period;
            }
            bound += per_producer.values().copied().max().unwrap_or(0);
        }
        let r = Emulator::default().run(psm);
        assert!(
            r.makespan.0 >= bound,
            "makespan {} below compute bound {}",
            r.makespan.0,
            bound
        );
    });
}

/// The compiled plan's makespan lower bound
/// ([`EnginePlan::makespan_lower_bound`], the one the placement search
/// uses to skip emulations) is admissible: never above the emulated
/// makespan, for pipelined frame counts and both producer-release
/// policies.
#[test]
fn plan_lower_bound_is_admissible() {
    use segbus::emu::{EnginePlan, ProducerRelease};
    for_each_system(0xC0_0009, 48, |_, psm| {
        let plan = EnginePlan::new(psm);
        for release in [
            ProducerRelease::AfterDelivery,
            ProducerRelease::AfterLocalPhase,
        ] {
            let config = EmulatorConfig {
                producer_release: release,
                ..EmulatorConfig::default()
            };
            for frames in [1u64, 2, 3] {
                let lb = plan.makespan_lower_bound(&config, frames);
                let r = Emulator::new(config).run_frames(psm, frames);
                assert!(
                    lb.0 <= r.makespan.0,
                    "bound {} above makespan {} (frames {frames}, {release:?})",
                    lb.0,
                    r.makespan.0
                );
            }
        }
    });
}

/// The detailed reference simulation always completes and is never
/// faster than the estimator (it pays for every signal the estimator
/// skips), while staying within a sane factor.
#[test]
fn estimator_underestimates_reference() {
    for_each_system(0xC0_0004, 48, |_, psm| {
        let est = Emulator::default().run(psm).execution_time();
        let act = RtlSimulator::default()
            .run(psm)
            .expect("reference simulation completes")
            .execution_time();
        // Allow a 5 % scheduling-luck reversal (differing arbitration
        // orders); the MP3 accuracy tests assert strict underestimation.
        assert!(
            act.0 * 100 >= est.0 * 95,
            "reference {act:?} much faster than estimate {est:?}"
        );
        assert!(
            act.0 <= est.0.saturating_mul(3),
            "gap too large: {act:?} vs {est:?}"
        );
    });
}

/// XML round trip: `import(export(app)) == app` for arbitrary apps.
#[test]
fn xml_psdf_round_trip() {
    for_each_system(0xC0_0005, 48, |_, psm| {
        let app = psm.application();
        let text = m2t::export_psdf(app).to_xml_string();
        let doc = parse(&text).expect("exported scheme parses");
        let back = import::import_psdf(&doc).expect("exported scheme imports");
        assert_eq!(&back, app);
    });
}

/// Full-system XML round trip preserves the emulation result exactly.
#[test]
fn xml_system_round_trip_preserves_results() {
    for_each_system(0xC0_0006, 48, |_, psm| {
        let psdf =
            parse(&m2t::export_psdf(psm.application()).to_xml_string()).expect("psdf parses");
        let psm_doc = parse(&m2t::export_psm(psm).to_xml_string()).expect("psm parses");
        let back = import::import_system(&psdf, &psm_doc).expect("system imports");
        let a = Emulator::default().run(psm);
        let b = Emulator::default().run(&back);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.sas, b.sas);
    });
}

/// DSL round trip: `parse(print(psm))` reproduces the exact model.
#[test]
fn dsl_round_trip() {
    for_each_system(0xC0_0007, 48, |_, psm| {
        let text = dsl::printer::to_dsl(psm);
        let back = dsl::parse_system(&text).expect("printed DSL parses");
        assert_eq!(back.application(), psm.application());
        assert_eq!(back.platform(), psm.platform());
        assert_eq!(back.allocation(), psm.allocation());
    });
}

/// Tracing must not perturb timing: traced and untraced runs agree.
#[test]
fn tracing_is_observation_only() {
    for_each_system(0xC0_0008, 48, |_, psm| {
        let plain = Emulator::default().run(psm);
        let traced = Emulator::new(EmulatorConfig::traced()).run(psm);
        assert_eq!(plain.makespan, traced.makespan);
        assert_eq!(plain.sas, traced.sas);
        assert_eq!(plain.ca, traced.ca);
        assert!(traced.trace.is_some());
    });
}

/// Streaming: `run_frames` conserves packages frame-for-frame, and the
/// pipelined makespan is bounded by the serial repetition while never
/// undercutting a single frame.
#[test]
fn streaming_conservation_and_bounds() {
    let mut frame_rng = SmallRng::seed_from_u64(0xC0_0009);
    let frames_of: Vec<u64> = (0..24).map(|_| frame_rng.range_u64(1, 3)).collect();
    let case = std::cell::Cell::new(0usize);
    for_each_system(0xC0_000A, 24, |_, psm| {
        let frames = frames_of[case.get()];
        case.set(case.get() + 1);
        let single = Emulator::default().run(psm).makespan;
        let r = Emulator::default().run_frames(psm, frames);
        assert!(r.all_flags_raised());
        let s = psm.platform().package_size();
        let per_frame: u64 = psm
            .application()
            .flows()
            .iter()
            .map(|f| f.packages(s))
            .sum();
        let sent: u64 = r.fus.iter().map(|f| f.packages_sent).sum();
        assert_eq!(sent, per_frame * frames);
        for b in &r.bus {
            assert_eq!(b.total_in(), b.total_out());
        }
        assert!(r.makespan >= single, "pipelining cannot beat one frame");
        // Frame interleaving is subject to classic scheduling anomalies
        // (a FIFO arbiter can delay the critical chain), so serial
        // repetition is not a hard upper bound — but a run far beyond it
        // would be a pipelining bug. Sanity: within 25 %.
        let bound = frames * single.0 + frames * single.0 / 4;
        assert!(
            r.makespan.0 <= bound,
            "pipelining far exceeds serial repetition: {} > {}",
            r.makespan.0,
            bound
        );
    });
}
