//! Property-based tests over randomly generated applications, platforms
//! and mappings. The generators are seeded (`segbus::apps::generators`),
//! so proptest shrinks over the seed/parameter space and every failure is
//! reproducible.

use proptest::prelude::*;
use segbus::apps::generators::{
    block_allocation, random_layered, ring_platform, round_robin_allocation,
    uniform_platform, GeneratorConfig,
};
use segbus::dsl;
use segbus::emu::{Emulator, EmulatorConfig};
use segbus::model::prelude::*;
use segbus::rtl::RtlSimulator;
use segbus::xml::{import, m2t, parse};

/// A random but always-valid PSM, described by a handful of scalars so
/// shrinking stays meaningful.
#[derive(Clone, Debug)]
struct SystemSpec {
    layers: usize,
    width: usize,
    seed: u64,
    segments: usize,
    package_size: u32,
    block: bool,
    ring: bool,
    items_per_flow: u64,
    ticks: u64,
}

fn arb_system() -> impl Strategy<Value = SystemSpec> {
    (
        2usize..=4,   // layers
        1usize..=3,   // width
        0u64..1000,   // seed
        1usize..=3,   // segments (clamped below)
        prop_oneof![Just(9u32), Just(12), Just(18), Just(36)],
        any::<bool>(),
        any::<bool>(),
        prop_oneof![Just(36u64), Just(72), Just(144), Just(360)],
        1u64..=300,
    )
        .prop_map(
            |(layers, width, seed, segments, package_size, block, ring, items_per_flow, ticks)| {
                let segments = segments.min(layers * width);
                SystemSpec {
                    layers,
                    width,
                    seed,
                    segments,
                    package_size,
                    block,
                    // Rings need at least three segments.
                    ring: ring && segments >= 3,
                    items_per_flow,
                    ticks,
                }
            },
        )
}

fn build(spec: &SystemSpec) -> Psm {
    let cfg = GeneratorConfig {
        items_per_flow: spec.items_per_flow,
        ticks_per_package: spec.ticks,
    };
    let app = random_layered(spec.layers, spec.width, spec.seed, cfg);
    let alloc = if spec.block {
        block_allocation(&app, spec.segments)
    } else {
        round_robin_allocation(&app, spec.segments)
    };
    let platform = if spec.ring {
        ring_platform(spec.segments, spec.package_size)
    } else {
        uniform_platform(spec.segments, spec.package_size)
    };
    Psm::new(platform, app, alloc).expect("generated systems validate")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Every run terminates with all status flags raised, and packages are
    /// conserved end to end (sent = received = total; BU in = BU out).
    #[test]
    fn conservation_and_flags(spec in arb_system()) {
        let psm = build(&spec);
        let r = Emulator::default().run(&psm);
        prop_assert!(r.all_flags_raised());
        let s = psm.platform().package_size();
        let total: u64 = psm.application().flows().iter().map(|f| f.packages(s)).sum();
        let sent: u64 = r.fus.iter().map(|f| f.packages_sent).sum();
        let recv: u64 = r.fus.iter().map(|f| f.packages_received).sum();
        prop_assert_eq!(sent, total);
        prop_assert_eq!(recv, total);
        for b in &r.bus {
            prop_assert_eq!(b.total_in(), b.total_out());
            prop_assert_eq!(b.tct, b.useful_period(s) + b.waiting_ticks);
        }
    }

    /// The emulator is deterministic.
    #[test]
    fn estimator_determinism(spec in arb_system()) {
        let psm = build(&spec);
        let a = Emulator::default().run(&psm);
        let b = Emulator::default().run(&psm);
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.sas, b.sas);
        prop_assert_eq!(a.ca, b.ca);
        prop_assert_eq!(a.bus, b.bus);
    }

    /// The makespan respects the schedule's compute lower bound:
    /// waves are barriers, producers serialise their own packages.
    #[test]
    fn makespan_lower_bound(spec in arb_system()) {
        let psm = build(&spec);
        let app = psm.application();
        let s = psm.platform().package_size();
        let mut bound = 0u64; // picoseconds
        for wave in app.waves() {
            let mut per_producer: std::collections::BTreeMap<ProcessId, u64> =
                std::collections::BTreeMap::new();
            for f in &wave.flows {
                let flow = app.flow(*f);
                let seg = psm.segment_of(flow.src);
                let period = psm.platform().segment_clock(seg).period_ps();
                let ticks = app.ticks_per_package(*f, s) * flow.packages(s);
                *per_producer.entry(flow.src).or_default() += ticks * period;
            }
            bound += per_producer.values().copied().max().unwrap_or(0);
        }
        let r = Emulator::default().run(&psm);
        prop_assert!(
            r.makespan.0 >= bound,
            "makespan {} below compute bound {}", r.makespan.0, bound
        );
    }

    /// The detailed reference simulation always completes and is never
    /// faster than the estimator (it pays for every signal the estimator
    /// skips), while staying within a sane factor.
    #[test]
    fn estimator_underestimates_reference(spec in arb_system()) {
        let psm = build(&spec);
        let est = Emulator::default().run(&psm).execution_time();
        let act = RtlSimulator::default().run(&psm);
        let act = prop_unwrap(act)?;
        let act = act.execution_time();
        // Allow a 5 % scheduling-luck reversal (differing arbitration
        // orders); the MP3 accuracy tests assert strict underestimation.
        prop_assert!(
            act.0 * 100 >= est.0 * 95,
            "reference {act:?} much faster than estimate {est:?}"
        );
        prop_assert!(act.0 <= est.0.saturating_mul(3), "gap too large: {act:?} vs {est:?}");
    }

    /// XML round trip: `import(export(app)) == app` for arbitrary apps.
    #[test]
    fn xml_psdf_round_trip(spec in arb_system()) {
        let psm = build(&spec);
        let app = psm.application();
        let text = m2t::export_psdf(app).to_xml_string();
        let doc = prop_unwrap(parse(&text).map_err(|e| e.to_string()))?;
        let back = prop_unwrap(import::import_psdf(&doc).map_err(|e| e.to_string()))?;
        prop_assert_eq!(&back, app);
    }

    /// Full-system XML round trip preserves the emulation result exactly.
    #[test]
    fn xml_system_round_trip_preserves_results(spec in arb_system()) {
        let psm = build(&spec);
        let psdf = prop_unwrap(parse(&m2t::export_psdf(psm.application()).to_xml_string()).map_err(|e| e.to_string()))?;
        let psm_doc = prop_unwrap(parse(&m2t::export_psm(&psm).to_xml_string()).map_err(|e| e.to_string()))?;
        let back = prop_unwrap(import::import_system(&psdf, &psm_doc).map_err(|e| e.to_string()))?;
        let a = Emulator::default().run(&psm);
        let b = Emulator::default().run(&back);
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.sas, b.sas);
    }

    /// DSL round trip: `parse(print(psm))` reproduces the exact model.
    #[test]
    fn dsl_round_trip(spec in arb_system()) {
        let psm = build(&spec);
        let text = dsl::printer::to_dsl(&psm);
        let back = prop_unwrap(dsl::parse_system(&text).map_err(|e| e.to_string()))?;
        prop_assert_eq!(back.application(), psm.application());
        prop_assert_eq!(back.platform(), psm.platform());
        prop_assert_eq!(back.allocation(), psm.allocation());
    }

    /// Tracing must not perturb timing: traced and untraced runs agree.
    #[test]
    fn tracing_is_observation_only(spec in arb_system()) {
        let psm = build(&spec);
        let plain = Emulator::default().run(&psm);
        let traced = Emulator::new(EmulatorConfig::traced()).run(&psm);
        prop_assert_eq!(plain.makespan, traced.makespan);
        prop_assert_eq!(plain.sas, traced.sas);
        prop_assert_eq!(plain.ca, traced.ca);
        prop_assert!(traced.trace.is_some());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Streaming: `run_frames` conserves packages frame-for-frame, and the
    /// pipelined makespan is bounded by the serial repetition while never
    /// undercutting a single frame.
    #[test]
    fn streaming_conservation_and_bounds(spec in arb_system(), frames in 1u64..=3) {
        let psm = build(&spec);
        let single = Emulator::default().run(&psm).makespan;
        let r = Emulator::default().run_frames(&psm, frames);
        prop_assert!(r.all_flags_raised());
        let s = psm.platform().package_size();
        let per_frame: u64 = psm.application().flows().iter().map(|f| f.packages(s)).sum();
        let sent: u64 = r.fus.iter().map(|f| f.packages_sent).sum();
        prop_assert_eq!(sent, per_frame * frames);
        for b in &r.bus {
            prop_assert_eq!(b.total_in(), b.total_out());
        }
        prop_assert!(r.makespan >= single, "pipelining cannot beat one frame");
        // Frame interleaving is subject to classic scheduling anomalies
        // (a FIFO arbiter can delay the critical chain), so serial
        // repetition is not a hard upper bound — but a run far beyond it
        // would be a pipelining bug. Sanity: within 25 %.
        let bound = frames * single.0 + frames * single.0 / 4;
        prop_assert!(
            r.makespan.0 <= bound,
            "pipelining far exceeds serial repetition: {} > {}",
            r.makespan.0, bound
        );
    }
}

/// Adapter: turn a `Result` into a proptest failure with context.
fn prop_unwrap<T, E: std::fmt::Display>(r: Result<T, E>) -> Result<T, TestCaseError> {
    r.map_err(|e| TestCaseError::fail(e.to_string()))
}
