//! Implementation of the `segbus` command-line tool.
//!
//! Subcommands mirror the design flow of the paper's Fig. 3:
//!
//! ```text
//! segbus validate  <model.sbd>              check DSL + structural constraints
//! segbus matrix    <model.sbd>              print the communication matrix
//! segbus emulate   <model.sbd> [--trace] [--package-size N] [--detailed]
//! segbus reference <model.sbd>              run the cycle-accurate reference
//! segbus accuracy  <model.sbd>              estimated vs actual
//! segbus export    <model.sbd> <out-dir>    M2T: write psdf.xml + psm.xml
//! segbus import    <psdf.xml> <psm.xml>     import schemes, emulate
//! segbus place     <model.sbd> --segments N re-place with PlaceTool
//! segbus sweep     <model.sbd> --sizes a,b  package-size sweep
//! ```
//!
//! All functions return their report as a `String` so the test-suite can
//! assert on outputs without spawning processes.

use std::fmt::Write as _;
use std::path::Path;

use segbus_core::{BatchJob, CachedPool, Emulator, EmulatorConfig, SweepPool};
use segbus_dsl as dsl;
use segbus_model::mapping::Psm;
use segbus_model::validate::{validate, Severity};
use segbus_place::{Objective, PlaceTool, Portfolio};
use segbus_rtl::RtlSimulator;
use segbus_serve::{ServeOptions, Server};
use segbus_xml::{import, m2t};

/// A CLI failure: message plus suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message (already formatted).
    pub message: String,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

fn fail(msg: impl Into<String>) -> CliError {
    CliError {
        message: msg.into(),
    }
}

/// Top-level dispatch. `args` excludes the program name.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Ok(usage());
    };
    match cmd.as_str() {
        "validate" => cmd_validate(rest),
        "matrix" => cmd_matrix(rest),
        "emulate" => cmd_emulate(rest),
        "reference" => cmd_reference(rest),
        "accuracy" => cmd_accuracy(rest),
        "export" => cmd_export(rest),
        "import" => cmd_import(rest),
        "place" => cmd_place(rest),
        "sweep" => cmd_sweep(rest),
        "batch" => cmd_batch(rest),
        "mc" => cmd_mc(rest),
        "corpus" => cmd_corpus(rest),
        "serve" => cmd_serve(rest),
        "cache" => cmd_cache(rest),
        "codegen" => cmd_codegen(rest),
        "analyze" => cmd_analyze(rest),
        "gantt" => cmd_gantt(rest),
        "vcd" => cmd_vcd(rest),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(fail(format!("unknown command {other:?}\n\n{}", usage()))),
    }
}

/// The usage text.
pub fn usage() -> String {
    "\
segbus — SegBus platform modeling, emulation and performance estimation

USAGE:
    segbus <COMMAND> [ARGS]

COMMANDS:
    validate  <model.sbd>                 parse and run the structural constraints
    matrix    <model.sbd>                 print the communication matrix (Fig. 8 style)
    emulate   <model.sbd> [--trace] [--package-size N] [--detailed] [--frames N]
              [--engine fast|interpreter] [--trace-out FILE.sbt]
                                          run the performance estimator
                                          (--engine interpreter falls back to
                                          the general event-loop core;
                                          --trace-out streams the event trace
                                          to a compact binary .sbt file)
    reference <model.sbd> [--package-size N]
                                          run the cycle-accurate reference simulator
    accuracy  <model.sbd> [--package-size N]
                                          estimated vs actual execution time
    export    <model.sbd> <out-dir>       M2T transformation to psdf.xml / psm.xml
    import    <psdf.xml> <psm.xml>        rebuild the system from schemes and emulate
    place     <model.sbd> --segments N [--seed S]
              [--objective items|packages|makespan] [--capacity C]
              [--threads N] [--restarts R] [--cache-dir DIR]
              [--engine fast|interpreter] [--from-trace FILE.sbt]
                                          propose an allocation with PlaceTool;
                                          makespan searches with emulation in
                                          the loop, sharded over --threads
                                          workers and warm-started from
                                          --cache-dir; --from-trace weighs
                                          flows by packages actually delivered
                                          in a recorded trace
    sweep     <model.sbd> --sizes 18,36,72
                                          emulate at several package sizes
    batch     <paths...> [--package-size N] [--frames N] [--detailed] [--trace]
              [--threads N] [--cache N] [--cache-dir DIR]
              [--engine fast|interpreter]
                                          emulate many models (files or directories
                                          of .sbd) through the report cache;
                                          --cache-dir persists reports across runs
    mc        <model.sbd> [--samples N] [--seed S] [--frames N] [--threads N]
              [--bootstrap N] [--cache N] [--cache-dir DIR]
              [--engine fast|interpreter] [--package-size N]
                                          Monte-Carlo estimation of a stochastic
                                          model (flows annotated with items_dist /
                                          ticks_dist / jitter): mean, p50/p95/p99,
                                          bootstrap CI and bus-utilisation spread;
                                          byte-identical for any --threads
    corpus    gen [<dir>] [--check]       render the seed manifest (<dir>/MANIFEST.txt,
                                          default dir `corpus`) to .sbd scenarios;
                                          --check re-renders and verifies the
                                          committed tree byte for byte
    corpus    min <dir> [--write] [--check]
                                          find scenarios whose model+noise
                                          fingerprints collide; --write deletes the
                                          redundant files, --check fails when any
                                          exist
    serve     [--port N] [--threads N] [--cache N] [--cache-dir DIR]
              [--window N] [--max-frames N] [--engine fast|interpreter]
              [--serve-core event-loop|threads] [--shards N]
              [--max-in-flight N]
                                          batched NDJSON-over-TCP emulation service
                                          on 127.0.0.1 with per-connection request
                                          pipelining; the default sharded
                                          event-loop core sheds load over
                                          --max-in-flight with S005
                                          (see segbus-serve docs)
    cache     gc <dir>                    compact a --cache-dir report store,
                                          dropping dead records
    codegen   <model.sbd> [--format vhdl|rust|c]
                                          generate arbiter schedule code
    analyze   <model.sbd | trace.sbt> [--frames N]
                                          per-segment/per-BU utilisation, wait-time
                                          histograms, bottleneck ranking, latency
                                          (and wave timing + energy for models)
    gantt     <model.sbd> [--width N]     ASCII Gantt chart of the emulation
    vcd       <model.sbd>                 dump a VCD waveform of the emulation

The .sbd model format is the textual SegBus DSL (see segbus-dsl docs).
"
    .to_string()
}

fn read_file(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| fail(format!("cannot read {path}: {e}")))
}

fn load_psm(path: &str) -> Result<Psm, CliError> {
    let text = read_file(path)?;
    dsl::parse_system(&text).map_err(|e| fail(format!("{path}: {e}")))
}

/// Engine pre-flight ([`segbus_core::strict_validate`]) with the CLI's
/// `path: error` formatting. Guards the commands that hand the PSM to a
/// consumer without a `try_` entry point of its own.
fn precheck(psm: &Psm, frames: u64, path: &str) -> Result<(), CliError> {
    segbus_core::strict_validate(psm, frames, &EmulatorConfig::default())
        .map_err(|e| fail(format!("{path}: {e}")))
}

/// Flags that take a value; every other `--flag` is boolean, so a
/// following positional is never swallowed.
const VALUE_FLAGS: &[&str] = &[
    "package-size",
    "engine",
    "frames",
    "segments",
    "seed",
    "objective",
    "capacity",
    "restarts",
    "sizes",
    "samples",
    "bootstrap",
    "format",
    "width",
    "port",
    "threads",
    "cache",
    "cache-dir",
    "window",
    "max-frames",
    "serve-core",
    "shards",
    "max-in-flight",
    "trace-out",
    "from-trace",
    "rounds",
    "time-budget",
];

/// Parse `--key value` style options out of an argument list; returns
/// (positional, lookup).
fn split_opts(args: &[String]) -> (Vec<&str>, Vec<(&str, Option<&str>)>) {
    let mut pos = Vec::new();
    let mut opts = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if let Some(key) = a.strip_prefix("--") {
            let value = if VALUE_FLAGS.contains(&key) {
                args.get(i + 1)
                    .map(|s| s.as_str())
                    .filter(|v| !v.starts_with("--"))
            } else {
                None
            };
            if value.is_some() {
                i += 1;
            }
            opts.push((key, value));
        } else {
            pos.push(a);
        }
        i += 1;
    }
    (pos, opts)
}

fn opt<'a>(opts: &[(&'a str, Option<&'a str>)], key: &str) -> Option<Option<&'a str>> {
    opts.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

fn opt_u32(opts: &[(&str, Option<&str>)], key: &str) -> Result<Option<u32>, CliError> {
    match opt(opts, key) {
        None => Ok(None),
        Some(None) => Err(fail(format!("--{key} needs a value"))),
        Some(Some(v)) => v
            .parse()
            .map(Some)
            .map_err(|_| fail(format!("--{key}: {v:?} is not a number"))),
    }
}

/// `--engine fast|interpreter` — which emulator core runs the schedule.
/// The specialised fast core is the default; `interpreter` is the escape
/// hatch back to the general event-loop engine (bit-identical reports,
/// so this only ever matters for triage).
fn opt_engine(opts: &[(&str, Option<&str>)]) -> Result<segbus_core::EngineKind, CliError> {
    match opt(opts, "engine") {
        None => Ok(segbus_core::EngineKind::Fast),
        Some(None) => Err(fail("--engine needs a value: fast or interpreter")),
        Some(Some("fast")) => Ok(segbus_core::EngineKind::Fast),
        Some(Some("interpreter")) => Ok(segbus_core::EngineKind::Interpreter),
        Some(Some(other)) => Err(fail(format!(
            "--engine: unknown engine {other:?} (fast or interpreter)"
        ))),
    }
}

fn apply_package_size(psm: Psm, opts: &[(&str, Option<&str>)]) -> Result<Psm, CliError> {
    match opt_u32(opts, "package-size")? {
        None => Ok(psm),
        Some(s) => psm
            .with_package_size(s)
            .map_err(|e| fail(format!("--package-size: {e}"))),
    }
}

// -- subcommands --------------------------------------------------------------

fn cmd_validate(args: &[String]) -> Result<String, CliError> {
    let (pos, _) = split_opts(args);
    let [path] = pos.as_slice() else {
        return Err(fail("usage: segbus validate <model.sbd>"));
    };
    let text = read_file(path)?;
    let source = dsl::parse_source(&text).map_err(|e| fail(format!("{path}: {e}")))?;
    let mut out = String::new();
    // Full diagnostic listing (warnings included) before the hard verdict.
    if let (Some(app), Some(spec)) = (source.applications.first(), source.platforms.first()) {
        let mut alloc = segbus_model::mapping::Allocation::new(spec.platform.segment_count());
        for (name, seg, _span) in &spec.hosts {
            if let Some(p) = app.process_by_name(name) {
                alloc.assign(p, *seg);
            }
        }
        let diags = validate(&spec.platform, app, &alloc);
        for d in &diags {
            let _ = writeln!(out, "{d}");
        }
        let errors = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        if errors > 0 {
            return Err(fail(format!("{out}{path}: {errors} error(s)")));
        }
    }
    match source.into_psm() {
        Ok(psm) => {
            let _ = writeln!(
                out,
                "{path}: OK — {} processes, {} flows, {} segments, package size {}",
                psm.application().process_count(),
                psm.application().flows().len(),
                psm.platform().segment_count(),
                psm.platform().package_size()
            );
            Ok(out)
        }
        Err(e) => Err(fail(format!("{out}{path}: {e}"))),
    }
}

fn cmd_matrix(args: &[String]) -> Result<String, CliError> {
    let (pos, _) = split_opts(args);
    let [path] = pos.as_slice() else {
        return Err(fail("usage: segbus matrix <model.sbd>"));
    };
    let psm = load_psm(path)?;
    Ok(psm.matrix().to_table())
}

fn cmd_emulate(args: &[String]) -> Result<String, CliError> {
    let (pos, opts) = split_opts(args);
    let [path] = pos.as_slice() else {
        return Err(fail("usage: segbus emulate <model.sbd> [--trace] [--package-size N] [--detailed] [--frames N] [--engine fast|interpreter] [--trace-out FILE.sbt]"));
    };
    let psm = apply_package_size(load_psm(path)?, &opts)?;
    let mut config = EmulatorConfig {
        engine: opt_engine(&opts)?,
        ..EmulatorConfig::default()
    };
    if opt(&opts, "trace").is_some() {
        config.trace = true;
    }
    if opt(&opts, "detailed").is_some() {
        config.timing = segbus_core::TimingParams::detailed();
    }
    let frames = opt_u32(&opts, "frames")?.unwrap_or(1) as u64;
    if frames == 0 {
        return Err(fail("--frames must be at least 1"));
    }
    if let Some(sbt) = opt(&opts, "trace-out") {
        let sbt = sbt.ok_or_else(|| fail("--trace-out needs a file path"))?;
        // Stream the trace to disk instead of holding it in memory.
        let mut writer = segbus_core::SbtWriter::create(
            Path::new(sbt),
            psm.platform().segment_count() as u32,
            psm.application().process_count() as u32,
        )
        .map_err(|e| fail(format!("--trace-out {sbt}: {e}")))?;
        let report = segbus_core::Engine::new(config)
            .try_run_frames_with_sink(&psm, frames, &mut writer)
            .map_err(|e| fail(format!("{path}: {e}")))?;
        let events = writer
            .finish()
            .map_err(|e| fail(format!("--trace-out {sbt}: {e}")))?;
        let mut out = report.paper_style();
        let _ = writeln!(out, "\ntrace: {events} events written to {sbt}");
        return Ok(out);
    }
    let report = Emulator::new(config)
        .try_run_frames(&psm, frames)
        .map_err(|e| fail(format!("{path}: {e}")))?;
    let mut out = report.paper_style();
    if let Some(trace) = &report.trace {
        let _ = writeln!(out, "\ntrace: {} events recorded", trace.len());
    }
    Ok(out)
}

fn cmd_reference(args: &[String]) -> Result<String, CliError> {
    let (pos, opts) = split_opts(args);
    let [path] = pos.as_slice() else {
        return Err(fail(
            "usage: segbus reference <model.sbd> [--package-size N]",
        ));
    };
    let psm = apply_package_size(load_psm(path)?, &opts)?;
    precheck(&psm, 1, path)?;
    let report = RtlSimulator::default()
        .run(&psm)
        .map_err(|e| fail(e.to_string()))?;
    Ok(report.paper_style())
}

fn cmd_accuracy(args: &[String]) -> Result<String, CliError> {
    let (pos, opts) = split_opts(args);
    let [path] = pos.as_slice() else {
        return Err(fail(
            "usage: segbus accuracy <model.sbd> [--package-size N]",
        ));
    };
    let psm = apply_package_size(load_psm(path)?, &opts)?;
    let est = Emulator::default()
        .try_run(&psm)
        .map_err(|e| fail(format!("{path}: {e}")))?
        .execution_time();
    let act = RtlSimulator::default()
        .run(&psm)
        .map_err(|e| fail(e.to_string()))?
        .execution_time();
    Ok(format!(
        "estimated: {:.2} us\nactual:    {:.2} us\naccuracy:  {:.1}%\n",
        est.as_micros_f64(),
        act.as_micros_f64(),
        100.0 * est.0 as f64 / act.0 as f64
    ))
}

fn cmd_export(args: &[String]) -> Result<String, CliError> {
    let (pos, _) = split_opts(args);
    let [path, out_dir] = pos.as_slice() else {
        return Err(fail("usage: segbus export <model.sbd> <out-dir>"));
    };
    let psm = load_psm(path)?;
    std::fs::create_dir_all(out_dir).map_err(|e| fail(format!("{out_dir}: {e}")))?;
    let psdf_path = Path::new(out_dir).join("psdf.xml");
    let psm_path = Path::new(out_dir).join("psm.xml");
    std::fs::write(
        &psdf_path,
        m2t::export_psdf(psm.application()).to_xml_string(),
    )
    .map_err(|e| fail(format!("{}: {e}", psdf_path.display())))?;
    std::fs::write(&psm_path, m2t::export_psm(&psm).to_xml_string())
        .map_err(|e| fail(format!("{}: {e}", psm_path.display())))?;
    Ok(format!(
        "wrote {}\nwrote {}\n",
        psdf_path.display(),
        psm_path.display()
    ))
}

fn cmd_import(args: &[String]) -> Result<String, CliError> {
    let (pos, _) = split_opts(args);
    let [psdf_path, psm_path] = pos.as_slice() else {
        return Err(fail("usage: segbus import <psdf.xml> <psm.xml>"));
    };
    let psdf =
        segbus_xml::parse(&read_file(psdf_path)?).map_err(|e| fail(format!("{psdf_path}: {e}")))?;
    let psm_doc =
        segbus_xml::parse(&read_file(psm_path)?).map_err(|e| fail(format!("{psm_path}: {e}")))?;
    let psm = import::import_system(&psdf, &psm_doc).map_err(|e| fail(e.to_string()))?;
    let report = Emulator::default()
        .try_run(&psm)
        .map_err(|e| fail(format!("{psm_path}: {e}")))?;
    Ok(format!(
        "imported '{}' on '{}'\nestimated execution time: {:.2} us\n",
        psm.application().name(),
        psm.platform().name(),
        report.execution_time().as_micros_f64()
    ))
}

fn cmd_place(args: &[String]) -> Result<String, CliError> {
    let (pos, opts) = split_opts(args);
    let [path] = pos.as_slice() else {
        return Err(fail(
            "usage: segbus place <model.sbd> --segments N [--seed S] \
             [--objective items|packages|makespan] [--capacity C] \
             [--threads N] [--restarts R] [--cache-dir DIR] \
             [--engine fast|interpreter] [--from-trace FILE.sbt] \
             [--portfolio [--rounds N] [--time-budget MS]]",
        ));
    };
    let segments =
        opt_u32(&opts, "segments")?.ok_or_else(|| fail("--segments is required"))? as usize;
    let seed = opt_u32(&opts, "seed")?.unwrap_or(42) as u64;
    let psm = load_psm(path)?;
    let app = psm.application();
    let n = app.process_count();
    if segments == 0 || segments > n {
        return Err(fail(format!("--segments must be in 1..={n}")));
    }
    let s = psm.platform().package_size();
    // Measured traffic: per-flow delivered-package counts from a trace.
    let measured: Option<(String, Vec<u64>)> = match opt(&opts, "from-trace") {
        None => None,
        Some(None) => return Err(fail("--from-trace needs a .sbt trace file")),
        Some(Some(file)) => {
            let t = segbus_core::read_trace(Path::new(file))
                .map_err(|e| fail(format!("--from-trace {file}: {e}")))?;
            let mut w = vec![0u64; app.flows().len()];
            for e in t.log.of_kind(segbus_core::TraceKind::Delivered) {
                if let Some(slot) = e.flow.and_then(|f| w.get_mut(f.index())) {
                    *slot += 1;
                }
            }
            if w.iter().all(|&x| x == 0) {
                return Err(fail(format!(
                    "--from-trace {file}: trace contains no deliveries for this application"
                )));
            }
            Some((file.to_string(), w))
        }
    };
    let objective = match opt(&opts, "objective") {
        None => "packages",
        Some(None) => {
            return Err(fail(
                "--objective needs a value: items, packages or makespan",
            ))
        }
        Some(Some(v)) => v,
    };
    let mut tool = PlaceTool::new(app, segments).with_emulator_config(EmulatorConfig {
        engine: opt_engine(&opts)?,
        ..EmulatorConfig::default()
    });
    if let Some((_, w)) = &measured {
        tool = tool.with_measured_weights(w);
    }
    let label = match objective {
        "items" => {
            tool = tool.with_objective(Objective::Items);
            "item cut"
        }
        "packages" => {
            tool = tool.with_objective(Objective::Packages(s));
            "package cut"
        }
        "makespan" => {
            // Emulation in the loop judges candidates on the model's own
            // platform, so the target segment count is not free.
            if psm.platform().segment_count() != segments {
                return Err(fail(format!(
                    "--objective makespan emulates on the model's platform: \
                     --segments must equal its {} segment(s)",
                    psm.platform().segment_count()
                )));
            }
            tool = tool.with_makespan(psm.platform());
            "makespan_ps"
        }
        other => {
            return Err(fail(format!(
                "--objective: unknown objective {other:?} (items, packages or makespan)"
            )))
        }
    };
    if let Some(cap) = opt_u32(&opts, "capacity")? {
        let cap = cap as usize;
        if cap == 0 || cap * segments < n {
            return Err(fail(format!(
                "--capacity {cap} cannot host {n} process(es) on {segments} segment(s)"
            )));
        }
        tool = tool.with_capacity(cap);
    }
    let threads = opt_u32(&opts, "threads")?.unwrap_or(0) as usize;
    let restarts = opt_u32(&opts, "restarts")?.unwrap_or(3) as usize;
    if restarts == 0 {
        return Err(fail("--restarts must be at least 1"));
    }
    let use_portfolio = match opt(&opts, "portfolio") {
        None => false,
        Some(None) => true,
        Some(Some(v)) => return Err(fail(format!("--portfolio takes no value (got {v:?})"))),
    };
    let rounds = opt_u32(&opts, "rounds")?;
    let time_budget = opt_u32(&opts, "time-budget")?;
    if !use_portfolio && (rounds.is_some() || time_budget.is_some()) {
        return Err(fail("--rounds/--time-budget need --portfolio"));
    }
    if rounds == Some(0) {
        return Err(fail("--rounds must be at least 1"));
    }
    let cache_dir = match opt(&opts, "cache-dir") {
        None => None,
        Some(None) => return Err(fail("--cache-dir needs a directory")),
        Some(Some(dir)) => Some(dir),
    };
    // Both drivers share the evaluation substrate; the portfolio adds
    // round-based cross-pollination on top.
    let (placement, threads_used, st, portfolio_line) = if use_portfolio {
        let mut port = tool
            .portfolio(threads)
            .with_restarts(restarts)
            .with_rounds(rounds.unwrap_or(Portfolio::DEFAULT_ROUNDS as u32) as usize);
        if let Some(ms) = time_budget {
            port = port.with_time_budget(std::time::Duration::from_millis(ms as u64));
        }
        if let Some(dir) = cache_dir {
            port = port
                .with_cache_dir(Path::new(dir))
                .map_err(|e| fail(format!("--cache-dir {dir}: {e}")))?;
        }
        let placement = port.best(seed);
        let stats = port.stats();
        let line = format!(
            "portfolio: {} round(s), {} cross-pollination(s)\n",
            stats.rounds, stats.cross_pollinations
        );
        (placement, port.threads(), stats.search, Some(line))
    } else {
        let mut search = tool.parallel(threads).with_restarts(restarts);
        if let Some(dir) = cache_dir {
            search = search
                .with_cache_dir(Path::new(dir))
                .map_err(|e| fail(format!("--cache-dir {dir}: {e}")))?;
        }
        let placement = search.best(seed);
        (placement, search.threads(), search.stats(), None)
    };
    let mut out = format!(
        "PlaceTool: {} segments, {} thread(s), {label} {}\n",
        segments, threads_used, placement.cost
    );
    if let Some((file, w)) = &measured {
        let total: u64 = w.iter().sum();
        let _ = writeln!(
            out,
            "measured weights from {file}: {total} delivered package(s) over {} flow(s)",
            w.iter().filter(|&&x| x > 0).count()
        );
    }
    for i in 0..segments {
        let seg = segbus_model::ids::SegmentId(i as u16);
        let names: Vec<String> = placement
            .allocation
            .processes_on(seg)
            .iter()
            .map(|p| app.process(*p).name.clone())
            .collect();
        let _ = writeln!(out, "  {seg}: {}", names.join(" "));
    }
    if objective == "packages" {
        let baseline = psm.allocation().package_cut(app, s);
        let _ = writeln!(out, "model file's allocation cut: {baseline}");
    }
    if objective == "makespan" {
        // Every evaluation is accounted exactly once (memo hit, bound
        // skip, or fresh entry), so these counters reconcile by eye.
        let _ = writeln!(
            out,
            "search: {} evaluation(s), {} memo hit(s), {} disk hit(s), \
             {} bound skip(s), {} plan patch(es), {} emulated",
            st.evaluations,
            st.memo_hits,
            st.cache.disk_hits,
            st.bound_skips,
            st.plan_patches,
            st.emulations
        );
    }
    if let Some(line) = portfolio_line {
        out.push_str(&line);
    }
    Ok(out)
}

fn cmd_cache(args: &[String]) -> Result<String, CliError> {
    let (pos, _) = split_opts(args);
    match pos.as_slice() {
        ["gc", dir] => {
            // A gc must never create a store; `open` would.
            if !Path::new(dir).is_dir() {
                return Err(fail(format!("no cache directory at {dir}")));
            }
            // `open` already drops dead records and compacts when the scan
            // finds any; the explicit pass also reclaims stores whose live
            // records merely sit at stale offsets.
            let mut store = segbus_core::DiskStore::open(Path::new(dir))
                .map_err(|e| fail(format!("cannot open cache {dir}: {e}")))?;
            let dead = store.dead_on_load();
            let truncated = store.truncated_on_load();
            let reclaimed = store.reclaimed_on_load()
                + store
                    .compact()
                    .map_err(|e| fail(format!("compact {dir}: {e}")))?;
            Ok(format!(
                "cache gc: {} live report(s), {} byte(s) on disk; \
                 {dead} dead record(s) dropped, {reclaimed} byte(s) reclaimed, \
                 {truncated} byte(s) of corrupt tail truncated\n",
                store.len(),
                store.file_bytes(),
            ))
        }
        _ => Err(fail("usage: segbus cache gc <dir>")),
    }
}

fn cmd_sweep(args: &[String]) -> Result<String, CliError> {
    let (pos, opts) = split_opts(args);
    let [path] = pos.as_slice() else {
        return Err(fail("usage: segbus sweep <model.sbd> --sizes 18,36,72"));
    };
    let sizes: Vec<u32> = match opt(&opts, "sizes") {
        Some(Some(v)) => v
            .split(',')
            .map(|p| {
                p.trim()
                    .parse()
                    .map_err(|_| fail(format!("bad size {p:?}")))
            })
            .collect::<Result<_, _>>()?,
        _ => vec![9, 18, 36, 72],
    };
    let base = load_psm(path)?;
    let psms: Vec<Psm> = sizes
        .iter()
        .map(|&s| base.with_package_size(s).map_err(|e| fail(e.to_string())))
        .collect::<Result<_, _>>()?;
    for psm in &psms {
        precheck(psm, 1, path)?;
    }
    let reports = segbus_core::run_many(&psms);
    let mut out = format!("{:>8} {:>12}\n", "size", "est_us");
    for (s, r) in sizes.iter().zip(&reports) {
        let _ = writeln!(out, "{s:>8} {:>12.2}", r.execution_time().as_micros_f64());
    }
    Ok(out)
}

/// Collect the model files named by `paths`: each positional is either a
/// `.sbd` file or a directory scanned (non-recursively, sorted) for them.
fn gather_models(paths: &[&str]) -> Result<Vec<String>, CliError> {
    let mut files = Vec::new();
    for p in paths {
        let meta = std::fs::metadata(p).map_err(|e| fail(format!("cannot read {p}: {e}")))?;
        if meta.is_dir() {
            let mut in_dir = Vec::new();
            let entries =
                std::fs::read_dir(p).map_err(|e| fail(format!("cannot read {p}: {e}")))?;
            for entry in entries {
                let entry = entry.map_err(|e| fail(format!("cannot read {p}: {e}")))?;
                let path = entry.path();
                if path.extension().and_then(|e| e.to_str()) == Some("sbd") {
                    in_dir.push(path.to_string_lossy().into_owned());
                }
            }
            in_dir.sort();
            files.extend(in_dir);
        } else {
            files.push((*p).to_string());
        }
    }
    if files.is_empty() {
        return Err(fail("no .sbd models found"));
    }
    Ok(files)
}

fn cmd_batch(args: &[String]) -> Result<String, CliError> {
    let (pos, opts) = split_opts(args);
    if pos.is_empty() {
        return Err(fail(
            "usage: segbus batch <paths...> [--package-size N] [--frames N] [--detailed] [--trace] [--threads N] [--cache N] [--cache-dir DIR] [--engine fast|interpreter]",
        ));
    }
    let files = gather_models(&pos)?;
    let mut config = EmulatorConfig {
        engine: opt_engine(&opts)?,
        ..EmulatorConfig::default()
    };
    if opt(&opts, "trace").is_some() {
        config.trace = true;
    }
    if opt(&opts, "detailed").is_some() {
        config.timing = segbus_core::TimingParams::detailed();
    }
    let frames = opt_u32(&opts, "frames")?.unwrap_or(1) as u64;
    if frames == 0 {
        return Err(fail("--frames must be at least 1"));
    }
    let capacity = opt_u32(&opts, "cache")?.unwrap_or(256) as usize;
    let threads = opt_u32(&opts, "threads")?.unwrap_or(0) as usize;
    let pool = if threads == 0 {
        SweepPool::new(config)
    } else {
        SweepPool::with_threads(config, threads)
    };
    let mut pool = CachedPool::with_pool(pool, capacity);
    if let Some(dir) = opt(&opts, "cache-dir") {
        let dir = dir.ok_or_else(|| fail("--cache-dir needs a directory"))?;
        pool.attach_disk(std::path::Path::new(dir))
            .map_err(|e| fail(format!("--cache-dir {dir}: {e}")))?;
    }
    let mut jobs = Vec::with_capacity(files.len());
    for path in &files {
        let psm = apply_package_size(load_psm(path)?, &opts)?;
        jobs.push(BatchJob {
            psm,
            config,
            frames,
        });
    }
    // "cached" below means answered without emulation: resident before the
    // batch, or a duplicate of an earlier job in the same batch.
    let mut seen = std::collections::HashSet::new();
    let reused: Vec<bool> = jobs
        .iter()
        .map(|j| pool.is_cached(j) | !seen.insert(j.digest()))
        .collect();
    let results = pool.run_batch(&jobs);
    let mut out = String::new();
    let mut failures = 0usize;
    for ((path, result), was_reused) in files.iter().zip(results).zip(reused) {
        let tag = if was_reused { "cached" } else { "emulated" };
        match result {
            Ok(report) => {
                let _ = writeln!(out, "== {path} ({tag})");
                out.push_str(&report.paper_style());
            }
            Err(e) => {
                failures += 1;
                let _ = writeln!(out, "== {path} (error)");
                let _ = writeln!(out, "{e}");
            }
        }
        out.push('\n');
    }
    let stats = pool.stats();
    let _ = writeln!(
        out,
        "batch: {} model(s), {} failure(s); cache: {} hits, {} misses, {} evictions, {} disk hits; {} emulated",
        files.len(),
        failures,
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.disk_hits,
        stats.misses
    );
    Ok(out)
}

fn cmd_mc(args: &[String]) -> Result<String, CliError> {
    let (pos, opts) = split_opts(args);
    let [path] = pos.as_slice() else {
        return Err(fail(
            "usage: segbus mc <model.sbd> [--samples N] [--seed S] [--frames N] [--threads N] [--bootstrap N] [--cache N] [--cache-dir DIR] [--engine fast|interpreter] [--package-size N]",
        ));
    };
    let psm = apply_package_size(load_psm(path)?, &opts)?;
    let samples = opt_u32(&opts, "samples")?.unwrap_or(100) as u64;
    if samples == 0 {
        return Err(fail("--samples must be at least 1"));
    }
    let frames = opt_u32(&opts, "frames")?.unwrap_or(1) as u64;
    if frames == 0 {
        return Err(fail("--frames must be at least 1"));
    }
    let opts_mc = segbus_core::McOptions {
        samples,
        seed: opt_u32(&opts, "seed")?.unwrap_or(0) as u64,
        frames,
        bootstrap: opt_u32(&opts, "bootstrap")?.unwrap_or(200),
    };
    let config = EmulatorConfig {
        engine: opt_engine(&opts)?,
        ..EmulatorConfig::default()
    };
    let capacity = opt_u32(&opts, "cache")?.unwrap_or(1024) as usize;
    let threads = opt_u32(&opts, "threads")?.unwrap_or(0) as usize;
    let pool = if threads == 0 {
        SweepPool::new(config)
    } else {
        SweepPool::with_threads(config, threads)
    };
    let mut pool = CachedPool::with_pool(pool, capacity);
    if let Some(dir) = opt(&opts, "cache-dir") {
        let dir = dir.ok_or_else(|| fail("--cache-dir needs a directory"))?;
        pool.attach_disk(Path::new(dir))
            .map_err(|e| fail(format!("--cache-dir {dir}: {e}")))?;
    }
    let report = segbus_core::run_monte_carlo(&mut pool, &psm, config, &opts_mc)
        .map_err(|e| fail(format!("{path}: {e}")))?;
    let us = |ps: u64| ps as f64 / 1e6;
    let mut out = format!(
        "monte carlo: {} sample(s), seed {}, {} distinct system(s)\n",
        report.samples, opts_mc.seed, report.distinct
    );
    if !psm.application().is_stochastic() {
        let _ = writeln!(
            out,
            "note: the model carries no distributions — every sample is the base system"
        );
    }
    let m = &report.makespan;
    let _ = writeln!(
        out,
        "makespan: mean {:.2} us, 95% CI [{:.2}, {:.2}] us",
        m.mean / 1e6,
        m.ci95.0 / 1e6,
        m.ci95.1 / 1e6
    );
    let _ = writeln!(
        out,
        "          min {:.2} | p50 {:.2} | p95 {:.2} | p99 {:.2} | max {:.2} us",
        us(m.min),
        us(m.p50),
        us(m.p95),
        us(m.p99),
        us(m.max)
    );
    let _ = writeln!(out, "bus utilisation (fraction of makespan):");
    for (i, u) in report.utilisation.iter().enumerate() {
        let _ = writeln!(
            out,
            "  segment {}: min {:.1}% mean {:.1}% max {:.1}%",
            i + 1,
            u.min * 100.0,
            u.mean * 100.0,
            u.max * 100.0
        );
    }
    let stats = pool.stats();
    let _ = writeln!(
        out,
        "cache: {} hits, {} misses, {} evictions, {} disk hits; {} emulated",
        stats.hits, stats.misses, stats.evictions, stats.disk_hits, stats.misses
    );
    Ok(out)
}

/// The corpus files under `dir`, as paths relative to it (sorted; one
/// directory level deep, matching the `<family>/<file>.sbd` layout).
fn corpus_files(dir: &Path) -> Result<Vec<String>, CliError> {
    fn walk(root: &Path, at: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
        for entry in std::fs::read_dir(at)? {
            let path = entry?.path();
            if path.is_dir() {
                walk(root, &path, out)?;
            } else if path.extension().and_then(|e| e.to_str()) == Some("sbd") {
                let rel = path.strip_prefix(root).unwrap_or(&path);
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    walk(dir, dir, &mut out).map_err(|e| fail(format!("cannot scan {}: {e}", dir.display())))?;
    out.sort();
    Ok(out)
}

fn cmd_corpus(args: &[String]) -> Result<String, CliError> {
    let (pos, opts) = split_opts(args);
    match pos.as_slice() {
        ["gen"] | ["gen", _] => {
            let dir = Path::new(if let [_, d] = pos.as_slice() {
                *d
            } else {
                "corpus"
            });
            let check = opt(&opts, "check").is_some();
            let manifest_path = dir.join("MANIFEST.txt");
            let manifest = match std::fs::read_to_string(&manifest_path) {
                Ok(text) => text,
                Err(_) if !check => segbus_gen::DEFAULT_MANIFEST.to_string(),
                Err(e) => {
                    return Err(fail(format!(
                        "--check needs a committed manifest at {}: {e}",
                        manifest_path.display()
                    )))
                }
            };
            let entries = segbus_gen::parse_manifest(&manifest)
                .map_err(|e| fail(format!("{}: {e}", manifest_path.display())))?;
            let files = segbus_gen::generate_corpus(&entries);
            if check {
                // Byte-identity against the committed tree, plus no strays.
                let mut bad = Vec::new();
                for (rel, want) in &files {
                    match std::fs::read_to_string(dir.join(rel)) {
                        Ok(have) if have == *want => {}
                        Ok(_) => bad.push(format!("{rel}: differs from its manifest entry")),
                        Err(e) => bad.push(format!("{rel}: {e}")),
                    }
                }
                let expected: std::collections::HashSet<&str> =
                    files.iter().map(|(rel, _)| rel.as_str()).collect();
                for rel in corpus_files(dir)? {
                    if !expected.contains(rel.as_str()) {
                        bad.push(format!("{rel}: not in the manifest"));
                    }
                }
                if !bad.is_empty() {
                    return Err(fail(format!(
                        "corpus check failed ({} problem(s)) — run `segbus corpus gen`:\n  {}",
                        bad.len(),
                        bad.join("\n  ")
                    )));
                }
                Ok(format!(
                    "corpus check: {} scenario(s) match {}\n",
                    files.len(),
                    manifest_path.display()
                ))
            } else {
                std::fs::create_dir_all(dir)
                    .map_err(|e| fail(format!("{}: {e}", dir.display())))?;
                if !manifest_path.exists() {
                    std::fs::write(&manifest_path, &manifest)
                        .map_err(|e| fail(format!("{}: {e}", manifest_path.display())))?;
                }
                for (rel, text) in &files {
                    let target = dir.join(rel);
                    if let Some(parent) = target.parent() {
                        std::fs::create_dir_all(parent)
                            .map_err(|e| fail(format!("{}: {e}", parent.display())))?;
                    }
                    std::fs::write(&target, text)
                        .map_err(|e| fail(format!("{}: {e}", target.display())))?;
                }
                Ok(format!(
                    "corpus gen: wrote {} scenario(s) under {}\n",
                    files.len(),
                    dir.display()
                ))
            }
        }
        ["min", d] => {
            let dir = Path::new(d);
            let write = opt(&opts, "write").is_some();
            let check = opt(&opts, "check").is_some();
            let files = corpus_files(dir)?;
            if files.is_empty() {
                return Err(fail(format!("no .sbd scenarios under {d}")));
            }
            // First file per fingerprint survives (sorted order — stable).
            let mut seen: std::collections::HashMap<(u64, u64), String> =
                std::collections::HashMap::new();
            let mut redundant: Vec<(String, String)> = Vec::new();
            for rel in &files {
                let text = read_file(&dir.join(rel).to_string_lossy())?;
                let psm = dsl::parse_system(&text).map_err(|e| fail(format!("{rel}: {e}")))?;
                let fp = segbus_gen::model_fingerprint(&psm);
                match seen.entry(fp) {
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(rel.clone());
                    }
                    std::collections::hash_map::Entry::Occupied(o) => {
                        redundant.push((rel.clone(), o.get().clone()));
                    }
                }
            }
            let mut out = format!(
                "corpus min: {} scenario(s), {} distinct, {} redundant\n",
                files.len(),
                seen.len(),
                redundant.len()
            );
            for (dup, kept) in &redundant {
                let _ = writeln!(out, "  {dup} duplicates {kept}");
                if write {
                    std::fs::remove_file(dir.join(dup))
                        .map_err(|e| fail(format!("{dup}: {e}")))?;
                }
            }
            if write && !redundant.is_empty() {
                let _ = writeln!(out, "removed {} file(s)", redundant.len());
            }
            if check && !redundant.is_empty() {
                return Err(fail(format!(
                    "{out}corpus min --check: {} redundant scenario(s)",
                    redundant.len()
                )));
            }
            Ok(out)
        }
        _ => Err(fail(
            "usage: segbus corpus gen [<dir>] [--check] | segbus corpus min <dir> [--write] [--check]",
        )),
    }
}

fn cmd_serve(args: &[String]) -> Result<String, CliError> {
    let (pos, opts) = split_opts(args);
    if !pos.is_empty() {
        return Err(fail(
            "usage: segbus serve [--port N] [--threads N] [--cache N] [--cache-dir DIR] [--window N] [--max-frames N] [--engine fast|interpreter] [--serve-core event-loop|threads] [--shards N] [--max-in-flight N]",
        ));
    }
    let port = opt_u32(&opts, "port")?.unwrap_or(7878);
    let port = u16::try_from(port).map_err(|_| fail(format!("--port: {port} is not a port")))?;
    let threads = opt_u32(&opts, "threads")?.unwrap_or(0) as usize;
    let cache_capacity = opt_u32(&opts, "cache")?.unwrap_or(256) as usize;
    let defaults = ServeOptions::default();
    let window = opt_u32(&opts, "window")?.map_or(defaults.window, |w| w as usize);
    if window == 0 {
        return Err(fail("--window must be at least 1"));
    }
    let max_frames = opt_u32(&opts, "max-frames")?.map_or(defaults.max_frames, u64::from);
    if max_frames == 0 {
        return Err(fail("--max-frames must be at least 1"));
    }
    let cache_dir = match opt(&opts, "cache-dir") {
        None => None,
        Some(None) => return Err(fail("--cache-dir needs a directory")),
        Some(Some(dir)) => Some(std::path::PathBuf::from(dir)),
    };
    let core = match opt(&opts, "serve-core") {
        None => defaults.core,
        Some(Some(s)) => segbus_serve::ServeCore::parse(s)
            .ok_or_else(|| fail(format!("--serve-core: {s:?} is not event-loop | threads")))?,
        Some(None) => return Err(fail("--serve-core needs a value (event-loop | threads)")),
    };
    let shards = opt_u32(&opts, "shards")?.unwrap_or(0) as usize;
    let max_in_flight = opt_u32(&opts, "max-in-flight")?.unwrap_or(0) as usize;
    let server = Server::start(ServeOptions {
        port,
        threads,
        cache_capacity,
        cache_dir,
        window,
        max_frames,
        core,
        shards,
        max_in_flight,
        config: EmulatorConfig {
            engine: opt_engine(&opts)?,
            ..EmulatorConfig::default()
        },
        ..defaults
    })
    .map_err(|e| fail(format!("cannot start on 127.0.0.1:{port}: {e}")))?;
    let addr = server.addr();
    // The accept loop blocks this command until a client sends
    // {"cmd": "shutdown"}; announce the address on stderr first.
    eprintln!("segbus-serve listening on {addr} (newline-delimited JSON)");
    server.join();
    Ok(format!("segbus-serve on {addr} stopped\n"))
}

fn cmd_analyze(args: &[String]) -> Result<String, CliError> {
    let (pos, opts) = split_opts(args);
    let [path] = pos.as_slice() else {
        return Err(fail(
            "usage: segbus analyze <model.sbd | trace.sbt> [--package-size N] [--frames N]",
        ));
    };
    if path.ends_with(".sbt") {
        // A recorded binary trace: everything derives from the events.
        let t =
            segbus_core::read_trace(Path::new(path)).map_err(|e| fail(format!("{path}: {e}")))?;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} events, {} segment(s), {} process(es){}",
            t.log.len(),
            t.segments,
            t.processes,
            if t.truncated {
                " — truncated tail dropped"
            } else {
                ""
            }
        );
        write_trace_report(&mut out, &t.log, t.segments as usize);
        return Ok(out);
    }
    let psm = apply_package_size(load_psm(path)?, &opts)?;
    let frames = opt_u32(&opts, "frames")?.unwrap_or(1) as u64;
    if frames == 0 {
        return Err(fail("--frames must be at least 1"));
    }
    let report = Emulator::new(EmulatorConfig::traced())
        .try_run_frames(&psm, frames)
        .map_err(|e| fail(format!("{path}: {e}")))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "estimated execution time: {:.2} us",
        report.execution_time().as_micros_f64()
    );
    let trace = report
        .trace
        .as_ref()
        .expect("traced config records a trace");
    write_trace_report(&mut out, trace, report.sas.len());
    let _ = writeln!(
        out,
        "
wave durations (us):"
    );
    for (i, d) in segbus_core::wave_durations(&report).iter().enumerate() {
        let _ = writeln!(out, "  wave {}: {:.2}", i + 1, d.as_micros_f64());
    }
    let energy = segbus_core::estimate_energy(&report, &segbus_core::EnergyModel::default());
    let _ = writeln!(
        out,
        "
energy (synthetic weights): {:.2} uJ total, {:.1}% communication",
        energy.total_uj(),
        energy.communication_fraction() * 100.0
    );
    Ok(out)
}

/// The shared heart of `segbus analyze`: per-segment utilisation, wait
/// histograms, border-unit occupancy, the bottleneck ranking and the
/// package-latency summary — all derived from the trace alone, so it
/// serves both a freshly emulated model and a decoded `.sbt` file.
fn write_trace_report(out: &mut String, log: &segbus_core::TraceLog, segments: usize) {
    let us = |ns: u64| ns as f64 / 1e3;
    let a = segbus_core::analyze_trace(log, segments);
    let _ = writeln!(
        out,
        "
bus utilisation (makespan {:.2} us):",
        a.makespan.as_micros_f64()
    );
    for s in &a.segments {
        let _ = writeln!(
            out,
            "  {}: busy {:.2} us ({:.1}%), {} serve(s), {} gap(s), longest gap {:.2} us",
            s.segment,
            s.busy.as_micros_f64(),
            s.fraction * 100.0,
            s.serves,
            s.gaps,
            s.gap_max.as_micros_f64()
        );
    }
    let _ = writeln!(
        out,
        "
wait time (arbitration to grant):"
    );
    for s in &a.segments {
        if s.wait.count() == 0 {
            let _ = writeln!(out, "  {}: no requests", s.segment);
        } else {
            let _ = writeln!(
                out,
                "  {}: {} request(s), p50 {:.2} us, p95 {:.2} us, max {:.2} us",
                s.segment,
                s.wait.count(),
                us(s.wait.quantile(0.50)),
                us(s.wait.quantile(0.95)),
                us(s.wait.max().unwrap_or(0)),
            );
        }
    }
    if !a.bus_units.is_empty() {
        let _ = writeln!(
            out,
            "
border units:"
        );
        for b in &a.bus_units {
            let _ = writeln!(
                out,
                "  BU loaded by {}: {} package(s), occupied {:.2} us ({:.1}%)",
                b.loading_segment,
                b.loads,
                b.occupied.as_micros_f64(),
                b.fraction * 100.0
            );
        }
    }
    let _ = writeln!(
        out,
        "
bottlenecks (by total arbitration wait):"
    );
    for (i, s) in a.bottlenecks().iter().enumerate() {
        let _ = writeln!(
            out,
            "  {}. {}: total wait {:.2} us, busy {:.1}%",
            i + 1,
            s.segment,
            s.total_wait.as_micros_f64(),
            s.fraction * 100.0
        );
    }
    let stats = segbus_core::trace_latency_stats(log);
    if let (Some(min), Some(max), Some(mean)) = (stats.min, stats.max, stats.mean_ps) {
        let _ = writeln!(
            out,
            "
package latency: {} packages, min {:.2} us, mean {:.2} us, max {:.2} us",
            stats.count,
            min.as_micros_f64(),
            mean / 1e6,
            max.as_micros_f64()
        );
    } else {
        let _ = writeln!(
            out,
            "
package latency: no packages delivered"
        );
    }
}

fn cmd_gantt(args: &[String]) -> Result<String, CliError> {
    let (pos, opts) = split_opts(args);
    let [path] = pos.as_slice() else {
        return Err(fail(
            "usage: segbus gantt <model.sbd> [--width N] [--package-size N]",
        ));
    };
    let psm = apply_package_size(load_psm(path)?, &opts)?;
    let width = opt_u32(&opts, "width")?.unwrap_or(100) as usize;
    if width == 0 {
        return Err(fail("--width must be positive"));
    }
    let report = Emulator::new(EmulatorConfig::traced())
        .try_run(&psm)
        .map_err(|e| fail(format!("{path}: {e}")))?;
    Ok(segbus_core::ascii_gantt(&report, width))
}

fn cmd_vcd(args: &[String]) -> Result<String, CliError> {
    let (pos, opts) = split_opts(args);
    let [path] = pos.as_slice() else {
        return Err(fail("usage: segbus vcd <model.sbd> [--package-size N]"));
    };
    let psm = apply_package_size(load_psm(path)?, &opts)?;
    let report = Emulator::new(EmulatorConfig::traced())
        .try_run(&psm)
        .map_err(|e| fail(format!("{path}: {e}")))?;
    segbus_core::to_vcd(&report).map_err(|e| fail(format!("{path}: {e}")))
}

fn cmd_codegen(args: &[String]) -> Result<String, CliError> {
    let (pos, opts) = split_opts(args);
    let [path] = pos.as_slice() else {
        return Err(fail(
            "usage: segbus codegen <model.sbd> [--format vhdl|rust]",
        ));
    };
    let psm = load_psm(path)?;
    precheck(&psm, 1, path)?;
    let sched = segbus_codegen::SystemSchedule::derive(&psm);
    match opt(&opts, "format") {
        None | Some(Some("vhdl")) => Ok(segbus_codegen::vhdl::to_vhdl(&psm, &sched)),
        Some(Some("rust")) => Ok(segbus_codegen::rust_emit::to_rust(&psm, &sched)),
        Some(Some("c")) => Ok(segbus_codegen::c_emit::to_c_header(&psm, &sched)),
        Some(other) => Err(fail(format!(
            "--format must be 'vhdl', 'rust' or 'c', got '{}'",
            other.unwrap_or("")
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn demo_file(dir: &Path) -> String {
        let path = dir.join("demo.sbd");
        std::fs::write(
            &path,
            r#"application demo {
                 process A initial;
                 process B final;
                 flow A -> B { items 360; order 1; ticks 100; }
               }
               platform duo {
                 package_size 36;
                 ca { freq_mhz 111; }
                 segment S1 { freq_mhz 91; hosts A; }
                 segment S2 { freq_mhz 98; hosts B; }
               }"#,
        )
        .unwrap();
        path.to_string_lossy().into_owned()
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("segbus-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn no_args_prints_usage() {
        let out = run(&[]).unwrap();
        assert!(out.contains("USAGE"));
        assert!(run(&args(&["help"])).unwrap().contains("COMMANDS"));
    }

    #[test]
    fn unknown_command_fails_with_usage() {
        let err = run(&args(&["frobnicate"])).unwrap_err();
        assert!(err.message.contains("unknown command"));
        assert!(err.message.contains("USAGE"));
    }

    #[test]
    fn validate_and_matrix_and_emulate() {
        let dir = tmpdir("vme");
        let f = demo_file(&dir);
        let v = run(&args(&["validate", &f])).unwrap();
        assert!(v.contains("OK"), "{v}");
        let m = run(&args(&["matrix", &f])).unwrap();
        assert!(m.contains("360"), "{m}");
        let e = run(&args(&["emulate", &f, "--trace"])).unwrap();
        assert!(e.contains("Execution time"), "{e}");
        assert!(e.contains("trace:"), "{e}");
    }

    #[test]
    fn boolean_flags_before_the_positional() {
        // Regression: --trace must not swallow the model path.
        let dir = tmpdir("bf");
        let f = demo_file(&dir);
        let out = run(&args(&["emulate", "--trace", &f])).unwrap();
        assert!(out.contains("trace:"), "{out}");
        let out = run(&args(&["emulate", "--detailed", &f])).unwrap();
        assert!(out.contains("Execution time"), "{out}");
    }

    #[test]
    fn frames_flag_streams() {
        let dir = tmpdir("fr");
        let f = demo_file(&dir);
        let one = run(&args(&["emulate", &f])).unwrap();
        let four = run(&args(&["emulate", &f, "--frames", "4"])).unwrap();
        assert_ne!(one, four);
        assert!(run(&args(&["emulate", &f, "--frames", "0"])).is_err());
    }

    #[test]
    fn package_size_flag_changes_results() {
        let dir = tmpdir("pkg");
        let f = demo_file(&dir);
        let a = run(&args(&["emulate", &f])).unwrap();
        let b = run(&args(&["emulate", &f, "--package-size", "18"])).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn accuracy_under_one() {
        let dir = tmpdir("acc");
        let f = demo_file(&dir);
        let out = run(&args(&["accuracy", &f])).unwrap();
        assert!(out.contains("accuracy"), "{out}");
        let pct: f64 = out
            .lines()
            .find(|l| l.starts_with("accuracy"))
            .unwrap()
            .split_whitespace()
            .last()
            .unwrap()
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(pct > 50.0 && pct < 100.0, "{pct}");
    }

    #[test]
    fn export_then_import_round_trip() {
        let dir = tmpdir("exp");
        let f = demo_file(&dir);
        let out_dir = dir.join("schemes");
        let out = run(&args(&["export", &f, &out_dir.to_string_lossy()])).unwrap();
        assert!(out.contains("psdf.xml"));
        let psdf = out_dir.join("psdf.xml").to_string_lossy().into_owned();
        let psm = out_dir.join("psm.xml").to_string_lossy().into_owned();
        let imported = run(&args(&["import", &psdf, &psm])).unwrap();
        assert!(imported.contains("imported 'demo' on 'duo'"), "{imported}");
    }

    #[test]
    fn place_requires_segments() {
        let dir = tmpdir("pl");
        let f = demo_file(&dir);
        assert!(run(&args(&["place", &f])).is_err());
        let out = run(&args(&["place", &f, "--segments", "2"])).unwrap();
        assert!(out.contains("package cut"), "{out}");
    }

    #[test]
    fn place_objectives_and_error_paths() {
        let dir = tmpdir("plo");
        let f = demo_file(&dir);
        let items = run(&args(&[
            "place",
            &f,
            "--segments",
            "2",
            "--objective",
            "items",
        ]))
        .unwrap();
        assert!(items.contains("item cut"), "{items}");
        let mk = run(&args(&[
            "place",
            &f,
            "--segments",
            "2",
            "--objective",
            "makespan",
            "--threads",
            "2",
            "--restarts",
            "2",
        ]))
        .unwrap();
        assert!(mk.contains("makespan_ps"), "{mk}");
        assert!(mk.contains("search:"), "{mk}");
        let cap = run(&args(&["place", &f, "--segments", "2", "--capacity", "1"])).unwrap();
        assert!(cap.contains("package cut"), "{cap}");
        // Error paths: unknown objective, makespan segment mismatch,
        // impossible capacity, zero restarts.
        let bad = run(&args(&["place", &f, "--segments", "2", "--objective", "x"])).unwrap_err();
        assert!(bad.message.contains("unknown objective"), "{bad}");
        let mismatch = run(&args(&[
            "place",
            &f,
            "--segments",
            "1",
            "--objective",
            "makespan",
        ]))
        .unwrap_err();
        assert!(mismatch.message.contains("segment"), "{mismatch}");
        assert!(run(&args(&["place", &f, "--segments", "2", "--capacity", "0"])).is_err());
        assert!(run(&args(&["place", &f, "--segments", "2", "--restarts", "0"])).is_err());
    }

    #[test]
    fn place_portfolio_flag_and_error_paths() {
        let dir = tmpdir("plp");
        let f = demo_file(&dir);
        let out = run(&args(&[
            "place",
            &f,
            "--segments",
            "2",
            "--objective",
            "makespan",
            "--portfolio",
            "--rounds",
            "2",
            "--time-budget",
            "60000",
        ]))
        .unwrap();
        assert!(out.contains("makespan_ps"), "{out}");
        assert!(out.contains("bound skip(s)"), "{out}");
        assert!(out.contains("plan patch(es)"), "{out}");
        assert!(
            out.contains("portfolio:") && out.contains("round(s)"),
            "{out}"
        );
        // A portfolio answer is never worse than the plain parallel search.
        let plain = run(&args(&[
            "place",
            &f,
            "--segments",
            "2",
            "--objective",
            "makespan",
        ]))
        .unwrap();
        assert_eq!(out.lines().next(), plain.lines().next(), "same placement");
        // Error paths: the round/budget knobs require --portfolio, rounds
        // must be positive, and --portfolio itself takes no value.
        let orphan = run(&args(&["place", &f, "--segments", "2", "--rounds", "2"])).unwrap_err();
        assert!(orphan.message.contains("--portfolio"), "{orphan}");
        let orphan = run(&args(&[
            "place",
            &f,
            "--segments",
            "2",
            "--time-budget",
            "5",
        ]))
        .unwrap_err();
        assert!(orphan.message.contains("--portfolio"), "{orphan}");
        assert!(run(&args(&[
            "place",
            &f,
            "--segments",
            "2",
            "--portfolio",
            "--rounds",
            "0"
        ]))
        .is_err());
    }

    #[test]
    fn place_warm_cache_dir_emulates_nothing() {
        let dir = tmpdir("plc");
        let f = demo_file(&dir);
        let cache = dir.join("place-cache").to_string_lossy().into_owned();
        let cmd = [
            "place",
            &f,
            "--segments",
            "2",
            "--objective",
            "makespan",
            "--cache-dir",
            &cache,
        ];
        let cold = run(&args(&cmd)).unwrap();
        let warm = run(&args(&cmd)).unwrap();
        assert_eq!(cold.lines().next(), warm.lines().next(), "same placement");
        assert!(warm.contains("0 emulated"), "{warm}");
    }

    #[test]
    fn cache_gc_compacts_a_store() {
        let dir = tmpdir("gc");
        let f = demo_file(&dir);
        let cache = dir.join("gc-store").to_string_lossy().into_owned();
        run(&args(&["batch", &f, "--cache-dir", &cache])).unwrap();
        let out = run(&args(&["cache", "gc", &cache])).unwrap();
        assert!(out.contains("live report(s)"), "{out}");
        assert!(run(&args(&["cache"])).is_err());
        // A path that cannot become a store directory (it is a file).
        assert!(run(&args(&["cache", "gc", &f])).is_err());
        // A gc must not conjure a store out of a missing directory.
        let missing = dir.join("no-such-store").to_string_lossy().into_owned();
        assert!(run(&args(&["cache", "gc", &missing])).is_err());
    }

    #[test]
    fn sweep_parses_sizes() {
        let dir = tmpdir("sw");
        let f = demo_file(&dir);
        let out = run(&args(&["sweep", &f, "--sizes", "18,36"])).unwrap();
        assert!(out.contains("18") && out.contains("36"), "{out}");
        assert!(run(&args(&["sweep", &f, "--sizes", "x"])).is_err());
    }

    #[test]
    fn analyze_and_vcd() {
        let dir = tmpdir("an");
        let f = demo_file(&dir);
        let a = run(&args(&["analyze", &f])).unwrap();
        assert!(a.contains("bus utilisation"), "{a}");
        assert!(a.contains("package latency"), "{a}");
        assert!(a.contains("energy"), "{a}");
        let v = run(&args(&["vcd", &f])).unwrap();
        assert!(v.starts_with("$date"), "{v}");
        assert!(v.contains("bus_busy_seg1"), "{v}");
        let g = run(&args(&["gantt", &f, "--width", "40"])).unwrap();
        assert!(g.contains("Segment 1 |"), "{g}");
        assert!(run(&args(&["gantt", &f, "--width", "0"])).is_err());
    }

    #[test]
    fn trace_round_trip_through_sbt() {
        let dir = tmpdir("sbt");
        let f = demo_file(&dir);
        let sbt = dir.join("run.sbt").to_string_lossy().into_owned();
        // Stream a trace to disk while emulating.
        let e = run(&args(&[
            "emulate",
            &f,
            "--trace-out",
            &sbt,
            "--frames",
            "2",
        ]))
        .unwrap();
        assert!(e.contains("events written to"), "{e}");
        // Analyze the file without the model.
        let a = run(&args(&["analyze", &sbt])).unwrap();
        assert!(a.contains("bus utilisation"), "{a}");
        assert!(a.contains("wait time (arbitration to grant)"), "{a}");
        assert!(a.contains("border units"), "{a}");
        assert!(a.contains("bottlenecks"), "{a}");
        assert!(a.contains("package latency"), "{a}");
        // The trace-derived report matches the model-derived one section
        // for section (same events, same analytics).
        let m = run(&args(&["analyze", &f, "--frames", "2"])).unwrap();
        for line in a.lines().skip(1) {
            if !line.is_empty() {
                assert!(m.contains(line), "model analyze lacks {line:?}\n{m}");
            }
        }
        // And the measured traffic drives the placement.
        let p = run(&args(&[
            "place",
            &f,
            "--segments",
            "2",
            "--from-trace",
            &sbt,
        ]))
        .unwrap();
        assert!(p.contains("measured weights from"), "{p}");
        assert!(p.contains("PlaceTool: 2 segments"), "{p}");
        // A missing trace is a typed, propagated error.
        let err = run(&args(&[
            "place",
            &f,
            "--segments",
            "2",
            "--from-trace",
            "/nonexistent.sbt",
        ]))
        .unwrap_err();
        assert!(err.message.contains("T001"), "{}", err.message);
    }

    #[test]
    fn emulate_engine_flag() {
        let dir = tmpdir("eng");
        let f = demo_file(&dir);
        // Bit-identity contract: the default fast core and the explicit
        // interpreter print the very same report.
        let fast = run(&args(&["emulate", &f, "--engine", "fast"])).unwrap();
        let default = run(&args(&["emulate", &f])).unwrap();
        let interp = run(&args(&["emulate", &f, "--engine", "interpreter"])).unwrap();
        assert_eq!(fast, default);
        assert_eq!(fast, interp);
        let err = run(&args(&["emulate", &f, "--engine", "cobol"])).unwrap_err();
        assert!(err.message.contains("unknown engine"), "{}", err.message);
        let err = run(&args(&["emulate", &f, "--engine"])).unwrap_err();
        assert!(err.message.contains("needs a value"), "{}", err.message);
        // The escape hatch rides along on batch too.
        let b = run(&args(&["batch", &f, "--engine", "interpreter"])).unwrap();
        assert!(b.contains("1 model(s), 0 failure(s)"), "{b}");
        assert!(run(&args(&["batch", &f, "--engine", "x"])).is_err());
    }

    #[test]
    fn codegen_formats() {
        let dir = tmpdir("cg");
        let f = demo_file(&dir);
        let vhdl = run(&args(&["codegen", &f])).unwrap();
        assert!(vhdl.contains("entity sa1_scheduler"), "{vhdl}");
        let rust = run(&args(&["codegen", &f, "--format", "rust"])).unwrap();
        assert!(rust.contains("pub const SA_SCHEDULE_1"), "{rust}");
        let c = run(&args(&["codegen", &f, "--format", "c"])).unwrap();
        assert!(c.contains("segbus_sa_job_t"), "{c}");
        assert!(run(&args(&["codegen", &f, "--format", "cobol"])).is_err());
    }

    #[test]
    fn missing_file_reports_path() {
        let err = run(&args(&["validate", "/nonexistent/x.sbd"])).unwrap_err();
        assert!(err.message.contains("/nonexistent/x.sbd"));
    }

    #[test]
    fn validation_errors_list_diagnostics() {
        let dir = tmpdir("bad");
        let path = dir.join("bad.sbd");
        std::fs::write(
            &path,
            r#"application bad {
                 process A initial;
                 process B final;
                 flow A -> B { items 360; order 1; ticks 100; }
               }
               platform p {
                 segment S1 { freq_mhz 91; hosts A; }
               }"#,
        )
        .unwrap();
        let err = run(&args(&["validate", &path.to_string_lossy()])).unwrap_err();
        assert!(err.message.contains("V003"), "{}", err.message);
    }

    #[test]
    fn batch_over_directory_hits_cache_and_matches_emulate() {
        let dir = tmpdir("batch");
        let f = demo_file(&dir);
        // Two byte-identical duplicates plus the original: three jobs,
        // one distinct digest.
        let demo = std::fs::read_to_string(&f).unwrap();
        std::fs::write(dir.join("dup1.sbd"), &demo).unwrap();
        std::fs::write(dir.join("dup2.sbd"), &demo).unwrap();
        std::fs::write(dir.join("not-a-model.txt"), "ignored").unwrap();
        let out = run(&args(&["batch", &dir.to_string_lossy()])).unwrap();

        // Duplicates are answered from the cache…
        let stats = out.lines().last().unwrap();
        assert!(stats.contains("3 model(s), 0 failure(s)"), "{stats}");
        let hits: u64 = stats
            .split("cache: ")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(hits >= 2, "duplicates must hit the cache: {stats}");
        assert_eq!(out.matches("(cached)").count(), 2, "{out}");
        assert_eq!(out.matches("(emulated)").count(), 1, "{out}");

        // …and every report is bit-identical to a lone `segbus emulate`.
        let emulated = run(&args(&["emulate", &f])).unwrap();
        assert_eq!(out.matches(emulated.as_str()).count(), 3, "{out}");
    }

    #[test]
    fn batch_cache_dir_warm_starts_across_runs() {
        let dir = tmpdir("batch-disk");
        let f = demo_file(&dir);
        let cache = dir.join("cache");
        let _ = std::fs::remove_dir_all(&cache);
        let cache = cache.to_string_lossy().to_string();
        let cold = run(&args(&["batch", &f, "--cache-dir", &cache])).unwrap();
        assert_eq!(cold.matches("(emulated)").count(), 1, "{cold}");
        assert!(cold.lines().last().unwrap().contains("1 misses"), "{cold}");
        // A second run — a separate pool, as a fresh process would be —
        // answers entirely from the persistent store: 100% cache hits,
        // zero emulations, and the same bytes in the report.
        let warm = run(&args(&["batch", &f, "--cache-dir", &cache])).unwrap();
        assert_eq!(warm.matches("(cached)").count(), 1, "{warm}");
        let stats = warm.lines().last().unwrap();
        assert!(stats.contains("0 misses"), "{stats}");
        assert!(stats.contains("1 disk hits; 0 emulated"), "{stats}");
        let emulated = run(&args(&["emulate", &f])).unwrap();
        assert!(warm.contains(emulated.as_str()), "{warm}");
    }

    #[test]
    fn batch_reports_per_model_errors_and_keeps_going() {
        let dir = tmpdir("batch-err");
        let f = demo_file(&dir);
        let broken = dir.join("broken.sbd");
        std::fs::write(&broken, "application broken {").unwrap();
        // Parse failures abort with the path, like every other command.
        let err = run(&args(&["batch", &broken.to_string_lossy(), &f])).unwrap_err();
        assert!(err.message.contains("broken.sbd"), "{}", err.message);
        assert!(run(&args(&["batch"])).is_err());
        assert!(run(&args(&["batch", "/nonexistent"])).is_err());
        // Flags thread through to the engine: 0 frames is rejected.
        assert!(run(&args(&["batch", &f, "--frames", "0"])).is_err());
    }

    fn stochastic_demo_file(dir: &Path) -> String {
        let path = dir.join("noisy.sbd");
        std::fs::write(
            &path,
            r#"application noisy {
                 process A initial;
                 process B;
                 process C final;
                 flow A -> B { items 360; order 1; ticks 100;
                               items_dist uniform 300 400;
                               ticks_dist normal 100 15 60 140; }
                 flow B -> C { items 180; order 2; ticks 50;
                               jitter choice 0 3 10 1; }
               }
               platform duo {
                 package_size 36;
                 ca { freq_mhz 111; }
                 segment S1 { freq_mhz 91; hosts A B; }
                 segment S2 { freq_mhz 98; hosts C; }
               }"#,
        )
        .unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn mc_is_thread_count_invariant() {
        let dir = tmpdir("mc");
        let f = stochastic_demo_file(&dir);
        let cmd = |threads: &str| {
            run(&args(&[
                "mc",
                &f,
                "--samples",
                "16",
                "--seed",
                "7",
                "--threads",
                threads,
            ]))
            .unwrap()
        };
        let one = cmd("1");
        assert!(one.contains("16 sample(s), seed 7"), "{one}");
        assert!(one.contains("95% CI"), "{one}");
        assert!(one.contains("segment 1:"), "{one}");
        // The acceptance contract: byte-identical for any --threads.
        assert_eq!(one, cmd("2"));
        assert_eq!(one, cmd("8"));
        // The interpreter escape hatch agrees with the fast core.
        let interp = run(&args(&[
            "mc",
            &f,
            "--samples",
            "16",
            "--seed",
            "7",
            "--engine",
            "interpreter",
        ]))
        .unwrap();
        assert_eq!(one, interp);
    }

    #[test]
    fn mc_warm_cache_dir_emulates_nothing() {
        let dir = tmpdir("mc-disk");
        let f = stochastic_demo_file(&dir);
        let cache = dir.join("cache").to_string_lossy().into_owned();
        let cmd = [
            "mc",
            &f,
            "--samples",
            "12",
            "--seed",
            "3",
            "--cache-dir",
            &cache,
        ];
        let cold = run(&args(&cmd)).unwrap();
        let warm = run(&args(&cmd)).unwrap();
        let stats = warm.lines().last().unwrap();
        assert!(stats.contains("0 misses"), "{warm}");
        assert!(stats.ends_with("0 emulated"), "{warm}");
        // Identical estimate, cold or warm.
        let head = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("cache:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(head(&cold), head(&warm));
    }

    #[test]
    fn mc_flags_and_deterministic_models() {
        let dir = tmpdir("mc-flags");
        let f = demo_file(&dir);
        // A model without distributions collapses to one distinct system.
        let out = run(&args(&["mc", &f, "--samples", "10"])).unwrap();
        assert!(out.contains("1 distinct system(s)"), "{out}");
        assert!(out.contains("no distributions"), "{out}");
        assert!(run(&args(&["mc", &f, "--samples", "0"])).is_err());
        assert!(run(&args(&["mc", &f, "--frames", "0"])).is_err());
        assert!(run(&args(&["mc"])).is_err());
        assert!(run(&args(&["mc", &f, "--engine", "cobol"])).is_err());
    }

    #[test]
    fn corpus_gen_then_check_round_trips() {
        let dir = tmpdir("corpus");
        let tree = dir.join("tree").to_string_lossy().into_owned();
        let out = run(&args(&["corpus", "gen", &tree])).unwrap();
        assert!(out.contains("wrote"), "{out}");
        assert!(Path::new(&tree).join("MANIFEST.txt").exists());
        assert!(Path::new(&tree).join("mp3/mp3-s1.sbd").exists());
        let check = run(&args(&["corpus", "gen", &tree, "--check"])).unwrap();
        assert!(check.contains("match"), "{check}");
        // A drifted file fails the check and is named.
        let victim = Path::new(&tree).join("star/star-s1.sbd");
        std::fs::write(&victim, "application tampered {}\n").unwrap();
        let err = run(&args(&["corpus", "gen", &tree, "--check"])).unwrap_err();
        assert!(err.message.contains("star-s1.sbd"), "{}", err.message);
        run(&args(&["corpus", "gen", &tree])).unwrap(); // regenerate heals
        run(&args(&["corpus", "gen", &tree, "--check"])).unwrap();
        // A stray scenario outside the manifest also fails the check.
        std::fs::write(Path::new(&tree).join("mp3/stray.sbd"), "x").unwrap();
        let err = run(&args(&["corpus", "gen", &tree, "--check"])).unwrap_err();
        assert!(err.message.contains("stray.sbd"), "{}", err.message);
        // --check without a manifest refuses rather than inventing one.
        let empty = dir.join("empty").to_string_lossy().into_owned();
        std::fs::create_dir_all(&empty).unwrap();
        assert!(run(&args(&["corpus", "gen", &empty, "--check"])).is_err());
        assert!(run(&args(&["corpus"])).is_err());
    }

    #[test]
    fn corpus_min_reports_and_removes_duplicates() {
        let dir = tmpdir("corpus-min");
        let tree = dir.join("tree").to_string_lossy().into_owned();
        run(&args(&["corpus", "gen", &tree])).unwrap();
        let clean = run(&args(&["corpus", "min", &tree, "--check"])).unwrap();
        assert!(clean.contains("0 redundant"), "{clean}");
        // Duplicate one scenario under a new name: same fingerprint.
        let src = Path::new(&tree).join("ring/ring-s1.sbd");
        let dup = Path::new(&tree).join("ring/ring-s999.sbd");
        std::fs::copy(&src, &dup).unwrap();
        let report = run(&args(&["corpus", "min", &tree])).unwrap();
        assert!(report.contains("1 redundant"), "{report}");
        assert!(report.contains("ring-s999.sbd duplicates"), "{report}");
        assert!(dup.exists(), "report-only run must not delete");
        let err = run(&args(&["corpus", "min", &tree, "--check"])).unwrap_err();
        assert!(err.message.contains("redundant"), "{}", err.message);
        let fixed = run(&args(&["corpus", "min", &tree, "--write"])).unwrap();
        assert!(fixed.contains("removed 1 file(s)"), "{fixed}");
        assert!(!dup.exists());
        run(&args(&["corpus", "min", &tree, "--check"])).unwrap();
        assert!(run(&args(&[
            "corpus",
            "min",
            &dir.join("nope").to_string_lossy()
        ]))
        .is_err());
    }

    #[test]
    fn serve_rejects_bad_arguments() {
        assert!(run(&args(&["serve", "stray-positional"])).is_err());
        assert!(run(&args(&["serve", "--port", "notaport"])).is_err());
        let err = run(&args(&["serve", "--port", "99999"])).unwrap_err();
        assert!(err.message.contains("99999"), "{}", err.message);
        let err = run(&args(&["serve", "--serve-core", "green-threads"])).unwrap_err();
        assert!(err.message.contains("green-threads"), "{}", err.message);
        assert!(run(&args(&["serve", "--serve-core"])).is_err());
        assert!(run(&args(&["serve", "--max-in-flight", "lots"])).is_err());
    }
}
