//! The `segbus` command-line tool: validate, emulate, transform and place
//! SegBus models from the shell. See `segbus help` or [`segbus::cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match segbus::cli::run(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
