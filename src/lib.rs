//! Facade crate re-exporting the SegBus workspace public API.
#![warn(missing_docs)]
pub use segbus_apps as apps;
pub use segbus_codegen as codegen;
pub use segbus_core as emu;
pub use segbus_dsl as dsl;
pub use segbus_model as model;
pub use segbus_place as place;
pub use segbus_report as report;
pub use segbus_rtl as rtl;
pub use segbus_xml as xml;

pub mod cli;
