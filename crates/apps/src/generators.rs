//! Synthetic PSDF generators.
//!
//! Each generator produces a valid, acyclic application with ordering
//! numbers assigned topologically. The random generator is fully
//! deterministic for a given seed (a hand-rolled xorshift64* stream,
//! [`segbus_model::rng::SmallRng`] — the workspace builds offline and
//! cannot depend on the `rand` crate), so tests and benchmarks are
//! repeatable.

use segbus_model::prelude::*;
use segbus_model::rng::SmallRng;

/// Shared knobs for the deterministic generators.
#[derive(Clone, Copy, Debug)]
pub struct GeneratorConfig {
    /// Data items per flow (use a multiple of the intended package size to
    /// avoid padding warnings).
    pub items_per_flow: u64,
    /// Processing ticks per package at the 36-item reference size.
    pub ticks_per_package: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            items_per_flow: 576,
            ticks_per_package: 250,
        }
    }
}

/// A linear pipeline `P0 → P1 → … → P{n-1}`.
///
/// # Panics
/// Panics if `n < 2`.
pub fn chain(n: usize, cfg: GeneratorConfig) -> Application {
    assert!(n >= 2, "a chain needs at least two processes");
    let mut app = Application::new(format!("chain-{n}"));
    let ids: Vec<ProcessId> = (0..n)
        .map(|i| {
            app.add_process(match i {
                0 => Process::initial(format!("P{i}")),
                i if i == n - 1 => Process::final_(format!("P{i}")),
                _ => Process::new(format!("P{i}")),
            })
        })
        .collect();
    for w in ids.windows(2) {
        app.add_flow(Flow::new(
            w[0],
            w[1],
            cfg.items_per_flow,
            0,
            cfg.ticks_per_package,
        ))
        .expect("chain flows valid");
    }
    app.assign_orders_topologically().expect("chain is acyclic");
    app
}

/// A fork-join diamond: one source fans out to `width` parallel workers
/// which all feed one sink (`width + 2` processes).
///
/// # Panics
/// Panics if `width == 0`.
pub fn diamond(width: usize, cfg: GeneratorConfig) -> Application {
    assert!(width > 0, "diamond width must be positive");
    let mut app = Application::new(format!("diamond-{width}"));
    let src = app.add_process(Process::initial("SRC"));
    let workers: Vec<ProcessId> = (0..width)
        .map(|i| app.add_process(Process::new(format!("W{i}"))))
        .collect();
    let sink = app.add_process(Process::final_("SINK"));
    for &w in &workers {
        app.add_flow(Flow::new(
            src,
            w,
            cfg.items_per_flow,
            0,
            cfg.ticks_per_package,
        ))
        .expect("valid");
        app.add_flow(Flow::new(
            w,
            sink,
            cfg.items_per_flow,
            0,
            cfg.ticks_per_package,
        ))
        .expect("valid");
    }
    app.assign_orders_topologically()
        .expect("diamond is acyclic");
    app
}

/// An FFT-style butterfly with `2^stages_log2` lanes: every stage `k`
/// connects lane `i` to lanes `i` and `i XOR 2^k` of the next stage.
///
/// Produces `(stages_log2 + 1) × 2^stages_log2` processes; lane width is
/// capped to keep the model practical.
///
/// # Panics
/// Panics if `stages_log2` is 0 or greater than 6.
pub fn butterfly(stages_log2: u32, cfg: GeneratorConfig) -> Application {
    assert!((1..=6).contains(&stages_log2), "1 <= stages_log2 <= 6");
    let lanes = 1usize << stages_log2;
    let stages = stages_log2 as usize + 1;
    let mut app = Application::new(format!("butterfly-{lanes}"));
    let mut grid = vec![vec![ProcessId(0); lanes]; stages];
    for (s, row) in grid.iter_mut().enumerate() {
        for (l, slot) in row.iter_mut().enumerate() {
            let name = format!("S{s}L{l}");
            *slot = app.add_process(match s {
                0 => Process::initial(name),
                s if s == stages - 1 => Process::final_(name),
                _ => Process::new(name),
            });
        }
    }
    for s in 0..stages - 1 {
        let stride = 1usize << s;
        for l in 0..lanes {
            let partner = l ^ stride;
            app.add_flow(Flow::new(
                grid[s][l],
                grid[s + 1][l],
                cfg.items_per_flow,
                0,
                cfg.ticks_per_package,
            ))
            .expect("valid");
            app.add_flow(Flow::new(
                grid[s][l],
                grid[s + 1][partner],
                cfg.items_per_flow,
                0,
                cfg.ticks_per_package,
            ))
            .expect("valid");
        }
    }
    app.assign_orders_topologically()
        .expect("butterfly is acyclic");
    app
}

/// A random layered DAG: `layers` layers of `width` processes; every
/// process of layer `k+1` receives between 1 and 3 flows from random
/// processes of layer `k`. Item counts are random multiples of 36 up to
/// `cfg.items_per_flow`, processing costs uniform in
/// `[cfg.ticks_per_package / 2, cfg.ticks_per_package]`.
///
/// Deterministic for a given `seed`.
///
/// # Panics
/// Panics if `layers < 2` or `width == 0`.
pub fn random_layered(layers: usize, width: usize, seed: u64, cfg: GeneratorConfig) -> Application {
    assert!(layers >= 2 && width > 0, "need >= 2 layers and width > 0");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut app = Application::new(format!("rand-{layers}x{width}-s{seed}"));
    let mut grid = vec![vec![ProcessId(0); width]; layers];
    for (l, row) in grid.iter_mut().enumerate() {
        for (w, slot) in row.iter_mut().enumerate() {
            let name = format!("L{l}N{w}");
            *slot = app.add_process(match l {
                0 => Process::initial(name),
                l if l == layers - 1 => Process::final_(name),
                _ => Process::new(name),
            });
        }
    }
    let max_mult = (cfg.items_per_flow / 36).max(1);
    for l in 0..layers - 1 {
        for w in 0..width {
            let fan_in = rng.range_usize(1, 3);
            for _ in 0..fan_in {
                let src = grid[l][rng.range_usize(0, width - 1)];
                let items = 36 * rng.range_u64(1, max_mult);
                let ticks = rng.range_u64(cfg.ticks_per_package / 2, cfg.ticks_per_package.max(1));
                app.add_flow(Flow::new(src, grid[l + 1][w], items, 0, ticks))
                    .expect("valid");
            }
        }
    }
    app.assign_orders_topologically()
        .expect("layered DAG is acyclic");
    app
}

/// A toroidal 2D mesh pipeline of `width × height` processes: process
/// `(r, c)` feeds `(r+1, c)` and — when `width ≥ 2` — its wrap-around
/// neighbour `(r+1, (c+1) mod width)`. Row 0 holds the sources, the last
/// row the sinks, so the app stays a layered DAG while every row couples
/// all columns (no column-parallel decomposition exists, which is what
/// makes it a hard placement instance at 100+ processes).
///
/// # Panics
/// Panics if `width == 0` or `height < 2`.
pub fn grid(width: usize, height: usize, cfg: GeneratorConfig) -> Application {
    assert!(width > 0 && height >= 2, "need width > 0 and height >= 2");
    let mut app = Application::new(format!("grid-{width}x{height}"));
    let mut rows = vec![vec![ProcessId(0); width]; height];
    for (r, row) in rows.iter_mut().enumerate() {
        for (c, slot) in row.iter_mut().enumerate() {
            let name = format!("R{r}C{c}");
            *slot = app.add_process(match r {
                0 => Process::initial(name),
                r if r == height - 1 => Process::final_(name),
                _ => Process::new(name),
            });
        }
    }
    for r in 0..height - 1 {
        for c in 0..width {
            app.add_flow(Flow::new(
                rows[r][c],
                rows[r + 1][c],
                cfg.items_per_flow,
                0,
                cfg.ticks_per_package,
            ))
            .expect("valid");
            if width >= 2 {
                app.add_flow(Flow::new(
                    rows[r][c],
                    rows[r + 1][(c + 1) % width],
                    cfg.items_per_flow,
                    0,
                    cfg.ticks_per_package,
                ))
                .expect("valid");
            }
        }
    }
    app.assign_orders_topologically().expect("grid is acyclic");
    app
}

/// Round-robin allocation of an application's processes over `segments`
/// segments — a deliberately naive placement used as the baseline in the
/// placement experiments.
pub fn round_robin_allocation(app: &Application, segments: usize) -> Allocation {
    let mut alloc = Allocation::new(segments);
    for i in 0..app.process_count() {
        alloc.assign(ProcessId(i as u32), SegmentId((i % segments) as u16));
    }
    alloc
}

/// Contiguous block allocation: the first `ceil(n/segments)` processes on
/// segment 0, and so on. Respects pipeline locality for chain-like apps.
pub fn block_allocation(app: &Application, segments: usize) -> Allocation {
    let n = app.process_count();
    let per = n.div_ceil(segments.max(1));
    let mut alloc = Allocation::new(segments);
    for i in 0..n {
        alloc.assign(
            ProcessId(i as u32),
            SegmentId(((i / per).min(segments - 1)) as u16),
        );
    }
    alloc
}

/// A uniform test platform: `segments` segments at 100 MHz, CA at 111 MHz.
pub fn uniform_platform(segments: usize, package_size: u32) -> Platform {
    Platform::builder(format!("uniform-{segments}"))
        .package_size(package_size)
        .ca_clock(ClockDomain::from_mhz(111.0))
        .uniform_segments(segments, ClockDomain::from_mhz(100.0))
        .build()
        .expect("valid platform")
}

/// Like [`uniform_platform`] but closed into a ring (needs ≥ 3 segments).
pub fn ring_platform(segments: usize, package_size: u32) -> Platform {
    Platform::builder(format!("ring-{segments}"))
        .package_size(package_size)
        .topology(segbus_model::platform::Topology::Ring)
        .ca_clock(ClockDomain::from_mhz(111.0))
        .uniform_segments(segments, ClockDomain::from_mhz(100.0))
        .build()
        .expect("valid ring platform")
}

#[cfg(test)]
mod tests {
    use super::*;
    use segbus_model::validate::{validate, Severity};

    fn assert_valid(app: &Application, segments: usize) {
        let platform = uniform_platform(segments, 36);
        let alloc = block_allocation(app, segments);
        let diags = validate(&platform, app, &alloc);
        let errors: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "unexpected errors: {errors:?}");
    }

    #[test]
    fn chain_shape() {
        let app = chain(5, GeneratorConfig::default());
        assert_eq!(app.process_count(), 5);
        assert_eq!(app.flows().len(), 4);
        assert_eq!(app.sources().len(), 1);
        assert_eq!(app.sinks().len(), 1);
        assert!(app.orders_respect_dependencies());
        assert_valid(&app, 2);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn chain_too_short() {
        let _ = chain(1, GeneratorConfig::default());
    }

    #[test]
    fn diamond_shape() {
        let app = diamond(4, GeneratorConfig::default());
        assert_eq!(app.process_count(), 6);
        assert_eq!(app.flows().len(), 8);
        // Workers all share wave 2; their output flows wave 3... orders are
        // 1 (src fan-out) and 2 (joins).
        let waves = app.waves();
        assert_eq!(waves.len(), 2);
        assert_eq!(waves[0].flows.len(), 4);
        assert_valid(&app, 3);
    }

    #[test]
    fn butterfly_shape() {
        let app = butterfly(2, GeneratorConfig::default());
        // 3 stages × 4 lanes, 2 flows per node per stage.
        assert_eq!(app.process_count(), 12);
        assert_eq!(app.flows().len(), 16);
        assert_eq!(app.sources().len(), 4);
        assert_eq!(app.sinks().len(), 4);
        assert!(app.orders_respect_dependencies());
        assert_valid(&app, 2);
    }

    #[test]
    fn grid_shape() {
        let app = grid(4, 3, GeneratorConfig::default());
        assert_eq!(app.process_count(), 12);
        assert_eq!(app.flows().len(), 16); // 2 flows per node per row step
        assert_eq!(app.sources().len(), 4);
        assert_eq!(app.sinks().len(), 4);
        assert!(app.orders_respect_dependencies());
        assert_valid(&app, 2);
    }

    #[test]
    fn grid_of_width_one_is_a_chain() {
        let app = grid(1, 5, GeneratorConfig::default());
        assert_eq!(app.process_count(), 5);
        assert_eq!(app.flows().len(), 4);
        assert_valid(&app, 2);
    }

    #[test]
    #[should_panic(expected = "height >= 2")]
    fn grid_too_flat() {
        let _ = grid(3, 1, GeneratorConfig::default());
    }

    #[test]
    fn random_layered_is_deterministic() {
        let cfg = GeneratorConfig::default();
        let a = random_layered(4, 3, 42, cfg);
        let b = random_layered(4, 3, 42, cfg);
        assert_eq!(a, b);
        let c = random_layered(4, 3, 43, cfg);
        assert_ne!(a, c, "different seeds should differ");
        assert!(a.orders_respect_dependencies());
        assert_valid(&a, 3);
    }

    #[test]
    fn random_items_are_package_aligned() {
        let app = random_layered(5, 4, 7, GeneratorConfig::default());
        assert!(app.flows().iter().all(|f| f.items % 36 == 0));
    }

    #[test]
    fn allocations_cover_all_processes() {
        let app = diamond(5, GeneratorConfig::default());
        for segs in 1..=3 {
            let rr = round_robin_allocation(&app, segs);
            let bl = block_allocation(&app, segs);
            assert!(rr.is_complete(app.process_count()));
            assert!(bl.is_complete(app.process_count()));
        }
    }

    #[test]
    fn block_allocation_is_contiguous() {
        let app = chain(6, GeneratorConfig::default());
        let alloc = block_allocation(&app, 3);
        assert_eq!(alloc.segment_of(ProcessId(0)), Some(SegmentId(0)));
        assert_eq!(alloc.segment_of(ProcessId(1)), Some(SegmentId(0)));
        assert_eq!(alloc.segment_of(ProcessId(2)), Some(SegmentId(1)));
        assert_eq!(alloc.segment_of(ProcessId(5)), Some(SegmentId(2)));
        // Chain locality: block beats round-robin on the weighted cut.
        let rr = round_robin_allocation(&app, 3);
        assert!(alloc.weighted_cut(&app) < rr.weighted_cut(&app));
    }
}
