//! # segbus-apps
//!
//! Application models for the SegBus platform:
//!
//! * [`mp3`] — the paper's case study: a simplified stereo MP3 decoder
//!   partitioned into 15 processes (paper §4, Figs. 7–9), transcribed
//!   digit-for-digit from the published communication matrix, together with
//!   the three platform configurations and allocations of Fig. 9;
//! * [`generators`] — parameterised synthetic PSDF generators (chains,
//!   fork-join diamonds, butterflies, random layered DAGs) used by the
//!   wider test-suite, the benchmarks and the placement experiments;
//! * [`library`] — curated codec models (baseline-JPEG encoder, GSM
//!   full-rate encoder). The paper's future-work section calls for "more
//!   application models to be tested on the emulator platform"; these and
//!   the generators provide them.

#![warn(missing_docs)]

pub mod generators;
pub mod library;
pub mod mp3;

pub use generators::{butterfly, chain, diamond, random_layered, GeneratorConfig};
pub use library::{gsm_encoder, jpeg_encoder, on_paper_platform, sdr_receiver, video_encoder};
pub use mp3::{mp3_decoder, Mp3Config};
