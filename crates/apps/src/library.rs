//! Curated application models beyond the paper's MP3 case study.
//!
//! The paper's future work calls for "more application models to be tested
//! on the emulator platform" (§5). This module provides four classic
//! streaming workloads — a JPEG encoder, a GSM full-rate speech encoder,
//! an SDR receiver front-end and an H.263-style video encoder — each
//! partitioned at a granularity comparable to the MP3 study, with item
//! counts expressed per coded frame and processing costs in the same
//! affine model the MP3 PSDF uses.

use segbus_model::prelude::*;

/// A baseline-JPEG encoder for one 8-MCU row of a 4:2:0 image.
///
/// ```text
///              ┌─ DCT_Y ── QUANT_Y ──┐
/// RGB2YCC ─────┼─ DCT_CB ─ QUANT_CB ─┼── ZIGZAG ── HUFFMAN ── OUT
///              └─ DCT_CR ─ QUANT_CR ─┘
/// ```
///
/// Luma carries twice the chroma volume (4:2:0 subsampling); the entropy
/// stage compresses ~3:1. All item counts are multiples of 36 so the
/// paper's package size divides them exactly.
pub fn jpeg_encoder() -> Application {
    let mut app =
        Application::new("jpeg-encoder").with_cost_model(CostModel::affine(40, 36).unwrap());
    let rgb2ycc = app.add_process(Process::initial("RGB2YCC"));
    let dct_y = app.add_process(Process::new("DCT_Y"));
    let dct_cb = app.add_process(Process::new("DCT_CB"));
    let dct_cr = app.add_process(Process::new("DCT_CR"));
    let quant_y = app.add_process(Process::new("QUANT_Y"));
    let quant_cb = app.add_process(Process::new("QUANT_CB"));
    let quant_cr = app.add_process(Process::new("QUANT_CR"));
    let zigzag = app.add_process(Process::new("ZIGZAG"));
    let huffman = app.add_process(Process::new("HUFFMAN"));
    let out = app.add_process(Process::final_("OUT"));

    let mut flow = |src, dst, items, order, ticks| {
        app.add_flow(Flow::new(src, dst, items, order, ticks))
            .expect("jpeg flows are valid");
    };
    // Colour conversion fans out per plane (luma 1152, chroma 288 each).
    flow(rgb2ycc, dct_y, 1152, 1, 300);
    flow(rgb2ycc, dct_cb, 288, 1, 300);
    flow(rgb2ycc, dct_cr, 288, 1, 300);
    // DCT keeps the volume.
    flow(dct_y, quant_y, 1152, 2, 420);
    flow(dct_cb, quant_cb, 288, 2, 420);
    flow(dct_cr, quant_cr, 288, 2, 420);
    // Quantisation keeps the coefficient count.
    flow(quant_y, zigzag, 1152, 3, 160);
    flow(quant_cb, zigzag, 288, 3, 160);
    flow(quant_cr, zigzag, 288, 3, 160);
    // Zig-zag + RLE compresses ~2:1 into the entropy coder.
    flow(zigzag, huffman, 864, 4, 200);
    // Huffman output ~3:1 overall.
    flow(huffman, out, 576, 5, 260);
    app
}

/// A GSM full-rate (06.10) speech encoder for one 20 ms frame.
///
/// ```text
/// PREPROC ── LPC ── STF ──┬─ LTP ── RPE ── MUX
///              │          │    ▲
///              └──────────┴────┘ (reflection coefficients / residual)
/// ```
pub fn gsm_encoder() -> Application {
    let mut app =
        Application::new("gsm-encoder").with_cost_model(CostModel::affine(40, 36).unwrap());
    let pre = app.add_process(Process::initial("PREPROC"));
    let lpc = app.add_process(Process::new("LPC"));
    let stf = app.add_process(Process::new("STF"));
    let ltp = app.add_process(Process::new("LTP"));
    let rpe = app.add_process(Process::new("RPE"));
    let mux = app.add_process(Process::final_("MUX"));

    let mut flow = |src, dst, items, order, ticks| {
        app.add_flow(Flow::new(src, dst, items, order, ticks))
            .expect("gsm flows are valid");
    };
    // 160 samples zero-padded to package-aligned 180 items.
    flow(pre, lpc, 180, 1, 220);
    // LPC passes the frame plus 8 reflection coefficients to the
    // short-term filter, and the coefficients sideband to the mux.
    flow(lpc, stf, 216, 2, 480);
    flow(lpc, mux, 36, 2, 480);
    // Short-term residual, split into four 40-sample sub-frames for LTP.
    flow(stf, ltp, 180, 3, 350);
    // LTP lag/gain parameters + residual to RPE.
    flow(ltp, rpe, 180, 4, 310);
    // RPE grid selection: 4 × 13 samples + parameters.
    flow(rpe, mux, 72, 5, 280);
    app
}

/// A digital front-end of a software-defined radio receiver for one
/// burst: wideband input fans into two decimation chains (I/Q), which
/// are filtered, demodulated jointly and decoded.
///
/// ```text
/// ADC ──┬─ DDC_I ── FIR_I ──┐
///       └─ DDC_Q ── FIR_Q ──┴── DEMOD ── FEC ── SINK
/// ```
pub fn sdr_receiver() -> Application {
    let mut app =
        Application::new("sdr-receiver").with_cost_model(CostModel::affine(40, 36).unwrap());
    let adc = app.add_process(Process::initial("ADC"));
    let ddc_i = app.add_process(Process::new("DDC_I"));
    let ddc_q = app.add_process(Process::new("DDC_Q"));
    let fir_i = app.add_process(Process::new("FIR_I"));
    let fir_q = app.add_process(Process::new("FIR_Q"));
    let demod = app.add_process(Process::new("DEMOD"));
    let fec = app.add_process(Process::new("FEC"));
    let sink = app.add_process(Process::final_("SINK"));

    let mut flow = |src, dst, items, order, ticks| {
        app.add_flow(Flow::new(src, dst, items, order, ticks))
            .expect("sdr flows are valid");
    };
    // Wideband burst split into I/Q at full rate.
    flow(adc, ddc_i, 1440, 1, 180);
    flow(adc, ddc_q, 1440, 1, 180);
    // Digital down-conversion decimates 4:1.
    flow(ddc_i, fir_i, 360, 2, 400);
    flow(ddc_q, fir_q, 360, 2, 400);
    // Matched filtering keeps the rate.
    flow(fir_i, demod, 360, 3, 340);
    flow(fir_q, demod, 360, 3, 340);
    // Symbol decisions: 2 samples per symbol in, 1 soft bit out.
    flow(demod, fec, 360, 4, 290);
    // FEC halves the payload (rate-1/2 code, decoded bits out).
    flow(fec, sink, 180, 5, 450);
    app
}

/// An H.263-style intra-frame video encoder for one QCIF macroblock row.
///
/// ```text
/// CAPTURE ── MB_SPLIT ──┬─ DCTQ_0 ──┐
///                       ├─ DCTQ_1 ──┼── SCAN ── VLC ── BITSTREAM
///                       └─ DCTQ_2 ──┘
/// ```
///
/// Three DCT+quantise workers operate on interleaved macroblocks in
/// parallel — the fork-join shape that profits from segmentation.
pub fn video_encoder() -> Application {
    let mut app =
        Application::new("video-encoder").with_cost_model(CostModel::affine(40, 36).unwrap());
    let capture = app.add_process(Process::initial("CAPTURE"));
    let split = app.add_process(Process::new("MB_SPLIT"));
    let workers: Vec<ProcessId> = (0..3)
        .map(|i| app.add_process(Process::new(format!("DCTQ_{i}"))))
        .collect();
    let scan = app.add_process(Process::new("SCAN"));
    let vlc = app.add_process(Process::new("VLC"));
    let out = app.add_process(Process::final_("BITSTREAM"));

    let mut flow = |src, dst, items, order, ticks| {
        app.add_flow(Flow::new(src, dst, items, order, ticks))
            .expect("video flows are valid");
    };
    // One macroblock row of 4:2:0 pixels.
    flow(capture, split, 1584, 1, 200);
    // Interleaved macroblocks to the three workers.
    for &w in &workers {
        flow(split, w, 528, 2, 160);
    }
    // Quantised coefficients, sparser after quantisation.
    for &w in &workers {
        flow(w, scan, 396, 3, 520);
    }
    // Zig-zag + run-length into the entropy coder.
    flow(scan, vlc, 792, 4, 240);
    // Entropy-coded bitstream ~4:1.
    flow(vlc, out, 288, 5, 310);
    app
}

/// Map an application onto `n` paper-style segments (91/98/89 MHz pattern,
/// CA at 111 MHz) with a block allocation — a convenient starting point
/// for the library apps.
pub fn on_paper_platform(app: Application, segments: usize) -> Psm {
    let freqs = [91.0, 98.0, 89.0, 95.0, 101.0, 93.0];
    let mut builder = Platform::builder(format!("{}-{segments}seg", app.name()))
        .package_size(36)
        .ca_clock(ClockDomain::from_mhz(111.0));
    for i in 0..segments {
        builder = builder.segment(
            format!("Segment{}", i + 1),
            ClockDomain::from_mhz(freqs[i % freqs.len()]),
        );
    }
    let platform = builder.build().expect("valid platform");
    let alloc = crate::generators::block_allocation(&app, segments);
    Psm::new(platform, app, alloc).expect("library apps validate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use segbus_model::matrix::CommMatrix;

    #[test]
    fn jpeg_shape() {
        let app = jpeg_encoder();
        assert_eq!(app.process_count(), 10);
        assert_eq!(app.flows().len(), 11);
        assert_eq!(app.sources(), vec![ProcessId(0)]);
        assert_eq!(app.sinks(), vec![ProcessId(9)]);
        assert!(app.orders_respect_dependencies());
        // All item counts package-aligned at s = 36.
        assert!(app.flows().iter().all(|f| f.items % 36 == 0));
    }

    #[test]
    fn jpeg_luma_dominates_chroma() {
        let m = CommMatrix::from_application(&jpeg_encoder());
        let app = jpeg_encoder();
        let y = app.process_by_name("DCT_Y").unwrap();
        let cb = app.process_by_name("DCT_CB").unwrap();
        assert_eq!(
            m.col_sum(y),
            4 * m.col_sum(cb),
            "4:2:0 — luma carries 4× one chroma plane"
        );
    }

    #[test]
    fn gsm_shape() {
        let app = gsm_encoder();
        assert_eq!(app.process_count(), 6);
        assert_eq!(app.flows().len(), 6);
        assert!(app.orders_respect_dependencies());
        // MUX receives from both LPC (sideband) and RPE.
        let mux = app.process_by_name("MUX").unwrap();
        assert_eq!(app.inputs_of(mux).count(), 2);
    }

    #[test]
    fn sdr_shape() {
        let app = sdr_receiver();
        assert_eq!(app.process_count(), 8);
        assert_eq!(app.flows().len(), 8);
        assert!(app.orders_respect_dependencies());
        assert!(app.flows().iter().all(|f| f.items % 36 == 0));
        // I and Q chains are symmetric.
        let m = CommMatrix::from_application(&app);
        let i = app.process_by_name("DDC_I").unwrap();
        let q = app.process_by_name("DDC_Q").unwrap();
        assert_eq!(m.col_sum(i), m.col_sum(q));
        assert_eq!(m.row_sum(i), m.row_sum(q));
    }

    #[test]
    fn video_shape() {
        let app = video_encoder();
        assert_eq!(app.process_count(), 8);
        assert_eq!(app.flows().len(), 9);
        assert!(app.orders_respect_dependencies());
        // The three DCT workers share the load evenly.
        let m = CommMatrix::from_application(&app);
        let w0 = app.process_by_name("DCTQ_0").unwrap();
        let w2 = app.process_by_name("DCTQ_2").unwrap();
        assert_eq!(m.col_sum(w0), m.col_sum(w2));
        // Entropy coding compresses: BITSTREAM receives less than SCAN.
        let scan = app.process_by_name("SCAN").unwrap();
        let out = app.process_by_name("BITSTREAM").unwrap();
        assert!(m.col_sum(out) < m.col_sum(scan));
    }

    #[test]
    fn library_apps_run_on_paper_platforms() {
        for segments in 1..=3 {
            for app in [
                jpeg_encoder(),
                gsm_encoder(),
                sdr_receiver(),
                video_encoder(),
            ] {
                let name = app.name().to_string();
                let psm = on_paper_platform(app, segments);
                assert_eq!(psm.platform().segment_count(), segments, "{name}");
            }
        }
    }
}
