//! The paper's case study: a simplified stereo MP3 decoder on SegBus.
//!
//! The application (paper §4, ref.\[12\]) is partitioned into 15 processes:
//!
//! | process | function |
//! |---|---|
//! | P0 | frame decoding |
//! | P1 / P8 | scaling, left / right channel |
//! | P2 / P9 | dequantising, left / right channel |
//! | P3 | joint stereo processing |
//! | P4 / P10 | channel side-information handling |
//! | P5 / P11 | antialiasing, left / right channel |
//! | P6 / P12 | IMDCT, left / right channel |
//! | P7 / P13 | frequency inversion + synthesis filterbank |
//! | P14 | PCM interleaving / output |
//!
//! The flow item counts reproduce the published communication matrix
//! (Fig. 8) digit-for-digit; the unit test below asserts exact equality.
//! The paper prints only one processing-cost value (`C = 250` for
//! `P0 → P1`, visible in the XML snippet `P1_576_1_250`); we use 250 for
//! every flow and make it configurable through [`Mp3Config`].

use segbus_model::prelude::*;

/// Knobs for building the MP3 model.
#[derive(Clone, Copy, Debug)]
pub struct Mp3Config {
    /// Processing ticks per package (at the 36-item reference size) for
    /// every flow. The paper prints 250 for `P0 → P1`; the others are not
    /// published.
    pub ticks_per_package: u64,
}

impl Default for Mp3Config {
    fn default() -> Self {
        Mp3Config {
            ticks_per_package: 250,
        }
    }
}

/// Build the MP3 decoder PSDF with default configuration.
pub fn mp3_decoder() -> Application {
    mp3_decoder_with(Mp3Config::default())
}

/// Build the MP3 decoder PSDF.
///
/// Flow ordering numbers follow the topological waves of the graph
/// (sources first), which is the unique assignment consistent with the
/// paper's requirement that the ordering implements the application
/// schedule inside the arbiters.
pub fn mp3_decoder_with(cfg: Mp3Config) -> Application {
    let c = cfg.ticks_per_package;
    // Affine cost: ~40 ticks of fixed per-package overhead plus a
    // data-proportional part, specified at the 36-item reference size.
    // This reproduces the paper's ~14 % slowdown at package size 18
    // (pure per-item cost would be repackaging-invariant, pure
    // per-package cost would double — see EXPERIMENTS.md).
    let mut app =
        Application::new("mp3-decoder").with_cost_model(CostModel::affine(40, 36).unwrap());

    // P0..P14, in index order.
    let p: Vec<ProcessId> = (0..15)
        .map(|i| {
            let name = format!("P{i}");
            app.add_process(match i {
                0 => Process::initial(name),
                14 => Process::final_(name),
                _ => Process::new(name),
            })
        })
        .collect();

    // (src, dst, items, order) — items from Fig. 8, order = topological wave.
    let flows: &[(usize, usize, u64, u32)] = &[
        (0, 1, 576, 1),
        (0, 8, 576, 1),
        (1, 2, 540, 2),
        (1, 3, 36, 2),
        (8, 9, 540, 2),
        (8, 3, 36, 2),
        (2, 3, 540, 3),
        (9, 3, 540, 3),
        (3, 4, 36, 4),
        (3, 5, 540, 4),
        (3, 10, 36, 4),
        (3, 11, 540, 4),
        (4, 5, 36, 5),
        (10, 11, 36, 5),
        (5, 6, 576, 6),
        (11, 12, 576, 6),
        (6, 7, 576, 7),
        (12, 13, 576, 7),
        (7, 14, 576, 8),
        (13, 14, 576, 8),
    ];
    for &(s, d, items, order) in flows {
        app.add_flow(Flow::new(p[s], p[d], items, order, c))
            .expect("mp3 flows are valid");
    }
    app
}

/// The paper's one-segment configuration: every process on the single
/// segment (Fig. 9, row 1). The paper does not print this platform's
/// clocks; we use the Segment-1 / CA clocks of the 3-segment experiment.
pub fn one_segment_psm() -> Psm {
    let platform = Platform::builder("SBP-1seg")
        .package_size(36)
        .ca_clock(ClockDomain::from_mhz(111.0))
        .segment("Segment1", ClockDomain::from_mhz(91.0))
        .build()
        .expect("valid platform");
    let alloc = Allocation::from_groups(&[&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14]]);
    Psm::new(platform, mp3_decoder(), alloc).expect("valid PSM")
}

/// The paper's two-segment configuration (Fig. 9, row 2):
/// `4 5 6 7 10 11 12 13 14 ‖ 0 1 2 3 8 9`. Clocks for the two segments are
/// the Segment-1/-2 clocks of the 3-segment experiment.
pub fn two_segment_psm() -> Psm {
    let platform = Platform::builder("SBP-2seg")
        .package_size(36)
        .ca_clock(ClockDomain::from_mhz(111.0))
        .segment("Segment1", ClockDomain::from_mhz(91.0))
        .segment("Segment2", ClockDomain::from_mhz(98.0))
        .build()
        .expect("valid platform");
    let alloc = Allocation::from_groups(&[&[4, 5, 6, 7, 10, 11, 12, 13, 14], &[0, 1, 2, 3, 8, 9]]);
    Psm::new(platform, mp3_decoder(), alloc).expect("valid PSM")
}

/// The paper's three-segment configuration (Fig. 9, row 3):
/// `0 1 2 3 8 9 10 ‖ 5 6 7 11 12 13 14 ‖ 4`, clocks 91/98/89 MHz, CA at
/// 111 MHz, package size 36. This is the configuration whose emulation
/// results the paper prints in full.
pub fn three_segment_psm() -> Psm {
    three_segment_psm_with(Mp3Config::default(), 36)
}

/// [`three_segment_psm`] with configurable cost and package size (the
/// paper's second experiment re-runs the same configuration at `s = 18`).
pub fn three_segment_psm_with(cfg: Mp3Config, package_size: u32) -> Psm {
    let platform = segbus_model::platform::paper_three_segment_platform()
        .with_package_size(package_size)
        .expect("valid package size");
    let alloc = three_segment_allocation();
    Psm::new(platform, mp3_decoder_with(cfg), alloc).expect("valid PSM")
}

/// The Fig. 9 three-segment allocation on its own.
pub fn three_segment_allocation() -> Allocation {
    Allocation::from_groups(&[&[0, 1, 2, 3, 8, 9, 10], &[5, 6, 7, 11, 12, 13, 14], &[4]])
}

/// The paper's third experiment: the 3-segment configuration with process
/// P9 moved from segment 1 to segment 3 (package size 36).
pub fn three_segment_p9_moved_psm() -> Psm {
    three_segment_psm()
        .with_process_moved(ProcessId(9), SegmentId(2))
        .expect("valid PSM")
}

#[cfg(test)]
mod tests {
    use super::*;
    use segbus_model::matrix::CommMatrix;

    /// The communication matrix exactly as printed in the paper's Fig. 8.
    /// Row = source process, column = destination process.
    #[rustfmt::skip]
    const FIG8: [[u64; 15]; 15] = [
        // P0  P1   P2   P3  P4  P5   P6   P7   P8   P9  P10  P11  P12  P13  P14
        [  0, 576,   0,   0,  0,   0,   0,   0, 576,   0,   0,   0,   0,   0,   0], // P0
        [  0,   0, 540,  36,  0,   0,   0,   0,   0,   0,   0,   0,   0,   0,   0], // P1
        [  0,   0,   0, 540,  0,   0,   0,   0,   0,   0,   0,   0,   0,   0,   0], // P2
        [  0,   0,   0,   0, 36, 540,   0,   0,   0,   0,  36, 540,   0,   0,   0], // P3
        [  0,   0,   0,   0,  0,  36,   0,   0,   0,   0,   0,   0,   0,   0,   0], // P4
        [  0,   0,   0,   0,  0,   0, 576,   0,   0,   0,   0,   0,   0,   0,   0], // P5
        [  0,   0,   0,   0,  0,   0,   0, 576,   0,   0,   0,   0,   0,   0,   0], // P6
        [  0,   0,   0,   0,  0,   0,   0,   0,   0,   0,   0,   0,   0,   0, 576], // P7
        [  0,   0,   0,  36,  0,   0,   0,   0,   0, 540,   0,   0,   0,   0,   0], // P8
        [  0,   0,   0, 540,  0,   0,   0,   0,   0,   0,   0,   0,   0,   0,   0], // P9
        [  0,   0,   0,   0,  0,   0,   0,   0,   0,   0,   0,  36,   0,   0,   0], // P10
        [  0,   0,   0,   0,  0,   0,   0,   0,   0,   0,   0,   0, 576,   0,   0], // P11
        [  0,   0,   0,   0,  0,   0,   0,   0,   0,   0,   0,   0,   0, 576,   0], // P12
        [  0,   0,   0,   0,  0,   0,   0,   0,   0,   0,   0,   0,   0,   0, 576], // P13
        [  0,   0,   0,   0,  0,   0,   0,   0,   0,   0,   0,   0,   0,   0,   0], // P14
    ];

    #[test]
    #[allow(clippy::needless_range_loop)] // indices are the process ids
    fn matrix_matches_fig8_exactly() {
        let m = CommMatrix::from_application(&mp3_decoder());
        assert_eq!(m.len(), 15);
        for i in 0..15 {
            for j in 0..15 {
                assert_eq!(
                    m.items(ProcessId(i as u32), ProcessId(j as u32)),
                    FIG8[i][j],
                    "mismatch at (P{i}, P{j})"
                );
            }
        }
    }

    #[test]
    fn transaction_p0_p1_packs_into_16_packages() {
        // Paper §4: "the transaction between P0 and P1 consists of 576 data
        // items, packed into 16 packages".
        let app = mp3_decoder();
        let f = app
            .flows()
            .iter()
            .find(|f| f.src == ProcessId(0) && f.dst == ProcessId(1))
            .unwrap();
        assert_eq!(f.packages(36), 16);
        assert_eq!(f.packages(18), 32);
        assert_eq!(f.ticks, 250); // the printed "P1_576_1_250"
    }

    #[test]
    fn orders_respect_dependencies() {
        assert!(mp3_decoder().orders_respect_dependencies());
        assert_eq!(mp3_decoder().max_order(), 8);
    }

    #[test]
    fn kinds_match_graph_shape() {
        let app = mp3_decoder();
        assert_eq!(app.sources(), vec![ProcessId(0)]);
        assert_eq!(app.sinks(), vec![ProcessId(14)]);
        assert_eq!(app.process(ProcessId(0)).kind, ProcessKind::Initial);
        assert_eq!(app.process(ProcessId(14)).kind, ProcessKind::Final);
    }

    #[test]
    fn three_segment_allocation_matches_fig9() {
        let psm = three_segment_psm();
        let seg = |i: u32| psm.segment_of(ProcessId(i)).0;
        for i in [0, 1, 2, 3, 8, 9, 10] {
            assert_eq!(seg(i), 0, "P{i} on segment 1");
        }
        for i in [5, 6, 7, 11, 12, 13, 14] {
            assert_eq!(seg(i), 1, "P{i} on segment 2");
        }
        assert_eq!(seg(4), 2, "P4 on segment 3");
    }

    #[test]
    fn two_segment_allocation_matches_fig9() {
        let psm = two_segment_psm();
        let seg = |i: u32| psm.segment_of(ProcessId(i)).0;
        for i in [4, 5, 6, 7, 10, 11, 12, 13, 14] {
            assert_eq!(seg(i), 0, "P{i} on segment 1");
        }
        for i in [0, 1, 2, 3, 8, 9] {
            assert_eq!(seg(i), 1, "P{i} on segment 2");
        }
    }

    #[test]
    fn inter_segment_package_counts_match_paper() {
        // Fully determined by Fig. 8 + Fig. 9: 32 packages cross BU12
        // rightwards, 1 crosses BU23 rightwards (P3->P4) and 1 leftwards
        // (P4->P5); segment 2 sends nothing out.
        let psm = three_segment_psm();
        let app = psm.application();
        let mut right_bu12 = 0u64;
        let mut right_bu23 = 0u64;
        let mut left_bu23 = 0u64;
        for f in app.flows() {
            let a = psm.segment_of(f.src).0;
            let b = psm.segment_of(f.dst).0;
            let pkgs = f.packages(36);
            if a < b {
                right_bu12 += if a == 0 { pkgs } else { 0 };
                right_bu23 += if b == 2 { pkgs } else { 0 };
            } else if a > b {
                left_bu23 += if a == 2 { pkgs } else { 0 };
            }
        }
        assert_eq!(right_bu12, 32, "BU12 carries 32 packages (paper §4)");
        assert_eq!(right_bu23, 1, "BU23 carries 1 package rightwards");
        assert_eq!(left_bu23, 1, "BU23 carries 1 package leftwards");
    }

    #[test]
    fn p9_moved_variant() {
        let psm = three_segment_p9_moved_psm();
        assert_eq!(psm.segment_of(ProcessId(9)), SegmentId(2));
        // Everything else unchanged.
        assert_eq!(psm.segment_of(ProcessId(8)), SegmentId(0));
        assert_eq!(psm.segment_of(ProcessId(4)), SegmentId(2));
    }

    #[test]
    fn one_segment_has_no_inter_segment_traffic() {
        let psm = one_segment_psm();
        let app = psm.application();
        assert!(app
            .flows()
            .iter()
            .all(|f| psm.segment_of(f.src) == psm.segment_of(f.dst)));
    }

    #[test]
    fn total_items_and_packages() {
        let app = mp3_decoder();
        // Fig. 8 holds 8 flows of 576, 6 of 540 and 6 of 36 items.
        assert_eq!(app.total_items(), 8 * 576 + 6 * 540 + 6 * 36);
        assert_eq!(app.total_packages(36), 8 * 16 + 6 * 15 + 6);
        assert_eq!(app.total_packages(18), 8 * 32 + 6 * 30 + 6 * 2);
    }
}
