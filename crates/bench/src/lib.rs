//! # segbus-bench
//!
//! Criterion benchmarks for the SegBus workspace. The benches both (a)
//! regenerate the paper's tables/figures under `cargo bench` so every
//! reported number has a harness, and (b) measure the tooling itself
//! (emulation throughput, the sequential-vs-threaded engine comparison of
//! ablation A4, placement solvers, the XML/DSL toolchain).
//!
//! | bench target | contents |
//! |---|---|
//! | `emulation` | estimator runs: MP3 1/2/3-segment configs, package sizes, synthetic apps, parallel sweeps |
//! | `engines` | A4: estimator vs reference simulator vs threaded reference |
//! | `placement` | A1 substrate: greedy / refine / anneal / exhaustive |
//! | `toolchain` | M2T export, XML parse, scheme import, DSL parse/print |
//! | `experiments` | E1–E7 table regeneration end to end |
//!
//! The library itself only hosts shared helpers.

#![warn(missing_docs)]

use segbus_model::mapping::Psm;

/// The PSMs used by several bench targets, built once.
pub fn paper_configs() -> Vec<(&'static str, Psm)> {
    vec![
        ("mp3_1seg", segbus_apps::mp3::one_segment_psm()),
        ("mp3_2seg", segbus_apps::mp3::two_segment_psm()),
        ("mp3_3seg", segbus_apps::mp3::three_segment_psm()),
        (
            "mp3_3seg_s18",
            segbus_apps::mp3::three_segment_psm()
                .with_package_size(18)
                .expect("valid size"),
        ),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn configs_build() {
        assert_eq!(super::paper_configs().len(), 4);
    }
}
