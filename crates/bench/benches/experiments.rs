//! End-to-end regeneration of every paper table/figure under
//! `cargo bench`: each target produces the experiment's rows and prints
//! them once, so a bench run leaves the full paper-vs-measured record in
//! its output (EXPERIMENTS.md is written from exactly these).

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Once;

static PRINT: Once = Once::new();

fn print_all_tables() {
    PRINT.call_once(|| {
        println!("\n=== E1 / Fig. 8 — communication matrix ===");
        print!("{}", segbus_report::fig8_matrix().to_table());
        println!("\n=== E2 — three-segment results (paper style) ===");
        print!("{}", segbus_report::threeseg_report().paper_style());
        println!("\n=== E3 / Fig. 10 — process timeline ===");
        print!("{}", segbus_report::fig10_timeline());
        println!("\n=== E4 / Fig. 11 — element activity, s = 18 vs 36 ===");
        print!("{}", segbus_report::fig11_activity());
        println!("\n=== E5 — estimation accuracy ===");
        print!("{}", segbus_report::accuracy_table());
        println!("\n=== E6 — BU utilisation ===");
        print!("{}", segbus_report::bu_utilisation());
        println!("\n=== E7 — segment-count comparison ===");
        print!("{}", segbus_report::segment_comparison());
        println!("\n=== A1 — placement comparison ===");
        print!("{}", segbus_report::placement_comparison());
        println!("\n=== A2 — package-size sweep ===");
        print!(
            "{}",
            segbus_report::package_size_sweep(&segbus_report::SWEEP_SIZES)
        );
        println!("\n=== A3 — cost-model ablation ===");
        print!("{}", segbus_report::cost_model_ablation());
        println!("\n=== A5 — clock sensitivity ===");
        print!(
            "{}",
            segbus_report::clock_sensitivity(&[0.5, 0.75, 1.0, 1.5, 2.0])
        );
        println!("\n=== A6 — producer release policy ===");
        print!("{}", segbus_report::release_policy_ablation());
        println!("\n=== A7 — application library ===");
        print!("{}", segbus_report::application_library());
        println!("\n=== A8 — energy comparison ===");
        print!("{}", segbus_report::energy_comparison());
        println!("\n=== A9 — topology comparison ===");
        print!("{}", segbus_report::topology_comparison());
        println!("\n=== A11 — arbitration policy ===");
        print!("{}", segbus_report::arbitration_comparison());
        println!("\n=== A12 — streaming throughput ===");
        print!("{}", segbus_report::streaming_throughput());
        println!("\n=== E2 — paper vs measured ===");
        print!("{}", segbus_report::e2_comparison());
        println!();
    });
}

fn bench_experiments(c: &mut Criterion) {
    print_all_tables();
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("e1_fig8_matrix", |b| b.iter(segbus_report::fig8_matrix));
    g.bench_function("e2_threeseg_report", |b| {
        b.iter(segbus_report::threeseg_report)
    });
    g.bench_function("e3_fig10_timeline", |b| {
        b.iter(segbus_report::fig10_timeline)
    });
    g.bench_function("e4_fig11_activity", |b| {
        b.iter(segbus_report::fig11_activity)
    });
    g.bench_function("e5_accuracy_rows", |b| b.iter(segbus_report::accuracy_rows));
    g.bench_function("e6_bu_utilisation", |b| {
        b.iter(segbus_report::bu_utilisation)
    });
    g.bench_function("e7_segment_comparison", |b| {
        b.iter(segbus_report::segment_comparison)
    });
    g.bench_function("a1_placement", |b| {
        b.iter(segbus_report::placement_comparison)
    });
    g.bench_function("a2_sweep", |b| {
        b.iter(|| segbus_report::package_size_sweep(&segbus_report::SWEEP_SIZES))
    });
    g.bench_function("a3_cost_models", |b| {
        b.iter(segbus_report::cost_model_ablation)
    });
    g.bench_function("a5_clocks", |b| {
        b.iter(|| segbus_report::clock_sensitivity(&[0.5, 1.0, 2.0]))
    });
    g.bench_function("a6_release_policy", |b| {
        b.iter(segbus_report::release_policy_ablation)
    });
    g.bench_function("a9_topology", |b| {
        b.iter(segbus_report::topology_comparison)
    });
    g.bench_function("a11_arbitration", |b| {
        b.iter(segbus_report::arbitration_comparison)
    });
    g.bench_function("a12_streaming", |b| {
        b.iter(segbus_report::streaming_throughput)
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_experiments
}
criterion_main!(benches);
