//! Estimator throughput: how fast the emulator itself runs.
//!
//! The paper's motivation for an emulator is fast design-space exploration;
//! these benches quantify how many full-application emulations per second
//! the estimation engine sustains across the paper's configurations,
//! synthetic workloads and a parallel parameter sweep.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use segbus_apps::generators::{self, GeneratorConfig};
use segbus_bench::paper_configs;
use segbus_core::{run_many_with, Emulator, EmulatorConfig};
use segbus_model::mapping::Psm;

fn bench_paper_configs(c: &mut Criterion) {
    let emulator = Emulator::default();
    let mut g = c.benchmark_group("estimator/paper");
    for (name, psm) in paper_configs() {
        g.bench_function(name, |b| b.iter(|| emulator.run(&psm)));
    }
    g.finish();
}

fn bench_synthetic(c: &mut Criterion) {
    let emulator = Emulator::default();
    let cfg = GeneratorConfig::default();
    let cases: Vec<(&str, Psm)> = vec![
        ("chain16_x2", {
            let app = generators::chain(16, cfg);
            let alloc = generators::block_allocation(&app, 2);
            Psm::new(generators::uniform_platform(2, 36), app, alloc).unwrap()
        }),
        ("diamond8_x3", {
            let app = generators::diamond(8, cfg);
            let alloc = generators::block_allocation(&app, 3);
            Psm::new(generators::uniform_platform(3, 36), app, alloc).unwrap()
        }),
        ("butterfly8_x2", {
            let app = generators::butterfly(3, cfg);
            let alloc = generators::round_robin_allocation(&app, 2);
            Psm::new(generators::uniform_platform(2, 36), app, alloc).unwrap()
        }),
        ("rand6x5_x3", {
            let app = generators::random_layered(6, 5, 42, cfg);
            let alloc = generators::block_allocation(&app, 3);
            Psm::new(generators::uniform_platform(3, 36), app, alloc).unwrap()
        }),
    ];
    let mut g = c.benchmark_group("estimator/synthetic");
    for (name, psm) in &cases {
        g.bench_function(*name, |b| b.iter(|| emulator.run(psm)));
    }
    g.finish();
}

fn bench_parallel_sweep(c: &mut Criterion) {
    // A2-style sweep: eight package sizes, sequential vs parallel runner.
    let sizes = [6u32, 9, 12, 18, 36, 72, 144, 288];
    let psms: Vec<Psm> = sizes
        .iter()
        .map(|&s| {
            segbus_apps::mp3::three_segment_psm()
                .with_package_size(s)
                .expect("valid size")
        })
        .collect();
    let mut g = c.benchmark_group("estimator/sweep8");
    g.bench_function("sequential", |b| {
        b.iter_batched(
            || psms.clone(),
            |p| run_many_with(&p, EmulatorConfig::default(), 1),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("parallel4", |b| {
        b.iter_batched(
            || psms.clone(),
            |p| run_many_with(&p, EmulatorConfig::default(), 4),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_streaming(c: &mut Criterion) {
    let emulator = Emulator::default();
    let psm = segbus_apps::mp3::three_segment_psm();
    let mut g = c.benchmark_group("estimator/streaming");
    for frames in [1u64, 4, 16] {
        g.bench_function(format!("mp3_{frames}frames"), |b| {
            b.iter(|| emulator.run_frames(&psm, frames))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_paper_configs, bench_synthetic, bench_parallel_sweep, bench_streaming
}
criterion_main!(benches);
