//! Toolchain benchmarks: the M2T transformation, the XML parser, the
//! emulator-side scheme import and the DSL front-end (paper §3.4–3.5).

use criterion::{criterion_group, criterion_main, Criterion};
use segbus_dsl::{parse_system, printer};
use segbus_xml::{import, m2t, parse};

fn bench_xml(c: &mut Criterion) {
    let psm = segbus_apps::mp3::three_segment_psm();
    let app = psm.application().clone();
    let psdf_text = m2t::export_psdf(&app).to_xml_string();
    let psm_text = m2t::export_psm(&psm).to_xml_string();
    let psdf_doc = parse(&psdf_text).unwrap();
    let psm_doc = parse(&psm_text).unwrap();

    let mut g = c.benchmark_group("toolchain/xml");
    g.bench_function("m2t_export_psdf", |b| b.iter(|| m2t::export_psdf(&app)));
    g.bench_function("m2t_export_psm", |b| b.iter(|| m2t::export_psm(&psm)));
    g.bench_function("parse_psdf_scheme", |b| {
        b.iter(|| parse(&psdf_text).unwrap())
    });
    g.bench_function("import_psdf", |b| {
        b.iter(|| import::import_psdf(&psdf_doc).unwrap())
    });
    g.bench_function("import_full_system", |b| {
        b.iter(|| import::import_system(&psdf_doc, &psm_doc).unwrap())
    });
    g.finish();
}

fn bench_dsl(c: &mut Criterion) {
    let psm = segbus_apps::mp3::three_segment_psm();
    let text = printer::to_dsl(&psm);
    let mut g = c.benchmark_group("toolchain/dsl");
    g.bench_function("print_mp3", |b| b.iter(|| printer::to_dsl(&psm)));
    g.bench_function("parse_mp3", |b| b.iter(|| parse_system(&text).unwrap()));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_xml, bench_dsl
}
criterion_main!(benches);
