//! Content-addressed report cache: `CachedPool` batches versus the raw
//! `SweepPool`, on workloads with and without duplicate jobs.
//!
//! Compiled only with the `criterion` feature (which additionally needs
//! the `criterion` crate restored on a networked machine); the cache's
//! correctness (hits bit-identical, digest sensitivity) is covered by the
//! always-on test suite in `segbus-core::cache`.

use criterion::{criterion_group, criterion_main, Criterion};
use segbus_apps::generators::{self, GeneratorConfig};
use segbus_core::{BatchJob, CachedPool, EmulatorConfig, SweepPool};
use segbus_model::mapping::Psm;
use segbus_model::platform::Platform;
use segbus_model::time::ClockDomain;

/// 16 distinct systems (a package-size × clock grid over one chain app).
fn distinct_psms() -> Vec<Psm> {
    let cfg = GeneratorConfig::default();
    let app = generators::chain(12, cfg);
    let alloc = generators::block_allocation(&app, 4);
    let mut psms = Vec::new();
    for &s in &[9u32, 18, 36, 72] {
        for &f in &[0.75f64, 1.0, 1.25, 1.5] {
            let platform = Platform::builder(format!("cache-{s}-{f}"))
                .package_size(s)
                .ca_clock(ClockDomain::from_mhz(111.0 * f))
                .uniform_segments(4, ClockDomain::from_mhz(100.0 * f))
                .build()
                .unwrap();
            psms.push(Psm::new(platform, app.clone(), alloc.clone()).unwrap());
        }
    }
    psms
}

fn bench_cache(c: &mut Criterion) {
    let config = EmulatorConfig::default();
    let distinct = distinct_psms();
    // A service-shaped batch: every distinct job submitted eight times.
    let batch: Vec<BatchJob> = (0..8)
        .flat_map(|_| {
            distinct
                .iter()
                .map(|p| BatchJob::new(p.clone(), config))
                .collect::<Vec<_>>()
        })
        .collect();
    let raw: Vec<Psm> = (0..8).flat_map(|_| distinct.iter().cloned()).collect();

    let mut g = c.benchmark_group("cache/16x8");
    g.sample_size(20);
    g.bench_function("sweep_pool_uncached", |b| {
        let pool = SweepPool::new(config);
        b.iter(|| pool.sweep(&raw))
    });
    g.bench_function("cached_pool_cold", |b| {
        // A fresh cache per iteration: in-batch dedupe still collapses
        // the eight copies of each job onto one emulation.
        b.iter(|| CachedPool::new(config, 64).run_batch(&batch))
    });
    g.bench_function("cached_pool_warm", |b| {
        let mut pool = CachedPool::new(config, 64);
        let _ = pool.run_batch(&batch); // warm the cache
        b.iter(|| pool.run_batch(&batch))
    });
    g.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
