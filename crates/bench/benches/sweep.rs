//! Batched sweep throughput: `SweepPool` versus a sequential map, and
//! engine-with-scratch-reuse versus a fresh emulator per run.
//!
//! Compiled only with the `criterion` feature (which additionally needs
//! the `criterion` crate restored on a networked machine); the offline
//! perf harness `segbus-report/exp_perf` covers the same scenarios with a
//! plain `std::time` timer.

use criterion::{criterion_group, criterion_main, Criterion};
use segbus_apps::generators::{self, GeneratorConfig};
use segbus_core::{Emulator, EmulatorConfig, Engine, QueueKind, SweepPool};
use segbus_model::mapping::Psm;
use segbus_model::platform::Platform;
use segbus_model::time::ClockDomain;

/// The package-size × clock-factor grid exp_perf times (256 runs).
fn sweep_jobs() -> Vec<Psm> {
    let cfg = GeneratorConfig::default();
    let app = generators::chain(12, cfg);
    let alloc = generators::block_allocation(&app, 4);
    let sizes = [6u32, 9, 12, 18, 24, 36, 72, 144];
    let factors = [0.5f64, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0];
    let mut jobs = Vec::new();
    for &s in &sizes {
        for &f in &factors {
            for rep in 0..4 {
                let platform = Platform::builder(format!("sweep-{s}-{f}-{rep}"))
                    .package_size(s)
                    .ca_clock(ClockDomain::from_mhz(111.0 * f))
                    .uniform_segments(4, ClockDomain::from_mhz(100.0 * f))
                    .build()
                    .unwrap();
                jobs.push(Psm::new(platform, app.clone(), alloc.clone()).unwrap());
            }
        }
    }
    jobs
}

fn bench_sweep(c: &mut Criterion) {
    let jobs = sweep_jobs();
    let mut g = c.benchmark_group("sweep/256");
    g.sample_size(10);
    g.bench_function("fresh_emulator_seq", |b| {
        let emulator = Emulator::default();
        b.iter(|| {
            jobs.iter()
                .map(|p| emulator.run(p).makespan)
                .collect::<Vec<_>>()
        })
    });
    g.bench_function("engine_reuse_seq", |b| {
        let mut engine = Engine::new(EmulatorConfig::default());
        b.iter(|| {
            jobs.iter()
                .map(|p| engine.run(p).makespan)
                .collect::<Vec<_>>()
        })
    });
    g.bench_function("engine_reuse_heap_queue", |b| {
        let cfg = EmulatorConfig {
            queue: QueueKind::BinaryHeap,
            ..EmulatorConfig::default()
        };
        let mut engine = Engine::new(cfg);
        b.iter(|| {
            jobs.iter()
                .map(|p| engine.run(p).makespan)
                .collect::<Vec<_>>()
        })
    });
    g.bench_function("sweep_pool", |b| {
        let pool = SweepPool::new(EmulatorConfig::default());
        b.iter(|| pool.sweep(&jobs))
    });
    g.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
