//! Ablation A4 — engine comparison.
//!
//! Three ways to execute the same PSM:
//!
//! * the event-driven estimator (`segbus-core`),
//! * the tick-stepped reference simulator (`segbus-rtl`, sequential),
//! * the thread-per-clock-domain reference driver (the paper's Java
//!   architecture transplanted to Rust).
//!
//! The expected result — and the honest finding about the paper's
//! implementation strategy — is that the event-driven estimator is orders
//! of magnitude faster than tick-stepping, and that thread-per-component
//! with a barrier per clock edge is *slower* than the sequential loop.

use criterion::{criterion_group, criterion_main, Criterion};
use segbus_core::Emulator;
use segbus_rtl::{RtlSimulator, ThreadedRtlSimulator};

fn bench_engines(c: &mut Criterion) {
    let psm = segbus_apps::mp3::three_segment_psm();
    let mut g = c.benchmark_group("engines/mp3_3seg");
    g.sample_size(10);
    g.bench_function("estimator_event_driven", |b| {
        let e = Emulator::default();
        b.iter(|| e.run(&psm))
    });
    g.bench_function("reference_tick_stepped", |b| {
        let s = RtlSimulator::default();
        b.iter(|| s.run(&psm).expect("completes"))
    });
    g.bench_function("reference_thread_per_domain", |b| {
        let s = ThreadedRtlSimulator::default();
        b.iter(|| s.run(&psm).expect("completes"))
    });
    g.finish();

    let mut g = c.benchmark_group("engines/mp3_3seg_4frames");
    g.sample_size(10);
    g.bench_function("estimator_streaming", |b| {
        let e = Emulator::default();
        b.iter(|| e.run_frames(&psm, 4))
    });
    g.bench_function("reference_streaming", |b| {
        let s = RtlSimulator::default();
        b.iter(|| s.run_frames(&psm, 4).expect("completes"))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_engines
}
criterion_main!(benches);
