//! PlaceTool solver benchmarks (substrate of ablation A1).

use criterion::{criterion_group, criterion_main, Criterion};
use segbus_apps::generators::{random_layered, GeneratorConfig};
use segbus_place::{kernighan_lin, Objective, PlaceTool};

fn bench_mp3(c: &mut Criterion) {
    let app = segbus_apps::mp3::mp3_decoder();
    let mut g = c.benchmark_group("placement/mp3_3seg");
    let tool = PlaceTool::new(&app, 3);
    g.bench_function("greedy", |b| b.iter(|| tool.greedy()));
    g.bench_function("greedy_refined", |b| {
        b.iter(|| tool.refine(tool.greedy().allocation))
    });
    g.bench_function("anneal_2k", |b| b.iter(|| tool.anneal(42, 2000)));
    g.bench_function("kernighan_lin_2seg", |b| {
        b.iter(|| kernighan_lin(&app, Objective::Items, 8))
    });
    g.sample_size(10);
    g.bench_function("exhaustive_3pow15", |b| {
        b.iter(|| tool.exhaustive().expect("within cap"))
    });
    g.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let cfg = GeneratorConfig::default();
    let mut g = c.benchmark_group("placement/random_layered");
    for (layers, width) in [(4usize, 4usize), (6, 6), (8, 8)] {
        let app = random_layered(layers, width, 7, cfg);
        let n = app.process_count();
        let tool = PlaceTool::new(&app, 4);
        g.bench_function(format!("greedy_n{n}"), |b| b.iter(|| tool.greedy()));
        g.bench_function(format!("anneal1k_n{n}"), |b| {
            b.iter(|| tool.anneal(7, 1000))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mp3, bench_scaling
}
criterion_main!(benches);
