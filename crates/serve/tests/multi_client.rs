//! Multi-client smoke test over localhost: several clients connect
//! concurrently, submit overlapping jobs, and every one gets a correct,
//! correlated answer; duplicates show up as cache hits in the stats.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use segbus_serve::json::{self, Json};
use segbus_serve::{ServeOptions, Server};

const DEMO: &str = "application a {\n  process X initial;\n  process Y final;\n  flow X -> Y { items 72; order 1; ticks 100; }\n}\nplatform p {\n  segment S0 { freq_mhz 100; hosts X; }\n  segment S1 { freq_mhz 100; hosts Y; }\n}\n";

fn emulate_line(id: u64, extra: &str) -> String {
    let mut src = String::new();
    json::write_str(&mut src, DEMO);
    format!("{{\"id\": {id}, \"cmd\": \"emulate\", \"source\": {src}{extra}}}\n")
}

fn request(stream: &mut TcpStream, line: &str) -> Json {
    stream.write_all(line.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    json::parse(response.trim()).unwrap()
}

#[test]
fn concurrent_clients_share_the_cache() {
    let mut server = Server::start(ServeOptions {
        port: 0, // ephemeral
        threads: 2,
        cache_capacity: 64,
        ..ServeOptions::default()
    })
    .unwrap();
    let addr = server.addr();

    // Warm the cache from one client, so later duplicates must hit.
    let mut warm = TcpStream::connect(addr).unwrap();
    let v = request(&mut warm, &emulate_line(1, ""));
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(v.get("cached").and_then(Json::as_bool), Some(false));
    let makespan = v.get("makespan_ps").and_then(Json::as_u64).unwrap();
    assert!(makespan > 0);

    // Eight clients in parallel: all duplicates of the warm job plus one
    // distinct variant each (a different package size per client id).
    let handles: Vec<_> = (0..8u64)
        .map(|client| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                let dup = request(&mut stream, &emulate_line(100 + client, ""));
                assert_eq!(
                    dup.get("id").and_then(Json::as_u64),
                    Some(100 + client),
                    "responses stay correlated"
                );
                assert_eq!(dup.get("ok").and_then(Json::as_bool), Some(true));
                let dup_makespan = dup.get("makespan_ps").and_then(Json::as_u64).unwrap();
                let distinct = request(&mut stream, &emulate_line(200 + client, ", \"frames\": 2"));
                assert_eq!(distinct.get("ok").and_then(Json::as_bool), Some(true));
                let framed = distinct.get("makespan_ps").and_then(Json::as_u64).unwrap();
                assert!(framed > dup_makespan, "two frames take longer than one");
                dup_makespan
            })
        })
        .collect();
    let makespans: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(makespans.iter().all(|&m| m == makespan));

    // Stats: 17 jobs total; the 8 duplicates of the warm job hit, and the
    // 8 frames-2 jobs collapse onto at most... each is identical to the
    // others, so at least 7 of them are also answered without emulation.
    let mut stats_client = TcpStream::connect(addr).unwrap();
    let v = request(&mut stats_client, "{\"id\": 9, \"cmd\": \"stats\"}\n");
    let hits = v.get("hits").and_then(Json::as_u64).unwrap();
    let misses = v.get("misses").and_then(Json::as_u64).unwrap();
    let jobs = v.get("jobs").and_then(Json::as_u64).unwrap();
    assert_eq!(jobs, 17);
    assert_eq!(
        misses, 2,
        "one distinct single-frame + one distinct framed job"
    );
    assert_eq!(hits, 15);

    // Typed errors pass through with their codes.
    let v = request(
        &mut stats_client,
        "{\"id\": 10, \"cmd\": \"emulate\", \"source\": \"application broken {\"}\n",
    );
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
    assert!(v.get("code").and_then(Json::as_str).is_some());

    server.shutdown();
}

#[test]
fn shutdown_command_stops_the_server() {
    let server = Server::start(ServeOptions {
        port: 0,
        threads: 1,
        cache_capacity: 4,
        ..ServeOptions::default()
    })
    .unwrap();
    let addr = server.addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    let v = request(&mut stream, "{\"id\": 1, \"cmd\": \"shutdown\"}\n");
    assert_eq!(v.get("shutting_down").and_then(Json::as_bool), Some(true));
    // join() returns because the accept loop exits.
    server.join();
}
