//! Adversarial-client and fault-injection hardening tests, run against
//! **both** serve cores wherever the behaviour is part of the shared
//! contract: slow-loris writers, mid-batch disconnects, shutdown under
//! load, worker-panic containment, and the event core's global
//! in-flight cap (`S005` shed with a surviving connection).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::time::Duration;

use segbus_serve::json::{self, Json};
use segbus_serve::{ServeCore, ServeOptions, Server};

const DEMO: &str = "application a {\n  process X initial;\n  process Y final;\n  flow X -> Y { items 72; order 1; ticks 100; }\n}\nplatform p {\n  segment S0 { freq_mhz 100; hosts X; }\n  segment S1 { freq_mhz 100; hosts Y; }\n}\n";

const BOTH_CORES: [ServeCore; 2] = [ServeCore::EventLoop, ServeCore::Threads];

fn emulate_line(id: u64, frames: u64) -> String {
    let mut src = String::new();
    json::write_str(&mut src, DEMO);
    format!("{{\"id\": {id}, \"cmd\": \"emulate\", \"source\": {src}, \"frames\": {frames}}}")
}

fn start(core: ServeCore, tweak: impl FnOnce(&mut ServeOptions)) -> Server {
    let mut opts = ServeOptions {
        port: 0,
        threads: 2,
        cache_capacity: 256,
        window: 8,
        core,
        ..ServeOptions::default()
    };
    tweak(&mut opts);
    Server::start(opts).unwrap()
}

fn request(stream: &mut TcpStream, line: &str) -> Json {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    read_response(stream)
}

fn read_response(stream: &mut TcpStream) -> Json {
    let mut r = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    r.read_line(&mut line).unwrap();
    assert!(
        !line.is_empty(),
        "server closed the connection unexpectedly"
    );
    json::parse(&line).unwrap()
}

fn is_ok(v: &Json) -> bool {
    v.get("ok").and_then(Json::as_bool) == Some(true)
}

fn code(v: &Json) -> Option<&str> {
    v.get("code").and_then(Json::as_str)
}

/// A client trickling one request a few bytes at a time must not stall
/// the server: a concurrent fast client on the same server completes
/// several round trips while the loris is still mid-line, and the loris
/// still gets its (correct) answer at the end.
#[test]
fn slow_loris_does_not_starve_other_clients() {
    for core in BOTH_CORES {
        let mut server = start(core, |_| {});
        let addr = server.addr();

        let loris = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let mut line = emulate_line(1, 11);
            line.push('\n');
            for chunk in line.as_bytes().chunks(7) {
                stream.write_all(chunk).unwrap();
                stream.flush().unwrap();
                std::thread::sleep(Duration::from_millis(2));
            }
            read_response(&mut stream)
        });

        // While the loris trickles (~100 chunks x 2ms), a fast client
        // gets served repeatedly.
        let mut fast = TcpStream::connect(addr).unwrap();
        for (i, frames) in [(0u64, 21u64), (1, 22), (2, 23)] {
            let v = request(&mut fast, &emulate_line(100 + i, frames));
            assert!(is_ok(&v), "core {core:?}: fast client starved: {v:?}");
        }

        let v = loris.join().unwrap();
        assert!(is_ok(&v), "core {core:?}: loris answer wrong: {v:?}");
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(1));
        server.shutdown();
    }
}

/// A client that pipelines a batch and vanishes without reading must not
/// wedge the server: jobs already admitted run to completion against a
/// dead socket, and fresh clients are served normally afterwards.
#[test]
fn client_disconnect_mid_batch_leaves_server_healthy() {
    for core in BOTH_CORES {
        let mut server = start(core, |_| {});
        let addr = server.addr();
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            for k in 0..6u64 {
                stream
                    .write_all(emulate_line(k, 30 + k).as_bytes())
                    .unwrap();
                stream.write_all(b"\n").unwrap();
            }
            stream.flush().unwrap();
            // Dropped here: reset mid-batch, nothing ever read.
        }
        let mut stream = TcpStream::connect(addr).unwrap();
        let v = request(&mut stream, &emulate_line(7, 50));
        assert!(is_ok(&v), "core {core:?}: server wedged after reset: {v:?}");
        let v = request(&mut stream, "{\"id\": 8, \"cmd\": \"stats\"}");
        assert!(is_ok(&v), "core {core:?}: stats failed after reset: {v:?}");
        server.shutdown();
    }
}

/// `Server::shutdown` while requests are in flight. The contract: every
/// request *admitted* before the shutdown flag is observed is still
/// answered (responses in flight drain), later lines may be dropped, and
/// every client then sees clean EOF — never a hang, a reset, or a torn
/// response. Each client signals after its first response, so the plug
/// is pulled while its remaining requests are typically mid-flight.
#[test]
fn shutdown_under_load_drains_in_flight_responses() {
    const CLIENTS: u64 = 6;
    const PER_CLIENT: u64 = 4;
    for core in BOTH_CORES {
        let mut server = start(core, |_| {});
        let addr = server.addr();
        let (tx, rx) = mpsc::channel::<()>();
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    for k in 0..PER_CLIENT {
                        let frames = 100 + client * PER_CLIENT + k;
                        stream
                            .write_all(emulate_line(client * 100 + k, frames).as_bytes())
                            .unwrap();
                        stream.write_all(b"\n").unwrap();
                    }
                    stream.flush().unwrap();
                    let mut r = BufReader::new(stream);
                    let mut first = String::new();
                    r.read_line(&mut first).unwrap();
                    tx.send(()).unwrap();
                    let mut lines = vec![first];
                    // Runs until EOF: a hung drain would hang the test.
                    lines.extend(r.lines().map(|l| l.unwrap()));
                    lines
                })
            })
            .collect();
        drop(tx);
        for _ in 0..CLIENTS {
            rx.recv().unwrap();
        }
        server.shutdown();
        for (client, h) in handles.into_iter().enumerate() {
            let lines = h.join().unwrap();
            assert!(
                !lines.is_empty() && lines.len() <= PER_CLIENT as usize,
                "core {core:?}: client {client} got {} responses",
                lines.len()
            );
            for line in &lines {
                let v = json::parse(line).expect("torn response line");
                assert!(is_ok(&v), "core {core:?}: drained response not ok: {v:?}");
            }
        }
    }
}

/// A worker panic (injected via the `fault_frames` hook) must be
/// contained to its batch: the poisoned batch is shed with `S005`, and
/// both the connection and the batcher keep answering afterwards —
/// the regression for the old poison-cascade failure where one panic
/// under the window mutex killed the whole server.
#[test]
fn worker_panic_sheds_batch_and_server_keeps_answering() {
    for core in BOTH_CORES {
        let mut server = start(core, |o| o.fault_frames = Some(4095));
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).unwrap();

        let v = request(&mut stream, &emulate_line(1, 4095));
        assert_eq!(code(&v), Some("S005"), "core {core:?}: {v:?}");
        assert!(!is_ok(&v));

        // Same connection, next request: served normally.
        let v = request(&mut stream, &emulate_line(2, 17));
        assert!(
            is_ok(&v),
            "core {core:?}: connection died after fault: {v:?}"
        );

        // Fresh connection: the batcher itself survived.
        let mut fresh = TcpStream::connect(addr).unwrap();
        let v = request(&mut fresh, &emulate_line(3, 18));
        assert!(is_ok(&v), "core {core:?}: batcher died after fault: {v:?}");
        server.shutdown();
    }
}

/// Event core admission control: with `max_in_flight: 1`, pipelining a
/// heavy job plus seven light ones sheds the surplus with `S005` while
/// the heavy job and the connection itself survive; the shed counter
/// shows up in `stats`.
#[test]
fn global_cap_sheds_with_s005_and_connection_survives() {
    let mut server = start(ServeCore::EventLoop, |o| o.max_in_flight = 1);
    let addr = server.addr();
    let mut stream = TcpStream::connect(addr).unwrap();

    let mut burst = String::new();
    burst.push_str(&emulate_line(0, 2048)); // heavy: holds the one slot
    burst.push('\n');
    for k in 1..8u64 {
        burst.push_str(&emulate_line(k, k));
        burst.push('\n');
    }
    stream.write_all(burst.as_bytes()).unwrap();
    stream.flush().unwrap();

    let mut r = BufReader::new(stream.try_clone().unwrap());
    let mut shed = 0;
    let mut served = 0;
    for _ in 0..8 {
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert!(!line.is_empty(), "connection closed during the burst");
        let v = json::parse(&line).unwrap();
        if is_ok(&v) {
            served += 1;
        } else {
            assert_eq!(code(&v), Some("S005"), "unexpected error: {v:?}");
            shed += 1;
        }
    }
    assert!(served >= 1, "the in-flight slot holder must be served");
    assert!(shed >= 1, "the cap must shed at least one request");

    // The connection survived the sheds: stats still answers on it, and
    // accounts for them.
    let v = request(&mut stream, "{\"id\": 9, \"cmd\": \"stats\"}");
    assert!(is_ok(&v), "connection did not survive the shed: {v:?}");
    assert!(v.get("sheds").and_then(Json::as_u64).unwrap_or(0) >= shed);
    assert_eq!(v.get("max_in_flight").and_then(Json::as_u64), Some(1));
    server.shutdown();
}

/// Oversized lines while the decoder is mid-request must not corrupt
/// framing: after an `S003` shed the next well-formed line is answered
/// normally on the same connection (both cores share `LineDecoder`).
#[test]
fn oversize_line_resyncs_on_both_cores() {
    for core in BOTH_CORES {
        let mut server = start(core, |o| o.max_line_bytes = 512);
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut junk = "y".repeat(4096);
        junk.push('\n');
        stream.write_all(junk.as_bytes()).unwrap();
        let v = read_response(&mut stream);
        assert_eq!(code(&v), Some("S003"), "core {core:?}: {v:?}");
        let v = request(&mut stream, "{\"id\": 5, \"cmd\": \"stats\"}");
        assert!(is_ok(&v), "core {core:?}: decoder lost sync: {v:?}");
        server.shutdown();
    }
}
