//! Windowed-pipelining and persistent-cache tests over localhost.
//!
//! These drive one or more connections with N > 1 requests in flight
//! (writing every request before reading any response), covering the
//! pipelining window, both response-ordering modes, the protocol
//! hardening (`S003` oversize lines, `S004` frames bounds) and the
//! disk-backed warm start across a server restart.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use segbus_serve::json::{self, Json};
use segbus_serve::{ServeOptions, Server};

const DEMO: &str = "application a {\n  process X initial;\n  process Y final;\n  flow X -> Y { items 72; order 1; ticks 100; }\n}\nplatform p {\n  segment S0 { freq_mhz 100; hosts X; }\n  segment S1 { freq_mhz 100; hosts Y; }\n}\n";

fn emulate_line(id: u64, extra: &str) -> String {
    let mut src = String::new();
    json::write_str(&mut src, DEMO);
    format!("{{\"id\": {id}, \"cmd\": \"emulate\", \"source\": {src}{extra}}}\n")
}

/// Write every line up front (pipelined), then read `n` response lines.
fn pipeline(stream: &mut TcpStream, lines: &[String], n: usize) -> Vec<Json> {
    for line in lines {
        stream.write_all(line.as_bytes()).unwrap();
    }
    stream.flush().unwrap();
    read_responses(stream, n)
}

fn read_responses(stream: &mut TcpStream, n: usize) -> Vec<Json> {
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    (0..n)
        .map(|_| {
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            json::parse(response.trim()).unwrap()
        })
        .collect()
}

fn id_of(v: &Json) -> u64 {
    v.get("id").and_then(Json::as_u64).unwrap()
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("segbus-pipe-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn window_of_8_pipelines_and_coalesces_on_one_connection() {
    let mut server = Server::start(ServeOptions {
        port: 0,
        threads: 2,
        cache_capacity: 64,
        window: 8,
        ..ServeOptions::default()
    })
    .unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();

    // 32 distinct jobs, all written before any response is read: the
    // handler keeps up to 8 in flight, so jobs queue behind the running
    // batch and coalesce.
    let lines: Vec<String> = (0..32u64)
        .map(|i| emulate_line(i, &format!(", \"frames\": {}", 10 + i)))
        .collect();
    let responses = pipeline(&mut stream, &lines, 32);

    let mut ids: Vec<u64> = responses
        .iter()
        .map(|v| {
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
            id_of(v)
        })
        .collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..32).collect::<Vec<_>>(), "every id answered once");

    let stats = pipeline(&mut stream, &["{\"cmd\": \"stats\"}\n".into()], 1).remove(0);
    let jobs = stats.get("jobs").and_then(Json::as_u64).unwrap();
    let batches = stats.get("batches").and_then(Json::as_u64).unwrap();
    assert_eq!(jobs, 32);
    assert!(
        batches < jobs,
        "pipelined jobs coalesce into shared batches ({batches} batches for {jobs} jobs)"
    );
    server.shutdown();
}

#[test]
fn in_order_handshake_restores_request_order() {
    let mut server = Server::start(ServeOptions {
        port: 0,
        threads: 2,
        cache_capacity: 64,
        window: 8,
        ..ServeOptions::default()
    })
    .unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();

    // First request is the heaviest by far; without in_order its response
    // would usually finish (and be written) after the light ones.
    let mut lines = vec!["{\"id\": 7, \"cmd\": \"hello\", \"in_order\": true}\n".to_string()];
    lines.push(emulate_line(0, ", \"frames\": 400"));
    for i in 1..6u64 {
        lines.push(emulate_line(i, ""));
    }
    let responses = pipeline(&mut stream, &lines, 7);

    let hello = &responses[0];
    assert_eq!(id_of(hello), 7);
    assert_eq!(hello.get("in_order").and_then(Json::as_bool), Some(true));
    assert_eq!(hello.get("window").and_then(Json::as_u64), Some(8));
    let ids: Vec<u64> = responses[1..].iter().map(id_of).collect();
    assert_eq!(ids, vec![0, 1, 2, 3, 4, 5], "responses in request order");

    // The handshake is first-request-only: a second hello with in_order
    // on a used connection is a shape error.
    let v = pipeline(
        &mut stream,
        &["{\"id\": 8, \"cmd\": \"hello\", \"in_order\": true}\n".into()],
        1,
    )
    .remove(0);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(v.get("code").and_then(Json::as_str), Some("S002"));
    server.shutdown();
}

#[test]
fn oversize_lines_are_rejected_and_the_connection_survives() {
    let mut server = Server::start(ServeOptions {
        port: 0,
        threads: 1,
        cache_capacity: 4,
        max_line_bytes: 1024,
        ..ServeOptions::default()
    })
    .unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();

    // A 64 KiB line: far over the cap, discarded as it streams in.
    let mut huge = vec![b'x'; 64 * 1024];
    huge.push(b'\n');
    stream.write_all(&huge).unwrap();
    // A valid request directly behind it must still be served.
    let lines = [emulate_line(3, "")];
    let responses = {
        stream.write_all(lines[0].as_bytes()).unwrap();
        stream.flush().unwrap();
        read_responses(&mut stream, 2)
    };
    assert_eq!(responses[0].get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        responses[0].get("code").and_then(Json::as_str),
        Some("S003")
    );
    assert_eq!(responses[1].get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(id_of(&responses[1]), 3);
    server.shutdown();
}

#[test]
fn frames_bounds_are_enforced() {
    let mut server = Server::start(ServeOptions {
        port: 0,
        threads: 1,
        cache_capacity: 4,
        max_frames: 16,
        ..ServeOptions::default()
    })
    .unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let lines = [
        emulate_line(1, ", \"frames\": 0"),
        emulate_line(2, ", \"frames\": 17"),
        emulate_line(3, ", \"frames\": 16"),
    ];
    let responses = pipeline(&mut stream, &lines, 3);
    let by_id = |want: u64| responses.iter().find(|v| id_of(v) == want).unwrap();
    assert_eq!(by_id(1).get("code").and_then(Json::as_str), Some("S004"));
    assert_eq!(by_id(2).get("code").and_then(Json::as_str), Some("S004"));
    assert_eq!(by_id(3).get("ok").and_then(Json::as_bool), Some(true));
    server.shutdown();
}

#[test]
fn shutdown_drains_in_flight_responses() {
    let server = Server::start(ServeOptions {
        port: 0,
        threads: 2,
        cache_capacity: 16,
        window: 8,
        ..ServeOptions::default()
    })
    .unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // Six jobs and a shutdown, all written before reading: every job
    // response and the acknowledgement must all arrive.
    let mut lines: Vec<String> = (1..=6u64)
        .map(|i| emulate_line(i, &format!(", \"frames\": {i}")))
        .collect();
    lines.push("{\"id\": 99, \"cmd\": \"shutdown\"}\n".into());
    let responses = pipeline(&mut stream, &lines, 7);
    let mut ids: Vec<u64> = responses.iter().map(id_of).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![1, 2, 3, 4, 5, 6, 99]);
    assert!(responses
        .iter()
        .all(|v| v.get("ok").and_then(Json::as_bool) == Some(true)));
    // join() returns: the accept loop and every handler exited.
    server.join();
}

#[test]
fn warm_restart_answers_pipelined_repeats_from_disk() {
    let dir = tmpdir("warm");
    let opts = || ServeOptions {
        port: 0,
        threads: 2,
        cache_capacity: 64,
        window: 8,
        cache_dir: Some(dir.clone()),
        ..ServeOptions::default()
    };
    let job_lines = |base: u64, frames: std::ops::RangeInclusive<u64>| -> Vec<String> {
        frames
            .map(|f| emulate_line(base + f, &format!(", \"frames\": {f}")))
            .collect()
    };

    // First server: two clients, each with 6 requests in flight on its
    // own connection (12 distinct jobs in total).
    let mut server = Server::start(opts()).unwrap();
    let addr = server.addr();
    let clients: Vec<_> = [(100u64, 2u64..=7), (200, 8..=13)]
        .into_iter()
        .map(|(base, frames)| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                let lines = frames
                    .map(|f| emulate_line(base + f, &format!(", \"frames\": {f}")))
                    .collect::<Vec<_>>();
                let responses = pipeline(&mut stream, &lines, lines.len());
                let mut ids: Vec<u64> = responses
                    .iter()
                    .map(|v| {
                        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
                        id_of(v)
                    })
                    .collect();
                ids.sort_unstable();
                ids
            })
        })
        .collect();
    let mut answered: Vec<u64> = clients
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    answered.sort_unstable();
    assert_eq!(answered.len(), 12, "all pipelined ids answered");
    server.shutdown();

    // Second server over the same cache directory: every repeat must be a
    // cache hit (served from disk, promoted to memory) with zero fresh
    // emulations.
    let mut server = Server::start(opts()).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut lines = job_lines(100, 2..=7);
    lines.extend(job_lines(200, 8..=13));
    let responses = pipeline(&mut stream, &lines, lines.len());
    for v in &responses {
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("cached").and_then(Json::as_bool),
            Some(true),
            "a warm-started repeat is answered without emulation"
        );
    }
    let stats = pipeline(&mut stream, &["{\"cmd\": \"stats\"}\n".into()], 1).remove(0);
    assert_eq!(stats.get("misses").and_then(Json::as_u64), Some(0));
    assert_eq!(stats.get("hits").and_then(Json::as_u64), Some(12));
    assert_eq!(stats.get("disk_hits").and_then(Json::as_u64), Some(12));
    assert!(stats.get("disk_len").and_then(Json::as_u64).unwrap() >= 12);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
