//! Differential contract between the two serve cores: for identical
//! request streams, the event-loop core and the thread-per-connection
//! core must produce **byte-identical response bodies** — in both
//! completion-order mode (compared as sorted sets, since completion
//! order is timing-dependent) and in-order mode (compared as exact
//! sequences).
//!
//! Every emulate request in a stream uses a globally distinct `frames`
//! value: duplicate jobs would make the `cached` response field depend
//! on batch-coalescing timing, which is outside the contract.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};

use segbus_serve::json;
use segbus_serve::{ServeCore, ServeOptions, Server};

const DEMO: &str = "application a {\n  process X initial;\n  process Y final;\n  flow X -> Y { items 72; order 1; ticks 100; }\n}\nplatform p {\n  segment S0 { freq_mhz 100; hosts X; }\n  segment S1 { freq_mhz 100; hosts Y; }\n}\n";

fn emulate_line(id: u64, frames: u64) -> String {
    let mut src = String::new();
    json::write_str(&mut src, DEMO);
    format!("{{\"id\": {id}, \"cmd\": \"emulate\", \"source\": {src}, \"frames\": {frames}}}")
}

/// Run every stream as a concurrent client against a fresh server of the
/// given core; returns each client's raw response lines in arrival order.
fn run_streams(core: ServeCore, streams: &[Vec<String>]) -> Vec<Vec<String>> {
    let mut server = Server::start(ServeOptions {
        port: 0,
        threads: 2,
        cache_capacity: 512,
        window: 8,
        max_line_bytes: 1024,
        core,
        ..ServeOptions::default()
    })
    .unwrap();
    let addr = server.addr();
    let handles: Vec<_> = streams
        .iter()
        .cloned()
        .map(|lines| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                for line in &lines {
                    stream.write_all(line.as_bytes()).unwrap();
                    stream.write_all(b"\n").unwrap();
                }
                stream.flush().unwrap();
                // Half-close: the server sees EOF, answers everything
                // pending, then closes its side.
                stream.shutdown(Shutdown::Write).unwrap();
                BufReader::new(stream)
                    .lines()
                    .map(|l| l.unwrap())
                    .collect::<Vec<String>>()
            })
        })
        .collect();
    let out = handles.into_iter().map(|h| h.join().unwrap()).collect();
    server.shutdown();
    out
}

fn sorted(mut lines: Vec<String>) -> Vec<String> {
    lines.sort();
    lines
}

/// One client, a mixed stream touching every response shape: reports,
/// S001/S002/S003/S004 errors, a blank keep-alive. Completion-order mode,
/// so the response *sets* must match byte-for-byte.
#[test]
fn cores_agree_on_a_mixed_stream() {
    let mut stream = vec![
        emulate_line(1, 1),
        emulate_line(2, 2),
        "{nope".to_string(),                             // S001
        "{\"id\": 4, \"cmd\": \"explode\"}".to_string(), // S002
        "x".repeat(2048),                                // S003 (cap 1024)
        emulate_line(6, 0),                              // S004 (frames 0)
        String::new(),                                   // blank: no response
        emulate_line(8, 3),
    ];
    let a = run_streams(ServeCore::EventLoop, &[stream.clone()]);
    let b = run_streams(ServeCore::Threads, &[stream.clone()]);
    assert_eq!(a[0].len(), 7, "every non-blank line gets one response");
    assert_eq!(sorted(a[0].clone()), sorted(b[0].clone()));

    // Same stream in in-order mode: exact sequences must match.
    stream.insert(
        0,
        "{\"id\": 0, \"cmd\": \"hello\", \"in_order\": true}".to_string(),
    );
    let a = run_streams(ServeCore::EventLoop, &[stream.clone()]);
    let b = run_streams(ServeCore::Threads, &[stream]);
    assert_eq!(a[0].len(), 8);
    assert_eq!(a[0], b[0], "in-order responses must match positionally");
}

/// Adversarial completion order through the reorder buffer: the heaviest
/// job is requested first, so every successor completes ahead of it and
/// must wait. Both cores must still deliver in request order, and the
/// ordered sequences must be byte-identical.
#[test]
fn cores_agree_under_adversarial_completion_order() {
    let mut lines = vec!["{\"id\": 0, \"cmd\": \"hello\", \"in_order\": true}".to_string()];
    // Strictly decreasing weight: frames 40, 34, 28, ... 4.
    for (i, frames) in (1..=7u64).map(|k| 46 - 6 * k).enumerate() {
        lines.push(emulate_line(10 + i as u64, frames));
    }
    let a = run_streams(ServeCore::EventLoop, &[lines.clone()]);
    let b = run_streams(ServeCore::Threads, &[lines]);
    assert_eq!(a[0], b[0]);
    // Responses are positional: ids come back in request order.
    for (i, line) in a[0].iter().skip(1).enumerate() {
        let v = json::parse(line).unwrap();
        assert_eq!(
            v.get("id").and_then(json::Json::as_u64),
            Some(10 + i as u64)
        );
    }
}

/// The CI serve-smoke case: 64 concurrent clients, a mix of in-order and
/// completion-order connections, every emulate distinct. Per-client
/// response sets (ordered sequences for the in-order half) must be
/// byte-identical across the cores.
#[test]
fn cores_agree_under_64_concurrent_clients() {
    const CLIENTS: u64 = 64;
    const PER_CLIENT: u64 = 4;
    let streams: Vec<Vec<String>> = (0..CLIENTS)
        .map(|client| {
            let in_order = client % 2 == 0;
            let mut lines = Vec::new();
            if in_order {
                lines.push(format!(
                    "{{\"id\": {client}, \"cmd\": \"hello\", \"in_order\": true}}"
                ));
            }
            for k in 0..PER_CLIENT {
                // frames globally unique: 1 + client*PER_CLIENT + k.
                lines.push(emulate_line(1000 * client + k, 1 + client * PER_CLIENT + k));
            }
            // One protocol error per client, alternating shape.
            if client % 2 == 0 {
                lines.push(format!(
                    "{{\"id\": {}, \"cmd\": \"warp\"}}",
                    1000 * client + 99
                ));
            } else {
                lines.push("not json".to_string());
            }
            lines
        })
        .collect();
    let a = run_streams(ServeCore::EventLoop, &streams);
    let b = run_streams(ServeCore::Threads, &streams);
    assert_eq!(a.len(), b.len());
    for (client, (ra, rb)) in a.into_iter().zip(b).enumerate() {
        let in_order = client % 2 == 0;
        let expect = PER_CLIENT as usize + 1 + usize::from(in_order);
        assert_eq!(ra.len(), expect, "client {client} response count");
        if in_order {
            assert_eq!(ra, rb, "client {client}: ordered sequences differ");
        } else {
            assert_eq!(
                sorted(ra),
                sorted(rb),
                "client {client}: response sets differ"
            );
        }
    }
}
