//! A minimal JSON reader/writer for the serve protocol.
//!
//! The workspace builds fully offline with no external crates, so the
//! newline-delimited JSON protocol is parsed by hand. The subset is
//! exactly what the protocol needs: objects, arrays, strings (with the
//! standard escapes including `\uXXXX`), booleans, null and numbers.
//! Integers up to `u64::MAX` round-trip exactly — they are kept in a
//! dedicated variant rather than forced through `f64`, because report
//! fields are picosecond counts.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer that fits `u64` (the protocol's counters and tick values).
    UInt(u64),
    /// Any other number (negative or fractional).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps encoding deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, if present and non-null.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => match m.get(key) {
                Some(Json::Null) | None => None,
                Some(v) => Some(v),
            },
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Unsigned integer content, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            Json::Num(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// Boolean content, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Parse one JSON document from `src` (trailing whitespace allowed).
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected {:?} at offset {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(cp).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Four hex digits (cursor just past the `u`); advances past them.
    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|_| "bad \\u escape")?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::UInt(v));
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at offset {start}"))
    }
}

/// Append `s` to `out` as a JSON string literal.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An incremental JSON-object writer (field order = call order).
pub struct ObjWriter {
    out: String,
    first: bool,
}

impl ObjWriter {
    /// Start a new `{`.
    pub fn new() -> ObjWriter {
        ObjWriter {
            out: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        write_str(&mut self.out, key);
        self.out.push(':');
    }

    /// Add an unsigned-integer field.
    pub fn uint(&mut self, key: &str, v: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.out, "{v}");
        self
    }

    /// Add a boolean field.
    pub fn bool(&mut self, key: &str, v: bool) -> &mut Self {
        self.key(key);
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add a string field.
    pub fn str(&mut self, key: &str, v: &str) -> &mut Self {
        self.key(key);
        write_str(&mut self.out, v);
        self
    }

    /// Add a float field (for derived figures like microseconds).
    pub fn float(&mut self, key: &str, v: f64) -> &mut Self {
        self.key(key);
        let _ = write!(self.out, "{v}");
        self
    }

    /// Add an array of unsigned integers (per-shard counter vectors).
    pub fn uints(&mut self, key: &str, vs: &[u64]) -> &mut Self {
        self.key(key);
        self.out.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            let _ = write!(self.out, "{v}");
        }
        self.out.push(']');
        self
    }

    /// Close the object and return the text.
    pub fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

impl Default for ObjWriter {
    fn default() -> Self {
        ObjWriter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = parse(r#"{"id": 7, "cmd": "emulate", "frames": 2, "trace": false}"#).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("cmd").and_then(Json::as_str), Some("emulate"));
        assert_eq!(v.get("trace").and_then(Json::as_bool), Some(false));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn u64_round_trips_exactly() {
        let big = u64::MAX - 1;
        let v = parse(&format!(r#"{{"x": {big}}}"#)).unwrap();
        assert_eq!(v.get("x").and_then(Json::as_u64), Some(big));
    }

    #[test]
    fn string_escapes_round_trip() {
        let src = "line1\nline2\t\"quoted\" \\slash ünïcode \u{1F600}";
        let mut enc = String::new();
        write_str(&mut enc, src);
        let v = parse(&enc).unwrap();
        assert_eq!(v.as_str(), Some(src));
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = parse(r#""Aé😀""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé\u{1F600}"));
        // \u escapes, including a surrogate pair.
        let v = parse("\"\\u0041\\u00e9 \\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("Aé \u{1F600}"));
        assert!(parse(r#""\ud83d alone""#).is_err(), "lone high surrogate");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a" 1}"#,
            r#"{"a": }"#,
            "tru",
            r#""unterminated"#,
            "{} extra",
            r#""\q""#,
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn obj_writer_emits_valid_json() {
        let mut w = ObjWriter::new();
        w.uint("id", 3)
            .bool("ok", true)
            .str("text", "a\nb")
            .float("us", 1.5)
            .uints("per_shard", &[4, 0, 9])
            .uints("empty", &[]);
        let line = w.finish();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("text").and_then(Json::as_str), Some("a\nb"));
        assert_eq!(
            v.get("per_shard"),
            Some(&Json::Arr(vec![
                Json::UInt(4),
                Json::UInt(0),
                Json::UInt(9)
            ]))
        );
        assert_eq!(v.get("empty"), Some(&Json::Arr(vec![])));
    }
}
