//! Bounded sequence-reorder buffer for the `in_order` response mode.
//!
//! Responses complete in batch order, not request order; when a client
//! negotiates `in_order` via the `hello` handshake the server buffers
//! out-of-sequence responses until the missing predecessors arrive.
//! The buffer is **capped at `2 × window` entries**: the windowed
//! pipelining protocol releases a request slot only when its response is
//! delivered, so a well-behaved stream can never buffer more than
//! `window − 1` responses — the cap is defense in depth against
//! accounting bugs or a hostile completion order, and overflowing it is
//! reported as [`Push::Overflow`] so the caller can shed with `S005`
//! instead of growing without bound.

use std::collections::BTreeMap;

/// Result of offering one completed response to the buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum Push {
    /// The pushed response (and any buffered successors it unblocked)
    /// are deliverable now, in sequence order.
    Ready(Vec<String>),
    /// The response arrived ahead of a missing predecessor and was
    /// buffered.
    Buffered,
    /// The buffer is at capacity; the response was **not** stored. The
    /// caller must shed (`S005`) — in-order delivery can no longer be
    /// honoured without unbounded memory.
    Overflow,
}

/// Reorders completion-order responses into request (sequence) order,
/// holding at most `2 × window` out-of-sequence entries.
pub struct Reorder {
    next: u64,
    cap: usize,
    buffered: BTreeMap<u64, String>,
}

impl Reorder {
    /// A buffer for a connection negotiated with the given pipeline
    /// window (cap clamped to ≥ 2 entries).
    pub fn new(window: usize) -> Reorder {
        Reorder {
            next: 0,
            cap: (2 * window).max(2),
            buffered: BTreeMap::new(),
        }
    }

    /// Offer the response for sequence number `seq`.
    pub fn push(&mut self, seq: u64, line: String) -> Push {
        if seq != self.next {
            if self.buffered.len() >= self.cap {
                return Push::Overflow;
            }
            self.buffered.insert(seq, line);
            return Push::Buffered;
        }
        let mut ready = vec![line];
        self.next += 1;
        while let Some(line) = self.buffered.remove(&self.next) {
            ready.push(line);
            self.next += 1;
        }
        Push::Ready(ready)
    }

    /// Number of responses currently held out of sequence.
    pub fn buffered_len(&self) -> usize {
        self.buffered.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_sequence_passes_straight_through() {
        let mut r = Reorder::new(4);
        for seq in 0..16u64 {
            assert_eq!(
                r.push(seq, format!("r{seq}")),
                Push::Ready(vec![format!("r{seq}")])
            );
        }
        assert_eq!(r.buffered_len(), 0);
    }

    #[test]
    fn reversed_completion_order_flushes_in_sequence() {
        let mut r = Reorder::new(4);
        assert_eq!(r.push(3, "r3".into()), Push::Buffered);
        assert_eq!(r.push(2, "r2".into()), Push::Buffered);
        assert_eq!(r.push(1, "r1".into()), Push::Buffered);
        assert_eq!(
            r.push(0, "r0".into()),
            Push::Ready(vec!["r0".into(), "r1".into(), "r2".into(), "r3".into()])
        );
        assert_eq!(r.buffered_len(), 0);
    }

    /// Adversarial completion order: evens complete first, then odds —
    /// every odd arrival unblocks itself plus one buffered even.
    #[test]
    fn interleaved_adversarial_order_delivers_sequentially() {
        let mut r = Reorder::new(8);
        let mut delivered = Vec::new();
        for seq in (0..16u64).step_by(2).skip(1) {
            assert_eq!(r.push(seq, format!("r{seq}")), Push::Buffered);
        }
        for seq in std::iter::once(0).chain((1..16u64).step_by(2)) {
            match r.push(seq, format!("r{seq}")) {
                Push::Ready(lines) => delivered.extend(lines),
                other => panic!("seq {seq}: expected Ready, got {other:?}"),
            }
        }
        let want: Vec<String> = (0..16u64).map(|s| format!("r{s}")).collect();
        assert_eq!(delivered, want);
    }

    #[test]
    fn overflow_beyond_twice_window_is_refused() {
        let mut r = Reorder::new(2); // cap = 4
        for seq in 1..=4u64 {
            assert_eq!(r.push(seq, format!("r{seq}")), Push::Buffered);
        }
        assert_eq!(r.push(5, "r5".into()), Push::Overflow);
        assert_eq!(r.buffered_len(), 4, "refused push must not be stored");
        // The head still drains everything that was accepted.
        assert_eq!(
            r.push(0, "r0".into()),
            Push::Ready(vec![
                "r0".into(),
                "r1".into(),
                "r2".into(),
                "r3".into(),
                "r4".into()
            ])
        );
    }

    #[test]
    fn cap_is_clamped_for_degenerate_windows() {
        let mut r = Reorder::new(0);
        assert_eq!(r.push(1, "r1".into()), Push::Buffered);
        assert_eq!(r.push(2, "r2".into()), Push::Buffered);
        assert_eq!(r.push(3, "r3".into()), Push::Overflow);
    }
}
