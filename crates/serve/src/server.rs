//! The TCP front end: newline-delimited JSON over `127.0.0.1`.
//!
//! One handler thread per connection; every handler submits into the
//! shared [`BatchService`], so jobs from different clients coalesce into
//! common sweep batches and share the report cache. The listener binds
//! loopback only — the service trusts its input no more than the CLI does
//! (every model goes through the same typed-validation pipeline), but it
//! is a local tool, not an internet-facing daemon.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use segbus_core::EmulatorConfig;

use crate::protocol::{self, Request};
use crate::service::BatchService;

/// Server configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// TCP port on `127.0.0.1` (`0` = ephemeral, reported by [`Server::addr`]).
    pub port: u16,
    /// Worker threads of the sweep pool (`0` = all hardware threads).
    pub threads: usize,
    /// Report-cache capacity in entries.
    pub cache_capacity: usize,
    /// Default emulator configuration for the pool workers (per-job
    /// overrides still apply).
    pub config: EmulatorConfig,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            port: 7878,
            threads: 0,
            cache_capacity: 256,
            config: EmulatorConfig::default(),
        }
    }
}

/// A running server: an accept loop plus the shared batch service.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `127.0.0.1:port` and start accepting clients.
    pub fn start(opts: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", opts.port))?;
        let addr = listener.local_addr()?;
        let service = BatchService::start(opts.config, opts.threads, opts.cache_capacity);
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_handle = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let service = service.clone();
                let shutdown = Arc::clone(&accept_shutdown);
                std::thread::spawn(move || {
                    let _ = handle_connection(stream, service, shutdown, addr);
                });
            }
        });
        Ok(Server {
            addr,
            shutdown,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the accept loop to stop and wait for it. Connections already
    /// being served drain on their own threads.
    pub fn shutdown(&mut self) {
        trigger_shutdown(&self.shutdown, self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }

    /// Block until the server shuts down (via a client `shutdown` command).
    pub fn join(mut self) {
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_handle.is_some() {
            self.shutdown();
        }
    }
}

/// Flag the accept loop down and poke it with a no-op connection so the
/// blocking `accept` returns.
fn trigger_shutdown(shutdown: &AtomicBool, addr: SocketAddr) {
    if shutdown.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    let _ = TcpStream::connect(addr);
}

fn handle_connection(
    stream: TcpStream,
    service: BatchService,
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = match protocol::parse_request(&line) {
            Err((id, e)) => protocol::encode_error(id, &e),
            Ok(Request::Emulate { id, job }) => {
                let outcome = service.run(*job);
                match outcome.result {
                    Ok(report) => {
                        protocol::encode_report(id, outcome.cached, outcome.digest, &report)
                    }
                    Err(e) => protocol::encode_error(id, &e),
                }
            }
            Ok(Request::Stats { id }) => {
                let s = service.stats();
                protocol::encode_stats(id, s.cache, s.batches, s.jobs, service.threads())
            }
            Ok(Request::Shutdown { id }) => {
                writer.write_all(protocol::encode_shutdown(id).as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                trigger_shutdown(&shutdown, addr);
                return Ok(());
            }
        };
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}
