//! The TCP front end: newline-delimited JSON over `127.0.0.1`.
//!
//! One handler thread per connection; every handler submits into the
//! shared [`BatchService`], so jobs from different clients coalesce into
//! common sweep batches and share the report cache. The listener binds
//! loopback only — the service trusts its input no more than the CLI does
//! (every model goes through the same typed-validation pipeline), but it
//! is a local tool, not an internet-facing daemon.
//!
//! # Pipelining window and response ordering
//!
//! A connection may have up to [`ServeOptions::window`] requests in
//! flight: the handler decodes lines eagerly and submits each job to the
//! batch service *without* waiting for the previous outcome, so requests
//! streamed down one connection coalesce into shared batches exactly like
//! requests from separate clients. A per-connection writer thread emits
//! responses as their batches complete.
//!
//! **Default ordering is completion order.** Every response carries the
//! request's `id`, so clients correlate by id, not position. A client
//! that wants positional responses sends `{"cmd": "hello", "in_order":
//! true}` as the *first* request on the connection; the writer then
//! buffers out-of-order completions and releases responses strictly in
//! request order (the handshake is rejected with `S002` once any other
//! request has been seen). Either way every accepted request gets exactly
//! one response line, and a `shutdown` acknowledgement never overtakes
//! the draining of responses already in flight on that connection.
//!
//! Request lines are read through a bounded reader: a line longer than
//! [`ServeOptions::max_line_bytes`] is discarded (never buffered whole)
//! and answered with `S003`.

use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use segbus_core::EmulatorConfig;
use segbus_model::SegbusError;

use crate::protocol::{self, Request};
use crate::service::{BatchService, ServiceOptions};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// TCP port on `127.0.0.1` (`0` = ephemeral, reported by [`Server::addr`]).
    pub port: u16,
    /// Worker threads of the sweep pool (`0` = all hardware threads).
    pub threads: usize,
    /// Report-cache capacity in entries.
    pub cache_capacity: usize,
    /// Directory of the persistent report store (`None` = memory only).
    pub cache_dir: Option<PathBuf>,
    /// Maximum requests in flight per connection (clamped to ≥ 1).
    pub window: usize,
    /// Maximum accepted request-line length in bytes; longer lines are
    /// discarded and answered with `S003`.
    pub max_line_bytes: usize,
    /// Upper bound on an `emulate` request's `frames` (`S004` beyond it).
    pub max_frames: u64,
    /// Default emulator configuration for the pool workers (per-job
    /// overrides still apply).
    pub config: EmulatorConfig,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            port: 7878,
            threads: 0,
            cache_capacity: 256,
            cache_dir: None,
            window: 8,
            max_line_bytes: 4 * 1024 * 1024,
            max_frames: 4096,
            config: EmulatorConfig::default(),
        }
    }
}

/// Per-connection limits, derived from [`ServeOptions`].
#[derive(Clone, Copy, Debug)]
struct ConnLimits {
    window: usize,
    max_line_bytes: usize,
    proto: protocol::Limits,
}

/// A running server: an accept loop plus the shared batch service.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `127.0.0.1:port` and start accepting clients. Fails when the
    /// socket cannot be bound or a requested `cache_dir` cannot be opened.
    pub fn start(opts: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", opts.port))?;
        let addr = listener.local_addr()?;
        let service = BatchService::start(ServiceOptions {
            config: opts.config,
            threads: opts.threads,
            cache_capacity: opts.cache_capacity,
            cache_dir: opts.cache_dir.clone(),
        })?;
        let limits = ConnLimits {
            window: opts.window.max(1),
            max_line_bytes: opts.max_line_bytes.max(1),
            proto: protocol::Limits {
                max_frames: opts.max_frames.max(1),
            },
        };
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_handle = std::thread::spawn(move || {
            let mut handlers: Vec<JoinHandle<()>> = Vec::new();
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let service = service.clone();
                let shutdown = Arc::clone(&accept_shutdown);
                handlers.push(std::thread::spawn(move || {
                    let _ = handle_connection(stream, service, shutdown, addr, limits);
                }));
                // Reap handlers that have already finished so a long-lived
                // server does not accumulate one join handle per past
                // connection.
                handlers.retain(|h| !h.is_finished());
            }
            // The listener is closed; wait for every live connection so
            // in-flight responses are written before the server reports
            // itself down.
            for h in handlers {
                let _ = h.join();
            }
        });
        Ok(Server {
            addr,
            shutdown,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the accept loop to stop, then wait for it *and* every
    /// connection handler — in-flight responses drain before this
    /// returns.
    pub fn shutdown(&mut self) {
        trigger_shutdown(&self.shutdown, self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }

    /// Block until the server shuts down (via a client `shutdown` command).
    pub fn join(mut self) {
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_handle.is_some() {
            self.shutdown();
        }
    }
}

/// Flag the accept loop down and poke it with a no-op connection so the
/// blocking `accept` returns.
fn trigger_shutdown(shutdown: &AtomicBool, addr: SocketAddr) {
    if shutdown.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    let _ = TcpStream::connect(addr);
}

// ---------------------------------------------------------------------------
// the in-flight window

/// Counting semaphore bounding requests in flight on one connection.
/// `close` (writer gone) unblocks every waiter with `false`.
struct Window {
    max: usize,
    state: Mutex<(usize, bool)>, // (in_flight, closed)
    cv: Condvar,
}

impl Window {
    fn new(max: usize) -> Window {
        Window {
            max,
            state: Mutex::new((0, false)),
            cv: Condvar::new(),
        }
    }

    /// Take one in-flight slot, blocking while the window is full.
    /// Returns `false` once the window is closed (stop reading).
    fn acquire(&self) -> bool {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.1 {
                return false;
            }
            if st.0 < self.max {
                st.0 += 1;
                return true;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Return a slot (one response line written).
    fn release(&self) {
        let mut st = self.state.lock().unwrap();
        st.0 = st.0.saturating_sub(1);
        self.cv.notify_all();
    }

    /// Mark the window dead and wake all waiters.
    fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.1 = true;
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// the writer thread

/// What the reader (and job callbacks) feed the writer. Every accepted
/// request becomes exactly one `Line` carrying the request's sequence
/// number on the connection.
enum OutMsg {
    /// Switch to in-order delivery (sent before any `Line`).
    InOrder,
    Line(u64, String),
}

/// Drain `rx`, writing one line per message. In default mode lines go out
/// in completion order; after `InOrder` they are buffered and released in
/// sequence order. The window is released per line *written*, so in-order
/// buffering keeps counting against the window (bounded memory).
fn writer_loop(mut stream: TcpStream, rx: Receiver<OutMsg>, window: Arc<Window>) {
    let result: std::io::Result<()> = (|| {
        let mut in_order = false;
        let mut next_seq = 0u64;
        let mut buffered: BTreeMap<u64, String> = BTreeMap::new();
        while let Ok(msg) = rx.recv() {
            match msg {
                OutMsg::InOrder => in_order = true,
                OutMsg::Line(_, line) if !in_order => {
                    write_line(&mut stream, &line)?;
                    window.release();
                }
                OutMsg::Line(seq, line) => {
                    buffered.insert(seq, line);
                    while let Some(ready) = buffered.remove(&next_seq) {
                        write_line(&mut stream, &ready)?;
                        window.release();
                        next_seq += 1;
                    }
                }
            }
        }
        Ok(())
    })();
    // Whether the reader hung up (normal) or the socket died (error),
    // unblock any reader waiting on a window slot.
    let _ = result;
    window.close();
}

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

// ---------------------------------------------------------------------------
// the bounded line reader

/// One event from the connection's byte stream.
enum ReadEvent {
    /// A complete request line (without the terminator).
    Line(String),
    /// A line exceeded the byte cap and was discarded up to its newline.
    Overflow,
    /// Read timeout: no data, a chance to poll the shutdown flag.
    Idle,
    /// Clean end of stream.
    Eof,
}

/// Newline-delimited reader with a hard per-line byte cap. Over-limit
/// lines are *discarded as they stream in* (never accumulated), so a
/// client sending an endless line costs one fixed buffer, not memory
/// proportional to the line.
struct LineReader {
    stream: TcpStream,
    pending: Vec<u8>,
    max_line_bytes: usize,
    discarding: bool,
    eof: bool,
}

impl LineReader {
    fn new(stream: TcpStream, max_line_bytes: usize) -> LineReader {
        LineReader {
            stream,
            pending: Vec::new(),
            max_line_bytes,
            discarding: false,
            eof: false,
        }
    }

    fn read_event(&mut self) -> std::io::Result<ReadEvent> {
        let mut buf = [0u8; 8 * 1024];
        loop {
            // A complete line already buffered?
            if !self.discarding {
                if let Some(i) = self.pending.iter().position(|&b| b == b'\n') {
                    let mut line: Vec<u8> = self.pending.drain(..=i).collect();
                    line.pop(); // the \n
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return Ok(ReadEvent::Line(String::from_utf8_lossy(&line).into_owned()));
                }
                if self.pending.len() > self.max_line_bytes {
                    self.pending.clear();
                    self.pending.shrink_to_fit();
                    self.discarding = true;
                }
            }
            if self.eof {
                if self.discarding {
                    self.discarding = false;
                    return Ok(ReadEvent::Overflow);
                }
                if !self.pending.is_empty() {
                    // Final unterminated line.
                    let line = std::mem::take(&mut self.pending);
                    return Ok(ReadEvent::Line(String::from_utf8_lossy(&line).into_owned()));
                }
                return Ok(ReadEvent::Eof);
            }
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.eof = true;
                }
                Ok(n) if self.discarding => {
                    // Resynchronise at the next newline without buffering.
                    if let Some(i) = buf[..n].iter().position(|&b| b == b'\n') {
                        self.pending.extend_from_slice(&buf[i + 1..n]);
                        self.discarding = false;
                        return Ok(ReadEvent::Overflow);
                    }
                }
                Ok(n) => self.pending.extend_from_slice(&buf[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                    ) =>
                {
                    return Ok(ReadEvent::Idle);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// the connection handler

fn handle_connection(
    stream: TcpStream,
    service: BatchService,
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
    limits: ConnLimits,
) -> std::io::Result<()> {
    // Short read timeouts let the reader poll the shutdown flag; the
    // writer thread owns its own clone of the stream.
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let writer_stream = stream.try_clone()?;
    let (out_tx, out_rx) = channel::<OutMsg>();
    let window = Arc::new(Window::new(limits.window));
    let writer_window = Arc::clone(&window);
    let writer = std::thread::spawn(move || writer_loop(writer_stream, out_rx, writer_window));

    let result = reader_loop(stream, &service, &shutdown, addr, limits, &out_tx, &window);

    // Dropping our sender lets the writer drain: job callbacks hold their
    // own clones, so every in-flight response is still written before the
    // writer exits and we join it.
    drop(out_tx);
    let _ = writer.join();
    result
}

fn reader_loop(
    stream: TcpStream,
    service: &BatchService,
    shutdown: &AtomicBool,
    addr: SocketAddr,
    limits: ConnLimits,
    out_tx: &Sender<OutMsg>,
    window: &Arc<Window>,
) -> std::io::Result<()> {
    let mut reader = LineReader::new(stream, limits.max_line_bytes);
    let mut seq = 0u64;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let event = reader.read_event()?;
        let line = match event {
            ReadEvent::Eof => return Ok(()),
            ReadEvent::Idle => continue,
            ReadEvent::Overflow => {
                let this_seq = next_slot(&mut seq, window)?;
                let e = protocol::oversize_error(limits.max_line_bytes);
                // The line was discarded before parsing, so no id exists.
                let _ = out_tx.send(OutMsg::Line(this_seq, protocol::encode_error(0, &e)));
                continue;
            }
            ReadEvent::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue; // blank keep-alive lines get no response and no seq
        }
        let this_seq = next_slot(&mut seq, window)?;
        match protocol::parse_request(&line, &limits.proto) {
            Err((id, e)) => {
                let _ = out_tx.send(OutMsg::Line(this_seq, protocol::encode_error(id, &e)));
            }
            Ok(Request::Emulate { id, job }) => {
                let tx = out_tx.clone();
                service.submit_with(*job, move |outcome| {
                    let line = match outcome.result {
                        Ok(report) => {
                            protocol::encode_report(id, outcome.cached, outcome.digest, &report)
                        }
                        Err(e) => protocol::encode_error(id, &e),
                    };
                    let _ = tx.send(OutMsg::Line(this_seq, line));
                });
            }
            Ok(Request::Hello { id, in_order }) => {
                let line = if in_order && this_seq != 0 {
                    let e = SegbusError::new(
                        "S002",
                        "the in_order handshake must be the first request on the connection",
                    );
                    protocol::encode_error(id, &e)
                } else {
                    if in_order {
                        let _ = out_tx.send(OutMsg::InOrder);
                    }
                    protocol::encode_hello(id, in_order, limits.window)
                };
                let _ = out_tx.send(OutMsg::Line(this_seq, line));
            }
            Ok(Request::Stats { id }) => {
                let s = service.stats();
                let line =
                    protocol::encode_stats(id, s.cache, s.batches, s.jobs, service.threads());
                let _ = out_tx.send(OutMsg::Line(this_seq, line));
            }
            Ok(Request::Shutdown { id }) => {
                let _ = out_tx.send(OutMsg::Line(this_seq, protocol::encode_shutdown(id)));
                trigger_shutdown(shutdown, addr);
                return Ok(());
            }
        }
    }
}

/// Allocate the next sequence number after taking a window slot. An
/// unacquirable slot means the writer (and so the client) is gone.
fn next_slot(seq: &mut u64, window: &Window) -> std::io::Result<u64> {
    if !window.acquire() {
        return Err(std::io::Error::new(
            ErrorKind::BrokenPipe,
            "response writer is gone",
        ));
    }
    let s = *seq;
    *seq += 1;
    Ok(s)
}
