//! The TCP front end: newline-delimited JSON over `127.0.0.1`.
//!
//! Two interchangeable cores answer the same protocol:
//!
//! * **`event-loop`** (default, [`crate::shard`]) — N IO shards of
//!   nonblocking sockets; no per-connection threads, bounded queues,
//!   admission control with `S005` load-shed, and a rich `stats`
//!   endpoint. This is the production core.
//! * **`threads`** (this module) — the original thread-per-connection
//!   core, kept for one release behind `--serve-core threads` as a
//!   fallback and as the differential-testing reference.
//!
//! Both submit into the shared [`BatchService`], so jobs from different
//! clients coalesce into common sweep batches and share the report
//! cache, and both are driven through the same [`Server`] facade. The
//! listener binds loopback only — the service trusts its input no more
//! than the CLI does (every model goes through the same typed-validation
//! pipeline), but it is a local tool, not an internet-facing daemon.
//!
//! # Pipelining window and response ordering
//!
//! A connection may have up to [`ServeOptions::window`] requests in
//! flight: requests are decoded eagerly and each job is submitted to the
//! batch service *without* waiting for the previous outcome, so requests
//! streamed down one connection coalesce into shared batches exactly like
//! requests from separate clients.
//!
//! **Default ordering is completion order.** Every response carries the
//! request's `id`, so clients correlate by id, not position. A client
//! that wants positional responses sends `{"cmd": "hello", "in_order":
//! true}` as the *first* request on the connection; out-of-order
//! completions are then buffered (bounded — see [`crate::reorder`]) and
//! released strictly in request order (the handshake is rejected with
//! `S002` once any other request has been seen). Either way every
//! accepted request gets exactly one response line, and a `shutdown`
//! acknowledgement never overtakes the draining of responses already in
//! flight on that connection.
//!
//! Request lines are read through the bounded [`crate::decode`] layer: a
//! line longer than [`ServeOptions::max_line_bytes`] is discarded (never
//! buffered whole) and answered with `S003`.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use segbus_core::EmulatorConfig;

use crate::decode::{is_idle_read_error, DecodedLine, LineDecoder};
use crate::protocol::{self, Request};
use crate::reorder::{Push, Reorder};
use crate::service::{lock_recover, BatchService, ServiceOptions};

/// Which connection-handling core a [`Server`] runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServeCore {
    /// Sharded nonblocking event loop (the default, production core).
    #[default]
    EventLoop,
    /// Legacy thread-per-connection core (`--serve-core threads`).
    Threads,
}

impl ServeCore {
    /// Parse a CLI flag value (`event-loop` | `threads`).
    pub fn parse(s: &str) -> Option<ServeCore> {
        match s {
            "event-loop" | "event_loop" | "event" => Some(ServeCore::EventLoop),
            "threads" | "thread" => Some(ServeCore::Threads),
            _ => None,
        }
    }
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// TCP port on `127.0.0.1` (`0` = ephemeral, reported by [`Server::addr`]).
    pub port: u16,
    /// Worker threads of the sweep pool (`0` = all hardware threads).
    pub threads: usize,
    /// Report-cache capacity in entries.
    pub cache_capacity: usize,
    /// Directory of the persistent report store (`None` = memory only).
    pub cache_dir: Option<PathBuf>,
    /// Maximum requests in flight per connection (clamped to ≥ 1).
    pub window: usize,
    /// Maximum accepted request-line length in bytes; longer lines are
    /// discarded and answered with `S003`.
    pub max_line_bytes: usize,
    /// Upper bound on an `emulate` request's `frames` (`S004` beyond it).
    pub max_frames: u64,
    /// Default emulator configuration for the pool workers (per-job
    /// overrides still apply).
    pub config: EmulatorConfig,
    /// Which connection-handling core to run.
    pub core: ServeCore,
    /// IO shards of the event-loop core (`0` = one per hardware thread,
    /// capped at 8; ignored by the threads core).
    pub shards: usize,
    /// Global cap on emulation jobs in flight across all connections;
    /// admission beyond it is answered with `S005` instead of queued
    /// (`0` = default 4096; ignored by the threads core).
    pub max_in_flight: usize,
    /// Test instrumentation: forwarded to
    /// [`ServiceOptions::fault_frames`] to exercise the worker-fault shed
    /// path. `None` in production.
    #[doc(hidden)]
    pub fault_frames: Option<u64>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            port: 7878,
            threads: 0,
            cache_capacity: 256,
            cache_dir: None,
            window: 8,
            max_line_bytes: 4 * 1024 * 1024,
            max_frames: 4096,
            config: EmulatorConfig::default(),
            core: ServeCore::EventLoop,
            shards: 0,
            max_in_flight: 0,
            fault_frames: None,
        }
    }
}

/// Per-connection limits, derived from [`ServeOptions`]. Shared by both
/// cores so they enforce identical protocol bounds.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ConnLimits {
    pub(crate) window: usize,
    pub(crate) max_line_bytes: usize,
    pub(crate) proto: protocol::Limits,
}

impl ConnLimits {
    pub(crate) fn from_options(opts: &ServeOptions) -> ConnLimits {
        ConnLimits {
            window: opts.window.max(1),
            max_line_bytes: opts.max_line_bytes.max(1),
            proto: protocol::Limits {
                max_frames: opts.max_frames.max(1),
            },
        }
    }
}

/// A running server (either core) plus the shared batch service.
pub struct Server {
    addr: SocketAddr,
    inner: Inner,
}

enum Inner {
    Threads {
        shutdown: Arc<AtomicBool>,
        accept: Option<JoinHandle<()>>,
    },
    Event {
        shared: Arc<crate::shard::EventShared>,
        handles: Option<Vec<JoinHandle<()>>>,
    },
}

impl Server {
    /// Bind `127.0.0.1:port` and start accepting clients with the
    /// configured core. Fails when the socket cannot be bound or a
    /// requested `cache_dir` cannot be opened.
    pub fn start(opts: ServeOptions) -> std::io::Result<Server> {
        match opts.core {
            ServeCore::EventLoop => crate::shard::start_event_core(opts),
            ServeCore::Threads => start_threads_core(opts),
        }
    }

    /// Assemble the facade over a started event-loop core.
    pub(crate) fn from_event(
        addr: SocketAddr,
        shared: Arc<crate::shard::EventShared>,
        handles: Vec<JoinHandle<()>>,
    ) -> Server {
        Server {
            addr,
            inner: Inner::Event {
                shared,
                handles: Some(handles),
            },
        }
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the core to stop, then wait for every connection — in-flight
    /// responses drain before this returns (the event-loop core bounds
    /// the drain with a deadline so a stuck client cannot wedge it).
    pub fn shutdown(&mut self) {
        match &mut self.inner {
            Inner::Threads { shutdown, accept } => {
                trigger_shutdown(shutdown, self.addr);
                if let Some(h) = accept.take() {
                    let _ = h.join();
                }
            }
            Inner::Event { shared, handles } => {
                shared.begin_shutdown(self.addr);
                if let Some(hs) = handles.take() {
                    for h in hs {
                        let _ = h.join();
                    }
                }
            }
        }
    }

    /// Block until the server shuts down (via a client `shutdown` command).
    pub fn join(mut self) {
        match &mut self.inner {
            Inner::Threads { accept, .. } => {
                if let Some(h) = accept.take() {
                    let _ = h.join();
                }
            }
            Inner::Event { handles, .. } => {
                if let Some(hs) = handles.take() {
                    for h in hs {
                        let _ = h.join();
                    }
                }
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let live = match &self.inner {
            Inner::Threads { accept, .. } => accept.is_some(),
            Inner::Event { handles, .. } => handles.is_some(),
        };
        if live {
            self.shutdown();
        }
    }
}

// ---------------------------------------------------------------------------
// the legacy thread-per-connection core

fn start_threads_core(opts: ServeOptions) -> std::io::Result<Server> {
    let listener = TcpListener::bind(("127.0.0.1", opts.port))?;
    let addr = listener.local_addr()?;
    let service = BatchService::start(ServiceOptions {
        config: opts.config,
        threads: opts.threads,
        cache_capacity: opts.cache_capacity,
        cache_dir: opts.cache_dir.clone(),
        fault_frames: opts.fault_frames,
    })?;
    let limits = ConnLimits::from_options(&opts);
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept_shutdown = Arc::clone(&shutdown);
    let accept = std::thread::spawn(move || {
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        for stream in listener.incoming() {
            if accept_shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let service = service.clone();
            let shutdown = Arc::clone(&accept_shutdown);
            handlers.push(std::thread::spawn(move || {
                let _ = handle_connection(stream, service, shutdown, addr, limits);
            }));
            // Reap handlers that have already finished so a long-lived
            // server does not accumulate one join handle per past
            // connection.
            handlers.retain(|h| !h.is_finished());
        }
        // The listener is closed; wait for every live connection so
        // in-flight responses are written before the server reports
        // itself down.
        for h in handlers {
            let _ = h.join();
        }
    });
    Ok(Server {
        addr,
        inner: Inner::Threads {
            shutdown,
            accept: Some(accept),
        },
    })
}

/// Flag the accept loop down and poke it with a no-op connection so the
/// blocking `accept` returns.
fn trigger_shutdown(shutdown: &AtomicBool, addr: SocketAddr) {
    if shutdown.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    let _ = TcpStream::connect(addr);
}

// ---------------------------------------------------------------------------
// the in-flight window

/// Counting semaphore bounding requests in flight on one connection.
/// `close` (writer gone) unblocks every waiter with `false`.
///
/// Every lock acquisition recovers from a poisoned mutex: the state is a
/// pair of plain integers that are never left half-updated, so a panic in
/// some other holder (e.g. a callback unwinding through `release`) must
/// degrade into nothing worse than that panic — historically it poisoned
/// the mutex and every subsequent `acquire` on the connection panicked
/// too, cascading one fault across the whole connection.
struct Window {
    max: usize,
    state: Mutex<(usize, bool)>, // (in_flight, closed)
    cv: Condvar,
}

impl Window {
    fn new(max: usize) -> Window {
        Window {
            max,
            state: Mutex::new((0, false)),
            cv: Condvar::new(),
        }
    }

    /// Take one in-flight slot, blocking while the window is full.
    /// Returns `false` once the window is closed (stop reading).
    fn acquire(&self) -> bool {
        let mut st = lock_recover(&self.state);
        loop {
            if st.1 {
                return false;
            }
            if st.0 < self.max {
                st.0 += 1;
                return true;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Return a slot (one response line written).
    fn release(&self) {
        let mut st = lock_recover(&self.state);
        st.0 = st.0.saturating_sub(1);
        self.cv.notify_all();
    }

    /// Mark the window dead and wake all waiters.
    fn close(&self) {
        let mut st = lock_recover(&self.state);
        st.1 = true;
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// the writer thread

/// What the reader (and job callbacks) feed the writer. Every accepted
/// request becomes exactly one `Line` carrying the request's sequence
/// number on the connection.
enum OutMsg {
    /// Switch to in-order delivery (sent before any `Line`).
    InOrder,
    Line(u64, String),
}

/// Drain `rx`, writing one line per message. In default mode lines go out
/// in completion order; after `InOrder` they run through a bounded
/// [`Reorder`] and are released in sequence order. The window is released
/// per line *written*, so in-order buffering keeps counting against the
/// window (bounded memory); if the reorder bound is ever exceeded anyway
/// the connection is shed with `S005` and closed rather than buffering
/// without bound.
fn writer_loop(
    mut stream: TcpStream,
    rx: Receiver<OutMsg>,
    window: Arc<Window>,
    window_size: usize,
) {
    let result: std::io::Result<()> = (|| {
        let mut reorder: Option<Reorder> = None;
        while let Ok(msg) = rx.recv() {
            match msg {
                OutMsg::InOrder => reorder = Some(Reorder::new(window_size)),
                OutMsg::Line(seq, line) => match &mut reorder {
                    None => {
                        write_line(&mut stream, &line)?;
                        window.release();
                    }
                    Some(r) => match r.push(seq, line) {
                        Push::Ready(lines) => {
                            for ready in lines {
                                write_line(&mut stream, &ready)?;
                                window.release();
                            }
                        }
                        Push::Buffered => {}
                        Push::Overflow => {
                            let e = protocol::shed_error(
                                "in-order reorder buffer exceeded its 2x-window bound",
                            );
                            write_line(&mut stream, &protocol::encode_error(0, &e))?;
                            break;
                        }
                    },
                },
            }
        }
        Ok(())
    })();
    // Whether the reader hung up (normal) or the socket died (error),
    // unblock any reader waiting on a window slot.
    let _ = result;
    window.close();
}

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

// ---------------------------------------------------------------------------
// the bounded line reader

/// One event from the connection's byte stream.
enum ReadEvent {
    /// A complete request line (without the terminator).
    Line(String),
    /// A line exceeded the byte cap and was discarded up to its newline.
    Overflow,
    /// Read timeout: no data, a chance to poll the shutdown flag.
    Idle,
    /// Clean end of stream.
    Eof,
}

/// Blocking adapter over [`LineDecoder`] for the threads core: reads with
/// a short timeout and classifies errors through `is_idle_read_error`,
/// so `WouldBlock` and `TimedOut` both mean "poll again" on every
/// platform and only real errors tear the connection down.
struct LineReader {
    stream: TcpStream,
    decoder: LineDecoder,
    eof: bool,
}

impl LineReader {
    fn new(stream: TcpStream, max_line_bytes: usize) -> LineReader {
        LineReader {
            stream,
            decoder: LineDecoder::new(max_line_bytes),
            eof: false,
        }
    }

    fn read_event(&mut self) -> std::io::Result<ReadEvent> {
        let mut buf = [0u8; 8 * 1024];
        loop {
            if let Some(ev) = self.decoder.pop() {
                return Ok(match ev {
                    DecodedLine::Line(l) => ReadEvent::Line(l),
                    DecodedLine::Overflow => ReadEvent::Overflow,
                });
            }
            if self.eof {
                return Ok(match self.decoder.finish() {
                    Some(DecodedLine::Line(l)) => ReadEvent::Line(l),
                    Some(DecodedLine::Overflow) => ReadEvent::Overflow,
                    None => ReadEvent::Eof,
                });
            }
            match self.stream.read(&mut buf) {
                Ok(0) => self.eof = true,
                Ok(n) => self.decoder.feed(&buf[..n]),
                Err(ref e) if is_idle_read_error(e) => return Ok(ReadEvent::Idle),
                Err(e) => return Err(e),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// the connection handler

fn handle_connection(
    stream: TcpStream,
    service: BatchService,
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
    limits: ConnLimits,
) -> std::io::Result<()> {
    // Short read timeouts let the reader poll the shutdown flag; the
    // writer thread owns its own clone of the stream.
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let writer_stream = stream.try_clone()?;
    let (out_tx, out_rx) = channel::<OutMsg>();
    let window = Arc::new(Window::new(limits.window));
    let writer_window = Arc::clone(&window);
    let writer = std::thread::spawn(move || {
        writer_loop(writer_stream, out_rx, writer_window, limits.window)
    });

    let result = reader_loop(stream, &service, &shutdown, addr, limits, &out_tx, &window);

    // Dropping our sender lets the writer drain: job callbacks hold their
    // own clones, so every in-flight response is still written before the
    // writer exits and we join it.
    drop(out_tx);
    let _ = writer.join();
    result
}

fn reader_loop(
    stream: TcpStream,
    service: &BatchService,
    shutdown: &AtomicBool,
    addr: SocketAddr,
    limits: ConnLimits,
    out_tx: &Sender<OutMsg>,
    window: &Arc<Window>,
) -> std::io::Result<()> {
    let mut reader = LineReader::new(stream, limits.max_line_bytes);
    let mut seq = 0u64;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let event = reader.read_event()?;
        let line = match event {
            ReadEvent::Eof => return Ok(()),
            ReadEvent::Idle => continue,
            ReadEvent::Overflow => {
                let this_seq = next_slot(&mut seq, window)?;
                let e = protocol::oversize_error(limits.max_line_bytes);
                // The line was discarded before parsing, so no id exists.
                let _ = out_tx.send(OutMsg::Line(this_seq, protocol::encode_error(0, &e)));
                continue;
            }
            ReadEvent::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue; // blank keep-alive lines get no response and no seq
        }
        let this_seq = next_slot(&mut seq, window)?;
        match protocol::parse_request(&line, &limits.proto) {
            Err((id, e)) => {
                let _ = out_tx.send(OutMsg::Line(this_seq, protocol::encode_error(id, &e)));
            }
            Ok(Request::Emulate { id, job }) => {
                let tx = out_tx.clone();
                service.submit_with(*job, move |outcome| {
                    let line = match outcome.result {
                        Ok(report) => {
                            protocol::encode_report(id, outcome.cached, outcome.digest, &report)
                        }
                        Err(e) => protocol::encode_error(id, &e),
                    };
                    let _ = tx.send(OutMsg::Line(this_seq, line));
                });
            }
            Ok(Request::Hello { id, in_order }) => {
                let line = if in_order && this_seq != 0 {
                    protocol::encode_error(id, &protocol::handshake_order_error())
                } else {
                    if in_order {
                        let _ = out_tx.send(OutMsg::InOrder);
                    }
                    protocol::encode_hello(id, in_order, limits.window)
                };
                let _ = out_tx.send(OutMsg::Line(this_seq, line));
            }
            Ok(Request::Stats { id }) => {
                let s = service.stats();
                let line =
                    protocol::encode_stats(id, s.cache, s.batches, s.jobs, service.threads());
                let _ = out_tx.send(OutMsg::Line(this_seq, line));
            }
            Ok(Request::Shutdown { id }) => {
                let _ = out_tx.send(OutMsg::Line(this_seq, protocol::encode_shutdown(id)));
                trigger_shutdown(shutdown, addr);
                return Ok(());
            }
        }
    }
}

/// Allocate the next sequence number after taking a window slot. An
/// unacquirable slot means the writer (and so the client) is gone.
fn next_slot(seq: &mut u64, window: &Window) -> std::io::Result<u64> {
    if !window.acquire() {
        return Err(std::io::Error::new(
            ErrorKind::BrokenPipe,
            "response writer is gone",
        ));
    }
    let s = *seq;
    *seq += 1;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression for the poison cascade: a panic while holding the
    /// window mutex used to make every later `acquire` on the connection
    /// panic too. The window must keep functioning on a poisoned mutex.
    #[test]
    fn window_survives_a_poisoned_mutex() {
        let w = Arc::new(Window::new(2));
        let w2 = Arc::clone(&w);
        let _ = std::thread::spawn(move || {
            let _guard = w2.state.lock().unwrap();
            panic!("injected panic while holding the window lock");
        })
        .join();
        assert!(
            w.state.lock().is_err(),
            "the mutex must actually be poisoned"
        );
        assert!(w.acquire());
        assert!(w.acquire());
        w.release();
        assert!(w.acquire(), "released slot is acquirable after poisoning");
        w.close();
        assert!(!w.acquire(), "closed window still reports closed");
    }

    #[test]
    fn serve_core_parses_flag_values() {
        assert_eq!(ServeCore::parse("event-loop"), Some(ServeCore::EventLoop));
        assert_eq!(ServeCore::parse("threads"), Some(ServeCore::Threads));
        assert_eq!(ServeCore::parse("green-threads"), None);
        assert_eq!(ServeCore::default(), ServeCore::EventLoop);
    }
}
