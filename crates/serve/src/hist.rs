//! Fixed-bucket log-linear latency histogram with lock-free recording.
//!
//! Service latency (submit → completion callback) is recorded into a
//! fixed array of atomic counters, so the hot path is one relaxed
//! `fetch_add` and quantile queries never block recorders. The bucket
//! layout (log-linear: exact 0–3 µs, then 4 linear sub-buckets per
//! power-of-two octave, ≤ 25% relative quantile error over
//! 0 µs … ~67 s) is shared with the trace analytics in `segbus-core` —
//! see [`segbus_core::hist`] for the bucket math.

use std::sync::atomic::{AtomicU64, Ordering};

use segbus_core::hist::{bucket_index, bucket_upper_bound, BUCKETS};

/// Lock-free fixed-memory latency histogram (microsecond samples).
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl LatencyHistogram {
    /// An empty histogram (~800 bytes, fixed).
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Bucket index for a microsecond sample.
    fn index(us: u64) -> usize {
        bucket_index(us)
    }

    /// Inclusive upper bound (µs) of the values mapped to `bucket`.
    fn upper_bound(bucket: usize) -> u64 {
        bucket_upper_bound(bucket)
    }

    /// Record one latency sample.
    pub fn record_us(&self, us: u64) {
        self.buckets[Self::index(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`) as the upper bound of the
    /// bucket containing it; 0 when the histogram is empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::upper_bound(i);
            }
        }
        Self::upper_bound(BUCKETS - 1)
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segbus_core::hist::SUBS;

    #[test]
    fn index_and_bound_agree() {
        // Every sample must land in a bucket whose upper bound is >= the
        // sample and within 25% relative error.
        for us in (0..4096u64).chain([10_000, 1_000_000, 50_000_000]) {
            let b = LatencyHistogram::index(us);
            let hi = LatencyHistogram::upper_bound(b);
            assert!(hi >= us, "us={us} bucket={b} hi={hi}");
            if us >= SUBS as u64 {
                assert!(
                    (hi - us) as f64 <= 0.25 * us as f64 + 1.0,
                    "us={us} hi={hi}: bucket too coarse"
                );
            }
            if b > 0 {
                assert!(
                    LatencyHistogram::upper_bound(b - 1) < us,
                    "us={us} also fits bucket {}",
                    b - 1
                );
            }
        }
    }

    #[test]
    fn huge_samples_clamp_to_last_bucket() {
        let h = LatencyHistogram::new();
        h.record_us(u64::MAX);
        h.record_us(1u64 << 40);
        assert_eq!(h.count(), 2);
        assert!(h.quantile_us(1.0) > 0);
    }

    #[test]
    fn quantiles_walk_the_distribution() {
        let h = LatencyHistogram::new();
        // 90 fast samples at 10µs, 10 slow at 10ms.
        for _ in 0..90 {
            h.record_us(10);
        }
        for _ in 0..10 {
            h.record_us(10_000);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_us(0.50);
        let p99 = h.quantile_us(0.99);
        assert!((10..=12).contains(&p50), "p50={p50}");
        assert!((10_000..=12_500).contains(&p99), "p99={p99}");
        assert!(h.quantile_us(0.90) <= 12, "p90 should still be fast");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.99), 0);
    }
}
