//! # segbus-serve
//!
//! A std-only, multi-client batch front end over the SegBus sweep pool —
//! the service tier on the estimator (DESIGN.md §10, §13).
//!
//! Clients speak newline-delimited JSON over TCP (loopback): each line is
//! an `emulate`, `hello`, `stats` or `shutdown` request, each answer one
//! response line correlated by `id`. Requests pipeline: up to
//! [`ServeOptions::window`] may be in flight per connection, with
//! responses delivered in completion order by default (or in request
//! order after a `hello {"in_order": true}` handshake — see [`server`]
//! for the full ordering contract). Every model travels the same typed
//! pipeline as the CLI — parse (DSL or XML), validate, engine pre-flight
//! ([`segbus_core::Engine::try_run_frames`], never the panicking path) —
//! so a service client sees exactly the `P/X/M/V/C` diagnostics `segbus
//! emulate` prints, plus the `S0xx` protocol codes. With
//! [`ServeOptions::cache_dir`] set, the report cache is backed by the
//! persistent [`segbus_core::DiskStore`] and warm-starts across restarts.
//!
//! Two interchangeable connection-handling cores sit behind the
//! [`Server`] facade (selected by [`ServeOptions::core`]): the default
//! **sharded non-blocking event loop** ([`shard`], DESIGN.md §13) with
//! admission control, `S005` load-shed and per-shard/latency stats, and
//! the legacy **thread-per-connection** core ([`server`]) kept as the
//! differential-testing reference. Both produce identical response
//! bodies for identical request streams.
//!
//! The layers, usable independently:
//!
//! * [`json`] — the minimal hand-rolled JSON reader/writer (the workspace
//!   has no external dependencies);
//! * [`protocol`] — request/response encode/decode over [`json`];
//! * [`decode`] — push-based bounded line decoding shared by both cores;
//! * [`reorder`] — the bounded in-order delivery buffer;
//! * [`hist`] — the lock-free fixed-bucket latency histogram;
//! * [`service`] — [`service::BatchService`], the coalescing batcher over
//!   [`segbus_core::CachedPool`]: concurrently arriving jobs merge into
//!   one sweep batch and share the content-addressed report cache;
//! * [`server`] + [`shard`] — the two TCP cores wiring connections to
//!   the service.
//!
//! ```no_run
//! use segbus_serve::{ServeOptions, Server};
//!
//! let server = Server::start(ServeOptions::default()).unwrap();
//! println!("listening on {}", server.addr());
//! server.join(); // until a client sends {"cmd": "shutdown"}
//! ```

#![warn(missing_docs)]

pub mod decode;
pub mod hist;
pub mod json;
pub mod protocol;
pub mod reorder;
pub mod server;
pub mod service;
pub mod shard;

pub use protocol::{Limits, Request, ServeStats, ShardStats};
pub use server::{ServeCore, ServeOptions, Server};
pub use service::{BatchService, JobOutcome, ServiceOptions, ServiceStats};
