//! The newline-delimited JSON request/response protocol.
//!
//! One request per line, one response per line, correlated by the
//! client-chosen `id`. Four commands:
//!
//! * `emulate` — a model (DSL source, or an XML PSDF + PSM pair) plus
//!   optional config overrides; answered with the report summary.
//! * `hello` — optional handshake; `{"in_order": true}` switches the
//!   connection to in-order response delivery (must be the first request
//!   on the connection — see `crate::server` for the ordering contract).
//! * `stats` — the service's cache and batch counters.
//! * `shutdown` — stop accepting connections; answered before the
//!   listener closes.
//!
//! Protocol-level failures use the `S0xx` code family, continuing the
//! taxonomy of DESIGN.md §9: `S001` malformed request line (bad JSON),
//! `S002` invalid request shape (unknown command, missing or ill-typed
//! field), `S003` request line longer than the server's cap (the line is
//! discarded, not buffered), `S004` `frames` out of range (zero, or above
//! the server's `--max-frames` bound), `S005` load shed — the server
//! refused or abandoned the request to protect itself (global in-flight
//! cap reached, reorder buffer over its bound, or a worker fault
//! abandoned the batch); the request was *not* executed and can be
//! retried. Model-level failures pass the underlying `P/X/M/V/C` codes
//! through untouched, so a service client sees exactly the diagnostics
//! the CLI would print.

use segbus_core::{
    ArbitrationPolicy, BatchJob, CacheStats, EmulationReport, EmulatorConfig, ProducerRelease,
};
use segbus_model::SegbusError;

use crate::json::{self, Json, ObjWriter};

/// A decoded request line.
#[derive(Debug)]
pub enum Request {
    /// Run one model and report the result.
    Emulate {
        /// Echoed correlation id (0 when the client sent none).
        id: u64,
        /// The decoded, ready-to-run job (boxed: a [`BatchJob`] is two
        /// orders of magnitude larger than the other variants).
        job: Box<BatchJob>,
    },
    /// Connection handshake (optionally requesting in-order responses).
    Hello {
        /// Echoed correlation id.
        id: u64,
        /// `true` to request in-order response delivery.
        in_order: bool,
    },
    /// Report cache/batch counters.
    Stats {
        /// Echoed correlation id.
        id: u64,
    },
    /// Stop the server.
    Shutdown {
        /// Echoed correlation id.
        id: u64,
    },
}

/// Server-side bounds applied while decoding requests.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Upper bound on an `emulate` request's `frames` (inclusive); jobs
    /// beyond it are rejected with `S004` so one request cannot pin a
    /// worker indefinitely.
    pub max_frames: u64,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits { max_frames: 4096 }
    }
}

fn shape_err(msg: impl Into<String>) -> SegbusError {
    SegbusError::new("S002", msg)
}

/// The `S003` error for a request line exceeding the server's byte cap.
/// Built here (not in the server) so the code lives with the taxonomy.
pub fn oversize_error(max_line_bytes: usize) -> SegbusError {
    SegbusError::new(
        "S003",
        format!("request line exceeds {max_line_bytes} bytes and was discarded"),
    )
}

/// The `S005` load-shed error: the request was refused or abandoned to
/// keep the server bounded (never silently stalled). Safe to retry.
pub fn shed_error(reason: &str) -> SegbusError {
    SegbusError::new("S005", format!("load shed: {reason}; retry later"))
}

/// The `S002` error for an `in_order` handshake that is not the first
/// request on its connection. Shared by both serve cores so the
/// differential contract covers the exact bytes.
pub fn handshake_order_error() -> SegbusError {
    SegbusError::new(
        "S002",
        "the in_order handshake must be the first request on the connection",
    )
}

fn frames_err(frames: u64, limits: &Limits) -> SegbusError {
    SegbusError::new(
        "S004",
        format!(
            "\"frames\" is {frames}, outside the accepted range 1..={}",
            limits.max_frames
        ),
    )
}

/// Decode one request line. On failure the caller still gets the `id` (if
/// one could be read) so the error response can be correlated.
pub fn parse_request(line: &str, limits: &Limits) -> Result<Request, (u64, SegbusError)> {
    let v = json::parse(line).map_err(|e| {
        (
            0,
            SegbusError::new("S001", format!("malformed request: {e}")),
        )
    })?;
    let id = v.get("id").and_then(Json::as_u64).unwrap_or(0);
    let with_id = |e: SegbusError| (id, e);
    let cmd = v
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| with_id(shape_err("request lacks a \"cmd\" string")))?;
    match cmd {
        "stats" => Ok(Request::Stats { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        "hello" => Ok(Request::Hello {
            id,
            in_order: v.get("in_order").and_then(Json::as_bool).unwrap_or(false),
        }),
        "emulate" => {
            let job = decode_job(&v, limits).map_err(with_id)?;
            Ok(Request::Emulate {
                id,
                job: Box::new(job),
            })
        }
        other => Err(with_id(shape_err(format!(
            "unknown cmd {other:?} (emulate | hello | stats | shutdown)"
        )))),
    }
}

/// Build the [`BatchJob`] described by an `emulate` request object.
pub fn decode_job(v: &Json, limits: &Limits) -> Result<BatchJob, SegbusError> {
    let mut psm = match v.get("format").and_then(Json::as_str).unwrap_or("dsl") {
        "dsl" => {
            let source = v
                .get("source")
                .and_then(Json::as_str)
                .ok_or_else(|| shape_err("emulate (dsl) lacks a \"source\" string"))?;
            segbus_dsl::parse_system(source)?
        }
        "xml" => {
            let psdf = v
                .get("psdf")
                .and_then(Json::as_str)
                .ok_or_else(|| shape_err("emulate (xml) lacks a \"psdf\" string"))?;
            let psm_doc = v
                .get("psm")
                .and_then(Json::as_str)
                .ok_or_else(|| shape_err("emulate (xml) lacks a \"psm\" string"))?;
            let pd = segbus_xml::parse(psdf)?;
            let pm = segbus_xml::parse(psm_doc)?;
            segbus_xml::import::import_system(&pd, &pm)?
        }
        other => {
            return Err(shape_err(format!("unknown format {other:?} (dsl | xml)")));
        }
    };
    if let Some(s) = v.get("package_size") {
        let s = s
            .as_u64()
            .filter(|&s| s <= u32::MAX as u64)
            .ok_or_else(|| shape_err("\"package_size\" must be a u32"))?;
        psm = psm.with_package_size(s as u32)?;
    }
    let frames = match v.get("frames") {
        None => 1,
        Some(f) => f
            .as_u64()
            .ok_or_else(|| shape_err("\"frames\" must be an unsigned integer"))?,
    };
    if frames == 0 || frames > limits.max_frames {
        return Err(frames_err(frames, limits));
    }
    let config = decode_config(v)?;
    Ok(BatchJob {
        psm,
        config,
        frames,
    })
}

/// The [`EmulatorConfig`] overrides of an `emulate` request.
fn decode_config(v: &Json) -> Result<EmulatorConfig, SegbusError> {
    let mut config = if v.get("detailed").and_then(Json::as_bool).unwrap_or(false) {
        EmulatorConfig::detailed()
    } else {
        EmulatorConfig::default()
    };
    if let Some(t) = v.get("trace").and_then(Json::as_bool) {
        config.trace = t;
    }
    if let Some(a) = v.get("arbitration") {
        config.arbitration = match a.as_str() {
            Some("fifo") => ArbitrationPolicy::Fifo,
            Some("fixed_priority") => ArbitrationPolicy::FixedPriority,
            Some("fair_round_robin") => ArbitrationPolicy::FairRoundRobin,
            _ => {
                return Err(shape_err(
                    "\"arbitration\" must be fifo | fixed_priority | fair_round_robin",
                ))
            }
        };
    }
    if let Some(r) = v.get("release") {
        config.producer_release = match r.as_str() {
            Some("after_delivery") => ProducerRelease::AfterDelivery,
            Some("after_local_phase") => ProducerRelease::AfterLocalPhase,
            _ => {
                return Err(shape_err(
                    "\"release\" must be after_delivery | after_local_phase",
                ))
            }
        };
    }
    Ok(config)
}

/// Encode a successful `emulate` response.
///
/// `report` carries the full paper-style print-out, so a service client
/// sees byte-for-byte what `segbus emulate` prints (the batch/emulate
/// bit-identity contract).
pub fn encode_report(id: u64, cached: bool, digest: u64, report: &EmulationReport) -> String {
    let mut w = ObjWriter::new();
    w.uint("id", id)
        .bool("ok", true)
        .bool("cached", cached)
        .str("digest", &format!("{digest:016x}"))
        .uint("makespan_ps", report.makespan.0)
        .uint("execution_time_ps", report.execution_time().0)
        .float("execution_time_us", report.execution_time().as_micros_f64())
        .uint("ca_tct", report.ca.tct)
        .str("report", &report.paper_style());
    w.finish()
}

/// Encode a failure response carrying a typed [`SegbusError`].
pub fn encode_error(id: u64, e: &SegbusError) -> String {
    let mut w = ObjWriter::new();
    w.uint("id", id)
        .bool("ok", false)
        .str("code", e.code)
        .str("error", &e.to_string());
    w.finish()
}

/// Encode the `hello` acknowledgement: the ordering mode now in effect
/// and the server's pipelining window.
pub fn encode_hello(id: u64, in_order: bool, window: usize) -> String {
    let mut w = ObjWriter::new();
    w.uint("id", id)
        .bool("ok", true)
        .bool("in_order", in_order)
        .uint("window", window as u64);
    w.finish()
}

/// Encode a `stats` response.
pub fn encode_stats(id: u64, stats: CacheStats, batches: u64, jobs: u64, threads: usize) -> String {
    let mut w = ObjWriter::new();
    w.uint("id", id)
        .bool("ok", true)
        .uint("hits", stats.hits)
        .uint("misses", stats.misses)
        .uint("evictions", stats.evictions)
        .uint("len", stats.len as u64)
        .uint("capacity", stats.capacity as u64)
        .uint("disk_hits", stats.disk_hits)
        .uint("disk_len", stats.disk_len as u64)
        .uint("batches", batches)
        .uint("jobs", jobs)
        .uint("threads", threads as u64);
    w.finish()
}

/// Per-shard figures of the event-loop core's `stats` response.
#[derive(Clone, Debug, Default)]
pub struct ShardStats {
    /// Connections currently registered on the shard.
    pub connections: u64,
    /// Depth of the shard's ready-ring (completions + registrations
    /// waiting for the shard thread).
    pub queue_depth: u64,
    /// `S005` responses this shard has issued.
    pub sheds: u64,
}

/// The event-loop core's `stats` snapshot: service counters plus
/// shard/admission/latency figures.
#[derive(Clone, Debug, Default)]
pub struct ServeStats {
    /// Cache counters.
    pub cache: CacheStats,
    /// Batches executed.
    pub batches: u64,
    /// Jobs executed across all batches.
    pub jobs: u64,
    /// Worker threads of the sweep pool.
    pub threads: usize,
    /// Emulation jobs submitted and not yet completed.
    pub in_flight: u64,
    /// Global in-flight cap (admission control bound).
    pub max_in_flight: u64,
    /// One entry per IO shard.
    pub shards: Vec<ShardStats>,
    /// p50 service latency (submit → completion), microseconds.
    pub p50_us: u64,
    /// p99 service latency (submit → completion), microseconds.
    pub p99_us: u64,
    /// Latency samples behind the quantiles.
    pub latency_samples: u64,
}

/// Encode the event-loop core's `stats` response: a superset of
/// [`encode_stats`] (same base fields, so clients of the threads core
/// keep working) plus cache hit tiers, admission counters and latency
/// quantiles.
pub fn encode_stats_full(id: u64, s: &ServeStats) -> String {
    let total_sheds: u64 = s.shards.iter().map(|sh| sh.sheds).sum();
    let conns: Vec<u64> = s.shards.iter().map(|sh| sh.connections).collect();
    let depths: Vec<u64> = s.shards.iter().map(|sh| sh.queue_depth).collect();
    let sheds: Vec<u64> = s.shards.iter().map(|sh| sh.sheds).collect();
    let mut w = ObjWriter::new();
    w.uint("id", id)
        .bool("ok", true)
        .uint("hits", s.cache.hits)
        .uint("misses", s.cache.misses)
        .uint("evictions", s.cache.evictions)
        .uint("len", s.cache.len as u64)
        .uint("capacity", s.cache.capacity as u64)
        .uint("disk_hits", s.cache.disk_hits)
        .uint("disk_len", s.cache.disk_len as u64)
        .uint("batches", s.batches)
        .uint("jobs", s.jobs)
        .uint("threads", s.threads as u64)
        .uint("memory_hits", s.cache.memory_hits())
        .uint("in_flight", s.in_flight)
        .uint("max_in_flight", s.max_in_flight)
        .uint("sheds", total_sheds)
        .uint("shards", s.shards.len() as u64)
        .uints("shard_connections", &conns)
        .uints("shard_queue_depth", &depths)
        .uints("shard_sheds", &sheds)
        .uint("p50_us", s.p50_us)
        .uint("p99_us", s.p99_us)
        .uint("latency_samples", s.latency_samples);
    w.finish()
}

/// Encode the `shutdown` acknowledgement.
pub fn encode_shutdown(id: u64) -> String {
    let mut w = ObjWriter::new();
    w.uint("id", id)
        .bool("ok", true)
        .bool("shutting_down", true);
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::write_str;

    const DEMO: &str = "application a {\n  process X initial;\n  process Y final;\n  flow X -> Y { items 72; order 1; ticks 100; }\n}\nplatform p {\n  segment S0 { freq_mhz 100; hosts X; }\n  segment S1 { freq_mhz 100; hosts Y; }\n}\n";

    fn emulate_line(extra: &str) -> String {
        let mut src = String::new();
        write_str(&mut src, DEMO);
        format!(r#"{{"id": 5, "cmd": "emulate", "source": {src}{extra}}}"#)
    }

    fn parse(line: &str) -> Result<Request, (u64, SegbusError)> {
        parse_request(line, &Limits::default())
    }

    #[test]
    fn decodes_a_dsl_emulate_request() {
        let req = parse(&emulate_line("")).unwrap();
        match req {
            Request::Emulate { id, job } => {
                assert_eq!(id, 5);
                assert_eq!(job.frames, 1);
                assert_eq!(job.config, EmulatorConfig::default());
                assert_eq!(job.psm.application().process_count(), 2);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn overrides_reach_the_job() {
        let req = parse(&emulate_line(
            r#", "frames": 3, "package_size": 18, "detailed": true, "trace": true, "arbitration": "fair_round_robin", "release": "after_local_phase""#,
        ))
        .unwrap();
        match req {
            Request::Emulate { job, .. } => {
                assert_eq!(job.frames, 3);
                assert_eq!(job.psm.platform().package_size(), 18);
                assert!(job.config.trace);
                assert_eq!(job.config.arbitration, ArbitrationPolicy::FairRoundRobin);
                assert_eq!(
                    job.config.producer_release,
                    ProducerRelease::AfterLocalPhase
                );
                assert_eq!(job.config.timing, segbus_core::TimingParams::detailed());
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn protocol_errors_are_typed() {
        // Bad JSON: S001, id unknown.
        let (id, e) = parse("{nope").unwrap_err();
        assert_eq!((id, e.code), (0, "S001"));
        // Unknown cmd: S002, id preserved.
        let (id, e) = parse(r#"{"id": 9, "cmd": "explode"}"#).unwrap_err();
        assert_eq!((id, e.code), (9, "S002"));
        // Missing source.
        let (_, e) = parse(r#"{"id": 1, "cmd": "emulate"}"#).unwrap_err();
        assert_eq!(e.code, "S002");
        // Model-level errors keep their own codes (P004: no platform).
        let (_, e) =
            parse(r#"{"id": 1, "cmd": "emulate", "source": "application a { }"}"#).unwrap_err();
        assert_eq!(e.code, "P004");
    }

    #[test]
    fn frames_are_validated_at_the_boundary() {
        // Zero frames: rejected before the job is ever built.
        let (id, e) = parse(&emulate_line(r#", "frames": 0"#)).unwrap_err();
        assert_eq!((id, e.code), (5, "S004"));
        // Above the configured cap: rejected with the same code.
        let (_, e) = parse(&emulate_line(r#", "frames": 4097"#)).unwrap_err();
        assert_eq!(e.code, "S004");
        let huge = format!(r#", "frames": {}"#, u64::MAX);
        let (_, e) = parse(&emulate_line(&huge)).unwrap_err();
        assert_eq!(e.code, "S004");
        // The cap is inclusive and configurable.
        let tight = Limits { max_frames: 2 };
        assert!(parse_request(&emulate_line(r#", "frames": 2"#), &tight).is_ok());
        let (_, e) = parse_request(&emulate_line(r#", "frames": 3"#), &tight).unwrap_err();
        assert_eq!(e.code, "S004");
        // A non-integer is still a shape error, not a range error.
        let (_, e) = parse(&emulate_line(r#", "frames": "many""#)).unwrap_err();
        assert_eq!(e.code, "S002");
    }

    #[test]
    fn hello_decodes_and_oversize_is_s003() {
        match parse(r#"{"id": 3, "cmd": "hello", "in_order": true}"#).unwrap() {
            Request::Hello { id, in_order } => assert_eq!((id, in_order), (3, true)),
            other => panic!("wrong request: {other:?}"),
        }
        match parse(r#"{"cmd": "hello"}"#).unwrap() {
            Request::Hello { id, in_order } => assert_eq!((id, in_order), (0, false)),
            other => panic!("wrong request: {other:?}"),
        }
        assert_eq!(oversize_error(4096).code, "S003");
        let v = crate::json::parse(&encode_hello(3, true, 8)).unwrap();
        assert_eq!(v.get("in_order").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("window").and_then(Json::as_u64), Some(8));
    }

    #[test]
    fn responses_parse_back() {
        let line = encode_stats(2, CacheStats::default(), 3, 10, 4);
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(crate::json::Json::as_bool), Some(true));
        assert_eq!(
            v.get("batches").and_then(crate::json::Json::as_u64),
            Some(3)
        );
        let e = SegbusError::new("C001", "frame count is zero");
        let v = crate::json::parse(&encode_error(4, &e)).unwrap();
        assert_eq!(
            v.get("code").and_then(crate::json::Json::as_str),
            Some("C001")
        );
    }
}
