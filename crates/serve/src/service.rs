//! The coalescing batch service: many submitters, one cached pool.
//!
//! Jobs arriving from any number of threads funnel into one mpsc channel.
//! A single batcher thread blocks for the first job, then drains whatever
//! else has queued up behind it and runs the whole set as one
//! [`CachedPool::run_batch`] — so concurrently arriving jobs coalesce into
//! sweep batches and share both the worker pool and the report cache,
//! while a lone job still starts immediately (no batching delay window).

use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use segbus_core::{BatchJob, CacheStats, CachedPool, EmulationReport, EmulatorConfig, SweepPool};
use segbus_model::SegbusError;

/// What the service returns for one submitted job.
#[derive(Debug)]
pub struct JobOutcome {
    /// The report, or the typed rejection.
    pub result: Result<EmulationReport, SegbusError>,
    /// `true` if the report was resident in the cache when the job's
    /// batch started (an answered-without-emulation hit).
    pub cached: bool,
    /// The job's content digest (cache key), for client-side correlation.
    pub digest: u64,
}

/// Service-wide counters: the cache's, plus batch shape.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Cache counters.
    pub cache: CacheStats,
    /// Batches executed (each covering ≥ 1 job).
    pub batches: u64,
    /// Jobs executed across all batches.
    pub jobs: u64,
}

enum Msg {
    Run(Box<BatchJob>, Sender<JobOutcome>),
    Stats(Sender<ServiceStats>),
}

/// Handle to a running batch service. Cloning is cheap; every clone
/// submits into the same batcher. The batcher thread exits when the last
/// handle is dropped.
#[derive(Clone)]
pub struct BatchService {
    tx: Sender<Msg>,
    threads: usize,
}

impl BatchService {
    /// Start a service over a [`CachedPool`] with the given worker-pool
    /// default config, worker count (`0` = all hardware threads) and
    /// cache capacity.
    pub fn start(config: EmulatorConfig, threads: usize, cache_capacity: usize) -> BatchService {
        let pool = if threads == 0 {
            SweepPool::new(config)
        } else {
            SweepPool::with_threads(config, threads)
        };
        let effective = pool.threads();
        let (tx, rx) = channel();
        let pool = CachedPool::with_pool(pool, cache_capacity);
        // The batcher owns the pool; it ends when every sender is gone.
        let _batcher: JoinHandle<()> = std::thread::spawn(move || batcher(rx, pool));
        BatchService {
            tx,
            threads: effective,
        }
    }

    /// The worker count of the underlying pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Submit a job; the returned receiver yields its outcome once the
    /// batch it lands in completes.
    pub fn submit(&self, job: BatchJob) -> Receiver<JobOutcome> {
        let (reply_tx, reply_rx) = channel();
        self.tx
            .send(Msg::Run(Box::new(job), reply_tx))
            .expect("batcher thread lives as long as any handle");
        reply_rx
    }

    /// Submit a job and block for its outcome.
    pub fn run(&self, job: BatchJob) -> JobOutcome {
        self.submit(job)
            .recv()
            .expect("batcher always answers a submitted job")
    }

    /// Current service counters.
    pub fn stats(&self) -> ServiceStats {
        let (reply_tx, reply_rx) = channel();
        self.tx
            .send(Msg::Stats(reply_tx))
            .expect("batcher thread lives as long as any handle");
        reply_rx
            .recv()
            .expect("batcher always answers a stats request")
    }
}

fn batcher(rx: Receiver<Msg>, mut pool: CachedPool) {
    let mut batches = 0u64;
    let mut total_jobs = 0u64;
    while let Ok(first) = rx.recv() {
        // Coalesce: take everything already queued behind the first
        // message without blocking.
        let mut msgs = vec![first];
        while let Ok(m) = rx.try_recv() {
            msgs.push(m);
        }
        let mut jobs: Vec<BatchJob> = Vec::new();
        let mut replies: Vec<Sender<JobOutcome>> = Vec::new();
        for m in msgs {
            match m {
                Msg::Run(job, reply) => {
                    jobs.push(*job);
                    replies.push(reply);
                }
                Msg::Stats(reply) => {
                    let _ = reply.send(ServiceStats {
                        cache: pool.stats(),
                        batches,
                        jobs: total_jobs,
                    });
                }
            }
        }
        if jobs.is_empty() {
            continue;
        }
        batches += 1;
        total_jobs += jobs.len() as u64;
        let cached: Vec<bool> = jobs.iter().map(|j| pool.is_cached(j)).collect();
        let digests: Vec<u64> = jobs.iter().map(|j| j.digest()).collect();
        let results = pool.run_batch(&jobs);
        for ((result, reply), (was_cached, digest)) in results
            .into_iter()
            .zip(replies)
            .zip(cached.into_iter().zip(digests))
        {
            // A dead receiver (client hung up) is not an error.
            let _ = reply.send(JobOutcome {
                result,
                cached: was_cached,
                digest,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = "application a {\n  process X initial;\n  process Y final;\n  flow X -> Y { items 72; order 1; ticks 100; }\n}\nplatform p {\n  segment S0 { freq_mhz 100; hosts X; }\n  segment S1 { freq_mhz 100; hosts Y; }\n}\n";

    fn job() -> BatchJob {
        BatchJob::new(
            segbus_dsl::parse_system(DEMO).unwrap(),
            EmulatorConfig::default(),
        )
    }

    #[test]
    fn run_and_cache_flags() {
        let svc = BatchService::start(EmulatorConfig::default(), 2, 16);
        let first = svc.run(job());
        assert!(first.result.is_ok());
        assert!(!first.cached);
        let second = svc.run(job());
        assert!(second.cached, "second identical job is a cache hit");
        assert_eq!(first.digest, second.digest);
        assert_eq!(
            first.result.unwrap().makespan,
            second.result.unwrap().makespan
        );
        let stats = svc.stats();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 1);
        assert_eq!(stats.jobs, 2);
        assert!(stats.batches >= 1);
    }

    #[test]
    fn concurrent_submitters_coalesce_and_all_get_answers() {
        let svc = BatchService::start(EmulatorConfig::default(), 2, 64);
        let receivers: Vec<_> = (0..24).map(|_| svc.submit(job())).collect();
        let mut makespans = Vec::new();
        for rx in receivers {
            let outcome = rx.recv().unwrap();
            makespans.push(outcome.result.unwrap().makespan);
        }
        assert!(makespans.windows(2).all(|w| w[0] == w[1]));
        let stats = svc.stats();
        // 24 identical jobs: exactly one emulation, 23 answered as hits.
        assert_eq!(stats.cache.misses, 1);
        assert_eq!(stats.cache.hits, 23);
        assert_eq!(stats.jobs, 24);
        assert!(
            stats.batches <= 24,
            "batches never exceed jobs; coalescing usually makes them fewer"
        );
    }
}
