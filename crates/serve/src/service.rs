//! The coalescing batch service: many submitters, one cached pool.
//!
//! Jobs arriving from any number of threads funnel into one mpsc channel.
//! A single batcher thread blocks for the first job, then drains whatever
//! else has queued up behind it and runs the whole set as one
//! [`CachedPool::run_batch`] — so concurrently arriving jobs coalesce into
//! sweep batches and share both the worker pool and the report cache,
//! while a lone job still starts immediately (no batching delay window).

use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use segbus_core::{BatchJob, CacheStats, CachedPool, EmulationReport, EmulatorConfig, SweepPool};
use segbus_model::SegbusError;

/// What the service returns for one submitted job.
#[derive(Debug)]
pub struct JobOutcome {
    /// The report, or the typed rejection.
    pub result: Result<EmulationReport, SegbusError>,
    /// `true` if the report was resident in the cache when the job's
    /// batch started (an answered-without-emulation hit).
    pub cached: bool,
    /// The job's content digest (cache key), for client-side correlation.
    pub digest: u64,
}

/// Service-wide counters: the cache's, plus batch shape.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Cache counters.
    pub cache: CacheStats,
    /// Batches executed (each covering ≥ 1 job).
    pub batches: u64,
    /// Jobs executed across all batches.
    pub jobs: u64,
}

/// How the service is constructed (the server's knobs minus the socket).
#[derive(Clone, Debug)]
pub struct ServiceOptions {
    /// Default emulator configuration for the pool workers (per-job
    /// overrides still apply).
    pub config: EmulatorConfig,
    /// Worker threads of the sweep pool (`0` = all hardware threads).
    pub threads: usize,
    /// In-memory report-cache capacity in entries.
    pub cache_capacity: usize,
    /// Directory of the persistent report store; `None` = memory only.
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServiceOptions {
    fn default() -> ServiceOptions {
        ServiceOptions {
            config: EmulatorConfig::default(),
            threads: 0,
            cache_capacity: 256,
            cache_dir: None,
        }
    }
}

/// What a submitted job's outcome is handed to: a one-shot callback run
/// on the batcher thread (keep it cheap — encode and enqueue, no I/O that
/// can block the next batch).
type Reply = Box<dyn FnOnce(JobOutcome) + Send>;

enum Msg {
    Run(Box<BatchJob>, Reply),
    Stats(Sender<ServiceStats>),
}

/// Handle to a running batch service. Cloning is cheap; every clone
/// submits into the same batcher. The batcher thread exits when the last
/// handle is dropped.
#[derive(Clone)]
pub struct BatchService {
    tx: Sender<Msg>,
    threads: usize,
}

impl BatchService {
    /// Start a service over a [`CachedPool`]. Fails only when a
    /// `cache_dir` is given and the persistent store cannot be opened.
    pub fn start(opts: ServiceOptions) -> std::io::Result<BatchService> {
        let pool = if opts.threads == 0 {
            SweepPool::new(opts.config)
        } else {
            SweepPool::with_threads(opts.config, opts.threads)
        };
        let effective = pool.threads();
        let (tx, rx) = channel();
        let mut pool = CachedPool::with_pool(pool, opts.cache_capacity);
        if let Some(dir) = &opts.cache_dir {
            pool.attach_disk(dir)?;
        }
        // The batcher owns the pool; it ends when every sender is gone.
        let _batcher: JoinHandle<()> = std::thread::spawn(move || batcher(rx, pool));
        Ok(BatchService {
            tx,
            threads: effective,
        })
    }

    /// The worker count of the underlying pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Submit a job with a completion callback, without blocking. The
    /// callback runs on the batcher thread once the job's batch completes
    /// — this is the pipelining primitive: a connection handler can keep
    /// any number of jobs in flight and let the callbacks feed its writer.
    pub fn submit_with(&self, job: BatchJob, reply: impl FnOnce(JobOutcome) + Send + 'static) {
        self.tx
            .send(Msg::Run(Box::new(job), Box::new(reply)))
            .expect("batcher thread lives as long as any handle");
    }

    /// Submit a job; the returned receiver yields its outcome once the
    /// batch it lands in completes.
    pub fn submit(&self, job: BatchJob) -> Receiver<JobOutcome> {
        let (reply_tx, reply_rx) = channel();
        self.submit_with(job, move |outcome| {
            // A dead receiver (client hung up) is not an error.
            let _ = reply_tx.send(outcome);
        });
        reply_rx
    }

    /// Submit a job and block for its outcome.
    pub fn run(&self, job: BatchJob) -> JobOutcome {
        self.submit(job)
            .recv()
            .expect("batcher always answers a submitted job")
    }

    /// Current service counters.
    pub fn stats(&self) -> ServiceStats {
        let (reply_tx, reply_rx) = channel();
        self.tx
            .send(Msg::Stats(reply_tx))
            .expect("batcher thread lives as long as any handle");
        reply_rx
            .recv()
            .expect("batcher always answers a stats request")
    }
}

fn batcher(rx: Receiver<Msg>, mut pool: CachedPool) {
    let mut batches = 0u64;
    let mut total_jobs = 0u64;
    while let Ok(first) = rx.recv() {
        // Coalesce: take everything already queued behind the first
        // message without blocking.
        let mut msgs = vec![first];
        while let Ok(m) = rx.try_recv() {
            msgs.push(m);
        }
        let mut jobs: Vec<BatchJob> = Vec::new();
        let mut replies: Vec<Reply> = Vec::new();
        for m in msgs {
            match m {
                Msg::Run(job, reply) => {
                    jobs.push(*job);
                    replies.push(reply);
                }
                Msg::Stats(reply) => {
                    let _ = reply.send(ServiceStats {
                        cache: pool.stats(),
                        batches,
                        jobs: total_jobs,
                    });
                }
            }
        }
        if jobs.is_empty() {
            continue;
        }
        batches += 1;
        total_jobs += jobs.len() as u64;
        let cached: Vec<bool> = jobs.iter().map(|j| pool.is_cached(j)).collect();
        let digests: Vec<u64> = jobs.iter().map(|j| j.digest()).collect();
        let results = pool.run_batch(&jobs);
        for ((result, reply), (was_cached, digest)) in results
            .into_iter()
            .zip(replies)
            .zip(cached.into_iter().zip(digests))
        {
            reply(JobOutcome {
                result,
                cached: was_cached,
                digest,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = "application a {\n  process X initial;\n  process Y final;\n  flow X -> Y { items 72; order 1; ticks 100; }\n}\nplatform p {\n  segment S0 { freq_mhz 100; hosts X; }\n  segment S1 { freq_mhz 100; hosts Y; }\n}\n";

    fn job() -> BatchJob {
        BatchJob::new(
            segbus_dsl::parse_system(DEMO).unwrap(),
            EmulatorConfig::default(),
        )
    }

    fn svc(threads: usize, cache_capacity: usize) -> BatchService {
        BatchService::start(ServiceOptions {
            threads,
            cache_capacity,
            ..ServiceOptions::default()
        })
        .unwrap()
    }

    #[test]
    fn run_and_cache_flags() {
        let svc = svc(2, 16);
        let first = svc.run(job());
        assert!(first.result.is_ok());
        assert!(!first.cached);
        let second = svc.run(job());
        assert!(second.cached, "second identical job is a cache hit");
        assert_eq!(first.digest, second.digest);
        assert_eq!(
            first.result.unwrap().makespan,
            second.result.unwrap().makespan
        );
        let stats = svc.stats();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 1);
        assert_eq!(stats.jobs, 2);
        assert!(stats.batches >= 1);
    }

    #[test]
    fn concurrent_submitters_coalesce_and_all_get_answers() {
        let svc = svc(2, 64);
        let receivers: Vec<_> = (0..24).map(|_| svc.submit(job())).collect();
        let mut makespans = Vec::new();
        for rx in receivers {
            let outcome = rx.recv().unwrap();
            makespans.push(outcome.result.unwrap().makespan);
        }
        assert!(makespans.windows(2).all(|w| w[0] == w[1]));
        let stats = svc.stats();
        // 24 identical jobs: exactly one emulation, 23 answered as hits.
        assert_eq!(stats.cache.misses, 1);
        assert_eq!(stats.cache.hits, 23);
        assert_eq!(stats.jobs, 24);
        assert!(
            stats.batches <= 24,
            "batches never exceed jobs; coalescing usually makes them fewer"
        );
    }

    #[test]
    fn submit_with_runs_every_callback() {
        use std::sync::mpsc::channel;
        let svc = svc(2, 64);
        let (tx, rx) = channel();
        for i in 0u64..12 {
            let tx = tx.clone();
            svc.submit_with(job(), move |outcome| {
                let _ = tx.send((i, outcome.result.is_ok()));
            });
        }
        drop(tx);
        let mut seen: Vec<u64> = rx
            .iter()
            .map(|(i, ok)| {
                assert!(ok);
                i
            })
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..12).collect::<Vec<_>>());
    }
}
