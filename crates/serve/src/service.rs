//! The coalescing batch service: many submitters, one cached pool.
//!
//! Jobs arriving from any number of threads funnel into one mpsc channel.
//! A single batcher thread blocks for the first job, then drains whatever
//! else has queued up behind it and runs the whole set as one
//! [`CachedPool::run_batch`] — so concurrently arriving jobs coalesce into
//! sweep batches and share both the worker pool and the report cache,
//! while a lone job still starts immediately (no batching delay window).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

use segbus_core::{BatchJob, CacheStats, CachedPool, EmulationReport, EmulatorConfig, SweepPool};
use segbus_model::SegbusError;

use crate::protocol;

/// What the service returns for one submitted job.
#[derive(Debug)]
pub struct JobOutcome {
    /// The report, or the typed rejection.
    pub result: Result<EmulationReport, SegbusError>,
    /// `true` if the report was resident in the cache when the job's
    /// batch started (an answered-without-emulation hit).
    pub cached: bool,
    /// The job's content digest (cache key), for client-side correlation.
    pub digest: u64,
}

/// Service-wide counters: the cache's, plus batch shape.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Cache counters.
    pub cache: CacheStats,
    /// Batches executed (each covering ≥ 1 job).
    pub batches: u64,
    /// Jobs executed across all batches.
    pub jobs: u64,
}

/// How the service is constructed (the server's knobs minus the socket).
#[derive(Clone, Debug)]
pub struct ServiceOptions {
    /// Default emulator configuration for the pool workers (per-job
    /// overrides still apply).
    pub config: EmulatorConfig,
    /// Worker threads of the sweep pool (`0` = all hardware threads).
    pub threads: usize,
    /// In-memory report-cache capacity in entries.
    pub cache_capacity: usize,
    /// Directory of the persistent report store; `None` = memory only.
    pub cache_dir: Option<PathBuf>,
    /// Test instrumentation: panic inside the batcher when a batch
    /// contains a job with exactly this `frames` value, exercising the
    /// worker-fault shed path. `None` (the default) in production.
    #[doc(hidden)]
    pub fault_frames: Option<u64>,
}

impl Default for ServiceOptions {
    fn default() -> ServiceOptions {
        ServiceOptions {
            config: EmulatorConfig::default(),
            threads: 0,
            cache_capacity: 256,
            cache_dir: None,
            fault_frames: None,
        }
    }
}

/// What a submitted job's outcome is handed to: a one-shot callback run
/// on the batcher thread (keep it cheap — encode and enqueue, no I/O that
/// can block the next batch).
type Reply = Box<dyn FnOnce(JobOutcome) + Send>;

enum Msg {
    Run(Box<BatchJob>, Reply),
    Stats(Sender<ServiceStats>),
}

/// Handle to a running batch service. Cloning is cheap; every clone
/// submits into the same batcher. The batcher thread exits when the last
/// handle is dropped.
#[derive(Clone)]
pub struct BatchService {
    tx: Sender<Msg>,
    threads: usize,
    published: Arc<Mutex<ServiceStats>>,
}

impl BatchService {
    /// Start a service over a [`CachedPool`]. Fails only when a
    /// `cache_dir` is given and the persistent store cannot be opened.
    pub fn start(opts: ServiceOptions) -> std::io::Result<BatchService> {
        let pool = if opts.threads == 0 {
            SweepPool::new(opts.config)
        } else {
            SweepPool::with_threads(opts.config, opts.threads)
        };
        let effective = pool.threads();
        let (tx, rx) = channel();
        let mut pool = CachedPool::with_pool(pool, opts.cache_capacity);
        if let Some(dir) = &opts.cache_dir {
            pool.attach_disk(dir)?;
        }
        let published = Arc::new(Mutex::new(ServiceStats {
            cache: pool.stats(),
            ..ServiceStats::default()
        }));
        let snapshot = Arc::clone(&published);
        let fault = opts.fault_frames;
        // The batcher owns the pool; it ends when every sender is gone.
        let _batcher: JoinHandle<()> =
            std::thread::spawn(move || batcher(rx, pool, snapshot, fault));
        Ok(BatchService {
            tx,
            threads: effective,
            published,
        })
    }

    /// The worker count of the underlying pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Submit a job with a completion callback, without blocking. The
    /// callback runs on the batcher thread once the job's batch completes
    /// — this is the pipelining primitive: a connection handler can keep
    /// any number of jobs in flight and let the callbacks feed its writer.
    pub fn submit_with(&self, job: BatchJob, reply: impl FnOnce(JobOutcome) + Send + 'static) {
        self.tx
            .send(Msg::Run(Box::new(job), Box::new(reply)))
            .expect("batcher thread lives as long as any handle");
    }

    /// Submit a job; the returned receiver yields its outcome once the
    /// batch it lands in completes.
    pub fn submit(&self, job: BatchJob) -> Receiver<JobOutcome> {
        let (reply_tx, reply_rx) = channel();
        self.submit_with(job, move |outcome| {
            // A dead receiver (client hung up) is not an error.
            let _ = reply_tx.send(outcome);
        });
        reply_rx
    }

    /// Submit a job and block for its outcome.
    pub fn run(&self, job: BatchJob) -> JobOutcome {
        self.submit(job)
            .recv()
            .expect("batcher always answers a submitted job")
    }

    /// Current service counters, serialized through the batcher (exact,
    /// but waits for any batch in progress).
    pub fn stats(&self) -> ServiceStats {
        let (reply_tx, reply_rx) = channel();
        self.tx
            .send(Msg::Stats(reply_tx))
            .expect("batcher thread lives as long as any handle");
        reply_rx
            .recv()
            .expect("batcher always answers a stats request")
    }

    /// The counters as of the last completed batch, without waiting on
    /// the batcher. The snapshot is published *before* that batch's reply
    /// callbacks run, so once a client has seen a job's response the
    /// published counters already include its batch. This is what the
    /// event-loop core serves from — an IO shard must never block behind
    /// an emulation batch.
    pub fn stats_published(&self) -> ServiceStats {
        *lock_recover(&self.published)
    }
}

/// Lock a mutex, recovering the guard from a poisoned lock: the protected
/// state stays valid even if a holder panicked mid-update. Shared by the
/// serve crate's synchronisation points so one panicking thread can never
/// cascade into panics on every later lock.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn batcher(
    rx: Receiver<Msg>,
    mut pool: CachedPool,
    published: Arc<Mutex<ServiceStats>>,
    fault_frames: Option<u64>,
) {
    let mut batches = 0u64;
    let mut total_jobs = 0u64;
    while let Ok(first) = rx.recv() {
        // Coalesce: take everything already queued behind the first
        // message without blocking.
        let mut msgs = vec![first];
        while let Ok(m) = rx.try_recv() {
            msgs.push(m);
        }
        let mut jobs: Vec<BatchJob> = Vec::new();
        let mut replies: Vec<Reply> = Vec::new();
        for m in msgs {
            match m {
                Msg::Run(job, reply) => {
                    jobs.push(*job);
                    replies.push(reply);
                }
                Msg::Stats(reply) => {
                    let _ = reply.send(ServiceStats {
                        cache: pool.stats(),
                        batches,
                        jobs: total_jobs,
                    });
                }
            }
        }
        if jobs.is_empty() {
            continue;
        }
        batches += 1;
        total_jobs += jobs.len() as u64;
        let cached: Vec<bool> = jobs.iter().map(|j| pool.is_cached(j)).collect();
        let digests: Vec<u64> = jobs.iter().map(|j| j.digest()).collect();
        // A panicking worker must not kill the batcher (every connected
        // client would lose its service): contain it, shed the batch with
        // S005 — the jobs were not executed and are safe to retry.
        let results = catch_unwind(AssertUnwindSafe(|| {
            if let Some(ff) = fault_frames {
                if jobs.iter().any(|j| j.frames == ff) {
                    panic!("injected worker fault (fault_frames = {ff})");
                }
            }
            pool.run_batch(&jobs)
        }));
        {
            let mut s = lock_recover(&published);
            s.cache = pool.stats();
            s.batches = batches;
            s.jobs = total_jobs;
        }
        match results {
            Ok(results) => {
                for ((result, reply), (was_cached, digest)) in results
                    .into_iter()
                    .zip(replies)
                    .zip(cached.into_iter().zip(digests))
                {
                    // A reply that panics (dead client structures, bugs in
                    // an encoder) must not take the other replies with it.
                    let _ = catch_unwind(AssertUnwindSafe(|| {
                        reply(JobOutcome {
                            result,
                            cached: was_cached,
                            digest,
                        })
                    }));
                }
            }
            Err(_) => {
                for (reply, digest) in replies.into_iter().zip(digests) {
                    let e = protocol::shed_error("a worker fault abandoned this batch");
                    let _ = catch_unwind(AssertUnwindSafe(|| {
                        reply(JobOutcome {
                            result: Err(e),
                            cached: false,
                            digest,
                        })
                    }));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = "application a {\n  process X initial;\n  process Y final;\n  flow X -> Y { items 72; order 1; ticks 100; }\n}\nplatform p {\n  segment S0 { freq_mhz 100; hosts X; }\n  segment S1 { freq_mhz 100; hosts Y; }\n}\n";

    fn job() -> BatchJob {
        BatchJob::new(
            segbus_dsl::parse_system(DEMO).unwrap(),
            EmulatorConfig::default(),
        )
    }

    fn svc(threads: usize, cache_capacity: usize) -> BatchService {
        BatchService::start(ServiceOptions {
            threads,
            cache_capacity,
            ..ServiceOptions::default()
        })
        .unwrap()
    }

    #[test]
    fn run_and_cache_flags() {
        let svc = svc(2, 16);
        let first = svc.run(job());
        assert!(first.result.is_ok());
        assert!(!first.cached);
        let second = svc.run(job());
        assert!(second.cached, "second identical job is a cache hit");
        assert_eq!(first.digest, second.digest);
        assert_eq!(
            first.result.unwrap().makespan,
            second.result.unwrap().makespan
        );
        let stats = svc.stats();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 1);
        assert_eq!(stats.jobs, 2);
        assert!(stats.batches >= 1);
    }

    #[test]
    fn traced_jobs_carry_traces_through_the_pool() {
        // `"trace": true` requests route to the traced fast core; the
        // report that comes back through the cache must carry the events,
        // and the traced digest must not collide with the untraced one.
        let svc = svc(2, 16);
        let plain = svc.run(job());
        let mut tj = BatchJob::new(
            segbus_dsl::parse_system(DEMO).unwrap(),
            segbus_core::EmulatorConfig::traced(),
        );
        tj.frames = 2;
        let traced = svc.run(tj.clone());
        assert_ne!(plain.digest, traced.digest);
        let report = traced.result.unwrap();
        let trace = report.trace.expect("traced job records events");
        assert!(!trace.is_empty());
        // Cached replay returns the same trace.
        let again = svc.run(tj);
        assert!(again.cached);
        assert_eq!(
            again.result.unwrap().trace.expect("cached trace").len(),
            trace.len()
        );
    }

    #[test]
    fn concurrent_submitters_coalesce_and_all_get_answers() {
        let svc = svc(2, 64);
        let receivers: Vec<_> = (0..24).map(|_| svc.submit(job())).collect();
        let mut makespans = Vec::new();
        for rx in receivers {
            let outcome = rx.recv().unwrap();
            makespans.push(outcome.result.unwrap().makespan);
        }
        assert!(makespans.windows(2).all(|w| w[0] == w[1]));
        let stats = svc.stats();
        // 24 identical jobs: exactly one emulation, 23 answered as hits.
        assert_eq!(stats.cache.misses, 1);
        assert_eq!(stats.cache.hits, 23);
        assert_eq!(stats.jobs, 24);
        assert!(
            stats.batches <= 24,
            "batches never exceed jobs; coalescing usually makes them fewer"
        );
    }

    #[test]
    fn worker_fault_sheds_batch_and_batcher_survives() {
        let svc = BatchService::start(ServiceOptions {
            threads: 2,
            cache_capacity: 16,
            fault_frames: Some(3),
            ..ServiceOptions::default()
        })
        .unwrap();
        let mut bad = job();
        bad.frames = 3;
        let outcome = svc.run(bad);
        assert_eq!(outcome.result.unwrap_err().code, "S005");
        assert!(!outcome.cached);
        // The batcher survived the contained panic: later jobs still run,
        // and the published snapshot keeps advancing.
        let ok = svc.run(job());
        assert!(ok.result.is_ok());
        assert!(svc.stats_published().batches >= 2);
        assert_eq!(svc.stats_published().jobs, 2);
    }

    #[test]
    fn published_stats_cover_answered_batches() {
        let svc = svc(2, 16);
        assert_eq!(svc.stats_published().jobs, 0);
        let first = svc.run(job());
        assert!(first.result.is_ok());
        // `run` returned, so the batch's snapshot is already published.
        let s = svc.stats_published();
        assert_eq!(s.jobs, 1);
        assert_eq!(s.cache.misses, 1);
    }

    #[test]
    fn submit_with_runs_every_callback() {
        use std::sync::mpsc::channel;
        let svc = svc(2, 64);
        let (tx, rx) = channel();
        for i in 0u64..12 {
            let tx = tx.clone();
            svc.submit_with(job(), move |outcome| {
                let _ = tx.send((i, outcome.result.is_ok()));
            });
        }
        drop(tx);
        let mut seen: Vec<u64> = rx
            .iter()
            .map(|(i, ok)| {
                assert!(ok);
                i
            })
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..12).collect::<Vec<_>>());
    }
}
