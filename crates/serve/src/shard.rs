//! The sharded non-blocking event-loop core (the default serve core).
//!
//! # Architecture
//!
//! One blocking **accept thread** round-robins incoming connections over
//! N **IO shard threads**. Each shard owns its connections outright —
//! sockets in nonblocking mode, per-connection read decoder, pending
//! request queue and write buffer — so there are no per-connection
//! threads and no cross-shard locking on the data path. Emulation jobs
//! are submitted to the shared [`BatchService`] (the fixed `SweepPool`
//! worker pool over the shared `CachedPool`); completion callbacks post
//! the encoded response line onto the owning shard's **ready-ring** (a
//! `Mutex<VecDeque>` + `Condvar`, the same pattern as `SweepPool`'s
//! coordination) and the shard weaves it back into the connection.
//!
//! # Readiness without `poll(2)`
//!
//! The std library exposes no readiness API, so a shard *polls*: each
//! loop iteration reads every open connection once (nonblocking — an
//! `is_idle_read_error` result means "no data"), admits decoded requests
//! up to the window, and flushes write buffers. If a full iteration makes
//! no progress the shard parks on its ready-ring condvar with a ~1 ms
//! timeout — so an idle shard costs ~1k wakeups/s, a busy shard never
//! sleeps, and a shard with **zero connections blocks indefinitely**
//! (no busy-wake: registrations and shutdown notify the condvar).
//!
//! # Admission control and backpressure
//!
//! Bounded at every stage, shedding loudly (`S005`) instead of stalling
//! silently or buffering without bound:
//!
//! * per-connection: at most `window` requests admitted and undelivered,
//!   at most `window` decoded-but-unadmitted lines, and reads pause while
//!   the write buffer is above its high-water mark (a slow reader cannot
//!   balloon the buffer);
//! * global: at most `max_in_flight` emulation jobs submitted and
//!   uncompleted across all shards — admission beyond the cap answers
//!   `S005` immediately (the connection survives and can retry);
//! * in-order mode: the reorder buffer is capped at `2 × window`
//!   ([`crate::reorder`]); overflowing it sheds the connection.
//!
//! Service latency (submit → completion) is recorded into a shared
//! [`LatencyHistogram`]; `{"cmd":"stats"}` reports per-shard connection
//! counts, ready-ring depths and shed counts, cache hit tiers, and
//! p50/p99 latency — answered instantly from published counters, never
//! blocking an IO shard behind an emulation batch.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::decode::{is_idle_read_error, DecodedLine, LineDecoder};
use crate::hist::LatencyHistogram;
use crate::protocol::{self, Request, ServeStats, ShardStats};
use crate::reorder::{Push, Reorder};
use crate::server::{ConnLimits, ServeOptions, Server};
use crate::service::{lock_recover, BatchService, ServiceOptions};

/// Read chunk per connection per loop iteration.
const READ_CHUNK: usize = 8 * 1024;
/// Write-buffer level above which a connection's reads pause.
const OUT_HIGH_WATER: usize = 64 * 1024;
/// Park time between polling iterations while connections are open.
const IDLE_POLL: Duration = Duration::from_millis(1);
/// Upper bound on draining in-flight responses at shutdown.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);
/// Global in-flight cap when `ServeOptions::max_in_flight` is `0`.
const DEFAULT_MAX_IN_FLIGHT: u64 = 4096;

/// State shared by the accept thread, every shard, and the [`Server`]
/// facade.
pub(crate) struct EventShared {
    shutdown: AtomicBool,
    /// Emulation jobs submitted to the batch service, not yet completed.
    in_flight: AtomicU64,
    max_in_flight: u64,
    hist: LatencyHistogram,
    shards: Vec<Arc<ShardState>>,
}

impl EventShared {
    /// Flag shutdown, poke the blocking accept loop, and wake every
    /// shard's condvar (the ring lock is taken after the flag is set, so
    /// a shard about to park cannot miss the wakeup).
    pub(crate) fn begin_shutdown(&self, addr: SocketAddr) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return; // already shutting down
        }
        let _ = TcpStream::connect(addr);
        for shard in &self.shards {
            drop(lock_recover(&shard.ring));
            shard.cv.notify_all();
        }
    }
}

/// One IO shard's cross-thread surface: the ready-ring plus counters.
struct ShardState {
    ring: Mutex<VecDeque<ShardMsg>>,
    cv: Condvar,
    /// Connections currently registered on this shard.
    connections: AtomicU64,
    /// `S005` responses issued by this shard.
    sheds: AtomicU64,
}

impl ShardState {
    fn new() -> ShardState {
        ShardState {
            ring: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            connections: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
        }
    }

    /// Post a message and wake the shard thread.
    fn post(&self, msg: ShardMsg) {
        lock_recover(&self.ring).push_back(msg);
        self.cv.notify_all();
    }
}

enum ShardMsg {
    /// A freshly accepted connection for this shard to own.
    Register(TcpStream),
    /// A completed job's encoded response line.
    Done { conn: u64, seq: u64, line: String },
}

/// Everything a shard loop needs besides its own connections.
struct ShardCtx {
    shared: Arc<EventShared>,
    state: Arc<ShardState>,
    service: BatchService,
    limits: ConnLimits,
    addr: SocketAddr,
}

/// One connection, owned exclusively by its shard thread.
struct Conn {
    stream: TcpStream,
    decoder: LineDecoder,
    /// Decoded lines awaiting admission (bounded by the window).
    pending: VecDeque<DecodedLine>,
    /// Encoded response bytes awaiting the socket.
    out: Vec<u8>,
    /// Written prefix of `out` (compacted when it grows).
    out_pos: usize,
    /// Next request sequence number.
    seq: u64,
    /// Requests admitted whose response is not yet in `out`.
    outstanding: u64,
    /// In-order delivery buffer, present after the `hello` handshake.
    reorder: Option<Reorder>,
    read_open: bool,
    /// Close once `out` drains (shed or protocol-fatal state).
    closing: bool,
}

impl Conn {
    fn new(stream: TcpStream, max_line_bytes: usize) -> Conn {
        Conn {
            stream,
            decoder: LineDecoder::new(max_line_bytes),
            pending: VecDeque::new(),
            out: Vec::new(),
            out_pos: 0,
            seq: 0,
            outstanding: 0,
            reorder: None,
            read_open: true,
            closing: false,
        }
    }

    /// Unwritten bytes in the out buffer.
    fn out_backlog(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Everything delivered and flushed.
    fn flushed(&self) -> bool {
        self.out_pos == self.out.len()
    }
}

/// Start the event-loop core: N shard threads plus the accept thread.
pub(crate) fn start_event_core(opts: ServeOptions) -> std::io::Result<Server> {
    let listener = TcpListener::bind(("127.0.0.1", opts.port))?;
    let addr = listener.local_addr()?;
    let service = BatchService::start(ServiceOptions {
        config: opts.config,
        threads: opts.threads,
        cache_capacity: opts.cache_capacity,
        cache_dir: opts.cache_dir.clone(),
        fault_frames: opts.fault_frames,
    })?;
    let limits = ConnLimits::from_options(&opts);
    let nshards = effective_shards(opts.shards);
    let shared = Arc::new(EventShared {
        shutdown: AtomicBool::new(false),
        in_flight: AtomicU64::new(0),
        max_in_flight: if opts.max_in_flight == 0 {
            DEFAULT_MAX_IN_FLIGHT
        } else {
            opts.max_in_flight as u64
        },
        hist: LatencyHistogram::new(),
        shards: (0..nshards).map(|_| Arc::new(ShardState::new())).collect(),
    });
    let mut handles = Vec::with_capacity(nshards + 1);
    for state in &shared.shards {
        let ctx = ShardCtx {
            shared: Arc::clone(&shared),
            state: Arc::clone(state),
            service: service.clone(),
            limits,
            addr,
        };
        handles.push(std::thread::spawn(move || shard_loop(ctx)));
    }
    let accept_shared = Arc::clone(&shared);
    handles.push(std::thread::spawn(move || {
        accept_loop(listener, accept_shared)
    }));
    Ok(Server::from_event(addr, shared, handles))
}

/// Shard count: explicit, or one per hardware thread capped at 8.
fn effective_shards(requested: usize) -> usize {
    if requested > 0 {
        return requested.min(64);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
}

/// Accept connections and deal them round-robin to the shards.
fn accept_loop(listener: TcpListener, shared: Arc<EventShared>) {
    let mut rr = 0usize;
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shard = &shared.shards[rr % shared.shards.len()];
        rr = rr.wrapping_add(1);
        shard.post(ShardMsg::Register(stream));
    }
}

/// One IO shard: owns its connections, loops read → admit → write, parks
/// on the ready-ring when idle.
fn shard_loop(ctx: ShardCtx) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_conn = 0u64;
    let mut drain_deadline: Option<Instant> = None;
    let mut want_shutdown = false;
    loop {
        let mut progressed = false;

        // Phase 1: drain the ready-ring (registrations + completions).
        let msgs: Vec<ShardMsg> = {
            let mut ring = lock_recover(&ctx.state.ring);
            ring.drain(..).collect()
        };
        for msg in msgs {
            progressed = true;
            match msg {
                ShardMsg::Register(stream) => {
                    if ctx.shared.shutdown.load(Ordering::SeqCst)
                        || stream.set_nonblocking(true).is_err()
                    {
                        continue; // refused: the dropped stream closes
                    }
                    let _ = stream.set_nodelay(true);
                    let id = next_conn;
                    next_conn += 1;
                    ctx.state.connections.fetch_add(1, Ordering::Relaxed);
                    conns.insert(id, Conn::new(stream, ctx.limits.max_line_bytes));
                }
                ShardMsg::Done { conn, seq, line } => {
                    // A missing connection hung up mid-flight; its
                    // response is dropped, which is all it asked for.
                    if let Some(c) = conns.get_mut(&conn) {
                        deliver(c, &ctx.state, seq, &line);
                    }
                }
            }
        }

        let shutting = ctx.shared.shutdown.load(Ordering::SeqCst);
        if shutting && drain_deadline.is_none() {
            drain_deadline = Some(Instant::now() + DRAIN_DEADLINE);
        }

        // Phase 2: per connection — read, admit, write.
        let mut dead: Vec<u64> = Vec::new();
        for (&id, c) in conns.iter_mut() {
            if shutting {
                // Stop admitting; drain what is already in flight.
                c.read_open = false;
                c.pending.clear();
            }
            if c.read_open
                && c.pending.len() < ctx.limits.window
                && c.out_backlog() < OUT_HIGH_WATER
            {
                let mut buf = [0u8; READ_CHUNK];
                match c.stream.read(&mut buf) {
                    Ok(0) => {
                        progressed = true;
                        c.read_open = false;
                        if let Some(ev) = c.decoder.finish() {
                            c.pending.push_back(ev);
                        }
                    }
                    Ok(n) => {
                        progressed = true;
                        c.decoder.feed(&buf[..n]);
                        while let Some(ev) = c.decoder.pop() {
                            c.pending.push_back(ev);
                        }
                    }
                    Err(ref e) if is_idle_read_error(e) => {}
                    Err(_) => {
                        dead.push(id);
                        continue;
                    }
                }
            }
            while !c.closing && c.outstanding < ctx.limits.window as u64 {
                let Some(ev) = c.pending.pop_front() else {
                    break;
                };
                progressed = true;
                process_event(&ctx, c, id, ev, &mut want_shutdown);
            }
            if !c.flushed() {
                match c.stream.write(&c.out[c.out_pos..]) {
                    Ok(0) => {
                        dead.push(id);
                        continue;
                    }
                    Ok(n) => {
                        progressed = true;
                        c.out_pos += n;
                        if c.flushed() {
                            c.out.clear();
                            c.out_pos = 0;
                        } else if c.out_pos > OUT_HIGH_WATER {
                            c.out.drain(..c.out_pos);
                            c.out_pos = 0;
                        }
                    }
                    Err(ref e) if is_idle_read_error(e) => {}
                    Err(_) => {
                        dead.push(id);
                        continue;
                    }
                }
            }
            let done = !c.read_open && c.outstanding == 0 && c.pending.is_empty();
            if c.flushed() && (c.closing || done) {
                dead.push(id);
            }
        }
        for id in dead {
            if conns.remove(&id).is_some() {
                ctx.state.connections.fetch_sub(1, Ordering::Relaxed);
            }
        }

        if want_shutdown {
            want_shutdown = false;
            ctx.shared.begin_shutdown(ctx.addr);
            continue; // picked up as `shutting` next iteration
        }

        if shutting {
            let drained = conns.values().all(|c| c.outstanding == 0 && c.flushed());
            let expired = drain_deadline.is_some_and(|d| Instant::now() >= d);
            if drained || expired {
                break;
            }
        }

        // Phase 3: park until there is work. With zero connections there
        // is nothing to poll, so block indefinitely — registrations,
        // completions and shutdown all notify the condvar after taking
        // the ring lock, so the wakeup cannot be missed.
        if !progressed {
            let ring = lock_recover(&ctx.state.ring);
            if ring.is_empty() {
                if conns.is_empty() && !shutting {
                    drop(ctx.state.cv.wait(ring).unwrap_or_else(|e| e.into_inner()));
                } else {
                    drop(
                        ctx.state
                            .cv
                            .wait_timeout(ring, IDLE_POLL)
                            .unwrap_or_else(|e| e.into_inner()),
                    );
                }
            }
        }
    }
    // Dropping the map closes every socket. Late completion callbacks
    // still post to the ring; the lines are dropped with it.
}

/// Take the next sequence number and its window slot.
fn next_seq(c: &mut Conn) -> u64 {
    let s = c.seq;
    c.seq += 1;
    c.outstanding += 1;
    s
}

/// Append one response line to the connection's write buffer.
fn push_line(out: &mut Vec<u8>, line: &str) {
    out.reserve(line.len() + 1);
    out.extend_from_slice(line.as_bytes());
    out.push(b'\n');
}

/// Hand a completed response (sequence `seq`) to the connection: straight
/// to the out buffer in completion-order mode, through the bounded
/// reorder buffer in in-order mode. Releases the window slot per line
/// actually delivered.
fn deliver(c: &mut Conn, state: &ShardState, seq: u64, line: &str) {
    match &mut c.reorder {
        None => {
            push_line(&mut c.out, line);
            c.outstanding = c.outstanding.saturating_sub(1);
        }
        Some(r) => match r.push(seq, line.to_owned()) {
            Push::Ready(lines) => {
                for ready in &lines {
                    push_line(&mut c.out, ready);
                }
                c.outstanding = c.outstanding.saturating_sub(lines.len() as u64);
            }
            Push::Buffered => {}
            Push::Overflow => {
                state.sheds.fetch_add(1, Ordering::Relaxed);
                let e =
                    protocol::shed_error("in-order reorder buffer exceeded its 2x-window bound");
                push_line(&mut c.out, &protocol::encode_error(0, &e));
                c.closing = true;
            }
        },
    }
}

/// Process one decoded line: parse, answer instantly (errors, hello,
/// stats, shutdown) or submit the emulation job — subject to the global
/// in-flight cap.
fn process_event(
    ctx: &ShardCtx,
    c: &mut Conn,
    conn_id: u64,
    ev: DecodedLine,
    want_shutdown: &mut bool,
) {
    let line = match ev {
        DecodedLine::Overflow => {
            let this_seq = next_seq(c);
            let e = protocol::oversize_error(ctx.limits.max_line_bytes);
            // The line was discarded before parsing, so no id exists.
            deliver(c, &ctx.state, this_seq, &protocol::encode_error(0, &e));
            return;
        }
        DecodedLine::Line(l) => l,
    };
    if line.trim().is_empty() {
        return; // blank keep-alive lines get no response and no seq
    }
    let this_seq = next_seq(c);
    match protocol::parse_request(&line, &ctx.limits.proto) {
        Err((id, e)) => deliver(c, &ctx.state, this_seq, &protocol::encode_error(id, &e)),
        Ok(Request::Emulate { id, job }) => {
            if ctx.shared.in_flight.load(Ordering::SeqCst) >= ctx.shared.max_in_flight {
                ctx.state.sheds.fetch_add(1, Ordering::Relaxed);
                let e = protocol::shed_error(&format!(
                    "global in-flight cap ({}) reached",
                    ctx.shared.max_in_flight
                ));
                deliver(c, &ctx.state, this_seq, &protocol::encode_error(id, &e));
                return;
            }
            ctx.shared.in_flight.fetch_add(1, Ordering::SeqCst);
            let shared = Arc::clone(&ctx.shared);
            let state = Arc::clone(&ctx.state);
            let t0 = Instant::now();
            ctx.service.submit_with(*job, move |outcome| {
                shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                shared
                    .hist
                    .record_us(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
                let line = match outcome.result {
                    Ok(report) => {
                        protocol::encode_report(id, outcome.cached, outcome.digest, &report)
                    }
                    Err(e) => protocol::encode_error(id, &e),
                };
                state.post(ShardMsg::Done {
                    conn: conn_id,
                    seq: this_seq,
                    line,
                });
            });
        }
        Ok(Request::Hello { id, in_order }) => {
            let line = if in_order && this_seq != 0 {
                protocol::encode_error(id, &protocol::handshake_order_error())
            } else {
                if in_order {
                    // Installed before the ack is delivered, so the ack
                    // itself flows through the reorder buffer at seq 0.
                    c.reorder = Some(Reorder::new(ctx.limits.window));
                }
                protocol::encode_hello(id, in_order, ctx.limits.window)
            };
            deliver(c, &ctx.state, this_seq, &line);
        }
        Ok(Request::Stats { id }) => {
            let line = protocol::encode_stats_full(id, &snapshot(ctx));
            deliver(c, &ctx.state, this_seq, &line);
        }
        Ok(Request::Shutdown { id }) => {
            deliver(c, &ctx.state, this_seq, &protocol::encode_shutdown(id));
            *want_shutdown = true;
        }
    }
}

/// Assemble the `stats` snapshot from published service counters and the
/// shards' atomics — instant, never waiting on the batcher.
fn snapshot(ctx: &ShardCtx) -> ServeStats {
    let svc = ctx.service.stats_published();
    ServeStats {
        cache: svc.cache,
        batches: svc.batches,
        jobs: svc.jobs,
        threads: ctx.service.threads(),
        in_flight: ctx.shared.in_flight.load(Ordering::SeqCst),
        max_in_flight: ctx.shared.max_in_flight,
        shards: ctx
            .shared
            .shards
            .iter()
            .map(|s| ShardStats {
                connections: s.connections.load(Ordering::Relaxed),
                queue_depth: lock_recover(&s.ring).len() as u64,
                sheds: s.sheds.load(Ordering::Relaxed),
            })
            .collect(),
        p50_us: ctx.shared.hist.quantile_us(0.50),
        p99_us: ctx.shared.hist.quantile_us(0.99),
        latency_samples: ctx.shared.hist.count(),
    }
}
