//! Push-based newline-delimited decoding with a hard per-line byte cap.
//!
//! Both serve cores feed raw socket bytes into a [`LineDecoder`] and
//! drain complete lines out of it. Over-limit lines are *discarded as
//! they stream in* (never accumulated), so a client sending an endless
//! line costs one fixed buffer, not memory proportional to the line.
//! The decoder is transport-agnostic — it never touches a socket — which
//! is what lets a single-threaded IO shard interleave partial reads from
//! hundreds of connections, and what makes slow-loris framing (bytes
//! trickled across line boundaries) a pure unit-test concern.
//!
//! The one platform-dependent question at this layer — "was that read
//! error a timeout or a disconnect?" — is answered in exactly one place,
//! [`is_idle_read_error`]: a timed-out or not-ready nonblocking read
//! surfaces as `WouldBlock` on some platforms and `TimedOut` on others,
//! and both (plus `Interrupted`) mean "try again later", never
//! "disconnect".

use std::collections::VecDeque;
use std::io::ErrorKind;

/// One decoded item from the byte stream.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodedLine {
    /// A complete line (terminator stripped, trailing `\r` removed).
    Line(String),
    /// A line exceeded the byte cap and was discarded up to its newline.
    Overflow,
}

/// `true` when a socket-read error means "no data right now" rather than
/// "the peer is gone": `WouldBlock` (nonblocking reads, and timed-out
/// reads on Unix), `TimedOut` (timed-out reads on Windows) and
/// `Interrupted` (signal). Every other error kind is a disconnect.
pub fn is_idle_read_error(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
    )
}

/// Incremental newline-delimited decoder with a hard per-line byte cap.
///
/// Feed byte chunks of any size with [`feed`](LineDecoder::feed), drain
/// results with [`next`](LineDecoder::next), and flush the final
/// unterminated line (if any) with [`finish`](LineDecoder::finish) at
/// end of stream.
pub struct LineDecoder {
    /// Bytes of the current, still-unterminated line.
    partial: Vec<u8>,
    /// Decoded items not yet drained by the caller.
    ready: VecDeque<DecodedLine>,
    max_line_bytes: usize,
    /// Inside an over-limit line: drop bytes until the next newline.
    discarding: bool,
}

impl LineDecoder {
    /// A decoder accepting lines of at most `max_line_bytes` bytes
    /// (clamped to ≥ 1).
    pub fn new(max_line_bytes: usize) -> LineDecoder {
        LineDecoder {
            partial: Vec::new(),
            ready: VecDeque::new(),
            max_line_bytes: max_line_bytes.max(1),
            discarding: false,
        }
    }

    /// Absorb one chunk of stream bytes; complete lines become drainable
    /// through [`next`](LineDecoder::next).
    pub fn feed(&mut self, mut bytes: &[u8]) {
        while !bytes.is_empty() {
            if self.discarding {
                // Resynchronise at the next newline without buffering.
                match bytes.iter().position(|&b| b == b'\n') {
                    Some(i) => {
                        self.discarding = false;
                        self.ready.push_back(DecodedLine::Overflow);
                        bytes = &bytes[i + 1..];
                    }
                    None => return,
                }
                continue;
            }
            match bytes.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    if self.partial.len() + i > self.max_line_bytes {
                        self.reset_partial();
                        self.ready.push_back(DecodedLine::Overflow);
                    } else {
                        let mut line = std::mem::take(&mut self.partial);
                        line.extend_from_slice(&bytes[..i]);
                        if line.last() == Some(&b'\r') {
                            line.pop();
                        }
                        self.ready.push_back(DecodedLine::Line(
                            String::from_utf8_lossy(&line).into_owned(),
                        ));
                    }
                    bytes = &bytes[i + 1..];
                }
                None => {
                    if self.partial.len() + bytes.len() > self.max_line_bytes {
                        self.reset_partial();
                        self.discarding = true;
                    } else {
                        self.partial.extend_from_slice(bytes);
                    }
                    return;
                }
            }
        }
    }

    /// The next decoded item, if one is complete.
    pub fn pop(&mut self) -> Option<DecodedLine> {
        self.ready.pop_front()
    }

    /// End of stream: the final unterminated line (or the overflow marker
    /// of a line still being discarded), if any.
    pub fn finish(&mut self) -> Option<DecodedLine> {
        if self.discarding {
            self.discarding = false;
            return Some(DecodedLine::Overflow);
        }
        if self.partial.is_empty() {
            return None;
        }
        let line = std::mem::take(&mut self.partial);
        Some(DecodedLine::Line(
            String::from_utf8_lossy(&line).into_owned(),
        ))
    }

    fn reset_partial(&mut self) {
        self.partial.clear();
        self.partial.shrink_to_fit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(d: &mut LineDecoder) -> Vec<DecodedLine> {
        std::iter::from_fn(|| d.pop()).collect()
    }

    #[test]
    fn whole_lines_decode() {
        let mut d = LineDecoder::new(64);
        d.feed(b"alpha\nbeta\r\n");
        assert_eq!(
            lines(&mut d),
            vec![
                DecodedLine::Line("alpha".into()),
                DecodedLine::Line("beta".into())
            ]
        );
        assert_eq!(d.finish(), None);
    }

    /// Slow-loris framing: bytes trickle in one at a time, across line
    /// boundaries, and the decoder still yields exactly the sent lines.
    #[test]
    fn single_byte_trickle_reassembles_lines() {
        let mut d = LineDecoder::new(64);
        let stream = b"first line\nsecond\nthird";
        let mut got = Vec::new();
        for &b in stream.iter() {
            d.feed(&[b]);
            got.extend(lines(&mut d));
        }
        got.extend(d.finish());
        assert_eq!(
            got,
            vec![
                DecodedLine::Line("first line".into()),
                DecodedLine::Line("second".into()),
                DecodedLine::Line("third".into())
            ]
        );
    }

    #[test]
    fn over_limit_lines_discard_without_buffering() {
        let mut d = LineDecoder::new(8);
        // 32 bytes, fed in 5-byte chunks: discarded as they stream.
        let long = [b'x'; 32];
        for chunk in long.chunks(5) {
            d.feed(chunk);
        }
        d.feed(b"\nok\n");
        assert_eq!(
            lines(&mut d),
            vec![DecodedLine::Overflow, DecodedLine::Line("ok".into())]
        );
        // An over-limit line cut off by EOF still reports the overflow.
        let mut d = LineDecoder::new(4);
        d.feed(b"toolongtail");
        assert_eq!(d.pop(), None);
        assert_eq!(d.finish(), Some(DecodedLine::Overflow));
    }

    #[test]
    fn two_overflows_in_one_chunk_both_surface() {
        let mut d = LineDecoder::new(4);
        d.feed(b"xxxxxxxx\nyyyyyyyy\nok\n");
        assert_eq!(
            lines(&mut d),
            vec![
                DecodedLine::Overflow,
                DecodedLine::Overflow,
                DecodedLine::Line("ok".into())
            ]
        );
    }

    #[test]
    fn exact_cap_line_is_accepted() {
        let mut d = LineDecoder::new(4);
        d.feed(b"abcd\nabcde\n");
        assert_eq!(
            lines(&mut d),
            vec![DecodedLine::Line("abcd".into()), DecodedLine::Overflow]
        );
    }

    #[test]
    fn idle_read_errors_are_classified() {
        for kind in [
            ErrorKind::WouldBlock,
            ErrorKind::TimedOut,
            ErrorKind::Interrupted,
        ] {
            assert!(is_idle_read_error(&std::io::Error::from(kind)), "{kind:?}");
        }
        for kind in [
            ErrorKind::ConnectionReset,
            ErrorKind::BrokenPipe,
            ErrorKind::UnexpectedEof,
        ] {
            assert!(!is_idle_read_error(&std::io::Error::from(kind)), "{kind:?}");
        }
    }
}
