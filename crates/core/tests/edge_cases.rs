//! Engine edge cases: degenerate costs, oversized packages, extreme
//! clock ratios, wide fan-in — things a designer will eventually type in.

use segbus_core::{Emulator, EmulatorConfig};
use segbus_model::ids::SegmentId;
use segbus_model::mapping::{Allocation, Psm};
use segbus_model::platform::Platform;
use segbus_model::psdf::{Application, CostModel, Flow, Process};
use segbus_model::time::{ClockDomain, Picos};

fn pair(items: u64, ticks: u64, s: u32, nseg: usize) -> Psm {
    let mut app = Application::new("edge");
    let a = app.add_process(Process::initial("A"));
    let b = app.add_process(Process::final_("B"));
    app.add_flow(Flow::new(a, b, items, 1, ticks)).unwrap();
    let mut alloc = Allocation::new(nseg);
    alloc.assign(a, SegmentId(0));
    alloc.assign(b, SegmentId((nseg - 1) as u16));
    let platform = Platform::builder("p")
        .package_size(s)
        .uniform_segments(nseg, ClockDomain::from_mhz(100.0))
        .build()
        .unwrap();
    Psm::new(platform, app, alloc).unwrap()
}

#[test]
fn zero_tick_processing_cost() {
    // A pure-forwarding process: C = 0 means the transfer dominates.
    let r = Emulator::default().run(&pair(2 * 36, 0, 36, 1));
    assert!(r.all_flags_raised());
    // Two back-to-back 40-tick transactions, nothing else.
    assert_eq!(r.makespan, Picos(80 * 10_000));
}

#[test]
fn package_larger_than_the_whole_flow() {
    // 10 items in 360-item packages: one padded package.
    let psm = pair(10, 50, 360, 2);
    let r = Emulator::default().run(&psm);
    assert_eq!(r.fus[0].packages_sent, 1);
    assert_eq!(r.bus[0].total_in(), 1);
    assert!(r.all_flags_raised());
}

#[test]
fn single_item_packages() {
    // s = 1: every item is a package; protocol overhead dominates 36×.
    let tiny = Emulator::default().run(&pair(36, 36, 1, 1));
    let normal = Emulator::default().run(&pair(36, 36, 36, 1));
    assert_eq!(tiny.fus[0].packages_sent, 36);
    assert_eq!(normal.fus[0].packages_sent, 1);
    assert!(tiny.makespan > normal.makespan);
}

#[test]
fn extreme_clock_ratio_between_domains() {
    // Source segment 1000× slower than the destination.
    let mut app = Application::new("ratio");
    let a = app.add_process(Process::initial("A"));
    let b = app.add_process(Process::final_("B"));
    app.add_flow(Flow::new(a, b, 36, 10, 1)).unwrap();
    let mut alloc = Allocation::new(2);
    alloc.assign(a, SegmentId(0));
    alloc.assign(b, SegmentId(1));
    let platform = Platform::builder("p")
        .package_size(36)
        .ca_clock(ClockDomain::from_mhz(500.0))
        .segment("slow", ClockDomain::from_mhz(1.0))
        .segment("fast", ClockDomain::from_mhz(1000.0))
        .build()
        .unwrap();
    let psm = Psm::new(platform, app, alloc).unwrap();
    let r = Emulator::default().run(&psm);
    assert!(r.all_flags_raised());
    // The slow segment's single transaction dominates the *busy* time
    // (its 40 bus ticks each cost 1 µs; the fast segment's cost 1 ns).
    let busy0 = r.sas[0].busy_ticks * 1_000_000;
    let busy1 = r.sas[1].busy_ticks * 1_000;
    assert!(busy0 > 100 * busy1, "{busy0} vs {busy1}");
    // And the destination's activity ends last (it delivers).
    assert!(r.sas[1].last_activity >= r.sas[0].last_activity);
}

#[test]
fn wide_fan_in_to_one_sink() {
    // 12 producers, one segment, one sink: heavy arbitration pressure.
    let mut app = Application::new("fan");
    let producers: Vec<_> = (0..12)
        .map(|i| app.add_process(Process::initial(format!("A{i}"))))
        .collect();
    let sink = app.add_process(Process::final_("SINK"));
    for &p in &producers {
        app.add_flow(Flow::new(p, sink, 36, 1, 20)).unwrap();
    }
    let mut alloc = Allocation::new(1);
    for p in producers.iter().chain(std::iter::once(&sink)) {
        alloc.assign(*p, SegmentId(0));
    }
    let platform = Platform::builder("p")
        .uniform_segments(1, ClockDomain::from_mhz(100.0))
        .build()
        .unwrap();
    let r = Emulator::new(EmulatorConfig::traced()).run(&Psm::new(platform, app, alloc).unwrap());
    assert_eq!(r.fus[sink.index()].packages_received, 12);
    // All ready at tick 20; 12 serialized 40-tick transactions follow.
    assert_eq!(r.makespan, Picos((20 + 12 * 40) * 10_000));
    // The trace shows no overlapping bus intervals.
    let iv = r.trace.as_ref().unwrap().bus_intervals(SegmentId(0));
    for w in iv.windows(2) {
        assert!(w[0].1 <= w[1].0, "bus intervals must not overlap");
    }
}

#[test]
fn per_package_cost_model_is_size_independent() {
    let mut app = Application::new("pp");
    let a = app.add_process(Process::initial("A"));
    let b = app.add_process(Process::final_("B"));
    app.add_flow(Flow::new(a, b, 4 * 36, 1, 100)).unwrap();
    app.set_cost_model(CostModel::PerPackage);
    let mut alloc = Allocation::new(1);
    alloc.assign(a, SegmentId(0));
    alloc.assign(b, SegmentId(0));
    let platform = Platform::builder("p")
        .package_size(36)
        .uniform_segments(1, ClockDomain::from_mhz(100.0))
        .build()
        .unwrap();
    let p36 = Psm::new(platform, app, alloc).unwrap();
    let p18 = p36.with_package_size(18).unwrap();
    let r36 = Emulator::default().run(&p36);
    let r18 = Emulator::default().run(&p18);
    // Per-package: compute doubles with the package count.
    let compute36: u64 = r36.fus.iter().map(|f| f.compute_ticks).sum();
    let compute18: u64 = r18.fus.iter().map(|f| f.compute_ticks).sum();
    assert_eq!(compute18, 2 * compute36);
}

#[test]
fn many_waves_chain() {
    // A 40-stage chain: 39 waves, all barriers honoured.
    let app = segbus_apps::generators::chain(
        40,
        segbus_apps::generators::GeneratorConfig {
            items_per_flow: 36,
            ticks_per_package: 7,
        },
    );
    let alloc = segbus_apps::generators::block_allocation(&app, 2);
    let platform = segbus_apps::generators::uniform_platform(2, 36);
    let psm = Psm::new(platform, app, alloc).unwrap();
    let r = Emulator::new(EmulatorConfig::traced()).run(&psm);
    assert!(r.all_flags_raised());
    let waves = segbus_core::wave_boundaries(&r);
    assert_eq!(waves.len(), 39);
    assert!(waves.windows(2).all(|w| w[0] < w[1]));
}
