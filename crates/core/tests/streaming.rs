//! Pipelined multi-frame execution (`Emulator::run_frames`): successive
//! frames of the application stream through the wave schedule.

use segbus_apps::mp3;
use segbus_core::{Emulator, EmulatorConfig};
use segbus_model::ids::SegmentId;
use segbus_model::mapping::{Allocation, Psm};
use segbus_model::platform::Platform;
use segbus_model::psdf::{Application, Flow, Process};
use segbus_model::time::ClockDomain;

fn pipeline3() -> Psm {
    let mut app = Application::new("p3");
    let a = app.add_process(Process::initial("A"));
    let b = app.add_process(Process::new("B"));
    let c = app.add_process(Process::final_("C"));
    app.add_flow(Flow::new(a, b, 36, 1, 100)).unwrap();
    app.add_flow(Flow::new(b, c, 36, 2, 100)).unwrap();
    let mut alloc = Allocation::new(1);
    for p in [a, b, c] {
        alloc.assign(p, SegmentId(0));
    }
    let platform = Platform::builder("p")
        .package_size(36)
        .uniform_segments(1, ClockDomain::from_mhz(100.0))
        .build()
        .unwrap();
    Psm::new(platform, app, alloc).unwrap()
}

#[test]
fn one_frame_equals_plain_run() {
    for psm in [pipeline3(), mp3::three_segment_psm()] {
        let plain = Emulator::default().run(&psm);
        let framed = Emulator::default().run_frames(&psm, 1);
        assert_eq!(plain.makespan, framed.makespan);
        assert_eq!(plain.sas, framed.sas);
        assert_eq!(plain.ca, framed.ca);
        assert_eq!(plain.bus, framed.bus);
        assert_eq!(plain.fus, framed.fus);
    }
}

#[test]
fn frames_conserve_packages() {
    let psm = mp3::three_segment_psm();
    let frames = 4;
    let r = Emulator::default().run_frames(&psm, frames);
    assert!(r.all_flags_raised());
    let per_frame: u64 = psm
        .application()
        .flows()
        .iter()
        .map(|f| f.packages(36))
        .sum();
    let sent: u64 = r.fus.iter().map(|f| f.packages_sent).sum();
    let recv: u64 = r.fus.iter().map(|f| f.packages_received).sum();
    assert_eq!(sent, frames * per_frame);
    assert_eq!(recv, frames * per_frame);
    for b in &r.bus {
        assert_eq!(b.total_in(), b.total_out());
    }
    // BU12 carries 32 packages per frame.
    assert_eq!(r.bus[0].total_in(), frames * 32);
}

#[test]
fn pipelining_beats_serial_execution() {
    // N pipelined frames must finish well before N sequential single-frame
    // runs would (the pipeline overlaps stages of adjacent frames).
    let psm = pipeline3();
    let t1 = Emulator::default().run(&psm).makespan.0;
    for frames in [2u64, 4, 8] {
        let tn = Emulator::default().run_frames(&psm, frames).makespan.0;
        assert!(tn < frames * t1, "frames={frames}: {tn} !< {}", frames * t1);
        // ... but cannot beat the bottleneck-stage bound.
        assert!(tn >= t1, "at least one full frame latency");
    }
    // Steady-state throughput: the increment per extra frame approaches
    // the bottleneck stage time (compute 100 + transfer 40 per package,
    // two stages sharing one bus => >= 140 ticks per frame).
    let t8 = Emulator::default().run_frames(&psm, 8).makespan.0;
    let t9 = Emulator::default().run_frames(&psm, 9).makespan.0;
    let inc = t9 - t8;
    assert!(inc >= 140 * 10_000, "increment {inc}");
    assert!(
        inc < t1,
        "steady-state increment must undercut frame latency"
    );
}

#[test]
fn mp3_streaming_throughput_improves_with_pipelining() {
    let psm = mp3::three_segment_psm();
    let t1 = Emulator::default().run(&psm).makespan.0 as f64;
    let t8 = Emulator::default().run_frames(&psm, 8).makespan.0 as f64;
    let speedup = 8.0 * t1 / t8;
    // The MP3 graph has parallel channel chains; pipelining across frames
    // must buy a real speedup over back-to-back decoding.
    assert!(speedup > 1.2, "pipelining speedup {speedup:.2}");
    eprintln!("8-frame pipelining speedup: {speedup:.2}x");
}

#[test]
fn traced_streaming_counts_every_wave_instance() {
    let psm = pipeline3();
    let cfg = EmulatorConfig::traced();
    let r = Emulator::new(cfg).run_frames(&psm, 3);
    let waves = segbus_core::wave_boundaries(&r);
    assert_eq!(waves.len(), 3 * 2, "2 waves × 3 frames");
}

#[test]
#[should_panic(expected = "at least one frame")]
fn zero_frames_rejected() {
    let _ = Emulator::default().run_frames(&pipeline3(), 0);
}
