//! Differential tests for the engine's event queues: the indexed
//! calendar queue must be bit-identical to the reference binary heap on
//! full system runs — the paper's E2 MP3 configuration and a spread of
//! generated graph shapes — the optimised engine must reproduce the
//! vendored pre-optimisation reference engine exactly (including under
//! every arbitration and flow-control policy, which gate its internal
//! shortcuts), and the sweep pool must not depend on its thread count.

use segbus_apps::generators::{
    block_allocation, chain, diamond, random_layered, round_robin_allocation, uniform_platform,
    GeneratorConfig,
};
use segbus_apps::mp3;
use segbus_core::{
    ArbitrationPolicy, Emulator, EmulatorConfig, ProducerRelease, QueueKind, ReferenceEmulator,
    SweepPool,
};
use segbus_model::mapping::Psm;

fn configs() -> (EmulatorConfig, EmulatorConfig) {
    let indexed = EmulatorConfig {
        queue: QueueKind::Indexed,
        ..EmulatorConfig::default()
    };
    let heap = EmulatorConfig {
        queue: QueueKind::BinaryHeap,
        ..EmulatorConfig::default()
    };
    (indexed, heap)
}

/// Every observable of the run must agree, not just the makespan: the
/// two queue implementations against each other, and the optimised
/// engine against the vendored pre-optimisation reference.
fn assert_identical(psm: &Psm, label: &str) {
    let (indexed, heap) = configs();
    assert_identical_under(psm, indexed, heap, label);
}

fn assert_identical_under(psm: &Psm, indexed: EmulatorConfig, heap: EmulatorConfig, label: &str) {
    let a = Emulator::new(indexed).run(psm);
    let b = Emulator::new(heap).run(psm);
    let r = ReferenceEmulator::new(heap).run(psm);
    for (x, against) in [(&b, "heap"), (&r, "reference")] {
        assert_eq!(a.makespan, x.makespan, "{label} vs {against}: makespan");
        assert_eq!(a.sas, x.sas, "{label} vs {against}: SA stats");
        assert_eq!(a.ca, x.ca, "{label} vs {against}: CA stats");
        assert_eq!(a.bus, x.bus, "{label} vs {against}: bus counters");
        assert_eq!(a.fus, x.fus, "{label} vs {against}: FU counters");
    }
}

/// The engine specialises its event flow per arbitration policy (FIFO
/// dispatches on the arrival edge inline); every policy and producer
/// release mode must still reproduce the reference engine exactly.
#[test]
fn all_policies_match_the_reference_engine() {
    let psm = mp3::three_segment_psm();
    for arbitration in [
        ArbitrationPolicy::Fifo,
        ArbitrationPolicy::FixedPriority,
        ArbitrationPolicy::FairRoundRobin,
    ] {
        for producer_release in [
            ProducerRelease::AfterDelivery,
            ProducerRelease::AfterLocalPhase,
        ] {
            let indexed = EmulatorConfig {
                arbitration,
                producer_release,
                ..EmulatorConfig::default()
            };
            let heap = EmulatorConfig {
                queue: QueueKind::BinaryHeap,
                ..indexed
            };
            assert_identical_under(
                &psm,
                indexed,
                heap,
                &format!("{arbitration:?}/{producer_release:?}"),
            );
        }
    }
}

/// The paper's experiment-2 system: the MP3 decoder on three segments.
#[test]
fn mp3_three_segment_run_is_queue_invariant() {
    assert_identical(&mp3::three_segment_psm(), "mp3 E2");
    assert_identical(&mp3::two_segment_psm(), "mp3 two-segment");
    assert_identical(&mp3::three_segment_p9_moved_psm(), "mp3 P9 moved");
}

/// Chains stress sequential dependencies; diamonds (fork-join) stress
/// simultaneous arbitration, where tie-breaking order is most fragile.
#[test]
fn generated_graphs_are_queue_invariant() {
    let cfg = GeneratorConfig::default();
    for segments in [2usize, 3] {
        let app = chain(8, cfg);
        let psm = Psm::new(
            uniform_platform(segments, 36),
            app.clone(),
            block_allocation(&app, segments),
        )
        .unwrap();
        assert_identical(&psm, &format!("chain/{segments}"));

        let app = diamond(4, cfg);
        let psm = Psm::new(
            uniform_platform(segments, 36),
            app.clone(),
            round_robin_allocation(&app, segments),
        )
        .unwrap();
        assert_identical(&psm, &format!("diamond/{segments}"));
    }
    for seed in 0..6u64 {
        let app = random_layered(3, 3, seed, cfg);
        let psm = Psm::new(
            uniform_platform(3, 36),
            app.clone(),
            round_robin_allocation(&app, 3),
        )
        .unwrap();
        assert_identical(&psm, &format!("layered/{seed}"));
    }
}

/// Streaming runs exercise frame pipelining through both queues.
#[test]
fn streaming_runs_are_queue_invariant() {
    let (indexed, heap) = configs();
    let psm = mp3::three_segment_psm();
    for frames in [2u64, 5] {
        let a = Emulator::new(indexed).run_frames(&psm, frames);
        let b = Emulator::new(heap).run_frames(&psm, frames);
        assert_eq!(a.makespan, b.makespan, "frames {frames}");
        assert_eq!(a.fus, b.fus, "frames {frames}");
    }
}

/// The pool computes, the thread count only schedules: sweeping the same
/// jobs on 1, 4 and 16 workers yields byte-for-byte equal reports.
#[test]
fn sweep_pool_is_thread_count_invariant_on_mp3_sweeps() {
    let cfg = GeneratorConfig::default();
    let mut psms = vec![
        mp3::one_segment_psm(),
        mp3::two_segment_psm(),
        mp3::three_segment_psm(),
        mp3::three_segment_p9_moved_psm(),
    ];
    for seed in 0..8u64 {
        let app = random_layered(3, 2, seed, cfg);
        psms.push(
            Psm::new(
                uniform_platform(2, 36),
                app.clone(),
                block_allocation(&app, 2),
            )
            .unwrap(),
        );
    }
    let reference = SweepPool::with_threads(EmulatorConfig::default(), 1).sweep(&psms);
    for threads in [4usize, 16] {
        let out = SweepPool::with_threads(EmulatorConfig::default(), threads).sweep(&psms);
        for (i, (a, b)) in reference.iter().zip(&out).enumerate() {
            assert_eq!(a.makespan, b.makespan, "job {i} on {threads} threads");
            assert_eq!(a.sas, b.sas, "job {i} on {threads} threads");
            assert_eq!(a.ca, b.ca, "job {i} on {threads} threads");
            assert_eq!(a.bus, b.bus, "job {i} on {threads} threads");
            assert_eq!(a.fus, b.fus, "job {i} on {threads} threads");
        }
    }
}
