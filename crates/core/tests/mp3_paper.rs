//! Integration test: the paper's §4 three-segment MP3 experiment.
//!
//! Package and request counts on the inter-segment side are fully
//! determined by the Fig. 8 matrix and the Fig. 9 allocation and must match
//! the paper exactly. Absolute times depend on unpublished per-flow costs
//! (only `C = 250` for `P0 → P1` is printed), so execution time is checked
//! against a band around the paper's 489.79 µs.

use segbus_apps::mp3;
use segbus_core::{Emulator, EmulatorConfig};
use segbus_model::ids::{ProcessId, SegmentId};

#[test]
fn three_segment_run_matches_paper_structure() {
    let psm = mp3::three_segment_psm();
    let report = Emulator::new(EmulatorConfig::traced()).run(&psm);

    // --- exact structural counts from the paper's print-out -------------
    // BU12: 32 packages in, 32 out, all left-to-right.
    assert_eq!(report.bus[0].received_from_left, 32);
    assert_eq!(report.bus[0].transferred_to_right, 32);
    assert_eq!(report.bus[0].received_from_right, 0);
    assert_eq!(report.bus[0].transferred_to_left, 0);
    // BU23: 1 package each way.
    assert_eq!(report.bus[1].received_from_left, 1);
    assert_eq!(report.bus[1].transferred_to_right, 1);
    assert_eq!(report.bus[1].received_from_right, 1);
    assert_eq!(report.bus[1].transferred_to_left, 1);
    // Segment packet pushes: 32 right from segment 1, 1 left from segment 3.
    assert_eq!(report.sas[0].packets_to_right, 32);
    assert_eq!(report.sas[0].packets_to_left, 0);
    assert_eq!(report.sas[1].packets_to_right, 0);
    assert_eq!(report.sas[1].packets_to_left, 0);
    assert_eq!(report.sas[2].packets_to_left, 1);
    assert_eq!(report.sas[2].packets_to_right, 0);
    // Inter-segment requests: 32 from SA1, 0 from SA2, 1 from SA3.
    assert_eq!(report.sas[0].inter_requests, 32);
    assert_eq!(report.sas[1].inter_requests, 0);
    assert_eq!(report.sas[2].inter_requests, 1);
    assert_eq!(report.ca.inter_requests, 33);
    assert_eq!(report.ca.grants, 33);

    // --- BU bottleneck analysis (paper: UP12 = 2304, WP̄ ≈ 1) ------------
    assert_eq!(report.bus[0].useful_period(36), 2304);
    let wp12 = report.bus[0].avg_waiting_period();
    assert!(
        (0.5..=3.0).contains(&wp12),
        "average waiting period {wp12} out of the paper's band"
    );
    assert_eq!(
        report.bus[0].tct,
        report.bus[0].useful_period(36) + report.bus[0].waiting_ticks
    );

    // --- global outcome ---------------------------------------------------
    assert!(report.all_flags_raised());
    let t = report.execution_time().as_micros_f64();
    // Paper estimate: 489.79 µs. Unpublished per-flow costs put us in a
    // band rather than on the point; the shape tests below pin ordering.
    assert!(
        (300.0..=700.0).contains(&t),
        "execution time {t:.2} µs far from the paper's 489.79 µs"
    );

    // P14 is the sink and receives the last package close to the end.
    let p14 = report.fu(ProcessId(14));
    assert_eq!(p14.packages_received, 32);
    assert!(p14.last_received.is_some());

    // SA execution times are each below the total (max identity).
    for s in 0..3u16 {
        assert!(report.sa_execution_time(SegmentId(s)) <= report.execution_time());
    }

    eprintln!("--- three-segment MP3, s = 36 ---");
    eprintln!("{}", report.paper_style());
}

#[test]
fn package_size_18_is_slower() {
    // Paper: 489.79 µs at s = 36 vs 560.16 µs at s = 18 (~14 % slower).
    let r36 = Emulator::default().run(&mp3::three_segment_psm());
    let r18 = Emulator::default().run(&mp3::three_segment_psm().with_package_size(18).unwrap());
    let t36 = r36.execution_time().as_micros_f64();
    let t18 = r18.execution_time().as_micros_f64();
    assert!(
        t18 > t36,
        "s=18 ({t18:.2} µs) should be slower than s=36 ({t36:.2} µs)"
    );
    let ratio = t18 / t36;
    assert!(
        (1.01..=1.6).contains(&ratio),
        "slowdown ratio {ratio:.3} out of band (paper: ~1.14)"
    );
    eprintln!("s=36: {t36:.2} µs, s=18: {t18:.2} µs, ratio {ratio:.3}");
}

#[test]
fn moving_p9_to_segment_3_is_slower() {
    // Paper: 489.79 µs for Fig. 9 vs 540.4 µs with P9 on segment 3.
    let base = Emulator::default().run(&mp3::three_segment_psm());
    let moved = Emulator::default().run(&mp3::three_segment_p9_moved_psm());
    let t0 = base.execution_time().as_micros_f64();
    let t1 = moved.execution_time().as_micros_f64();
    assert!(
        t1 > t0,
        "moved P9 ({t1:.2} µs) should be slower than base ({t0:.2} µs)"
    );
    eprintln!(
        "base: {t0:.2} µs, P9 moved: {t1:.2} µs, ratio {:.3}",
        t1 / t0
    );
}

#[test]
fn fewer_segments_reduce_parallelism() {
    // The paper skips printing the 1- and 2-segment results but the point
    // of segmentation is parallel transactions: the 1-segment run must not
    // beat the 3-segment run.
    let r1 = Emulator::default().run(&mp3::one_segment_psm());
    let r3 = Emulator::default().run(&mp3::three_segment_psm());
    let t1 = r1.execution_time().as_micros_f64();
    let t3 = r3.execution_time().as_micros_f64();
    eprintln!("1 segment: {t1:.2} µs, 3 segments: {t3:.2} µs");
    assert!(t1 >= t3 * 0.95, "single segment unexpectedly much faster");
}
