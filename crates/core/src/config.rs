//! Emulator configuration: timing parameters and feature switches.
//!
//! The paper's estimator deliberately skips timing factors it deems
//! second-order (§3.6): the two-tick synchronisation between adjacent clock
//! domains at the BUs, the SA grant set/reset latency and the master's
//! response time. [`TimingParams::estimator`] reproduces that choice;
//! [`TimingParams::detailed`] switches the skipped factors on, which is
//! what the independent reference simulator (`segbus-rtl`) models natively.

use crate::queue::QueueKind;

/// Per-activity tick costs of the platform protocol.
///
/// All values are in clock ticks of the domain where the activity runs
/// (see DESIGN.md §4 for the mapping of activities to domains).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TimingParams {
    /// Ticks the SA spends registering an FU's transfer request.
    pub request_ticks: u64,
    /// Header/address beats preceding the payload on the segment bus.
    pub header_ticks: u64,
    /// Ticks the SA spends closing a transaction (releasing the bus).
    pub release_ticks: u64,
    /// Ticks the CA spends registering a forwarded inter-segment request.
    pub ca_request_ticks: u64,
    /// Ticks the CA spends setting the grant signals of one path.
    pub ca_grant_ticks: u64,
    /// Ticks the CA spends resetting one segment's grant (cascade release).
    pub ca_release_ticks: u64,
    /// Ticks the downstream SA needs to notice a loaded BU (this is the
    /// minimum *waiting period* of a package inside a BU).
    pub wp_sample_ticks: u64,
    /// Clock-domain synchroniser depth at each BU crossing (the paper's
    /// "value of two clock ticks … at the translation of any signal across
    /// two clock domains"). **Skipped by the estimator.**
    pub bu_sync_ticks: u64,
    /// SA grant-set latency ("time necessary for the SAs to set the grant
    /// signal for a particular request"). **Skipped by the estimator.**
    pub sa_grant_ticks: u64,
    /// Master response latency after seeing its grant. **Skipped by the
    /// estimator.**
    pub master_response_ticks: u64,
    /// SA grant-reset latency. **Skipped by the estimator.**
    pub sa_grant_reset_ticks: u64,
}

impl TimingParams {
    /// The paper's estimator: protocol skeleton only, skipped factors zero.
    pub const fn estimator() -> TimingParams {
        TimingParams {
            request_ticks: 1,
            header_ticks: 2,
            release_ticks: 1,
            ca_request_ticks: 1,
            ca_grant_ticks: 1,
            ca_release_ticks: 1,
            wp_sample_ticks: 1,
            bu_sync_ticks: 0,
            sa_grant_ticks: 0,
            master_response_ticks: 0,
            sa_grant_reset_ticks: 0,
        }
    }

    /// All factors on, with the paper's "2 to 3 clock ticks" magnitudes.
    /// Used for ablation A3' (running the *estimation* engine with detailed
    /// timing); the authoritative detailed model is `segbus-rtl`.
    pub const fn detailed() -> TimingParams {
        TimingParams {
            bu_sync_ticks: 2,
            sa_grant_ticks: 2,
            master_response_ticks: 1,
            sa_grant_reset_ticks: 2,
            ..TimingParams::estimator()
        }
    }

    /// Bus-occupancy ticks of one package transaction on a segment
    /// (request + grant + response + header + payload + release), for
    /// package size `s` items at one item per beat.
    #[inline]
    pub fn bus_transaction_ticks(&self, s: u32) -> u64 {
        self.request_ticks
            + self.sa_grant_ticks
            + self.master_response_ticks
            + self.header_ticks
            + s as u64
            + self.release_ticks
            + self.sa_grant_reset_ticks
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::estimator()
    }
}

/// When a producer may start computing its next package after handing the
/// previous one to the platform.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ProducerRelease {
    /// Package-level flow control: the producer waits until the package
    /// reaches its destination (send-and-wait-acknowledge). This is the
    /// default; it reflects the single-package depth of the BUs and the
    /// strictly sequenced PSDF handoffs, and reproduces the paper's
    /// placement sensitivity (moving P9 across two BUs costs ~10 %).
    #[default]
    AfterDelivery,
    /// Fire-and-forget: the producer resumes as soon as its local bus
    /// phase completes (the package may still be travelling through BUs).
    /// Ablation A6 quantifies the difference.
    AfterLocalPhase,
}

/// How a segment arbiter picks among simultaneously pending local
/// requests ("The SA of each bus segment decides which device, within the
/// segment, will get access to the bus in the following transfer burst",
/// paper §2.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ArbitrationPolicy {
    /// Serve requests in arrival order.
    #[default]
    Fifo,
    /// Fixed priority: the lowest process id wins (models a hard-wired
    /// priority encoder; can starve late processes under contention).
    FixedPriority,
    /// Fair queuing: the producer served least often goes first (models a
    /// round-robin arbiter).
    FairRoundRobin,
}

/// Which engine core executes a run.
///
/// Both cores are differential-tested bit-identical (same
/// [`crate::EmulationReport`] for every PSM, arbitration and release
/// mode), so the choice is purely a speed/debuggability trade-off and is
/// — like [`QueueKind`] — deliberately excluded from the cache digest
/// (`crate::cache::job_digest`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EngineKind {
    /// The specialised core ([`crate::fast`]): monomorphised over
    /// arbitration × release policy, flat SoA scratch state, no trace
    /// plumbing. The default. Traced runs fall back to the interpreter
    /// (the fast core compiles trace hooks out entirely).
    #[default]
    Fast,
    /// The general event-loop interpreter — the reference semantics, and
    /// the only core that can record a [`crate::TraceLog`].
    Interpreter,
}

/// Top-level emulator configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EmulatorConfig {
    /// Protocol timing parameters.
    pub timing: TimingParams,
    /// Producer flow-control policy.
    pub producer_release: ProducerRelease,
    /// Local bus arbitration discipline.
    pub arbitration: ArbitrationPolicy,
    /// Record a package-level trace (needed for the Fig. 10/11 series;
    /// costs memory proportional to the package count).
    pub trace: bool,
    /// Event-queue implementation for the interpreter core. The indexed
    /// calendar queue is the default; the binary heap is retained for
    /// differential testing. The fast core owns its queue and ignores
    /// this knob.
    pub queue: QueueKind,
    /// Engine core selection (see [`EngineKind`]).
    pub engine: EngineKind,
}

impl EmulatorConfig {
    /// Estimator timing with tracing enabled.
    pub fn traced() -> EmulatorConfig {
        EmulatorConfig {
            trace: true,
            ..EmulatorConfig::default()
        }
    }

    /// Detailed timing (see [`TimingParams::detailed`]).
    pub fn detailed() -> EmulatorConfig {
        EmulatorConfig {
            timing: TimingParams::detailed(),
            ..EmulatorConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_skips_detailed_factors() {
        let t = TimingParams::estimator();
        assert_eq!(t.bu_sync_ticks, 0);
        assert_eq!(t.sa_grant_ticks, 0);
        assert_eq!(t.master_response_ticks, 0);
        assert_eq!(t.sa_grant_reset_ticks, 0);
    }

    #[test]
    fn detailed_enables_them() {
        let t = TimingParams::detailed();
        assert_eq!(t.bu_sync_ticks, 2);
        assert_eq!(t.sa_grant_ticks, 2);
        assert_eq!(t.master_response_ticks, 1);
        assert_eq!(t.sa_grant_reset_ticks, 2);
        // The skeleton is unchanged.
        assert_eq!(t.header_ticks, TimingParams::estimator().header_ticks);
    }

    #[test]
    fn transaction_ticks() {
        let t = TimingParams::estimator();
        // 1 + 0 + 0 + 2 + 36 + 1 + 0 = 40
        assert_eq!(t.bus_transaction_ticks(36), 40);
        assert_eq!(t.bus_transaction_ticks(18), 22);
        let d = TimingParams::detailed();
        assert_eq!(d.bus_transaction_ticks(36), 45);
    }

    #[test]
    fn default_is_estimator() {
        assert_eq!(TimingParams::default(), TimingParams::estimator());
        assert!(!EmulatorConfig::default().trace);
        assert!(EmulatorConfig::traced().trace);
    }
}
