//! Post-run analysis of emulation traces and counters.
//!
//! The paper's tool "helps us observe the communication bottlenecks"
//! (§4); this module turns a traced [`crate::EmulationReport`] into the
//! quantities a designer acts on: bus utilisation per segment, wave
//! boundaries, per-package end-to-end latency and a Gantt-style CSV of
//! every bus occupation.

use segbus_model::ids::{FlowId, SegmentId};
use segbus_model::time::Picos;

use crate::report::EmulationReport;
use crate::trace::{TraceKind, TraceLog};

/// Bus occupancy of one segment.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BusUtilisation {
    /// The segment.
    pub segment: SegmentId,
    /// Total time the bus was driven (sum of transaction intervals).
    pub busy: Picos,
    /// Busy time over the whole run (`0.0..=1.0`); zero for an empty run.
    pub fraction: f64,
}

/// Per-package end-to-end latency statistics (compute start → delivery).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct LatencyStats {
    /// Packages measured.
    pub count: u64,
    /// Fastest package.
    pub min: Picos,
    /// Slowest package.
    pub max: Picos,
    /// Mean latency in picoseconds.
    pub mean_ps: f64,
}

/// Bus utilisation per segment, from the trace's `BusStart`/`BusEnd`
/// pairs. Requires a traced run; returns one entry per segment.
pub fn bus_utilisation(report: &EmulationReport) -> Vec<BusUtilisation> {
    let trace = traced(report);
    let span = report.makespan.0.max(1) as f64;
    (0..report.sas.len())
        .map(|i| {
            let seg = SegmentId(i as u16);
            let busy: u64 = trace
                .bus_intervals(seg)
                .iter()
                .map(|(a, b)| b.0 - a.0)
                .sum();
            BusUtilisation {
                segment: seg,
                busy: Picos(busy),
                fraction: if report.makespan == Picos::ZERO {
                    0.0
                } else {
                    busy as f64 / span
                },
            }
        })
        .collect()
}

/// Instants at which each wave completed, in order.
pub fn wave_boundaries(report: &EmulationReport) -> Vec<Picos> {
    traced(report)
        .of_kind(TraceKind::WaveComplete)
        .map(|e| e.at)
        .collect()
}

/// Durations of the waves (first wave measured from time zero).
pub fn wave_durations(report: &EmulationReport) -> Vec<Picos> {
    let ends = wave_boundaries(report);
    let mut prev = Picos::ZERO;
    ends.into_iter()
        .map(|e| {
            let d = e.saturating_sub(prev);
            prev = e;
            d
        })
        .collect()
}

/// End-to-end latency of every package: from its `ComputeStart` to its
/// `Delivered` event, matched by `(flow, package)`.
pub fn package_latencies(report: &EmulationReport) -> Vec<(FlowId, u64, Picos)> {
    let trace = traced(report);
    let mut starts: std::collections::HashMap<(FlowId, u64), Picos> =
        std::collections::HashMap::new();
    let mut out = Vec::new();
    for e in trace.events() {
        let (Some(flow), Some(pkg)) = (e.flow, e.package) else {
            continue;
        };
        match e.kind {
            TraceKind::ComputeStart => {
                starts.entry((flow, pkg)).or_insert(e.at);
            }
            TraceKind::Delivered => {
                if let Some(&s) = starts.get(&(flow, pkg)) {
                    out.push((flow, pkg, e.at.saturating_sub(s)));
                }
            }
            _ => {}
        }
    }
    out
}

/// Summary statistics over [`package_latencies`].
pub fn latency_stats(report: &EmulationReport) -> LatencyStats {
    let lats = package_latencies(report);
    if lats.is_empty() {
        return LatencyStats::default();
    }
    let mut min = Picos(u64::MAX);
    let mut max = Picos::ZERO;
    let mut sum = 0u128;
    for (_, _, l) in &lats {
        min = if *l < min { *l } else { min };
        max = max.max(*l);
        sum += l.0 as u128;
    }
    LatencyStats {
        count: lats.len() as u64,
        min,
        max,
        mean_ps: sum as f64 / lats.len() as f64,
    }
}

/// Gantt-style CSV of every bus occupation:
/// `segment,flow,package,start_ps,end_ps`.
pub fn gantt_csv(report: &EmulationReport) -> String {
    let trace = traced(report);
    let mut out = String::from("segment,flow,package,start_ps,end_ps\n");
    for i in 0..report.sas.len() {
        let seg = SegmentId(i as u16);
        // Re-walk the raw events so flow/package labels survive.
        let mut open: Vec<((FlowId, u64), Picos)> = Vec::new();
        for e in trace.events() {
            if e.segment != Some(seg) {
                continue;
            }
            let (Some(flow), Some(pkg)) = (e.flow, e.package) else {
                continue;
            };
            match e.kind {
                TraceKind::BusStart => open.push(((flow, pkg), e.at)),
                TraceKind::BusEnd => {
                    if let Some(pos) = open.iter().position(|(k, _)| *k == (flow, pkg)) {
                        let (_, start) = open.remove(pos);
                        out.push_str(&format!(
                            "{},{},{},{},{}\n",
                            i + 1,
                            flow.0,
                            pkg,
                            start.0,
                            e.at.0
                        ));
                    }
                }
                _ => {}
            }
        }
    }
    out
}

fn traced(report: &EmulationReport) -> &TraceLog {
    report
        .trace
        .as_ref()
        .expect("analysis requires a traced run: use EmulatorConfig::traced()")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EmulatorConfig;
    use crate::engine::Emulator;
    use segbus_model::ids::SegmentId;
    use segbus_model::mapping::{Allocation, Psm};
    use segbus_model::platform::Platform;
    use segbus_model::psdf::{Application, Flow, Process};
    use segbus_model::time::ClockDomain;

    fn traced_run() -> EmulationReport {
        let mut app = Application::new("t");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::new("B"));
        let c = app.add_process(Process::final_("C"));
        app.add_flow(Flow::new(a, b, 72, 1, 100)).unwrap();
        app.add_flow(Flow::new(b, c, 72, 2, 50)).unwrap();
        let mut alloc = Allocation::new(2);
        alloc.assign(a, SegmentId(0));
        alloc.assign(b, SegmentId(0));
        alloc.assign(c, SegmentId(1));
        let platform = Platform::builder("p")
            .package_size(36)
            .uniform_segments(2, ClockDomain::from_mhz(100.0))
            .build()
            .unwrap();
        let psm = Psm::new(platform, app, alloc).unwrap();
        Emulator::new(EmulatorConfig::traced()).run(&psm)
    }

    #[test]
    fn utilisation_is_positive_and_bounded() {
        let r = traced_run();
        let u = bus_utilisation(&r);
        assert_eq!(u.len(), 2);
        for b in &u {
            assert!(b.fraction >= 0.0 && b.fraction <= 1.0, "{b:?}");
        }
        assert!(u[0].busy > Picos::ZERO);
        // Segment 1 carries wave 1 + the fills of wave 2: busier than
        // segment 2, which only receives deliveries.
        assert!(u[0].busy > u[1].busy);
    }

    #[test]
    fn wave_boundaries_are_monotone() {
        let r = traced_run();
        let w = wave_boundaries(&r);
        assert_eq!(w.len(), 2);
        assert!(w[0] < w[1]);
        let d = wave_durations(&r);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0] + d[1], w[1]);
    }

    #[test]
    fn every_package_has_a_latency() {
        let r = traced_run();
        let lats = package_latencies(&r);
        assert_eq!(lats.len(), 4); // 2 packages per flow
        for (_, _, l) in &lats {
            // At least the compute time (50 or 100 ticks of 10 ns).
            assert!(l.0 >= 50 * 10_000, "{l:?}");
        }
        let stats = latency_stats(&r);
        assert_eq!(stats.count, 4);
        assert!(stats.min <= stats.max);
        assert!(stats.mean_ps >= stats.min.0 as f64);
        assert!(stats.mean_ps <= stats.max.0 as f64);
    }

    #[test]
    fn gantt_lists_every_transaction() {
        let r = traced_run();
        let csv = gantt_csv(&r);
        // 2 local transfers + 2 inter transfers × 2 hops = 6 bus
        // occupations, plus the header.
        assert_eq!(csv.lines().count(), 1 + 6, "{csv}");
        assert!(csv.starts_with("segment,flow,package,start_ps,end_ps"));
    }

    #[test]
    fn empty_run_has_empty_stats() {
        let mut app = Application::new("empty");
        let a = app.add_process(Process::new("A"));
        let mut alloc = Allocation::new(1);
        alloc.assign(a, SegmentId(0));
        let platform = Platform::builder("p")
            .uniform_segments(1, ClockDomain::from_mhz(100.0))
            .build()
            .unwrap();
        let psm = Psm::new(platform, app, alloc).unwrap();
        let r = Emulator::new(EmulatorConfig::traced()).run(&psm);
        assert_eq!(latency_stats(&r), LatencyStats::default());
        assert!(wave_boundaries(&r).is_empty());
        assert_eq!(bus_utilisation(&r)[0].fraction, 0.0);
    }

    #[test]
    #[should_panic(expected = "requires a traced run")]
    fn untraced_run_panics_with_guidance() {
        let mut app = Application::new("t");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::final_("B"));
        app.add_flow(Flow::new(a, b, 36, 1, 10)).unwrap();
        let mut alloc = Allocation::new(1);
        alloc.assign(a, SegmentId(0));
        alloc.assign(b, SegmentId(0));
        let platform = Platform::builder("p")
            .uniform_segments(1, ClockDomain::from_mhz(100.0))
            .build()
            .unwrap();
        let psm = Psm::new(platform, app, alloc).unwrap();
        let r = Emulator::default().run(&psm); // no trace
        let _ = bus_utilisation(&r);
    }

    #[test]
    fn mp3_utilisation_reflects_mapping() {
        let psm = segbus_apps::mp3::three_segment_psm();
        let r = Emulator::new(EmulatorConfig::traced()).run(&psm);
        let u = bus_utilisation(&r);
        // Segment 3 hosts only P4: near-idle bus.
        assert!(u[2].fraction < u[0].fraction);
        assert!(u[2].fraction < u[1].fraction);
        let waves = wave_boundaries(&r);
        assert_eq!(waves.len(), 8, "the MP3 schedule has 8 waves");
    }
}
