//! Post-run analysis of emulation traces and counters.
//!
//! The paper's tool "helps us observe the communication bottlenecks"
//! (§4); this module turns a trace into the quantities a designer acts
//! on: bus utilisation per segment and per border unit, arbitration
//! wait-time histograms, transfer-to-transfer gaps, a ranked bottleneck
//! table, wave boundaries, per-package end-to-end latency and a
//! Gantt-style CSV of every bus occupation.
//!
//! The heavy lifting ([`analyze_trace`]) works from a bare
//! [`TraceLog`] plus a segment count, so it applies equally to an
//! in-memory traced [`crate::EmulationReport`] and to a `.sbt` file
//! decoded by [`crate::sbt::read_trace`] — no model required.

use segbus_model::ids::{FlowId, SegmentId};
use segbus_model::time::Picos;

use crate::hist::Histogram;
use crate::report::EmulationReport;
use crate::trace::{TraceKind, TraceLog};

/// Bus occupancy of one segment.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BusUtilisation {
    /// The segment.
    pub segment: SegmentId,
    /// Total time the bus was driven (sum of transaction intervals).
    pub busy: Picos,
    /// Busy time over the whole run (`0.0..=1.0`); zero for an empty run.
    pub fraction: f64,
}

/// Per-package end-to-end latency statistics (compute start → delivery).
///
/// `min`/`max`/`mean_ps` are `None` when no package was delivered —
/// an empty run has *no* fastest package, not a 0 ps one.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct LatencyStats {
    /// Packages measured.
    pub count: u64,
    /// Fastest package, if any package was delivered.
    pub min: Option<Picos>,
    /// Slowest package, if any package was delivered.
    pub max: Option<Picos>,
    /// Mean latency in picoseconds, if any package was delivered.
    pub mean_ps: Option<f64>,
}

/// One segment's activity profile derived from a trace.
#[derive(Clone, Debug)]
pub struct SegmentActivity {
    /// The segment.
    pub segment: SegmentId,
    /// Bus occupations served (local serves + inter-segment hops).
    pub serves: u64,
    /// Total time the bus was driven.
    pub busy: Picos,
    /// Busy time over the makespan (`0.0..=1.0`).
    pub fraction: f64,
    /// Arbitration-to-grant waits of requests originating here, in
    /// **nanoseconds** (`ComputeEnd` → first `BusStart` of the package).
    pub wait: Histogram,
    /// Sum of those waits.
    pub total_wait: Picos,
    /// Transfer-to-transfer gaps: idle stretches between consecutive
    /// bus occupations (count, total and the largest one).
    pub gaps: u64,
    /// Total idle time between consecutive bus occupations.
    pub gap_total: Picos,
    /// Largest single idle stretch between consecutive occupations.
    pub gap_max: Picos,
}

/// Occupancy of one border unit, keyed by the segment that loads it.
///
/// Traces carry no BU indices, so a BU is identified by its *loading*
/// side: the `BuLoaded` event's segment (for a ring's wrap-around BU
/// that is the last segment). Occupancy is the `BuLoaded` →
/// next-`BuUnloaded` interval of each package.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BuActivity {
    /// The segment that loads this BU (its upstream side).
    pub loading_segment: SegmentId,
    /// Packages parked in the BU.
    pub loads: u64,
    /// Total time the BU held a package.
    pub occupied: Picos,
    /// Occupied time over the makespan (`0.0..=1.0`).
    pub fraction: f64,
}

/// Everything [`analyze_trace`] derives from a trace.
#[derive(Clone, Debug)]
pub struct BusAnalysis {
    /// Timestamp of the last event (the makespan for a complete trace;
    /// for a truncated `.sbt` tail, the horizon actually observed).
    pub makespan: Picos,
    /// Per-segment activity, indexed by segment.
    pub segments: Vec<SegmentActivity>,
    /// Border units that carried at least one package.
    pub bus_units: Vec<BuActivity>,
}

impl BusAnalysis {
    /// Segments ranked most-contended first: by total arbitration wait,
    /// ties broken by bus busy time. The head of this list is where the
    /// paper's "communication bottleneck" lives.
    pub fn bottlenecks(&self) -> Vec<&SegmentActivity> {
        let mut out: Vec<&SegmentActivity> = self.segments.iter().collect();
        out.sort_by(|a, b| {
            (b.total_wait, b.busy, a.segment.0).cmp(&(a.total_wait, a.busy, b.segment.0))
        });
        out
    }
}

/// Analyse a trace: per-segment utilisation, wait histograms and
/// transfer gaps, plus per-BU occupancy — from the events alone.
///
/// `segments` dimensions the per-segment tables (a `.sbt` header
/// records it; a report knows it from its counters). Events naming a
/// segment out of range are ignored rather than trusted.
pub fn analyze_trace(log: &TraceLog, segments: usize) -> BusAnalysis {
    let makespan = log
        .events()
        .iter()
        .map(|e| e.at)
        .max()
        .unwrap_or(Picos::ZERO);
    let span = makespan.0;

    let mut out: Vec<SegmentActivity> = (0..segments)
        .map(|i| SegmentActivity {
            segment: SegmentId(i as u16),
            serves: 0,
            busy: Picos::ZERO,
            fraction: 0.0,
            wait: Histogram::new(),
            total_wait: Picos::ZERO,
            gaps: 0,
            gap_total: Picos::ZERO,
            gap_max: Picos::ZERO,
        })
        .collect();

    // Busy time and transfer-to-transfer gaps from the bus intervals.
    for seg in &mut out {
        let iv = log.bus_intervals(seg.segment);
        seg.serves = iv.len() as u64;
        seg.busy = Picos(iv.iter().map(|(a, b)| b.0 - a.0).sum());
        seg.fraction = if span == 0 {
            0.0
        } else {
            seg.busy.0 as f64 / span as f64
        };
        for w in iv.windows(2) {
            let gap = w[1].0.saturating_sub(w[0].1);
            seg.gaps += 1;
            seg.gap_total += gap;
            seg.gap_max = seg.gap_max.max(gap);
        }
    }

    // Arbitration-to-grant waits: ComputeEnd raises the request at the
    // source SA; the package's first BusStart is the grant. Attributed
    // to the segment the request was raised in.
    let mut pending: std::collections::HashMap<(FlowId, u64), (Picos, usize)> =
        std::collections::HashMap::new();
    // BU occupancy: BuLoaded parks the package, the next BuUnloaded for
    // the same package drains it.
    let mut parked: std::collections::HashMap<(FlowId, u64), (Picos, usize)> =
        std::collections::HashMap::new();
    let mut bus: Vec<(u64, u64)> = vec![(0, 0); segments]; // (loads, occupied_ps)
    for e in log.events() {
        let (Some(flow), Some(pkg)) = (e.flow, e.package) else {
            continue;
        };
        let Some(si) = e.segment.map(|s| s.index()).filter(|&i| i < segments) else {
            continue;
        };
        match e.kind {
            TraceKind::ComputeEnd => {
                pending.entry((flow, pkg)).or_insert((e.at, si));
            }
            TraceKind::BusStart => {
                if let Some((raised, src)) = pending.remove(&(flow, pkg)) {
                    let wait = e.at.saturating_sub(raised);
                    out[src].wait.record(wait.0 / 1_000); // ps → ns
                    out[src].total_wait += wait;
                }
            }
            TraceKind::BuLoaded => {
                parked.insert((flow, pkg), (e.at, si));
            }
            TraceKind::BuUnloaded => {
                if let Some((loaded, loader)) = parked.remove(&(flow, pkg)) {
                    bus[loader].0 += 1;
                    bus[loader].1 += e.at.saturating_sub(loaded).0;
                }
            }
            _ => {}
        }
    }

    let bus_units = bus
        .into_iter()
        .enumerate()
        .filter(|(_, (loads, _))| *loads > 0)
        .map(|(i, (loads, occupied))| BuActivity {
            loading_segment: SegmentId(i as u16),
            loads,
            occupied: Picos(occupied),
            fraction: if span == 0 {
                0.0
            } else {
                occupied as f64 / span as f64
            },
        })
        .collect();

    BusAnalysis {
        makespan,
        segments: out,
        bus_units,
    }
}

/// Bus utilisation per segment, from the trace's `BusStart`/`BusEnd`
/// pairs. Requires a traced run; returns one entry per segment.
pub fn bus_utilisation(report: &EmulationReport) -> Vec<BusUtilisation> {
    let trace = traced(report);
    let span = report.makespan.0;
    (0..report.sas.len())
        .map(|i| {
            let seg = SegmentId(i as u16);
            let busy: u64 = trace
                .bus_intervals(seg)
                .iter()
                .map(|(a, b)| b.0 - a.0)
                .sum();
            BusUtilisation {
                segment: seg,
                busy: Picos(busy),
                fraction: if span == 0 {
                    0.0
                } else {
                    busy as f64 / span as f64
                },
            }
        })
        .collect()
}

/// Instants at which each wave completed, in order.
pub fn wave_boundaries(report: &EmulationReport) -> Vec<Picos> {
    traced(report)
        .of_kind(TraceKind::WaveComplete)
        .map(|e| e.at)
        .collect()
}

/// Durations of the waves (first wave measured from time zero).
pub fn wave_durations(report: &EmulationReport) -> Vec<Picos> {
    let ends = wave_boundaries(report);
    let mut prev = Picos::ZERO;
    ends.into_iter()
        .map(|e| {
            let d = e.saturating_sub(prev);
            prev = e;
            d
        })
        .collect()
}

/// End-to-end latency of every package: from its `ComputeStart` to its
/// `Delivered` event, matched by `(flow, package)`.
pub fn package_latencies(report: &EmulationReport) -> Vec<(FlowId, u64, Picos)> {
    trace_package_latencies(traced(report))
}

/// [`package_latencies`] over a bare trace (e.g. a decoded `.sbt` file).
pub fn trace_package_latencies(trace: &TraceLog) -> Vec<(FlowId, u64, Picos)> {
    let mut starts: std::collections::HashMap<(FlowId, u64), Picos> =
        std::collections::HashMap::new();
    let mut out = Vec::new();
    for e in trace.events() {
        let (Some(flow), Some(pkg)) = (e.flow, e.package) else {
            continue;
        };
        match e.kind {
            TraceKind::ComputeStart => {
                starts.entry((flow, pkg)).or_insert(e.at);
            }
            TraceKind::Delivered => {
                if let Some(&s) = starts.get(&(flow, pkg)) {
                    out.push((flow, pkg, e.at.saturating_sub(s)));
                }
            }
            _ => {}
        }
    }
    out
}

/// Summary statistics over [`package_latencies`].
pub fn latency_stats(report: &EmulationReport) -> LatencyStats {
    trace_latency_stats(traced(report))
}

/// [`latency_stats`] over a bare trace (e.g. a decoded `.sbt` file).
pub fn trace_latency_stats(trace: &TraceLog) -> LatencyStats {
    let lats = trace_package_latencies(trace);
    if lats.is_empty() {
        return LatencyStats::default();
    }
    let mut min = Picos(u64::MAX);
    let mut max = Picos::ZERO;
    let mut sum = 0u128;
    for (_, _, l) in &lats {
        min = if *l < min { *l } else { min };
        max = max.max(*l);
        sum += l.0 as u128;
    }
    LatencyStats {
        count: lats.len() as u64,
        min: Some(min),
        max: Some(max),
        mean_ps: Some(sum as f64 / lats.len() as f64),
    }
}

/// Gantt-style CSV of every bus occupation:
/// `segment,flow,package,start_ps,end_ps`.
pub fn gantt_csv(report: &EmulationReport) -> String {
    let trace = traced(report);
    let mut out = String::from("segment,flow,package,start_ps,end_ps\n");
    for i in 0..report.sas.len() {
        let seg = SegmentId(i as u16);
        // Re-walk the raw events so flow/package labels survive.
        let mut open: Vec<((FlowId, u64), Picos)> = Vec::new();
        for e in trace.events() {
            if e.segment != Some(seg) {
                continue;
            }
            let (Some(flow), Some(pkg)) = (e.flow, e.package) else {
                continue;
            };
            match e.kind {
                TraceKind::BusStart => open.push(((flow, pkg), e.at)),
                TraceKind::BusEnd => {
                    if let Some(pos) = open.iter().position(|(k, _)| *k == (flow, pkg)) {
                        let (_, start) = open.remove(pos);
                        out.push_str(&format!(
                            "{},{},{},{},{}\n",
                            i + 1,
                            flow.0,
                            pkg,
                            start.0,
                            e.at.0
                        ));
                    }
                }
                _ => {}
            }
        }
    }
    out
}

fn traced(report: &EmulationReport) -> &TraceLog {
    report
        .trace
        .as_ref()
        .expect("analysis requires a traced run: use EmulatorConfig::traced()")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EmulatorConfig;
    use crate::engine::Emulator;
    use segbus_model::ids::SegmentId;
    use segbus_model::mapping::{Allocation, Psm};
    use segbus_model::platform::Platform;
    use segbus_model::psdf::{Application, Flow, Process};
    use segbus_model::time::ClockDomain;

    fn traced_run() -> EmulationReport {
        let mut app = Application::new("t");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::new("B"));
        let c = app.add_process(Process::final_("C"));
        app.add_flow(Flow::new(a, b, 72, 1, 100)).unwrap();
        app.add_flow(Flow::new(b, c, 72, 2, 50)).unwrap();
        let mut alloc = Allocation::new(2);
        alloc.assign(a, SegmentId(0));
        alloc.assign(b, SegmentId(0));
        alloc.assign(c, SegmentId(1));
        let platform = Platform::builder("p")
            .package_size(36)
            .uniform_segments(2, ClockDomain::from_mhz(100.0))
            .build()
            .unwrap();
        let psm = Psm::new(platform, app, alloc).unwrap();
        Emulator::new(EmulatorConfig::traced()).run(&psm)
    }

    fn empty_run() -> EmulationReport {
        let mut app = Application::new("empty");
        let a = app.add_process(Process::new("A"));
        let mut alloc = Allocation::new(1);
        alloc.assign(a, SegmentId(0));
        let platform = Platform::builder("p")
            .uniform_segments(1, ClockDomain::from_mhz(100.0))
            .build()
            .unwrap();
        let psm = Psm::new(platform, app, alloc).unwrap();
        Emulator::new(EmulatorConfig::traced()).run(&psm)
    }

    #[test]
    fn utilisation_is_positive_and_bounded() {
        let r = traced_run();
        let u = bus_utilisation(&r);
        assert_eq!(u.len(), 2);
        for b in &u {
            assert!(b.fraction >= 0.0 && b.fraction <= 1.0, "{b:?}");
        }
        assert!(u[0].busy > Picos::ZERO);
        // Segment 1 carries wave 1 + the fills of wave 2: busier than
        // segment 2, which only receives deliveries.
        assert!(u[0].busy > u[1].busy);
    }

    #[test]
    fn wave_boundaries_are_monotone() {
        let r = traced_run();
        let w = wave_boundaries(&r);
        assert_eq!(w.len(), 2);
        assert!(w[0] < w[1]);
        let d = wave_durations(&r);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0] + d[1], w[1]);
    }

    #[test]
    fn every_package_has_a_latency() {
        let r = traced_run();
        let lats = package_latencies(&r);
        assert_eq!(lats.len(), 4); // 2 packages per flow
        for (_, _, l) in &lats {
            // At least the compute time (50 or 100 ticks of 10 ns).
            assert!(l.0 >= 50 * 10_000, "{l:?}");
        }
        let stats = latency_stats(&r);
        assert_eq!(stats.count, 4);
        let (min, max) = (stats.min.unwrap(), stats.max.unwrap());
        let mean = stats.mean_ps.unwrap();
        assert!(min <= max);
        assert!(mean >= min.0 as f64);
        assert!(mean <= max.0 as f64);
    }

    #[test]
    fn gantt_lists_every_transaction() {
        let r = traced_run();
        let csv = gantt_csv(&r);
        // 2 local transfers + 2 inter transfers × 2 hops = 6 bus
        // occupations, plus the header.
        assert_eq!(csv.lines().count(), 1 + 6, "{csv}");
        assert!(csv.starts_with("segment,flow,package,start_ps,end_ps"));
    }

    #[test]
    fn analyze_trace_profiles_segments_and_bus() {
        let r = traced_run();
        let a = analyze_trace(r.trace.as_ref().unwrap(), r.sas.len());
        assert_eq!(a.makespan, r.makespan);
        assert_eq!(a.segments.len(), 2);
        // Serves per segment match the Gantt: 2 local + 2 first hops on
        // segment 1, 2 final hops on segment 2.
        assert_eq!(a.segments[0].serves, 4);
        assert_eq!(a.segments[1].serves, 2);
        // Busy time agrees with the legacy per-report view.
        let u = bus_utilisation(&r);
        assert_eq!(a.segments[0].busy, u[0].busy);
        assert_eq!(a.segments[1].busy, u[1].busy);
        assert!((a.segments[0].fraction - u[0].fraction).abs() < 1e-12);
        // Every package raised exactly one request at its source SA
        // (both flows originate in segment 1).
        assert_eq!(a.segments[0].wait.count(), 4);
        assert_eq!(a.segments[1].wait.count(), 0);
        // 4 occupations on segment 1 leave 3 transfer-to-transfer gaps.
        assert_eq!(a.segments[0].gaps, 3);
        assert!(a.segments[0].gap_max.0 >= a.segments[0].gap_total.0 / 3);
        // The inter-segment flow parks 2 packages in the BU loaded by
        // segment 1.
        assert_eq!(a.bus_units.len(), 1);
        let bu = &a.bus_units[0];
        assert_eq!(bu.loading_segment, SegmentId(0));
        assert_eq!(bu.loads, 2);
        assert!(bu.occupied > Picos::ZERO);
        assert!(bu.fraction > 0.0 && bu.fraction <= 1.0);
    }

    #[test]
    fn bottlenecks_rank_by_wait() {
        let r = traced_run();
        let a = analyze_trace(r.trace.as_ref().unwrap(), r.sas.len());
        let ranked = a.bottlenecks();
        assert_eq!(ranked.len(), 2);
        // All waits happen at segment 1; it must rank first.
        assert_eq!(ranked[0].segment, SegmentId(0));
        assert!(ranked[0].total_wait >= ranked[1].total_wait);
    }

    #[test]
    fn empty_run_has_empty_stats() {
        let r = empty_run();
        let stats = latency_stats(&r);
        assert_eq!(stats, LatencyStats::default());
        assert_eq!(stats.min, None, "an empty run has no fastest package");
        assert!(wave_boundaries(&r).is_empty());
        assert_eq!(bus_utilisation(&r)[0].fraction, 0.0);
    }

    #[test]
    fn zero_makespan_yields_finite_fractions() {
        // Regression: the old code divided by `makespan.max(1)` but
        // special-cased zero separately; the unified guard must keep
        // every fraction finite (no NaN) on a run with no activity.
        let r = empty_run();
        assert_eq!(r.makespan, Picos::ZERO);
        for u in bus_utilisation(&r) {
            assert_eq!(u.fraction, 0.0);
            assert!(u.fraction.is_finite());
        }
        let a = analyze_trace(r.trace.as_ref().unwrap(), r.sas.len());
        for s in &a.segments {
            assert!(s.fraction.is_finite());
            assert_eq!(s.fraction, 0.0);
        }
        assert!(a.bus_units.is_empty());
    }

    #[test]
    #[should_panic(expected = "requires a traced run")]
    fn untraced_run_panics_with_guidance() {
        let mut app = Application::new("t");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::final_("B"));
        app.add_flow(Flow::new(a, b, 36, 1, 10)).unwrap();
        let mut alloc = Allocation::new(1);
        alloc.assign(a, SegmentId(0));
        alloc.assign(b, SegmentId(0));
        let platform = Platform::builder("p")
            .uniform_segments(1, ClockDomain::from_mhz(100.0))
            .build()
            .unwrap();
        let psm = Psm::new(platform, app, alloc).unwrap();
        let r = Emulator::default().run(&psm); // no trace
        let _ = bus_utilisation(&r);
    }

    #[test]
    fn mp3_utilisation_reflects_mapping() {
        let psm = segbus_apps::mp3::three_segment_psm();
        let r = Emulator::new(EmulatorConfig::traced()).run(&psm);
        let u = bus_utilisation(&r);
        // Segment 3 hosts only P4: near-idle bus.
        assert!(u[2].fraction < u[0].fraction);
        assert!(u[2].fraction < u[1].fraction);
        let waves = wave_boundaries(&r);
        assert_eq!(waves.len(), 8, "the MP3 schedule has 8 waves");
    }
}
