//! Event queues for the discrete-event engine.
//!
//! The engine pops events in strictly non-decreasing `(time, sequence)`
//! order, and every push is at or after the time of the event currently
//! being handled. Two interchangeable implementations honour that
//! contract:
//!
//! * [`QueueKind::BinaryHeap`] — the textbook priority queue. `O(log n)`
//!   per operation, used as the reference in the differential tests.
//! * [`QueueKind::Indexed`] — a calendar (bucket) queue keyed on the
//!   picosecond timestamp, fronted by a linear tier. Emulation runs keep
//!   very few events in flight (package-level flow control serialises
//!   each producer), so as long as the population stays at or below
//!   [`LINEAR_MAX`] the entries live in one unsorted vector and a pop is
//!   a handful of compares over a single cache line — cheaper than any
//!   bucket indexing. The first push that overflows the linear tier
//!   migrates everything into the bucketed calendar: a window of
//!   [`RING`] consecutive virtual buckets (timestamp divided by a
//!   power-of-two width) held in per-bucket vectors with a single-word
//!   occupancy bitmap, plus a contiguous overflow list for entries
//!   beyond the window, redistributed as the window advances. Because
//!   the engine's pushes never go backwards in time, the scan pointer
//!   only moves forward and each overflow entry is touched `O(1)`
//!   amortised times on dense schedules. The queue returns to the linear
//!   tier once it drains.
//!
//! Both return the exact same sequence of events for the same pushes —
//! the pop order is the globally minimal `(time, seq)` pair — which the
//! engine's differential tests assert end to end.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use segbus_model::time::Picos;

/// Which event-queue implementation the engine uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum QueueKind {
    /// Calendar queue indexed on the event timestamp (the default).
    #[default]
    Indexed,
    /// Reference binary heap (kept for differential testing).
    BinaryHeap,
}

/// Virtual buckets in the calendar's hot window (power of two, one
/// occupancy bit per bucket in a single `u64`).
const RING: usize = 64;

/// Population bound for the linear front tier. Past this, a linear pop
/// scan costs more than bucket indexing and the calendar takes over.
const LINEAR_MAX: usize = 16;

pub(crate) struct HeapEntry<T> {
    at: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    // Reversed: BinaryHeap is a max-heap, we need the earliest event first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Entry<T> {
    at: u64,
    seq: u64,
    item: T,
}

/// Two-tier calendar queue: a [`RING`]-aligned window of virtual buckets
/// of width `2^shift` picoseconds, plus a contiguous overflow list for
/// entries beyond the window.
///
/// The window `[base, base + RING)` is RING-aligned, so a virtual bucket
/// maps to ring slot `vb & (RING - 1)` *exactly* — every entry stored in
/// a slot has the same virtual bucket, and `pop` can take the slot
/// minimum without lap checks.
pub(crate) struct Calendar<T> {
    /// Linear front tier: unsorted, scanned for the `(at, seq)` minimum.
    /// Non-empty only while `bucketed` is false.
    lin: Vec<Entry<T>>,
    /// Whether the bucketed tiers are live (set on linear-tier overflow,
    /// cleared when the queue drains).
    bucketed: bool,
    shift: u32,
    /// First virtual bucket of the window (multiple of [`RING`]).
    base: u64,
    /// Scan pointer: a lower bound on the smallest stored virtual bucket,
    /// always within `[base, base + RING)`.
    vb: u64,
    /// Bit `i` set iff `ring[i]` is non-empty.
    occ: u64,
    /// The hot tier: [`RING`] per-bucket vectors (small enough to stay
    /// cache-resident together with their entries; a fixed-size array so
    /// slot indexing needs no bounds check).
    ring: Box<[Vec<Entry<T>>; RING]>,
    /// Entries with `vb >= base + RING`, in arrival order.
    far: Vec<Entry<T>>,
    /// Smallest virtual bucket in `far` (`u64::MAX` when empty).
    far_min_vb: u64,
    len: usize,
}

/// The widest power-of-two bucket not exceeding `width_hint_ps`.
fn shift_for(width_hint_ps: u64) -> u32 {
    63 - width_hint_ps.max(1).leading_zeros()
}

impl<T> Calendar<T> {
    fn new(width_hint_ps: u64) -> Calendar<T> {
        Calendar {
            lin: Vec::new(),
            bucketed: false,
            shift: shift_for(width_hint_ps),
            base: 0,
            vb: 0,
            occ: 0,
            ring: Box::new(std::array::from_fn(|_| Vec::new())),
            far: Vec::new(),
            far_min_vb: u64::MAX,
            len: 0,
        }
    }

    fn clear(&mut self) {
        self.lin.clear();
        self.bucketed = false;
        for b in self.ring.iter_mut() {
            b.clear();
        }
        self.far.clear();
        self.far_min_vb = u64::MAX;
        self.occ = 0;
        self.base = 0;
        self.vb = 0;
        self.len = 0;
    }

    /// Place an entry into the ring or the overflow list (window state
    /// must already be valid for `vb`, the entry's virtual bucket). Does
    /// not touch `len`: callers re-inserting counted entries reuse it.
    #[inline]
    fn insert(&mut self, vb: u64, e: Entry<T>) {
        if vb < self.base + RING as u64 {
            let s = (vb as usize) & (RING - 1);
            self.occ |= 1 << s;
            self.ring[s].push(e);
        } else {
            self.far_min_vb = self.far_min_vb.min(vb);
            self.far.push(e);
        }
    }

    /// Re-anchor the window at `new_min_vb` and re-place every stored
    /// entry. Only reached by a push *behind* the window — the engine's
    /// schedules are monotone, so this is a defensive slow path.
    fn rebuild(&mut self, new_min_vb: u64) {
        let mut all = std::mem::take(&mut self.far);
        for s in self.ring.iter_mut() {
            all.append(s);
        }
        self.occ = 0;
        self.far_min_vb = u64::MAX;
        self.base = new_min_vb & !(RING as u64 - 1);
        self.vb = new_min_vb;
        for e in all {
            self.insert(e.at >> self.shift, e);
        }
    }

    #[inline]
    fn push(&mut self, at: u64, seq: u64, item: T) {
        if !self.bucketed {
            if self.lin.len() < LINEAR_MAX {
                self.lin.push(Entry { at, seq, item });
                self.len += 1;
                return;
            }
            self.migrate();
        }
        let vb = at >> self.shift;
        if self.len == 0 {
            self.base = vb & !(RING as u64 - 1);
            self.vb = vb;
        } else if vb < self.base {
            self.rebuild(vb);
        } else if vb < self.vb {
            // Defensive lower-bound update for non-monotone pushes that
            // still land inside the window.
            self.vb = vb;
        }
        self.insert(vb, Entry { at, seq, item });
        self.len += 1;
    }

    /// Move every linear-tier entry into the bucketed calendar, anchoring
    /// the window at the earliest one. Cold: runs once per burst that
    /// outgrows [`LINEAR_MAX`].
    #[cold]
    fn migrate(&mut self) {
        self.bucketed = true;
        let min_vb = self
            .lin
            .iter()
            .map(|e| e.at >> self.shift)
            .min()
            .expect("migrate on non-empty linear tier");
        self.base = min_vb & !(RING as u64 - 1);
        self.vb = min_vb;
        let mut lin = std::mem::take(&mut self.lin);
        for e in lin.drain(..) {
            self.insert(e.at >> self.shift, e);
        }
        self.lin = lin;
    }

    #[inline]
    fn pop(&mut self) -> Option<(u64, T)> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        if !self.bucketed {
            let mut bi = 0;
            for i in 1..self.lin.len() {
                if (self.lin[i].at, self.lin[i].seq) < (self.lin[bi].at, self.lin[bi].seq) {
                    bi = i;
                }
            }
            let e = self.lin.swap_remove(bi);
            return Some((e.at, e.item));
        }
        loop {
            // Occupied buckets at or after the scan pointer. `base` is
            // RING-aligned, so bit positions and window offsets agree.
            let mask = self.occ & (!0u64 << ((self.vb as usize) & (RING - 1)));
            if mask != 0 {
                let s = mask.trailing_zeros() as usize;
                self.vb = self.base + s as u64;
                // Every entry in the slot shares this virtual bucket;
                // take the (time, seq) minimum.
                let bucket = &self.ring[s];
                let mut bi = 0;
                for i in 1..bucket.len() {
                    if (bucket[i].at, bucket[i].seq) < (bucket[bi].at, bucket[bi].seq) {
                        bi = i;
                    }
                }
                let e = self.ring[s].swap_remove(bi);
                if self.ring[s].is_empty() {
                    self.occ &= !(1 << s);
                }
                if self.len == 0 {
                    // Drained: the next burst starts on the linear tier.
                    self.bucketed = false;
                }
                return Some((e.at, e.item));
            }
            // Window exhausted: jump to the earliest overflow entry and
            // pull everything that now fits into the new window. The
            // anchor entry always lands in the ring, so each advance
            // makes progress.
            debug_assert!(!self.far.is_empty(), "len > 0 with empty window");
            self.base = self.far_min_vb & !(RING as u64 - 1);
            self.vb = self.far_min_vb;
            self.far_min_vb = u64::MAX;
            let mut i = 0;
            while i < self.far.len() {
                let vb = self.far[i].at >> self.shift;
                if vb < self.base + RING as u64 {
                    let e = self.far.swap_remove(i);
                    let s = (vb as usize) & (RING - 1);
                    self.occ |= 1 << s;
                    self.ring[s].push(e);
                } else {
                    self.far_min_vb = self.far_min_vb.min(vb);
                    i += 1;
                }
            }
        }
    }
}

/// A deterministic min-queue on `(time, sequence)` with a selectable
/// implementation (see [`QueueKind`]).
pub(crate) enum EventQueue<T> {
    Heap(BinaryHeap<HeapEntry<T>>),
    Calendar(Calendar<T>),
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::Heap(BinaryHeap::new())
    }
}

impl<T> EventQueue<T> {
    pub fn new(kind: QueueKind, width_hint_ps: u64) -> EventQueue<T> {
        match kind {
            QueueKind::BinaryHeap => EventQueue::Heap(BinaryHeap::new()),
            QueueKind::Indexed => EventQueue::Calendar(Calendar::new(width_hint_ps)),
        }
    }

    /// Empty the queue and switch to `kind`, keeping the existing bucket
    /// allocations whenever the shape already matches.
    pub fn reset(&mut self, kind: QueueKind, width_hint_ps: u64) {
        let reusable = match (&mut *self, kind) {
            (EventQueue::Heap(h), QueueKind::BinaryHeap) => {
                h.clear();
                true
            }
            (EventQueue::Calendar(c), QueueKind::Indexed)
                if c.shift == shift_for(width_hint_ps) =>
            {
                c.clear();
                true
            }
            _ => false,
        };
        if !reusable {
            *self = EventQueue::new(kind, width_hint_ps);
        }
    }

    #[inline]
    pub fn push(&mut self, at: Picos, seq: u64, item: T) {
        match self {
            EventQueue::Heap(h) => h.push(HeapEntry {
                at: at.0,
                seq,
                item,
            }),
            EventQueue::Calendar(c) => c.push(at.0, seq, item),
        }
    }

    #[inline]
    pub fn pop(&mut self) -> Option<(Picos, T)> {
        match self {
            EventQueue::Heap(h) => h.pop().map(|e| (Picos(e.at), e.item)),
            EventQueue::Calendar(c) => c.pop().map(|(at, item)| (Picos(at), item)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T: Copy>(q: &mut EventQueue<T>) -> Vec<(u64, T)> {
        let mut out = Vec::new();
        while let Some((at, x)) = q.pop() {
            out.push((at.0, x));
        }
        out
    }

    /// Feed both implementations an identical adversarial schedule (ties,
    /// same-bucket clusters, a jump far beyond one ring turn) and require
    /// the exact same pop sequence.
    #[test]
    fn calendar_matches_heap() {
        let times: Vec<u64> = vec![
            0,
            10_000,
            10_000,
            9_999,
            20_000,
            10_001,
            8_192,
            8_191,
            123_456_789,
            10_000,
            1 << 40,
            (1 << 40) + 1,
            70_000,
            70_000,
        ];
        let mut heap = EventQueue::new(QueueKind::BinaryHeap, 10_000);
        let mut cal = EventQueue::new(QueueKind::Indexed, 10_000);
        for (seq, &t) in times.iter().enumerate() {
            heap.push(Picos(t), seq as u64, seq as u32);
            cal.push(Picos(t), seq as u64, seq as u32);
        }
        assert_eq!(drain(&mut heap), drain(&mut cal));
    }

    /// Interleaved push/pop where every push is at or after the last pop,
    /// mimicking the engine's usage pattern.
    #[test]
    fn interleaved_monotone_schedule() {
        let mut heap = EventQueue::new(QueueKind::BinaryHeap, 9_009);
        let mut cal = EventQueue::new(QueueKind::Indexed, 9_009);
        let mut seq = 0u64;
        let mut push = |h: &mut EventQueue<u64>, c: &mut EventQueue<u64>, t: u64| {
            seq += 1;
            h.push(Picos(t), seq, seq);
            c.push(Picos(t), seq, seq);
        };
        push(&mut heap, &mut cal, 100);
        push(&mut heap, &mut cal, 100);
        push(&mut heap, &mut cal, 50_000);
        for _ in 0..3 {
            let a = heap.pop();
            let b = cal.pop();
            assert_eq!(a.map(|(t, x)| (t.0, x)), b.map(|(t, x)| (t.0, x)));
            let now = a.map(|(t, _)| t.0).unwrap_or(0);
            // Reschedule relative to the popped time, like the engine does.
            push(&mut heap, &mut cal, now + 11_236);
            push(&mut heap, &mut cal, now);
        }
        assert_eq!(drain(&mut heap), drain(&mut cal));
    }

    #[test]
    fn reset_reuses_or_rebuilds() {
        let mut q: EventQueue<u8> = EventQueue::new(QueueKind::Indexed, 10_000);
        q.push(Picos(1), 1, 7);
        q.reset(QueueKind::Indexed, 10_000);
        assert!(q.pop().is_none());
        q.reset(QueueKind::BinaryHeap, 10_000);
        q.push(Picos(2), 1, 9);
        assert_eq!(q.pop(), Some((Picos(2), 9)));
    }

    #[test]
    fn bucket_width_is_floor_power_of_two() {
        assert_eq!(shift_for(10_000), 13); // 8192
        assert_eq!(shift_for(9_009), 13);
        assert_eq!(shift_for(16_384), 14);
        assert_eq!(shift_for(1), 0);
        assert_eq!(shift_for(0), 0);
    }
}
