//! Energy estimation from emulation counters.
//!
//! The paper's conclusion notes that early configuration decisions
//! "improve power consumption up to some extent" (§5, citing the
//! application-development-flow study \[9\]); this module makes that
//! quantitative. Every counter the emulator already collects has a natural
//! energy weight: active arbiter ticks, idle (clock-gated) arbiter ticks,
//! border-unit transfer ticks (the expensive dual-clock FIFOs) and FU
//! compute ticks. The defaults are synthetic but dimensionally sensible
//! 90 nm-class numbers; calibrate [`EnergyModel`] to a target process for
//! absolute figures — the *comparisons* between configurations are what
//! the methodology needs.

use segbus_model::ids::SegmentId;

use crate::report::EmulationReport;

/// Per-tick energy weights, in picojoules.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct EnergyModel {
    /// SA actively arbitrating / driving a transaction.
    pub sa_busy_pj: f64,
    /// SA idling (clock running, no transaction).
    pub sa_idle_pj: f64,
    /// CA actively processing a request / grant / release.
    pub ca_busy_pj: f64,
    /// CA polling idle.
    pub ca_idle_pj: f64,
    /// One BU tick (load, wait or unload — dual-clock FIFO activity).
    pub bu_pj: f64,
    /// One FU compute tick.
    pub fu_compute_pj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            sa_busy_pj: 6.0,
            sa_idle_pj: 0.8,
            ca_busy_pj: 8.0,
            ca_idle_pj: 1.0,
            bu_pj: 4.0,
            fu_compute_pj: 12.0,
        }
    }
}

/// Energy attribution of one run, in picojoules.
#[derive(Clone, PartialEq, Debug)]
pub struct EnergyBreakdown {
    /// Per-segment arbiter energy (busy + idle).
    pub sa_pj: Vec<f64>,
    /// Central-arbiter energy.
    pub ca_pj: f64,
    /// Per-border-unit energy.
    pub bu_pj: Vec<f64>,
    /// Per-process compute energy.
    pub fu_pj: Vec<f64>,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.sa_pj.iter().sum::<f64>()
            + self.ca_pj
            + self.bu_pj.iter().sum::<f64>()
            + self.fu_pj.iter().sum::<f64>()
    }

    /// Total energy in microjoules (for reports).
    pub fn total_uj(&self) -> f64 {
        self.total_pj() / 1e6
    }

    /// Energy of one segment's arbiter.
    pub fn sa(&self, seg: SegmentId) -> f64 {
        self.sa_pj[seg.index()]
    }

    /// Communication share of the total (arbiters + BUs vs FU compute).
    pub fn communication_fraction(&self) -> f64 {
        let total = self.total_pj();
        if total == 0.0 {
            return 0.0;
        }
        (total - self.fu_pj.iter().sum::<f64>()) / total
    }
}

/// Attribute energy to every platform element of a finished run.
pub fn estimate_energy(report: &EmulationReport, model: &EnergyModel) -> EnergyBreakdown {
    let sa_pj = report
        .sas
        .iter()
        .map(|sa| {
            let idle = sa.tct.saturating_sub(sa.busy_ticks);
            sa.busy_ticks as f64 * model.sa_busy_pj + idle as f64 * model.sa_idle_pj
        })
        .collect();
    let ca_idle = report.ca.tct.saturating_sub(report.ca.busy_ticks);
    let ca_pj = report.ca.busy_ticks as f64 * model.ca_busy_pj + ca_idle as f64 * model.ca_idle_pj;
    let bu_pj = report
        .bus
        .iter()
        .map(|b| b.tct as f64 * model.bu_pj)
        .collect();
    let fu_pj = report
        .fus
        .iter()
        .map(|f| f.compute_ticks as f64 * model.fu_compute_pj)
        .collect();
    EnergyBreakdown {
        sa_pj,
        ca_pj,
        bu_pj,
        fu_pj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Emulator;

    #[test]
    fn mp3_energy_is_positive_and_dominated_by_compute() {
        let psm = segbus_apps::mp3::three_segment_psm();
        let r = Emulator::default().run(&psm);
        let e = estimate_energy(&r, &EnergyModel::default());
        assert!(e.total_pj() > 0.0);
        assert_eq!(e.sa_pj.len(), 3);
        assert_eq!(e.bu_pj.len(), 2);
        assert_eq!(e.fu_pj.len(), 15);
        // Compute-heavy workload: FU energy > communication energy.
        let frac = e.communication_fraction();
        assert!(frac > 0.0 && frac < 0.5, "communication fraction {frac}");
    }

    #[test]
    fn remote_mapping_costs_more_communication_energy() {
        let local = segbus_apps::mp3::three_segment_psm();
        let moved = segbus_apps::mp3::three_segment_p9_moved_psm();
        let e_local = estimate_energy(&Emulator::default().run(&local), &EnergyModel::default());
        let e_moved = estimate_energy(&Emulator::default().run(&moved), &EnergyModel::default());
        let bu_local: f64 = e_local.bu_pj.iter().sum();
        let bu_moved: f64 = e_moved.bu_pj.iter().sum();
        assert!(
            bu_moved > bu_local,
            "moving P9 across BUs must raise BU energy: {bu_moved} !> {bu_local}"
        );
        assert!(e_moved.total_pj() > e_local.total_pj());
    }

    #[test]
    fn compute_energy_is_invariant_under_repackaging_per_item() {
        // With a per-item cost model, FU compute ticks (and hence compute
        // energy) are package-size independent; protocol energy is not.
        let mut app = segbus_apps::mp3::mp3_decoder();
        app.set_cost_model(segbus_model::psdf::CostModel::per_item(36).unwrap());
        let platform = segbus_model::platform::paper_three_segment_platform();
        let alloc = segbus_apps::mp3::three_segment_allocation();
        let p36 = segbus_model::mapping::Psm::new(platform, app, alloc).unwrap();
        let p18 = p36.with_package_size(18).unwrap();
        let e36 = estimate_energy(&Emulator::default().run(&p36), &EnergyModel::default());
        let e18 = estimate_energy(&Emulator::default().run(&p18), &EnergyModel::default());
        let fu36: f64 = e36.fu_pj.iter().sum();
        let fu18: f64 = e18.fu_pj.iter().sum();
        assert!((fu36 - fu18).abs() / fu36 < 0.01, "{fu36} vs {fu18}");
        // BU energy roughly constant (same payload), SA busy energy rises.
        let sa36: f64 = e36.sa_pj.iter().sum();
        let sa18: f64 = e18.sa_pj.iter().sum();
        assert!(sa18 > sa36);
    }

    #[test]
    fn zero_model_gives_zero_energy() {
        let model = EnergyModel {
            sa_busy_pj: 0.0,
            sa_idle_pj: 0.0,
            ca_busy_pj: 0.0,
            ca_idle_pj: 0.0,
            bu_pj: 0.0,
            fu_compute_pj: 0.0,
        };
        let psm = segbus_apps::mp3::three_segment_psm();
        let e = estimate_energy(&Emulator::default().run(&psm), &model);
        assert_eq!(e.total_pj(), 0.0);
        assert_eq!(e.communication_fraction(), 0.0);
    }
}
