//! Parallel execution of independent emulation runs.
//!
//! Parameter sweeps (package sizes, placements, frequencies) emulate many
//! PSMs that share nothing; [`SweepPool`] fans the runs out over scoped
//! worker threads. Workers claim chunks of the job list from a shared
//! atomic cursor, each worker reuses one [`Engine`] (and therefore its
//! scratch buffers) for every job it claims, and results land in
//! per-index lock-free slots. Results come back in input order,
//! bit-identical to a sequential map regardless of the thread count —
//! each run is itself deterministic — which the tests below assert.

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use segbus_model::mapping::Psm;

use crate::config::EmulatorConfig;
use crate::engine::Engine;
use crate::report::EmulationReport;

/// Write-once result slots indexed by job position.
///
/// Safety: the atomic cursor hands every index to exactly one worker, so
/// no two threads ever touch the same cell, and `thread::scope` joins all
/// workers before the slots are read back — that join is the
/// happens-before edge making the writes visible.
struct ResultSlots<R>(Vec<UnsafeCell<Option<R>>>);

unsafe impl<R: Send> Sync for ResultSlots<R> {}

impl<R> ResultSlots<R> {
    /// # Safety
    /// `i` must be exclusively owned by the calling worker (claimed from
    /// the cursor) and within bounds.
    unsafe fn set(&self, i: usize, value: R) {
        *self.0[i].get() = Some(value);
    }
}

/// A reusable pool configuration for batched emulation sweeps.
///
/// ```
/// use segbus_apps::{generators, mp3};
/// use segbus_core::{EmulatorConfig, SweepPool};
///
/// let psms = vec![mp3::three_segment_psm(), mp3::three_segment_psm()];
/// let pool = SweepPool::new(EmulatorConfig::default());
/// let reports = pool.sweep(&psms);
/// assert_eq!(reports[0].makespan, reports[1].makespan);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SweepPool {
    config: EmulatorConfig,
    threads: usize,
}

impl SweepPool {
    /// A pool using every available hardware thread.
    pub fn new(config: EmulatorConfig) -> SweepPool {
        SweepPool::with_threads(config, available_threads())
    }

    /// A pool capped at `threads` workers (`0` is treated as `1`).
    pub fn with_threads(config: EmulatorConfig, threads: usize) -> SweepPool {
        SweepPool {
            config,
            threads: threads.max(1),
        }
    }

    /// The worker cap.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Emulate every PSM; results are returned in input order.
    pub fn sweep(&self, psms: &[Psm]) -> Vec<EmulationReport> {
        self.sweep_with(psms, |engine, psm| engine.run(psm))
    }

    /// Generalised sweep: run `f(engine, job)` for every job on the pool,
    /// reusing one engine per worker. The function must be deterministic
    /// in its inputs for the results to be thread-count independent.
    pub fn sweep_with<T, R, F>(&self, jobs: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&mut Engine, &T) -> R + Sync,
    {
        let threads = self.threads.min(jobs.len());
        if threads <= 1 {
            let mut engine = Engine::new(self.config);
            return jobs.iter().map(|j| f(&mut engine, j)).collect();
        }
        // Small chunks keep the tail balanced; claiming more than one job
        // at a time keeps cursor traffic negligible.
        let chunk = (jobs.len() / (threads * 8)).clamp(1, 32);
        let cursor = AtomicUsize::new(0);
        let slots = ResultSlots((0..jobs.len()).map(|_| UnsafeCell::new(None)).collect());
        // Fail fast on a panicking job: the first panic flags the sweep so
        // the other workers stop claiming chunks, then re-raises. The
        // caller still sees the original panic (propagated through
        // `thread::scope`), it just sees it without the pool grinding
        // through the rest of the batch first.
        let poisoned = AtomicBool::new(false);

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut engine = Engine::new(self.config);
                    while !poisoned.load(Ordering::Relaxed) {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= jobs.len() {
                            break;
                        }
                        let end = (start + chunk).min(jobs.len());
                        for (i, job) in jobs.iter().enumerate().take(end).skip(start) {
                            match catch_unwind(AssertUnwindSafe(|| f(&mut engine, job))) {
                                // Safety: index `i` belongs to this
                                // worker's chunk only (see ResultSlots).
                                Ok(r) => unsafe { slots.set(i, r) },
                                Err(payload) => {
                                    poisoned.store(true, Ordering::Relaxed);
                                    resume_unwind(payload);
                                }
                            }
                        }
                    }
                });
            }
        });

        slots
            .0
            .into_iter()
            .map(|c| c.into_inner().expect("every claimed slot is filled"))
            .collect()
    }
}

/// Run every PSM with the default estimator configuration, in parallel.
/// Results are returned in input order.
pub fn run_many(psms: &[Psm]) -> Vec<EmulationReport> {
    run_many_with(psms, EmulatorConfig::default(), available_threads())
}

/// Run every PSM with `config` on up to `threads` worker threads.
///
/// `threads == 1` degenerates to a sequential map (no threads spawned).
pub fn run_many_with(psms: &[Psm], config: EmulatorConfig, threads: usize) -> Vec<EmulationReport> {
    SweepPool::with_threads(config, threads).sweep(psms)
}

/// A reasonable worker count for independent runs.
fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use segbus_model::ids::SegmentId;
    use segbus_model::mapping::Allocation;
    use segbus_model::platform::Platform;
    use segbus_model::psdf::{Application, Flow, Process};
    use segbus_model::time::ClockDomain;

    fn psm(items: u64) -> Psm {
        let mut app = Application::new("p");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::final_("B"));
        app.add_flow(Flow::new(a, b, items, 1, 50)).unwrap();
        let mut alloc = Allocation::new(2);
        alloc.assign(a, SegmentId(0));
        alloc.assign(b, SegmentId(1));
        let platform = Platform::builder("t")
            .uniform_segments(2, ClockDomain::from_mhz(100.0))
            .build()
            .unwrap();
        Psm::new(platform, app, alloc).unwrap()
    }

    #[test]
    fn parallel_matches_sequential() {
        let psms: Vec<Psm> = (1..=12).map(|k| psm(36 * k)).collect();
        let seq = run_many_with(&psms, EmulatorConfig::default(), 1);
        let par = run_many_with(&psms, EmulatorConfig::default(), 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.makespan, b.makespan);
            assert_eq!(a.sas, b.sas);
            assert_eq!(a.ca, b.ca);
            assert_eq!(a.bus, b.bus);
        }
    }

    /// Any worker count produces the same reports — the pool only changes
    /// who computes a slot, never what lands in it.
    #[test]
    fn sweep_is_thread_count_invariant() {
        let psms: Vec<Psm> = (1..=40).map(|k| psm(36 * (1 + k % 7))).collect();
        let reference = SweepPool::with_threads(EmulatorConfig::default(), 1).sweep(&psms);
        for threads in [4, 16] {
            let out = SweepPool::with_threads(EmulatorConfig::default(), threads).sweep(&psms);
            assert_eq!(out.len(), reference.len());
            for (a, b) in reference.iter().zip(&out) {
                assert_eq!(a.makespan, b.makespan);
                assert_eq!(a.sas, b.sas);
                assert_eq!(a.ca, b.ca);
                assert_eq!(a.bus, b.bus);
                assert_eq!(a.fus, b.fus);
            }
        }
    }

    #[test]
    fn sweep_with_custom_job_type() {
        let base = psm(10 * 36);
        let frames: Vec<u64> = vec![1, 2, 3, 4];
        let pool = SweepPool::with_threads(EmulatorConfig::default(), 2);
        let out = pool.sweep_with(&frames, |engine, &n| engine.run_frames(&base, n).makespan);
        // More frames => strictly more work.
        for w in out.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn results_in_input_order() {
        let psms: Vec<Psm> = (1..=8).map(|k| psm(36 * k)).collect();
        let out = run_many(&psms);
        // More items => strictly longer makespan, so order checks placement.
        for w in out.windows(2) {
            assert!(w[0].makespan < w[1].makespan);
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        assert!(run_many(&[]).is_empty());
        let one = run_many(&[psm(36)]);
        assert_eq!(one.len(), 1);
    }

    /// A panicking job propagates out of the sweep (no hang, no silent
    /// loss) and flags the other workers to stop claiming chunks.
    #[test]
    fn panicking_job_propagates_and_fails_fast() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let jobs: Vec<u64> = (0..1000).collect();
        let ran = AtomicUsize::new(0);
        let pool = SweepPool::with_threads(EmulatorConfig::default(), 4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.sweep_with(&jobs, |_, &n| {
                if n == 0 {
                    panic!("injected job fault");
                }
                ran.fetch_add(1, Ordering::Relaxed);
                n
            })
        }));
        assert!(result.is_err(), "the job's panic must reach the caller");
        assert!(
            ran.load(Ordering::Relaxed) < jobs.len(),
            "fail-fast: the sweep must not run the whole batch"
        );
        // The pool is plain config — reusable after a poisoned sweep.
        let out = pool.sweep_with(&jobs[1..], |_, &n| n);
        assert_eq!(out.len(), jobs.len() - 1);
    }
}
