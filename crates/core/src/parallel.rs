//! Parallel execution of independent emulation runs.
//!
//! Parameter sweeps (package sizes, placements, frequencies) emulate many
//! PSMs that share nothing; this module fans the runs out over a scoped
//! thread pool fed from a work-stealing index queue. Results come back in
//! input order, bit-identical to a sequential map (each run is itself
//! deterministic), which the differential test below asserts.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;
use segbus_model::mapping::Psm;

use crate::config::EmulatorConfig;
use crate::engine::Emulator;
use crate::report::EmulationReport;

/// Run every PSM with the default estimator configuration, in parallel.
/// Results are returned in input order.
pub fn run_many(psms: &[Psm]) -> Vec<EmulationReport> {
    run_many_with(psms, EmulatorConfig::default(), num_threads(psms.len()))
}

/// Run every PSM with `config` on up to `threads` worker threads.
///
/// `threads == 1` degenerates to a sequential map (no threads spawned).
pub fn run_many_with(
    psms: &[Psm],
    config: EmulatorConfig,
    threads: usize,
) -> Vec<EmulationReport> {
    let emulator = Emulator::new(config);
    if threads <= 1 || psms.len() <= 1 {
        return psms.iter().map(|p| emulator.run(p)).collect();
    }
    let threads = threads.min(psms.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<EmulationReport>>> =
        (0..psms.len()).map(|_| Mutex::new(None)).collect();

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= psms.len() {
                    break;
                }
                let report = emulator.run(&psms[i]);
                *slots[i].lock() = Some(report);
            });
        }
    })
    .expect("emulation workers do not panic");

    slots
        .into_iter()
        .map(|m| m.into_inner().expect("every slot filled"))
        .collect()
}

/// A reasonable worker count for `jobs` independent runs.
fn num_threads(jobs: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(jobs.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use segbus_model::ids::SegmentId;
    use segbus_model::mapping::Allocation;
    use segbus_model::platform::Platform;
    use segbus_model::psdf::{Application, Flow, Process};
    use segbus_model::time::ClockDomain;

    fn psm(items: u64) -> Psm {
        let mut app = Application::new("p");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::final_("B"));
        app.add_flow(Flow::new(a, b, items, 1, 50)).unwrap();
        let mut alloc = Allocation::new(2);
        alloc.assign(a, SegmentId(0));
        alloc.assign(b, SegmentId(1));
        let platform = Platform::builder("t")
            .uniform_segments(2, ClockDomain::from_mhz(100.0))
            .build()
            .unwrap();
        Psm::new(platform, app, alloc).unwrap()
    }

    #[test]
    fn parallel_matches_sequential() {
        let psms: Vec<Psm> = (1..=12).map(|k| psm(36 * k)).collect();
        let seq = run_many_with(&psms, EmulatorConfig::default(), 1);
        let par = run_many_with(&psms, EmulatorConfig::default(), 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.makespan, b.makespan);
            assert_eq!(a.sas, b.sas);
            assert_eq!(a.ca, b.ca);
            assert_eq!(a.bus, b.bus);
        }
    }

    #[test]
    fn results_in_input_order() {
        let psms: Vec<Psm> = (1..=8).map(|k| psm(36 * k)).collect();
        let out = run_many(&psms);
        // More items => strictly longer makespan, so order checks placement.
        for w in out.windows(2) {
            assert!(w[0].makespan < w[1].makespan);
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        assert!(run_many(&[]).is_empty());
        let one = run_many(&[psm(36)]);
        assert_eq!(one.len(), 1);
    }
}
