//! The emulation result: every counter the paper's tool prints, plus the
//! derived execution-time figures.

use std::fmt::Write as _;

use segbus_model::ids::{ProcessId, SegmentId};
use segbus_model::platform::BorderUnitRef;
use segbus_model::time::{ClockDomain, Picos};

use crate::counters::{BuCounters, CaCounters, FuTimes, SaCounters};
use crate::trace::TraceLog;

/// Complete result of one emulation run.
#[derive(Clone, Debug)]
pub struct EmulationReport {
    /// One entry per segment arbiter.
    pub sas: Vec<SaCounters>,
    /// The central arbiter.
    pub ca: CaCounters,
    /// One entry per border unit (`BU12`, `BU23`, …).
    pub bus: Vec<BuCounters>,
    /// The border units, parallel to [`EmulationReport::bus`].
    pub bu_refs: Vec<BorderUnitRef>,
    /// Per-process observed schedule.
    pub fus: Vec<FuTimes>,
    /// Per-segment clock domains (copied from the platform for reporting).
    pub segment_clocks: Vec<ClockDomain>,
    /// The CA clock domain.
    pub ca_clock: ClockDomain,
    /// Package size used by the run.
    pub package_size: u32,
    /// Global instant of the last activity (quiescence).
    pub makespan: Picos,
    /// Optional package-level trace.
    pub trace: Option<TraceLog>,
}

impl EmulationReport {
    /// A blank report for buffer reuse: pass it (or any previous report)
    /// to [`run_plan_into`] to have the run's result assembled into the
    /// existing vectors instead of freshly allocated ones. Placement
    /// search holds one such report per evaluator and amortises report
    /// assembly across thousands of candidate emulations.
    ///
    /// [`run_plan_into`]: crate::Engine::run_plan_into
    pub fn empty() -> EmulationReport {
        EmulationReport {
            sas: Vec::new(),
            ca: CaCounters::default(),
            bus: Vec::new(),
            bu_refs: Vec::new(),
            fus: Vec::new(),
            segment_clocks: Vec::new(),
            ca_clock: ClockDomain::from_period_ps(1),
            package_size: 0,
            makespan: Picos::ZERO,
            trace: None,
        }
    }

    /// The paper's total execution time:
    /// `max(t_SA1, …, t_SAn, t_CA)` where `t_X = TCT_X × period_X`.
    pub fn execution_time(&self) -> Picos {
        let mut t = self.ca.execution_time(self.ca_clock);
        for (sa, clk) in self.sas.iter().zip(&self.segment_clocks) {
            t = t.max(sa.execution_time(*clk));
        }
        t
    }

    /// Execution time of one SA.
    pub fn sa_execution_time(&self, s: SegmentId) -> Picos {
        self.sas[s.index()].execution_time(self.segment_clocks[s.index()])
    }

    /// Total packages that crossed any border unit.
    pub fn inter_segment_packages(&self) -> u64 {
        self.bus.iter().map(|b| b.total_in()).sum()
    }

    /// Total intra-segment requests over all SAs.
    pub fn total_intra_requests(&self) -> u64 {
        self.sas.iter().map(|s| s.intra_requests).sum()
    }

    /// Observed start/end of one process, if it ever ran.
    pub fn fu(&self, p: ProcessId) -> &FuTimes {
        &self.fus[p.index()]
    }

    /// `true` once every process raised its status flag (the monitor's end
    /// condition, §3.3).
    pub fn all_flags_raised(&self) -> bool {
        self.fus.iter().all(|f| f.flag)
    }

    /// Render the report in the layout of the paper's §4 print-out.
    pub fn paper_style(&self) -> String {
        let mut out = String::new();
        for (i, fu) in self.fus.iter().enumerate() {
            if let (Some(s), Some(e)) = (fu.start, fu.end) {
                let _ = writeln!(out, "P{i}, Start Time = {}ps, End Time = {}ps", s.0, e.0);
            } else if let Some(r) = fu.last_received {
                let _ = writeln!(out, "P{i} received last package at {}ps", r.0);
            }
        }
        let _ = writeln!(out, "CA TCT = {}", self.ca.tct);
        let _ = writeln!(
            out,
            "Execution time = {}ps @ {:.2}MHz",
            self.execution_time().0,
            self.ca_clock.mhz()
        );
        for (i, bu) in self.bus.iter().enumerate() {
            let r = self.bu_refs[i];
            let _ = writeln!(
                out,
                "{r}:  Total input packages = {}, Total output packages = {}",
                bu.total_in(),
                bu.total_out()
            );
            let _ = writeln!(
                out,
                "    Package Received from {} = {}, Package Transfered to {} = {}",
                r.left, bu.received_from_left, r.left, bu.transferred_to_left
            );
            let _ = writeln!(
                out,
                "    Package Received from {} = {}, Package Transfered to {} = {}",
                r.right(),
                bu.received_from_right,
                r.right(),
                bu.transferred_to_right
            );
            let _ = writeln!(out, "    TCT = {}", bu.tct);
        }
        for (i, sa) in self.sas.iter().enumerate() {
            let s = SegmentId(i as u16);
            let _ = writeln!(
                out,
                "{s}: Packets transfered to Left = {}, Packets transfered to Right = {}",
                sa.packets_to_left, sa.packets_to_right
            );
        }
        for (i, sa) in self.sas.iter().enumerate() {
            let s = SegmentId(i as u16);
            let _ = writeln!(
                out,
                "SA{}: TCT = {}, Total intra-segment requests = {}, Total inter-segment requests = {}, Execution Time = {}ps @ {:.2}MHz",
                i + 1,
                sa.tct,
                sa.intra_requests,
                sa.inter_requests,
                self.sa_execution_time(s).0,
                self.segment_clocks[i].mhz()
            );
        }
        out
    }

    /// The Fig. 10 timeline series: `(process, start, end)` per process,
    /// using the producer start/end where available and the last-received
    /// instant for pure sinks.
    pub fn timeline(&self) -> Vec<(ProcessId, Picos, Picos)> {
        self.fus
            .iter()
            .enumerate()
            .filter_map(|(i, fu)| {
                let p = ProcessId(i as u32);
                match (fu.start, fu.end, fu.last_received) {
                    (Some(s), Some(e), _) => Some((p, s, e)),
                    (None, None, Some(r)) => Some((p, r, r)),
                    _ => None,
                }
            })
            .collect()
    }

    /// The BU bottleneck analysis of §4: per BU `(UP, TCT, W̄P)`.
    pub fn bu_analysis(&self) -> Vec<(BorderUnitRef, u64, u64, f64)> {
        self.bus
            .iter()
            .enumerate()
            .map(|(i, b)| {
                (
                    self.bu_refs[i],
                    b.useful_period(self.package_size),
                    b.tct,
                    b.avg_waiting_period(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EmulationReport {
        EmulationReport {
            sas: vec![
                SaCounters {
                    tct: 1000,
                    intra_requests: 5,
                    ..Default::default()
                },
                SaCounters {
                    tct: 2000,
                    inter_requests: 2,
                    ..Default::default()
                },
            ],
            ca: CaCounters {
                tct: 3000,
                inter_requests: 2,
                ..Default::default()
            },
            bus: vec![BuCounters {
                received_from_left: 2,
                transferred_to_right: 2,
                tct: 150,
                waiting_ticks: 6,
                ..Default::default()
            }],
            bu_refs: vec![BorderUnitRef::right_of(SegmentId(0))],
            fus: vec![
                FuTimes {
                    start: Some(Picos(10)),
                    end: Some(Picos(100)),
                    flag: true,
                    packages_sent: 2,
                    ..Default::default()
                },
                FuTimes {
                    last_received: Some(Picos(120)),
                    flag: true,
                    packages_received: 2,
                    ..Default::default()
                },
            ],
            segment_clocks: vec![ClockDomain::from_mhz(100.0), ClockDomain::from_mhz(100.0)],
            ca_clock: ClockDomain::from_mhz(200.0),
            package_size: 36,
            makespan: Picos(125),
            trace: None,
        }
    }

    #[test]
    fn execution_time_is_max_over_arbiters() {
        let r = sample();
        // SA1: 1000 × 10000 ps; SA2: 2000 × 10000; CA: 3000 × 5000.
        assert_eq!(r.sa_execution_time(SegmentId(0)), Picos(10_000_000));
        assert_eq!(r.sa_execution_time(SegmentId(1)), Picos(20_000_000));
        assert_eq!(r.ca.execution_time(r.ca_clock), Picos(15_000_000));
        assert_eq!(r.execution_time(), Picos(20_000_000));
    }

    #[test]
    fn aggregates() {
        let r = sample();
        assert_eq!(r.inter_segment_packages(), 2);
        assert_eq!(r.total_intra_requests(), 5);
        assert!(r.all_flags_raised());
    }

    #[test]
    fn paper_style_mentions_every_element() {
        let s = sample().paper_style();
        assert!(s.contains("CA TCT = 3000"));
        assert!(s.contains("BU12"));
        assert!(s.contains("SA1:"));
        assert!(s.contains("SA2:"));
        assert!(s.contains("P0, Start Time = 10ps"));
        assert!(s.contains("P1 received last package at 120ps"));
        assert!(s.contains("Execution time = 20000000ps"));
    }

    #[test]
    fn timeline_covers_producers_and_sinks() {
        let t = sample().timeline();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0], (ProcessId(0), Picos(10), Picos(100)));
        assert_eq!(t[1], (ProcessId(1), Picos(120), Picos(120)));
    }

    #[test]
    fn bu_analysis_matches_counters() {
        let r = sample();
        let a = r.bu_analysis();
        assert_eq!(a.len(), 1);
        let (bu, up, tct, wp) = a[0];
        assert_eq!(bu.to_string(), "BU12");
        assert_eq!(up, 2 * 36 * 2);
        assert_eq!(tct, 150);
        assert!((wp - 3.0).abs() < 1e-9);
    }
}
