//! Content-addressed caching of emulation reports.
//!
//! The emulator is deterministic: a report is a pure function of the
//! model's semantics ([`Psm::digest`]), the [`EmulatorConfig`] and the
//! frame count. [`job_digest`] folds all three into one stable 64-bit key;
//! [`ReportCache`] is a fixed-capacity LRU over completed reports keyed on
//! it; [`CachedPool`] puts the cache in front of a [`SweepPool`] so that
//! batch fronts (the `segbus batch` subcommand and the `segbus-serve`
//! service) only pay for the *distinct* jobs in a batch.
//!
//! Everything here is std-only (`HashMap` + an intrusive slab for the LRU
//! list — no external crates) and the cache never returns a stale entry:
//! the key covers every input the engine reads, so a hit is bit-identical
//! to a fresh run by construction. Hit/miss/eviction counters are kept for
//! the service's stats endpoint and surface in [`CacheStats`].
//!
//! A [`CachedPool`] can additionally be backed by a [`DiskStore`]
//! ([`CachedPool::attach_disk`]): fresh reports are written through to
//! disk, LRU evictions spill there, and a memory miss consults the store
//! before emulating — so the cache warm-starts across process restarts.
//! Disk hits promote back into memory and are counted separately
//! ([`CacheStats::disk_hits`]).

use std::collections::HashMap;
use std::path::Path;

use segbus_model::diag::SegbusError;
use segbus_model::digest::Fnv64;
use segbus_model::mapping::Psm;

use crate::config::{ArbitrationPolicy, EmulatorConfig, ProducerRelease};
use crate::engine::Engine;
use crate::parallel::SweepPool;
use crate::persist::DiskStore;
use crate::report::EmulationReport;

/// Absorb every semantic field of an [`EmulatorConfig`] into `h`.
///
/// Tagged like the PSM encoding (see `segbus_model::digest`): a leading
/// section byte, then each field in declaration order. `trace` is
/// included — traced and untraced reports differ in content.
fn absorb_config(h: &mut Fnv64, config: &EmulatorConfig) {
    const TAG_CONFIG: u8 = 0x10;
    h.write_u8(TAG_CONFIG);
    let t = &config.timing;
    for v in [
        t.request_ticks,
        t.header_ticks,
        t.release_ticks,
        t.ca_request_ticks,
        t.ca_grant_ticks,
        t.ca_release_ticks,
        t.wp_sample_ticks,
        t.bu_sync_ticks,
        t.sa_grant_ticks,
        t.master_response_ticks,
        t.sa_grant_reset_ticks,
    ] {
        h.write_u64(v);
    }
    h.write_u8(match config.producer_release {
        ProducerRelease::AfterDelivery => 0,
        ProducerRelease::AfterLocalPhase => 1,
    });
    h.write_u8(match config.arbitration {
        ArbitrationPolicy::Fifo => 0,
        ArbitrationPolicy::FixedPriority => 1,
        ArbitrationPolicy::FairRoundRobin => 2,
    });
    h.write_u8(config.trace as u8);
    // The queue kind and the engine kind are deliberately *excluded*:
    // every implementation pair is differential-tested bit-identical, so
    // reports may be shared across them — an entry written by the
    // interpreter answers for the fast core and vice versa. (DESIGN.md
    // §10 and §12 document this as part of the cache contract.)
}

/// The cache key of one emulation job: `Psm::digest` + config + frames.
///
/// Two jobs with equal digests produce bit-identical reports (up to the
/// ~`n²/2⁶⁵` FNV collision probability, which the cache accepts).
pub fn job_digest(psm: &Psm, config: &EmulatorConfig, frames: u64) -> u64 {
    job_digest_from(psm.digest(), config, frames)
}

/// [`job_digest`] for a model digest computed elsewhere.
///
/// Placement search hashes thousands of allocations of one fixed
/// platform + application; it derives each candidate's model digest
/// incrementally ([`Psm::digest_prefix`] +
/// [`segbus_model::digest_with_slots`]) and finishes the cache key here
/// without materialising a `Psm` per candidate. Equal to
/// [`job_digest`] whenever `psm_digest == psm.digest()`.
pub fn job_digest_from(psm_digest: u64, config: &EmulatorConfig, frames: u64) -> u64 {
    const TAG_FRAMES: u8 = 0x11;
    let mut h = Fnv64::new();
    h.write_u64(psm_digest);
    absorb_config(&mut h, config);
    h.write_u8(TAG_FRAMES);
    h.write_u64(frames);
    h.finish()
}

/// Snapshot of a cache's counters, surfaced by the service stats response.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the pool.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Maximum resident entries.
    pub capacity: usize,
    /// Hits answered from the persistent store (a subset of `hits`;
    /// always `0` without an attached [`DiskStore`]).
    pub disk_hits: u64,
    /// Reports resident on disk (`0` without an attached store).
    pub disk_len: usize,
}

impl CacheStats {
    /// Hits answered from resident memory — the fastest tier. Together
    /// with [`disk_hits`](CacheStats::disk_hits) and `misses` (the
    /// emulate tier) this splits every lookup across the three tiers.
    pub fn memory_hits(&self) -> u64 {
        self.hits.saturating_sub(self.disk_hits)
    }
}

const NIL: usize = usize::MAX;

struct Entry {
    key: u64,
    report: EmulationReport,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU map from [`job_digest`] keys to completed reports.
///
/// `HashMap` for lookup, an intrusive doubly linked list threaded through
/// a slab (`Vec<Entry>` + free list) for recency — O(1) get/insert/evict
/// with no per-operation allocation once warm.
pub struct ReportCache {
    capacity: usize,
    map: HashMap<u64, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    /// Most recently used.
    head: usize,
    /// Least recently used (eviction end).
    tail: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ReportCache {
    /// A cache holding at most `capacity` reports (`0` is treated as `1`).
    pub fn new(capacity: usize) -> ReportCache {
        let capacity = capacity.max(1);
        ReportCache {
            capacity,
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.map.len(),
            capacity: self.capacity,
            // The persistent tier lives in [`CachedPool`], which overlays
            // these two fields in its own `stats`.
            disk_hits: 0,
            disk_len: 0,
        }
    }

    /// `true` if `key` is resident, without counting a lookup or
    /// refreshing recency (for "was this a hit?" reporting).
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// Look `key` up, counting a hit or miss and refreshing recency.
    pub fn get(&mut self, key: u64) -> Option<EmulationReport> {
        match self.map.get(&key).copied() {
            Some(i) => {
                self.hits += 1;
                self.detach(i);
                self.push_front(i);
                Some(self.slab[i].report.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) `key`, evicting the least recently used entry
    /// when full. The evicted entry, if any, is returned so a caller with
    /// a persistent tier can spill it instead of dropping it.
    pub fn insert(&mut self, key: u64, report: EmulationReport) -> Option<(u64, EmulationReport)> {
        if let Some(&i) = self.map.get(&key) {
            self.slab[i].report = report;
            self.detach(i);
            self.push_front(i);
            return None;
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.detach(lru);
            let old_key = self.slab[lru].key;
            self.map.remove(&old_key);
            self.evictions += 1;
            let old = std::mem::replace(
                &mut self.slab[lru],
                Entry {
                    key,
                    report,
                    prev: NIL,
                    next: NIL,
                },
            );
            evicted = Some((old_key, old.report));
            self.map.insert(key, lru);
            self.push_front(lru);
            return evicted;
        }
        let entry = Entry {
            key,
            report,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slab[i] = entry;
                i
            }
            None => {
                self.slab.push(entry);
                self.slab.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
        evicted
    }

    fn detach(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == i {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == i {
            self.tail = prev;
        }
        self.slab[i].prev = NIL;
        self.slab[i].next = NIL;
    }

    fn push_front(&mut self, i: usize) {
        self.slab[i].next = self.head;
        self.slab[i].prev = NIL;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }
}

/// One job of a cached batch: a model plus its run parameters.
#[derive(Clone, Debug)]
pub struct BatchJob {
    /// The validated model to emulate.
    pub psm: Psm,
    /// Emulator configuration for this job.
    pub config: EmulatorConfig,
    /// Number of pipelined frames (`1` = the paper's single-shot run).
    pub frames: u64,
}

impl BatchJob {
    /// A single-frame job under `config`.
    pub fn new(psm: Psm, config: EmulatorConfig) -> BatchJob {
        BatchJob {
            psm,
            config,
            frames: 1,
        }
    }

    /// This job's cache key.
    pub fn digest(&self) -> u64 {
        job_digest(&self.psm, &self.config, self.frames)
    }
}

/// A [`ReportCache`] in front of a [`SweepPool`].
///
/// `run_batch` answers duplicate jobs from the cache (and deduplicates
/// *within* the batch: a digest occurring `k` times is emulated once),
/// fans the distinct misses out over the pool through the fallible
/// pre-flight path ([`Engine::try_run_frames`], never the panicking one),
/// and returns per-job results in input order.
///
/// With an attached [`DiskStore`] the lookup order is memory → disk →
/// emulate: fresh reports are written through to disk (best-effort — an
/// I/O failure degrades to a memory-only cache rather than failing the
/// job), and memory evictions spill to disk, so nothing computed is ever
/// lost to capacity pressure.
pub struct CachedPool {
    pool: SweepPool,
    cache: ReportCache,
    disk: Option<DiskStore>,
    disk_hits: u64,
}

impl CachedPool {
    /// A cached pool whose workers default to `config`, caching up to
    /// `capacity` reports.
    pub fn new(config: EmulatorConfig, capacity: usize) -> CachedPool {
        CachedPool::with_pool(SweepPool::new(config), capacity)
    }

    /// A cached pool over an explicit [`SweepPool`].
    pub fn with_pool(pool: SweepPool, capacity: usize) -> CachedPool {
        CachedPool {
            pool,
            cache: ReportCache::new(capacity),
            disk: None,
            disk_hits: 0,
        }
    }

    /// Attach (opening or creating) a persistent [`DiskStore`] under
    /// `dir`. Reports already on disk become warm-start hits; everything
    /// emulated from now on is written through.
    pub fn attach_disk(&mut self, dir: &Path) -> std::io::Result<()> {
        self.disk = Some(DiskStore::open(dir)?);
        Ok(())
    }

    /// The attached persistent store, if any.
    pub fn disk(&self) -> Option<&DiskStore> {
        self.disk.as_ref()
    }

    /// The underlying pool.
    pub fn pool(&self) -> &SweepPool {
        &self.pool
    }

    /// Current cache counters (memory and disk tiers combined).
    pub fn stats(&self) -> CacheStats {
        let mut s = self.cache.stats();
        s.disk_hits = self.disk_hits;
        s.disk_len = self.disk.as_ref().map_or(0, DiskStore::len);
        s
    }

    /// `true` if `job` would be answered from the cache (either tier)
    /// right now.
    pub fn is_cached(&self, job: &BatchJob) -> bool {
        let key = job.digest();
        self.cache.contains(key) || self.disk.as_ref().is_some_and(|d| d.contains(key))
    }

    /// Run one job through the cache (a batch of one).
    pub fn run_one(&mut self, job: &BatchJob) -> Result<EmulationReport, SegbusError> {
        self.run_batch(std::slice::from_ref(job)).pop().unwrap()
    }

    /// Look one digest up in the memory → disk tiers without emulating on
    /// a miss. Counts a hit or a miss, and a disk hit is promoted into
    /// memory (and counted in `disk_hits`), exactly as `run_batch` would.
    ///
    /// This is the tier front-end used by callers that own their own
    /// emulation loop (the parallel placement search): they consult the
    /// shared tiers first and [`CachedPool::insert`] what they compute.
    pub fn lookup(&mut self, key: u64) -> Option<EmulationReport> {
        if self.cache.contains(key) {
            return self.cache.get(key);
        }
        if let Some(report) = self.disk.as_mut().and_then(|d| d.get(key)) {
            self.cache.hits += 1;
            self.disk_hits += 1;
            self.insert_and_spill(key, report.clone());
            return Some(report);
        }
        self.cache.misses += 1;
        None
    }

    /// Record a freshly computed report under `key`: write-through to the
    /// persistent tier (best-effort) and insert into memory, spilling the
    /// LRU evictee to disk. The counterpart of [`CachedPool::lookup`].
    pub fn insert(&mut self, key: u64, report: &EmulationReport) {
        if let Some(disk) = self.disk.as_mut() {
            let _ = disk.append(key, report);
        }
        self.insert_and_spill(key, report.clone());
    }

    /// Run a batch, answering duplicates from the cache. Results are in
    /// input order; each failed job carries its typed [`SegbusError`].
    ///
    /// Duplicates *within* the batch also count as hits: they are answered
    /// from the in-flight first occurrence rather than a fresh emulation,
    /// so only the first occurrence of each digest registers a miss.
    pub fn run_batch(&mut self, jobs: &[BatchJob]) -> Vec<Result<EmulationReport, SegbusError>> {
        // Phase 1: resolve hits and collect the distinct misses.
        let mut results: Vec<Option<Result<EmulationReport, SegbusError>>> =
            (0..jobs.len()).map(|_| None).collect();
        let mut miss_index: HashMap<u64, usize> = HashMap::new();
        let mut misses: Vec<(u64, usize)> = Vec::new(); // (digest, first job idx)
        let mut pending: Vec<(usize, usize)> = Vec::new(); // (job idx, miss idx)
        for (i, job) in jobs.iter().enumerate() {
            let key = job.digest();
            if let Some(&m) = miss_index.get(&key) {
                // In-batch duplicate: shares the first occurrence's run.
                // (A key can only be here if it missed both tiers, so this
                // never shadows a cache hit.)
                self.cache.hits += 1;
                pending.push((i, m));
            } else if let Some(report) = self.lookup(key) {
                results[i] = Some(Ok(report));
            } else {
                miss_index.insert(key, misses.len());
                misses.push((key, i));
                pending.push((i, misses.len() - 1));
            }
        }

        // Phase 2: emulate the distinct misses on the pool. A job whose
        // config differs from the pool default gets a one-off engine; the
        // common case reuses the worker's warm scratch state.
        let computed: Vec<Result<EmulationReport, SegbusError>> =
            self.pool.sweep_with(&misses, |engine, &(_, idx)| {
                let job = &jobs[idx];
                if *engine.config() == job.config {
                    engine.try_run_frames(&job.psm, job.frames)
                } else {
                    Engine::new(job.config).try_run_frames(&job.psm, job.frames)
                }
            });

        // Phase 3: fill successes into the cache (writing through to the
        // persistent tier) and assemble the output.
        for ((key, _), result) in misses.iter().zip(&computed) {
            if let Ok(report) = result {
                self.insert(*key, report);
            }
        }
        for (i, m) in pending {
            results[i] = Some(computed[m].clone());
        }
        results
            .into_iter()
            .map(|r| r.expect("every job is a hit or a pending miss"))
            .collect()
    }

    /// Insert into the memory tier; an LRU evictee spills to disk so
    /// capacity pressure never discards a computed report (a no-op when
    /// the report is already stored or carries a trace).
    fn insert_and_spill(&mut self, key: u64, report: EmulationReport) {
        if let Some((old_key, old_report)) = self.cache.insert(key, report) {
            if let Some(disk) = self.disk.as_mut() {
                let _ = disk.append(old_key, &old_report);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueueKind;
    use segbus_model::ids::SegmentId;
    use segbus_model::mapping::Allocation;
    use segbus_model::platform::Platform;
    use segbus_model::psdf::{Application, Flow, Process};
    use segbus_model::time::ClockDomain;

    fn psm(items: u64) -> Psm {
        let mut app = Application::new("c");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::final_("B"));
        app.add_flow(Flow::new(a, b, items, 1, 50)).unwrap();
        let mut alloc = Allocation::new(2);
        alloc.assign(a, SegmentId(0));
        alloc.assign(b, SegmentId(1));
        let platform = Platform::builder("t")
            .uniform_segments(2, ClockDomain::from_mhz(100.0))
            .build()
            .unwrap();
        Psm::new(platform, app, alloc).unwrap()
    }

    fn assert_same_report(a: &EmulationReport, b: &EmulationReport) {
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.sas, b.sas);
        assert_eq!(a.ca, b.ca);
        assert_eq!(a.bus, b.bus);
        assert_eq!(a.fus, b.fus);
    }

    #[test]
    fn hit_is_bit_identical_to_fresh_run() {
        let config = EmulatorConfig::default();
        let mut pool = CachedPool::with_pool(SweepPool::with_threads(config, 2), 16);
        let job = BatchJob::new(psm(72), config);
        let first = pool.run_one(&job).unwrap();
        let second = pool.run_one(&job).unwrap();
        let fresh = crate::engine::Emulator::new(config)
            .try_run(&job.psm)
            .unwrap();
        assert_same_report(&first, &fresh);
        assert_same_report(&second, &fresh);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn batch_deduplicates_within_itself() {
        let config = EmulatorConfig::default();
        let mut pool = CachedPool::with_pool(SweepPool::with_threads(config, 2), 16);
        let a = BatchJob::new(psm(36), config);
        let b = BatchJob::new(psm(72), config);
        let jobs = vec![a.clone(), b.clone(), a.clone(), b.clone(), a.clone()];
        let out = pool.run_batch(&jobs);
        assert_eq!(out.len(), 5);
        assert_same_report(out[0].as_ref().unwrap(), out[2].as_ref().unwrap());
        assert_same_report(out[0].as_ref().unwrap(), out[4].as_ref().unwrap());
        assert_same_report(out[1].as_ref().unwrap(), out[3].as_ref().unwrap());
        // Only the first occurrence of each distinct job misses; the three
        // in-batch duplicates are hits (answered from the in-flight runs).
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (3, 2));
        assert_eq!(s.len, 2);
        // A second identical batch is all hits.
        let again = pool.run_batch(&jobs);
        assert_eq!(pool.stats().hits, 8);
        for (x, y) in out.iter().zip(&again) {
            assert_same_report(x.as_ref().unwrap(), y.as_ref().unwrap());
        }
    }

    #[test]
    fn digest_distinguishes_config_and_frames() {
        let m = psm(72);
        let base = EmulatorConfig::default();
        let d = job_digest(&m, &base, 1);
        assert_ne!(d, job_digest(&m, &base, 2), "frames are semantic");
        assert_ne!(
            d,
            job_digest(&m, &EmulatorConfig::detailed(), 1),
            "timing is semantic"
        );
        assert_ne!(
            d,
            job_digest(&m, &EmulatorConfig::traced(), 1),
            "tracing changes report content"
        );
        let rr = EmulatorConfig {
            arbitration: ArbitrationPolicy::FairRoundRobin,
            ..base
        };
        assert_ne!(d, job_digest(&m, &rr, 1), "arbitration is semantic");
        let fire = EmulatorConfig {
            producer_release: ProducerRelease::AfterLocalPhase,
            ..base
        };
        assert_ne!(d, job_digest(&m, &fire, 1), "release policy is semantic");
        // The queue kind is NOT semantic: both engines are bit-identical.
        let heap = EmulatorConfig {
            queue: QueueKind::BinaryHeap,
            ..base
        };
        assert_eq!(d, job_digest(&m, &heap, 1), "queue kind shares entries");
        // Neither is the engine kind: the fast core and the interpreter
        // produce the same report, so their cache entries interchange.
        let interp = EmulatorConfig {
            engine: crate::EngineKind::Interpreter,
            ..base
        };
        assert_eq!(d, job_digest(&m, &interp, 1), "engine kind shares entries");
    }

    #[test]
    fn per_job_config_overrides_use_their_own_engine() {
        let config = EmulatorConfig::default();
        let mut pool = CachedPool::with_pool(SweepPool::with_threads(config, 2), 16);
        let m = psm(72);
        let jobs = vec![
            BatchJob::new(m.clone(), config),
            BatchJob::new(m.clone(), EmulatorConfig::detailed()),
        ];
        let out = pool.run_batch(&jobs);
        let plain = out[0].as_ref().unwrap();
        let detailed = out[1].as_ref().unwrap();
        // Detailed timing adds latency, so the jobs must not share a report.
        assert!(detailed.makespan > plain.makespan);
        let fresh = crate::engine::Emulator::new(EmulatorConfig::detailed())
            .try_run(&m)
            .unwrap();
        assert_same_report(detailed, &fresh);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = ReportCache::new(2);
        let config = EmulatorConfig::default();
        let mk = |items| {
            crate::engine::Emulator::new(config)
                .try_run(&psm(items))
                .unwrap()
        };
        cache.insert(1, mk(36));
        cache.insert(2, mk(72));
        assert!(cache.get(1).is_some()); // 1 is now MRU
        cache.insert(3, mk(108)); // evicts 2
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.len, 2);
        assert_eq!(s.capacity, 2);
    }

    #[test]
    fn invalid_jobs_return_typed_errors_without_poisoning_the_cache() {
        let config = EmulatorConfig::default();
        let mut pool = CachedPool::with_pool(SweepPool::with_threads(config, 2), 16);
        let good = BatchJob::new(psm(72), config);
        let bad = BatchJob {
            frames: 0, // C001
            ..good.clone()
        };
        let out = pool.run_batch(&[bad.clone(), good.clone(), bad]);
        assert_eq!(out[0].as_ref().unwrap_err().code, "C001");
        assert!(out[1].is_ok());
        assert_eq!(out[2].as_ref().unwrap_err().code, "C001");
        // Errors are never cached; only the good report is resident.
        assert_eq!(pool.stats().len, 1);
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "segbus-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn disk_tier_warm_starts_a_fresh_pool() {
        let dir = tmpdir("warm");
        let config = EmulatorConfig::default();
        let job = BatchJob::new(psm(72), config);
        let first = {
            let mut pool = CachedPool::with_pool(SweepPool::with_threads(config, 2), 16);
            pool.attach_disk(&dir).unwrap();
            assert!(!pool.is_cached(&job));
            let report = pool.run_one(&job).unwrap();
            let s = pool.stats();
            assert_eq!((s.misses, s.disk_hits, s.disk_len), (1, 0, 1));
            report
        };
        // A brand-new pool (fresh process, conceptually) over the same dir
        // answers from disk without emulating.
        let mut pool = CachedPool::with_pool(SweepPool::with_threads(config, 2), 16);
        pool.attach_disk(&dir).unwrap();
        assert!(pool.is_cached(&job), "disk contents count as cached");
        let warm = pool.run_one(&job).unwrap();
        assert_same_report(&first, &warm);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.disk_hits), (1, 0, 1));
        // The promotion means a repeat is a pure memory hit.
        pool.run_one(&job).unwrap();
        let s = pool.stats();
        assert_eq!((s.hits, s.disk_hits), (2, 1));
    }

    #[test]
    fn eviction_spills_to_disk_instead_of_discarding() {
        let dir = tmpdir("spill");
        let config = EmulatorConfig::default();
        // Memory capacity 1: the second distinct job evicts the first.
        let mut pool = CachedPool::with_pool(SweepPool::with_threads(config, 2), 1);
        pool.attach_disk(&dir).unwrap();
        let a = BatchJob::new(psm(36), config);
        let b = BatchJob::new(psm(72), config);
        pool.run_one(&a).unwrap();
        pool.run_one(&b).unwrap();
        let s = pool.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.disk_len, 2, "both reports reached disk");
        // The evicted job comes back as a disk hit, not a re-emulation.
        assert!(pool.is_cached(&a));
        pool.run_one(&a).unwrap();
        let s = pool.stats();
        assert_eq!((s.misses, s.disk_hits), (2, 1));
    }
}
