//! The discrete-event estimation engine.
//!
//! One [`Emulator::run`] call executes a validated PSM to completion under
//! the wave semantics of DESIGN.md §4:
//!
//! * flows are grouped by ordering number `T`; wave `k` starts when wave
//!   `k-1` has fully delivered;
//! * a producer computes one package (`C` ticks of its segment clock,
//!   scaled by the cost model), requests the bus, and resumes with the next
//!   package once its local transfer phase completes;
//! * intra-segment transfers occupy the segment bus for
//!   [`crate::TimingParams::bus_transaction_ticks`] ticks;
//! * inter-segment transfers are circuit-switched: the CA reserves every
//!   segment on the path (linear, or the shorter way around a ring), the
//!   package hops BU to BU, and segments are released in a cascade as the
//!   package advances (paper Fig. 2);
//! * the run ends when every process has raised its status flag and no
//!   platform element has pending work — the monitor condition of §3.3.
//!
//! The engine is fully deterministic: events are ordered by (time,
//! insertion sequence), all queues are FIFO, and producers round-robin
//! over same-wave flows.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use segbus_model::ids::{FlowId, ProcessId, SegmentId};
use segbus_model::mapping::Psm;
use segbus_model::time::{ClockDomain, Picos};

use crate::config::{ArbitrationPolicy, EmulatorConfig, ProducerRelease};
use crate::counters::{BuCounters, CaCounters, FuTimes, SaCounters};
use crate::report::EmulationReport;
use crate::trace::{TraceEvent, TraceKind, TraceLog};

/// The performance-estimation emulator.
///
/// Construct once with a configuration, then [`Emulator::run`] any number
/// of PSMs (runs are independent).
#[derive(Clone, Copy, Debug, Default)]
pub struct Emulator {
    config: EmulatorConfig,
}

impl Emulator {
    /// Create an emulator with the given configuration.
    pub fn new(config: EmulatorConfig) -> Emulator {
        Emulator { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &EmulatorConfig {
        &self.config
    }

    /// Execute the PSM to completion and return the report.
    pub fn run(&self, psm: &Psm) -> EmulationReport {
        Sim::new(psm, self.config, 1).run()
    }

    /// Execute `frames` back-to-back iterations of the application — the
    /// streaming case the single-shot paper experiment abstracts away.
    ///
    /// Successive frames *pipeline* through the wave schedule: frame
    /// `k`'s wave `w` becomes eligible as soon as frame `k`'s wave `w−1`
    /// has delivered, independent of frame `k−1`'s later waves; each
    /// functional unit still produces its own packages strictly in frame
    /// order. `run_frames(psm, 1)` is identical to [`Emulator::run`].
    ///
    /// # Panics
    /// Panics if `frames` is zero.
    pub fn run_frames(&self, psm: &Psm, frames: u64) -> EmulationReport {
        assert!(frames > 0, "at least one frame");
        Sim::new(psm, self.config, frames).run()
    }
}

// ---------------------------------------------------------------------------
// events

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Ev {
    /// A producer finished computing a package of `flow`.
    ComputeDone { flow: FlowId, pkg: u64 },
    /// Try to dispatch the local request queue of `seg`.
    SaDispatch { seg: SegmentId },
    /// An inter-segment request reaches the CA.
    CaArrive { req: u32 },
    /// Try to grant queued inter-segment requests.
    CaDispatch,
    /// An intra-segment transfer completed.
    IntraDone { flow: FlowId, pkg: u64 },
    /// Hop `hop` of inter-segment transfer `req` completed.
    PhaseDone { req: u32, hop: u8 },
}

struct QEntry {
    at: Picos,
    seq: u64,
    ev: Ev,
}

impl PartialEq for QEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QEntry {}
impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QEntry {
    // Reversed: BinaryHeap is a max-heap, we need the earliest event first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

// ---------------------------------------------------------------------------
// simulation state

/// A pending intra-segment package transfer.
#[derive(Clone, Copy, Debug)]
struct LocalReq {
    flow: FlowId,
    pkg: u64,
}

/// An inter-segment transfer in flight.
#[derive(Clone, Debug)]
struct InterTransfer {
    flow: FlowId,
    pkg: u64,
    /// Segments on the path, source first, destination last.
    path: Vec<SegmentId>,
    /// Granted yet?
    granted: bool,
}

#[derive(Clone, Debug, Default)]
struct ProducerState {
    /// (flow, packages remaining, frame) for the armed wave instances.
    pending: Vec<(FlowId, u64, u64)>,
    /// Round-robin cursor over `pending`.
    rr: usize,
    /// Currently computing or transferring a package.
    busy: bool,
}

struct Sim<'a> {
    psm: &'a Psm,
    cfg: EmulatorConfig,
    s: u32,
    // static tables
    flow_pkgs: Vec<u64>,
    flow_compute: Vec<u64>,
    seg_clock: Vec<ClockDomain>,
    ca_clock: ClockDomain,
    waves: Vec<Vec<FlowId>>,
    // event queue
    queue: BinaryHeap<QEntry>,
    seq: u64,
    // schedule state
    frames: u64,
    /// Wave index of each flow (parallel to the flow table).
    flow_wave: Vec<usize>,
    /// Outstanding deliveries per wave instance (`frame * waves + wave`).
    instance_remaining: Vec<u64>,
    producers: Vec<ProducerState>,
    outputs_remaining: Vec<u64>,
    inputs_remaining: Vec<u64>,
    // platform state
    bus_free: Vec<Picos>,
    /// Segment locked into a granted inter-segment circuit.
    reserved: Vec<bool>,
    sa_queue: Vec<VecDeque<LocalReq>>,
    /// Per-process local-bus service counts (fair round-robin arbitration).
    served: Vec<u64>,
    ca_queue: VecDeque<u32>,
    transfers: Vec<InterTransfer>,
    // counters
    sas: Vec<SaCounters>,
    ca: CaCounters,
    bus_ctr: Vec<BuCounters>,
    fus: Vec<FuTimes>,
    makespan: Picos,
    trace: Option<TraceLog>,
}

impl<'a> Sim<'a> {
    fn new(psm: &'a Psm, cfg: EmulatorConfig, frames: u64) -> Sim<'a> {
        let app = psm.application();
        let platform = psm.platform();
        let s = platform.package_size();
        let nseg = platform.segment_count();
        let nproc = app.process_count();

        let flow_pkgs: Vec<u64> = app.flows().iter().map(|f| f.packages(s)).collect();
        let flow_compute: Vec<u64> = (0..app.flows().len())
            .map(|i| app.ticks_per_package(FlowId(i as u32), s))
            .collect();
        let waves: Vec<Vec<FlowId>> = app.waves().into_iter().map(|w| w.flows).collect();
        let mut flow_wave = vec![0usize; app.flows().len()];
        for (w, flows) in waves.iter().enumerate() {
            for f in flows {
                flow_wave[f.index()] = w;
            }
        }
        let instance_remaining: Vec<u64> = (0..frames)
            .flat_map(|_| {
                waves
                    .iter()
                    .map(|flows| flows.iter().map(|f| flow_pkgs[f.index()]).sum::<u64>())
            })
            .collect();

        let mut outputs_remaining = vec![0u64; nproc];
        let mut inputs_remaining = vec![0u64; nproc];
        for (i, f) in app.flows().iter().enumerate() {
            outputs_remaining[f.src.index()] += flow_pkgs[i] * frames;
            inputs_remaining[f.dst.index()] += flow_pkgs[i] * frames;
        }

        let mut fus = vec![FuTimes::default(); nproc];
        // Processes with no flows at all raise their flag immediately.
        for (i, fu) in fus.iter_mut().enumerate() {
            if outputs_remaining[i] == 0 && inputs_remaining[i] == 0 {
                fu.flag = true;
            }
        }

        Sim {
            psm,
            cfg,
            s,
            flow_pkgs,
            flow_compute,
            seg_clock: platform.segments().iter().map(|sg| sg.clock).collect(),
            ca_clock: platform.ca_clock(),
            waves,
            queue: BinaryHeap::new(),
            seq: 0,
            frames,
            flow_wave,
            instance_remaining,
            producers: vec![ProducerState::default(); nproc],
            outputs_remaining,
            inputs_remaining,
            bus_free: vec![Picos::ZERO; nseg],
            reserved: vec![false; nseg],
            sa_queue: vec![VecDeque::new(); nseg],
            served: vec![0; nproc],
            ca_queue: VecDeque::new(),
            transfers: Vec::new(),
            sas: vec![SaCounters::default(); nseg],
            ca: CaCounters::default(),
            bus_ctr: vec![BuCounters::default(); platform.border_unit_count()],
            fus,
            makespan: Picos::ZERO,
            trace: cfg.trace.then(TraceLog::new),
        }
    }

    // -- helpers ----------------------------------------------------------

    fn schedule(&mut self, at: Picos, ev: Ev) {
        self.seq += 1;
        self.queue.push(QEntry { at, seq: self.seq, ev });
    }

    fn trace(&mut self, e: TraceEvent) {
        if let Some(t) = &mut self.trace {
            t.push(e);
        }
    }

    fn seg_of(&self, p: ProcessId) -> SegmentId {
        self.psm.segment_of(p)
    }

    fn touch_sa(&mut self, seg: SegmentId, at: Picos) {
        let c = &mut self.sas[seg.index()];
        c.last_activity = c.last_activity.max(at);
    }

    // -- wave / producer control ------------------------------------------

    /// Arm the producers of wave instance `g` (= frame × waves + wave) at
    /// global time `t`. Empty wave instances complete immediately.
    fn start_instance(&mut self, g: usize, t: Picos) {
        let w = g % self.waves.len();
        let frame = (g / self.waves.len()) as u64;
        let flows = self.waves[w].clone();
        if flows.is_empty() {
            self.complete_instance(g, t);
            return;
        }
        for f in &flows {
            let src = self.psm.application().flow(*f).src;
            self.producers[src.index()]
                .pending
                .push((*f, self.flow_pkgs[f.index()], frame));
        }
        // Kick every producer that has work and is idle.
        let nproc = self.producers.len();
        for p in 0..nproc {
            let pid = ProcessId(p as u32);
            if !self.producers[p].busy && !self.producers[p].pending.is_empty() {
                self.start_next_package(pid, t);
            }
        }
    }

    /// A wave instance fully delivered: open its successor within the frame.
    fn complete_instance(&mut self, g: usize, now: Picos) {
        self.trace(TraceEvent {
            at: now,
            kind: TraceKind::WaveComplete,
            flow: None,
            package: None,
            process: None,
            segment: None,
        });
        let w = g % self.waves.len();
        if w + 1 < self.waves.len() {
            self.start_instance(g + 1, now);
        }
    }

    /// Pick the producer's next package (round-robin over its same-wave
    /// flows) and schedule its computation.
    fn start_next_package(&mut self, p: ProcessId, t: Picos) {
        let st = &mut self.producers[p.index()];
        if st.pending.is_empty() {
            st.busy = false;
            return;
        }
        let idx = st.rr % st.pending.len();
        let (flow, remaining, frame) = st.pending[idx];
        // Frame-global package index, so every event stays unambiguous
        // without carrying the frame separately.
        let pkg = frame * self.flow_pkgs[flow.index()]
            + (self.flow_pkgs[flow.index()] - remaining);
        if remaining == 1 {
            st.pending.remove(idx);
            // keep rr pointing at the element after the removed one
            if !st.pending.is_empty() {
                st.rr %= st.pending.len();
            }
        } else {
            st.pending[idx].1 -= 1;
            st.rr = (st.rr + 1) % st.pending.len().max(1);
        }
        st.busy = true;

        let seg = self.seg_of(p);
        let clk = self.seg_clock[seg.index()];
        let start = clk.next_edge(t);
        let compute = self.flow_compute[flow.index()];
        let dur = clk.ticks_to_picos(compute);
        let end = start + dur;
        self.fus[p.index()].compute_ticks += compute;
        if self.fus[p.index()].start.is_none() {
            self.fus[p.index()].start = Some(start);
        }
        self.trace(TraceEvent {
            at: start,
            kind: TraceKind::ComputeStart,
            flow: Some(flow),
            package: Some(pkg),
            process: Some(p),
            segment: Some(seg),
        });
        self.schedule(end, Ev::ComputeDone { flow, pkg });
    }

    // -- event handlers ----------------------------------------------------

    fn on_compute_done(&mut self, now: Picos, flow: FlowId, pkg: u64) {
        let f = *self.psm.application().flow(flow);
        let src_seg = self.seg_of(f.src);
        let dst_seg = self.seg_of(f.dst);
        self.trace(TraceEvent {
            at: now,
            kind: TraceKind::ComputeEnd,
            flow: Some(flow),
            package: Some(pkg),
            process: Some(f.src),
            segment: Some(src_seg),
        });
        self.touch_sa(src_seg, now);
        if src_seg == dst_seg {
            self.sas[src_seg.index()].intra_requests += 1;
            self.sa_queue[src_seg.index()].push_back(LocalReq { flow, pkg });
            let at = self.seg_clock[src_seg.index()].next_edge(now);
            self.schedule(at, Ev::SaDispatch { seg: src_seg });
        } else {
            self.sas[src_seg.index()].inter_requests += 1;
            let path = self.psm.platform().path_segments(src_seg, dst_seg);
            let req = self.transfers.len() as u32;
            self.transfers.push(InterTransfer { flow, pkg, path, granted: false });
            let at = self.ca_clock.next_edge(now)
                + self
                    .ca_clock
                    .ticks_to_picos(self.cfg.timing.ca_request_ticks);
            self.schedule(at, Ev::CaArrive { req });
        }
    }

    fn on_sa_dispatch(&mut self, now: Picos, seg: SegmentId) {
        let si = seg.index();
        if self.sa_queue[si].is_empty() {
            return;
        }
        if self.reserved[si] {
            // The CA connected this segment into an inter-segment circuit;
            // local traffic resumes at the cascade release (PhaseDone
            // re-triggers dispatch).
            return;
        }
        if self.bus_free[si] > now {
            // Bus busy; retry when it frees.
            let at = self.bus_free[si];
            self.schedule(at, Ev::SaDispatch { seg });
            return;
        }
        let pick = match self.cfg.arbitration {
            ArbitrationPolicy::Fifo => 0,
            ArbitrationPolicy::FixedPriority => self.sa_queue[si]
                .iter()
                .enumerate()
                .min_by_key(|(i, r)| (self.psm.application().flow(r.flow).src, *i))
                .map(|(i, _)| i)
                .expect("checked non-empty"),
            ArbitrationPolicy::FairRoundRobin => self.sa_queue[si]
                .iter()
                .enumerate()
                .min_by_key(|(i, r)| {
                    let src = self.psm.application().flow(r.flow).src;
                    (self.served[src.index()], *i)
                })
                .map(|(i, _)| i)
                .expect("checked non-empty"),
        };
        let req = self.sa_queue[si].remove(pick).expect("index in range");
        self.served[self.psm.application().flow(req.flow).src.index()] += 1;
        let clk = self.seg_clock[si];
        let start = clk.next_edge(now);
        let ticks = self.cfg.timing.bus_transaction_ticks(self.s);
        let end = start + clk.ticks_to_picos(ticks);
        self.bus_free[si] = end;
        self.sas[si].busy_ticks += ticks;
        self.touch_sa(seg, end);
        self.trace(TraceEvent {
            at: start,
            kind: TraceKind::BusStart,
            flow: Some(req.flow),
            package: Some(req.pkg),
            process: None,
            segment: Some(seg),
        });
        self.trace(TraceEvent {
            at: end,
            kind: TraceKind::BusEnd,
            flow: Some(req.flow),
            package: Some(req.pkg),
            process: None,
            segment: Some(seg),
        });
        self.schedule(end, Ev::IntraDone { flow: req.flow, pkg: req.pkg });
        // More work queued? Try again when the bus frees.
        if !self.sa_queue[si].is_empty() {
            self.schedule(end, Ev::SaDispatch { seg });
        }
    }

    fn on_ca_arrive(&mut self, now: Picos, req: u32) {
        let _ = now;
        self.ca.inter_requests += 1;
        self.ca.busy_ticks += self.cfg.timing.ca_request_ticks;
        self.ca_queue.push_back(req);
        self.schedule(now, Ev::CaDispatch);
    }

    fn on_ca_dispatch(&mut self, now: Picos) {
        // First-fit scan: reserve every queued request whose full path is
        // not already part of another circuit (the CA may run disjoint
        // same-order global flows simultaneously, §3.1). Segments still
        // draining a local transaction are reserved immediately; the
        // circuit's phases start once each bus frees.
        let mut i = 0;
        while i < self.ca_queue.len() {
            let req = self.ca_queue[i];
            let available = self.transfers[req as usize]
                .path
                .iter()
                .all(|m| !self.reserved[m.index()]);
            if available {
                self.ca_queue.remove(i);
                self.grant(now, req);
            } else {
                i += 1;
            }
        }
    }

    /// Reserve the whole path and pre-schedule every hop (circuit-switched
    /// transfer with cascaded release, paper Fig. 2).
    fn grant(&mut self, now: Picos, req: u32) {
        let tr = self.transfers[req as usize].clone();
        debug_assert!(!tr.granted);
        self.transfers[req as usize].granted = true;
        self.ca.grants += 1;
        self.ca.busy_ticks += self.cfg.timing.ca_grant_ticks;
        let timing = self.cfg.timing;
        let ticks = timing.bus_transaction_ticks(self.s);

        let mut prev_end = Picos::ZERO;
        for (hop, &m) in tr.path.iter().enumerate() {
            let mi = m.index();
            let clk = self.seg_clock[mi];
            self.reserved[mi] = true;
            // A reserved segment first drains its in-flight local
            // transaction; the circuit's phase starts on the later of the
            // protocol time and that drain point.
            let drain = clk.next_edge(self.bus_free[mi]);
            let start = if hop == 0 {
                clk.next_edge(now).max(drain)
            } else {
                // The downstream SA samples the loaded BU, plus (in
                // detailed timing) the clock-domain synchroniser.
                let base = clk.next_edge(prev_end);
                let wait = clk.ticks_to_picos(timing.wp_sample_ticks + timing.bu_sync_ticks);
                let start = (base + wait).max(drain);
                // Record the waiting period at the BU we are unloading.
                let bu = self
                    .psm
                    .platform()
                    .bu_between(tr.path[hop - 1], m)
                    .expect("path hops are adjacent");
                let wp = clk.ticks_at(start - prev_end);
                let b = &mut self.bus_ctr[bu.index()];
                b.waiting_ticks += wp;
                b.tct += 2 * self.s as u64 + wp;
                start
            };
            let end = start + clk.ticks_to_picos(ticks);
            self.bus_free[mi] = end;
            self.sas[mi].busy_ticks += ticks;
            self.touch_sa(m, end);
            self.trace(TraceEvent {
                at: start,
                kind: TraceKind::BusStart,
                flow: Some(tr.flow),
                package: Some(tr.pkg),
                process: None,
                segment: Some(m),
            });
            self.trace(TraceEvent {
                at: end,
                kind: TraceKind::BusEnd,
                flow: Some(tr.flow),
                package: Some(tr.pkg),
                process: None,
                segment: Some(m),
            });
            // Package movement bookkeeping at the end of this hop. The BU
            // side is the loading segment's position on that unit (which
            // also covers a ring's wrap-around BU).
            if hop + 1 < tr.path.len() {
                let next = tr.path[hop + 1];
                let bu = self
                    .psm
                    .platform()
                    .bu_between(m, next)
                    .expect("adjacent");
                let b = &mut self.bus_ctr[bu.index()];
                if m == bu.left {
                    b.received_from_left += 1;
                } else {
                    b.received_from_right += 1;
                }
                self.trace(TraceEvent {
                    at: end,
                    kind: TraceKind::BuLoaded,
                    flow: Some(tr.flow),
                    package: Some(tr.pkg),
                    process: None,
                    segment: Some(m),
                });
            }
            if hop > 0 {
                // This hop unloaded the BU behind it.
                let bu = self
                    .psm
                    .platform()
                    .bu_between(tr.path[hop - 1], m)
                    .expect("adjacent");
                let b = &mut self.bus_ctr[bu.index()];
                if m == bu.right {
                    b.transferred_to_right += 1;
                } else {
                    b.transferred_to_left += 1;
                }
                // Routing a BU delivery is an intra-segment job for this SA.
                self.sas[mi].intra_requests += 1;
                self.trace(TraceEvent {
                    at: start,
                    kind: TraceKind::BuUnloaded,
                    flow: Some(tr.flow),
                    package: Some(tr.pkg),
                    process: None,
                    segment: Some(m),
                });
            }
            self.schedule(end, Ev::PhaseDone { req, hop: hop as u8 });
            prev_end = end;
        }
        // The source segment pushed one package toward the destination
        // (side = the source's position on its first-hop BU).
        let src = tr.path[0];
        let first_bu = self
            .psm
            .platform()
            .bu_between(src, tr.path[1])
            .expect("adjacent");
        if src == first_bu.left {
            self.sas[src.index()].packets_to_right += 1;
        } else {
            self.sas[src.index()].packets_to_left += 1;
        }
    }

    fn on_intra_done(&mut self, now: Picos, flow: FlowId, pkg: u64) {
        let f = *self.psm.application().flow(flow);
        self.deliver(now, flow, pkg);
        self.producer_transfer_done(now, f.src);
        // A freed bus may unblock a queued CA request.
        if !self.ca_queue.is_empty() {
            self.schedule(self.ca_clock.next_edge(now), Ev::CaDispatch);
        }
    }

    fn on_phase_done(&mut self, now: Picos, req: u32, hop: u8) {
        let tr = self.transfers[req as usize].clone();
        let seg = tr.path[hop as usize];
        // Cascade release: the CA resets this segment's grant.
        self.reserved[seg.index()] = false;
        self.ca.releases += 1;
        self.ca.busy_ticks += self.cfg.timing.ca_release_ticks;
        let f = *self.psm.application().flow(tr.flow);
        let last = hop as usize == tr.path.len() - 1;
        match self.cfg.producer_release {
            ProducerRelease::AfterLocalPhase if hop == 0 => {
                // Fire-and-forget: the producer handed the package to the
                // first BU and may compute its next package now.
                self.producer_transfer_done(now, f.src);
            }
            ProducerRelease::AfterDelivery if last => {
                // Flow control: the producer resumes only once the package
                // reached its destination.
                self.producer_transfer_done(now, f.src);
            }
            _ => {}
        }
        if last {
            self.deliver(now, tr.flow, tr.pkg);
        }
        // The freed segment may serve local or queued CA work.
        if !self.sa_queue[seg.index()].is_empty() {
            self.schedule(now, Ev::SaDispatch { seg });
        }
        if !self.ca_queue.is_empty() {
            self.schedule(self.ca_clock.next_edge(now), Ev::CaDispatch);
        }
    }

    /// Producer-side completion of one package's local transfer phase.
    fn producer_transfer_done(&mut self, now: Picos, p: ProcessId) {
        self.fus[p.index()].packages_sent += 1;
        self.fus[p.index()].end = Some(now);
        self.outputs_remaining[p.index()] -= 1;
        self.maybe_raise_flag(now, p);
        self.start_next_package(p, now);
    }

    /// Final delivery of a package at its destination process.
    fn deliver(&mut self, now: Picos, flow: FlowId, pkg: u64) {
        let f = *self.psm.application().flow(flow);
        let fu = &mut self.fus[f.dst.index()];
        fu.packages_received += 1;
        fu.last_received = Some(now);
        self.inputs_remaining[f.dst.index()] -= 1;
        self.trace(TraceEvent {
            at: now,
            kind: TraceKind::Delivered,
            flow: Some(flow),
            package: Some(pkg),
            process: Some(f.dst),
            segment: Some(self.seg_of(f.dst)),
        });
        self.maybe_raise_flag(now, f.dst);
        // Wave-instance bookkeeping: the frame is recovered from the
        // frame-global package index.
        let frame = pkg / self.flow_pkgs[flow.index()];
        let g = frame as usize * self.waves.len() + self.flow_wave[flow.index()];
        self.instance_remaining[g] -= 1;
        if self.instance_remaining[g] == 0 {
            self.complete_instance(g, now);
        }
    }

    fn maybe_raise_flag(&mut self, now: Picos, p: ProcessId) {
        let i = p.index();
        if !self.fus[i].flag
            && self.outputs_remaining[i] == 0
            && self.inputs_remaining[i] == 0
        {
            self.fus[i].flag = true;
            self.trace(TraceEvent {
                at: now,
                kind: TraceKind::FlagRaised,
                flow: None,
                package: None,
                process: Some(p),
                segment: None,
            });
        }
    }

    // -- main loop ---------------------------------------------------------

    fn run(mut self) -> EmulationReport {
        if !self.waves.is_empty() {
            // Wave 0 of every frame is input-ready immediately (streaming
            // with a full input buffer); later waves open as their
            // predecessors deliver, so frames pipeline.
            for frame in 0..self.frames {
                self.start_instance(frame as usize * self.waves.len(), Picos::ZERO);
            }
        }
        while let Some(QEntry { at, ev, .. }) = self.queue.pop() {
            self.makespan = self.makespan.max(at);
            match ev {
                Ev::ComputeDone { flow, pkg } => self.on_compute_done(at, flow, pkg),
                Ev::SaDispatch { seg } => self.on_sa_dispatch(at, seg),
                Ev::CaArrive { req } => self.on_ca_arrive(at, req),
                Ev::CaDispatch => self.on_ca_dispatch(at),
                Ev::IntraDone { flow, pkg } => self.on_intra_done(at, flow, pkg),
                Ev::PhaseDone { req, hop } => self.on_phase_done(at, req, hop),
            }
        }
        debug_assert!(
            self.fus.iter().all(|f| f.flag),
            "emulation drained with unraised flags — schedule deadlock"
        );
        // Final counters: each SA's TCT runs to its last activity, the CA
        // polls until global quiescence.
        for (i, sa) in self.sas.iter_mut().enumerate() {
            sa.tct = self.seg_clock[i].ticks_covering(sa.last_activity);
        }
        self.ca.tct = self.ca_clock.ticks_covering(self.makespan);
        EmulationReport {
            sas: self.sas,
            ca: self.ca,
            bus: self.bus_ctr,
            bu_refs: self.psm.platform().border_units().collect(),
            fus: self.fus,
            segment_clocks: self.seg_clock,
            ca_clock: self.ca_clock,
            package_size: self.s,
            makespan: self.makespan,
            trace: self.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segbus_model::mapping::Allocation;
    use segbus_model::platform::Platform;
    use segbus_model::psdf::{Application, Flow, Process};

    fn uniform(nseg: usize, s: u32) -> Platform {
        Platform::builder("t")
            .package_size(s)
            .ca_clock(ClockDomain::from_mhz(100.0))
            .uniform_segments(nseg, ClockDomain::from_mhz(100.0))
            .build()
            .unwrap()
    }

    fn run(psm: &Psm) -> EmulationReport {
        Emulator::new(EmulatorConfig::traced()).run(psm)
    }

    /// One producer, one consumer, same segment, 2 packages of 36 items.
    fn local_pair() -> Psm {
        let mut app = Application::new("pair");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::final_("B"));
        app.add_flow(Flow::new(a, b, 72, 1, 100)).unwrap();
        let mut alloc = Allocation::new(1);
        alloc.assign(a, SegmentId(0));
        alloc.assign(b, SegmentId(0));
        Psm::new(uniform(1, 36), app, alloc).unwrap()
    }

    #[test]
    fn local_pair_timing_is_exact() {
        // Period 10000 ps. Per package: 100 compute + 40 bus = 140 ticks,
        // producer blocked during transfer => 2 packages = 280 ticks.
        let r = run(&local_pair());
        assert_eq!(r.makespan, Picos(280 * 10_000));
        assert_eq!(r.fus[0].packages_sent, 2);
        assert_eq!(r.fus[1].packages_received, 2);
        assert!(r.all_flags_raised());
        assert_eq!(r.sas[0].intra_requests, 2);
        assert_eq!(r.sas[0].inter_requests, 0);
        assert_eq!(r.ca.inter_requests, 0);
        assert_eq!(r.inter_segment_packages(), 0);
        // SA busy for 2 × 40 ticks.
        assert_eq!(r.sas[0].busy_ticks, 80);
        // CA polls to the end: TCT == makespan ticks.
        assert_eq!(r.ca.tct, 280);
        assert_eq!(r.execution_time(), Picos(2_800_000));
    }

    /// Producer and consumer on different segments of a 2-segment platform.
    fn remote_pair(items: u64) -> Psm {
        let mut app = Application::new("remote");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::final_("B"));
        app.add_flow(Flow::new(a, b, items, 1, 100)).unwrap();
        let mut alloc = Allocation::new(2);
        alloc.assign(a, SegmentId(0));
        alloc.assign(b, SegmentId(1));
        Psm::new(uniform(2, 36), app, alloc).unwrap()
    }

    #[test]
    fn remote_pair_crosses_one_bu() {
        let r = run(&remote_pair(72));
        assert_eq!(r.bus[0].received_from_left, 2);
        assert_eq!(r.bus[0].transferred_to_right, 2);
        assert_eq!(r.bus[0].received_from_right, 0);
        assert_eq!(r.sas[0].inter_requests, 2);
        assert_eq!(r.sas[0].packets_to_right, 2);
        assert_eq!(r.sas[1].packets_to_left, 0);
        assert_eq!(r.ca.inter_requests, 2);
        assert_eq!(r.ca.grants, 2);
        // Cascade: 2 segments released per package.
        assert_eq!(r.ca.releases, 4);
        // Destination SA routes two BU deliveries.
        assert_eq!(r.sas[1].intra_requests, 2);
        assert!(r.all_flags_raised());
    }

    #[test]
    fn remote_transfer_timing() {
        // Package timeline (all clocks 10 ns):
        //  compute ends at 100 ticks; CA request arrives edge+1 = 101;
        //  grant at 101; hop0 occupies seg0 [101, 141); BU loaded at 141;
        //  hop1 starts 141 + wp_sample(1) = 142, ends 182 -> delivery.
        let r = run(&remote_pair(36));
        assert_eq!(r.makespan, Picos(182 * 10_000));
        // BU tct: 2 × 36 + wp(1) = 73.
        assert_eq!(r.bus[0].tct, 73);
        assert_eq!(r.bus[0].waiting_ticks, 1);
        // Default flow control: the producer is done when the package is
        // delivered (182); fire-and-forget would free it at 141.
        assert_eq!(r.fus[0].end, Some(Picos(182 * 10_000)));
        assert_eq!(r.fus[1].last_received, Some(Picos(182 * 10_000)));
        // Ablation: fire-and-forget frees the producer after hop 0.
        let cfg = EmulatorConfig {
            producer_release: ProducerRelease::AfterLocalPhase,
            ..EmulatorConfig::default()
        };
        let r2 = Emulator::new(cfg).run(&remote_pair(36));
        assert_eq!(r2.fus[0].end, Some(Picos(141 * 10_000)));
        assert_eq!(r2.makespan, r.makespan, "single package: same makespan");
    }

    #[test]
    fn useful_period_identity() {
        // UP = 2 × s × packages, exactly (paper §4 analysis).
        let r = run(&remote_pair(5 * 36));
        assert_eq!(r.bus[0].useful_period(36), 2 * 36 * 5);
        // TCT = UP + waiting ticks.
        assert_eq!(r.bus[0].tct, r.bus[0].useful_period(36) + r.bus[0].waiting_ticks);
    }

    /// Two waves: A -> B (wave 1), B -> C (wave 2), all local.
    #[test]
    fn waves_are_barriers() {
        let mut app = Application::new("w");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::new("B"));
        let c = app.add_process(Process::final_("C"));
        app.add_flow(Flow::new(a, b, 36, 1, 100)).unwrap();
        app.add_flow(Flow::new(b, c, 36, 2, 50)).unwrap();
        let mut alloc = Allocation::new(1);
        for p in [a, b, c] {
            alloc.assign(p, SegmentId(0));
        }
        let psm = Psm::new(uniform(1, 36), app, alloc).unwrap();
        let r = run(&psm);
        // Wave 1: 100 + 40 = 140 ticks. Wave 2 starts at 140: +50 +40 = 230.
        assert_eq!(r.makespan, Picos(230 * 10_000));
        let trace = r.trace.as_ref().unwrap();
        assert_eq!(trace.of_kind(TraceKind::WaveComplete).count(), 2);
        // B computes only after receiving its input.
        assert_eq!(r.fus[b.index()].start, Some(Picos(140 * 10_000)));
    }

    /// Two producers share one segment bus: transfers serialize.
    #[test]
    fn bus_contention_serializes() {
        let mut app = Application::new("c");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::initial("B"));
        let c = app.add_process(Process::final_("C"));
        app.add_flow(Flow::new(a, c, 36, 1, 10)).unwrap();
        app.add_flow(Flow::new(b, c, 36, 1, 10)).unwrap();
        let mut alloc = Allocation::new(1);
        for p in [a, b, c] {
            alloc.assign(p, SegmentId(0));
        }
        let psm = Psm::new(uniform(1, 36), app, alloc).unwrap();
        let r = run(&psm);
        // Both ready at tick 10; transfers 40 ticks each, serialized:
        // first [10, 50), second [50, 90).
        assert_eq!(r.makespan, Picos(90 * 10_000));
        let iv = r.trace.as_ref().unwrap().bus_intervals(SegmentId(0));
        assert_eq!(iv.len(), 2);
        assert!(iv[0].1 <= iv[1].0, "no overlap on one bus");
    }

    /// Disjoint inter-segment paths can be in flight simultaneously.
    #[test]
    fn disjoint_paths_run_in_parallel() {
        // 4 segments; A on 0 -> B on 1, C on 2 -> D on 3.
        let mut app = Application::new("par");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::final_("B"));
        let c = app.add_process(Process::initial("C"));
        let d = app.add_process(Process::final_("D"));
        app.add_flow(Flow::new(a, b, 36, 1, 100)).unwrap();
        app.add_flow(Flow::new(c, d, 36, 1, 100)).unwrap();
        let mut alloc = Allocation::new(4);
        alloc.assign(a, SegmentId(0));
        alloc.assign(b, SegmentId(1));
        alloc.assign(c, SegmentId(2));
        alloc.assign(d, SegmentId(3));
        let psm = Psm::new(uniform(4, 36), app, alloc).unwrap();
        let r = run(&psm);
        // Same timing as a single remote pair: both transfers overlap.
        assert_eq!(r.makespan, Picos(182 * 10_000));
        assert_eq!(r.bus[0].total_in(), 1);
        assert_eq!(r.bus[2].total_in(), 1);
        assert_eq!(r.bus[1].total_in(), 0);
    }

    /// A two-hop transfer traverses both BUs and the middle segment.
    #[test]
    fn two_hop_transfer() {
        let mut app = Application::new("hop2");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::final_("B"));
        app.add_flow(Flow::new(a, b, 36, 1, 100)).unwrap();
        let mut alloc = Allocation::new(3);
        alloc.assign(a, SegmentId(0));
        alloc.assign(b, SegmentId(2));
        let psm = Psm::new(uniform(3, 36), app, alloc).unwrap();
        let r = run(&psm);
        assert_eq!(r.bus[0].received_from_left, 1);
        assert_eq!(r.bus[0].transferred_to_right, 1);
        assert_eq!(r.bus[1].received_from_left, 1);
        assert_eq!(r.bus[1].transferred_to_right, 1);
        // Middle SA forwarded one BU delivery.
        assert_eq!(r.sas[1].intra_requests, 1);
        // Only the source segment counts the packet as pushed out.
        assert_eq!(r.sas[0].packets_to_right, 1);
        assert_eq!(r.sas[1].packets_to_right, 0);
        // hop0 [101,141), hop1 [142,182), hop2 [183,223).
        assert_eq!(r.makespan, Picos(223 * 10_000));
        // Cascade: 3 releases.
        assert_eq!(r.ca.releases, 3);
    }

    /// Leftward transfers mirror rightward ones.
    #[test]
    fn leftward_transfer() {
        let mut app = Application::new("left");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::final_("B"));
        app.add_flow(Flow::new(a, b, 36, 1, 100)).unwrap();
        let mut alloc = Allocation::new(2);
        alloc.assign(a, SegmentId(1));
        alloc.assign(b, SegmentId(0));
        let psm = Psm::new(uniform(2, 36), app, alloc).unwrap();
        let r = run(&psm);
        assert_eq!(r.bus[0].received_from_right, 1);
        assert_eq!(r.bus[0].transferred_to_left, 1);
        assert_eq!(r.sas[1].packets_to_left, 1);
        assert_eq!(r.sas[0].packets_to_left, 0);
    }

    #[test]
    fn empty_application_terminates_immediately() {
        let mut app = Application::new("empty");
        let a = app.add_process(Process::new("A"));
        let mut alloc = Allocation::new(1);
        alloc.assign(a, SegmentId(0));
        let psm = Psm::new(uniform(1, 36), app, alloc).unwrap();
        let r = run(&psm);
        assert_eq!(r.makespan, Picos::ZERO);
        assert!(r.all_flags_raised());
        assert_eq!(r.ca.tct, 0);
    }

    #[test]
    fn determinism() {
        let psm = remote_pair(10 * 36);
        let a = run(&psm);
        let b = run(&psm);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.sas, b.sas);
        assert_eq!(a.ca, b.ca);
        assert_eq!(a.bus, b.bus);
    }

    /// Arbitration policies: fixed priority favours low process ids; fair
    /// round-robin balances service; totals are conserved in all cases.
    #[test]
    fn arbitration_policies_change_service_order_not_totals() {
        // Three producers on one segment flood one sink; the bus is the
        // bottleneck (tiny compute, many packages).
        let mut app = Application::new("flood");
        let producers: Vec<ProcessId> = (0..3)
            .map(|i| app.add_process(Process::initial(format!("A{i}"))))
            .collect();
        let sink = app.add_process(Process::final_("SINK"));
        for &p in &producers {
            app.add_flow(Flow::new(p, sink, 6 * 36, 1, 5)).unwrap();
        }
        let mut alloc = Allocation::new(1);
        for p in producers.iter().chain(std::iter::once(&sink)) {
            alloc.assign(*p, SegmentId(0));
        }
        let psm = Psm::new(uniform(1, 36), app, alloc).unwrap();

        let run_with = |policy| {
            let cfg = EmulatorConfig { arbitration: policy, ..EmulatorConfig::traced() };
            Emulator::new(cfg).run(&psm)
        };
        let fifo = run_with(ArbitrationPolicy::Fifo);
        let prio = run_with(ArbitrationPolicy::FixedPriority);
        let fair = run_with(ArbitrationPolicy::FairRoundRobin);

        // Conservation is policy-independent; makespans may differ a
        // little (service order shifts the idle gaps) but the bus-bound
        // total work keeps them close.
        for r in [&fifo, &prio, &fair] {
            assert!(r.all_flags_raised());
            assert_eq!(r.fus[sink.index()].packages_received, 18);
            let ratio = r.makespan.0 as f64 / fifo.makespan.0 as f64;
            assert!((0.9..=1.1).contains(&ratio), "makespan ratio {ratio}");
        }
        // Fixed priority finishes A0 before A2 finishes.
        assert!(
            prio.fus[0].end.unwrap() <= prio.fus[2].end.unwrap(),
            "priority must favour the low id"
        );
        // Fairness: under fair round-robin the spread between the first
        // and last finisher is no larger than under fixed priority.
        let spread = |r: &EmulationReport| {
            let ends: Vec<u64> = (0..3).map(|i| r.fus[i].end.unwrap().0).collect();
            ends.iter().max().unwrap() - ends.iter().min().unwrap()
        };
        assert!(spread(&fair) <= spread(&prio));
    }

    /// Ring topology: a transfer from the last segment to the first takes
    /// the wrap-around unit (one hop) instead of walking the whole line.
    #[test]
    fn ring_wrap_transfer_takes_one_hop() {
        let mut app = Application::new("ring");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::final_("B"));
        app.add_flow(Flow::new(a, b, 36, 1, 100)).unwrap();
        let mut alloc = Allocation::new(3);
        alloc.assign(a, SegmentId(2));
        alloc.assign(b, SegmentId(0));
        let ring = Platform::builder("ring")
            .package_size(36)
            .topology(segbus_model::platform::Topology::Ring)
            .ca_clock(ClockDomain::from_mhz(100.0))
            .uniform_segments(3, ClockDomain::from_mhz(100.0))
            .build()
            .unwrap();
        let r = run(&Psm::new(ring, app.clone(), alloc.clone()).unwrap());
        // The wrap unit is BU31 (index 2): loaded from its left (segment 3),
        // delivered to its right (segment 1).
        assert_eq!(r.bu_refs[2].to_string(), "BU31");
        assert_eq!(r.bus[2].received_from_left, 1);
        assert_eq!(r.bus[2].transferred_to_right, 1);
        assert_eq!(r.bus[0].total_in(), 0);
        assert_eq!(r.bus[1].total_in(), 0);
        assert_eq!(r.sas[2].packets_to_right, 1);
        // Same single-hop timing as a linear adjacent transfer.
        assert_eq!(r.makespan, Picos(182 * 10_000));
        // Cascade: exactly two segments released.
        assert_eq!(r.ca.releases, 2);

        // The identical mapping on a *linear* platform walks two hops.
        let linear = uniform(3, 36);
        let rl = run(&Psm::new(linear, app, alloc).unwrap());
        assert_eq!(rl.makespan, Picos(223 * 10_000));
        assert_eq!(rl.ca.releases, 3);
        assert!(r.makespan < rl.makespan, "the ring must be faster here");
    }

    #[test]
    fn smaller_packages_cost_more_overall() {
        // Per-item cost model: compute constant, protocol overhead doubles.
        // (Enough packages that the steady-state per-package overhead
        // dominates the shorter pipeline tail of the small-package run.)
        let p36 = remote_pair(10 * 36);
        let p18 = p36.with_package_size(18).unwrap();
        let r36 = run(&p36);
        let r18 = run(&p18);
        assert!(r18.makespan > r36.makespan, "{:?} !> {:?}", r18.makespan, r36.makespan);
    }
}
