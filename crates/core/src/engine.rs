//! The discrete-event estimation engine.
//!
//! One [`Emulator::run`] call executes a validated PSM to completion under
//! the wave semantics of DESIGN.md §4:
//!
//! * flows are grouped by ordering number `T`; wave `k` starts when wave
//!   `k-1` has fully delivered;
//! * a producer computes one package (`C` ticks of its segment clock,
//!   scaled by the cost model), requests the bus, and resumes with the next
//!   package once its local transfer phase completes;
//! * intra-segment transfers occupy the segment bus for
//!   [`crate::TimingParams::bus_transaction_ticks`] ticks;
//! * inter-segment transfers are circuit-switched: the CA reserves every
//!   segment on the path (linear, or the shorter way around a ring), the
//!   package hops BU to BU, and segments are released in a cascade as the
//!   package advances (paper Fig. 2);
//! * the run ends when every process has raised its status flag and no
//!   platform element has pending work — the monitor condition of §3.3.
//!
//! The engine is fully deterministic: events are ordered by (time,
//! insertion sequence), all queues are FIFO, and producers round-robin
//! over same-wave flows.
//!
//! Execution is split into an immutable [`EnginePlan`] — every table that
//! depends only on the PSM (flow endpoints, package counts, clock domains,
//! waves, precomputed inter-segment paths with their border units) — and a
//! mutable scratch state owned by [`Engine`], which is reset and reused
//! across runs so that parameter sweeps and placement searches do not pay
//! an allocation storm per emulation. [`Emulator`] remains the one-shot
//! facade over the same machinery.

use std::collections::VecDeque;

use segbus_model::diag::SegbusError;
use segbus_model::ids::{FlowId, ProcessId, SegmentId};
use segbus_model::mapping::Psm;
use segbus_model::time::{ClockDomain, Picos};

use crate::config::{ArbitrationPolicy, EmulatorConfig, ProducerRelease};
use crate::counters::{BuCounters, CaCounters, FuTimes, SaCounters};
use crate::queue::EventQueue;
use crate::report::EmulationReport;
use crate::trace::{TraceEvent, TraceKind, TraceLog};

/// The performance-estimation emulator.
///
/// Construct once with a configuration, then [`Emulator::run`] any number
/// of PSMs (runs are independent). Each call builds a fresh [`Engine`];
/// hold an `Engine` directly to reuse its scratch buffers across runs.
#[derive(Clone, Copy, Debug, Default)]
pub struct Emulator {
    config: EmulatorConfig,
}

impl Emulator {
    /// Create an emulator with the given configuration.
    pub fn new(config: EmulatorConfig) -> Emulator {
        Emulator { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &EmulatorConfig {
        &self.config
    }

    /// Execute the PSM to completion and return the report.
    pub fn run(&self, psm: &Psm) -> EmulationReport {
        Engine::new(self.config).run(psm)
    }

    /// Execute `frames` back-to-back iterations of the application — the
    /// streaming case the single-shot paper experiment abstracts away.
    ///
    /// Successive frames *pipeline* through the wave schedule: frame
    /// `k`'s wave `w` becomes eligible as soon as frame `k`'s wave `w−1`
    /// has delivered, independent of frame `k−1`'s later waves; each
    /// functional unit still produces its own packages strictly in frame
    /// order. `run_frames(psm, 1)` is identical to [`Emulator::run`].
    ///
    /// # Panics
    /// Panics if `frames` is zero.
    pub fn run_frames(&self, psm: &Psm, frames: u64) -> EmulationReport {
        Engine::new(self.config).run_frames(psm, frames)
    }

    /// Like [`Emulator::run`], but validate the PSM against the engine
    /// invariants first ([`crate::precheck::strict_validate`]) and report
    /// violations as typed errors instead of panicking. This is the entry
    /// point for untrusted input (imports, fuzzing, user files).
    pub fn try_run(&self, psm: &Psm) -> Result<EmulationReport, SegbusError> {
        self.try_run_frames(psm, 1)
    }

    /// Like [`Emulator::run_frames`], but panic-free; see
    /// [`Emulator::try_run`].
    pub fn try_run_frames(&self, psm: &Psm, frames: u64) -> Result<EmulationReport, SegbusError> {
        Engine::new(self.config).try_run_frames(psm, frames)
    }
}

// ---------------------------------------------------------------------------
// events

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Ev {
    /// A producer finished computing a package of `flow`.
    ComputeDone { flow: FlowId, pkg: u64 },
    /// Try to dispatch the local request queue of `seg`.
    SaDispatch { seg: SegmentId },
    /// An inter-segment request reaches the CA.
    CaArrive { req: u32 },
    /// Try to grant queued inter-segment requests.
    CaDispatch,
    /// An intra-segment transfer completed.
    IntraDone { flow: FlowId, pkg: u64 },
    /// Hop `hop` of inter-segment transfer `req` completed.
    PhaseDone { req: u32, hop: u8 },
}

// ---------------------------------------------------------------------------
// compiled plan

/// Sentinel in `flow_path` for intra-segment flows (no CA involvement).
pub(crate) const NO_PATH: u32 = u32::MAX;

/// Compile (or fetch from the `path_of` memo) the route from segment `a`
/// to segment `b`: the segment chain plus per-hop border-unit index and
/// crossing direction. Returns [`NO_PATH`] for `a == b`. Shared by plan
/// compilation and [`EnginePlan::try_remap`], which extends the same
/// route table incrementally as moves expose new segment pairs.
fn compile_route(
    platform: &segbus_model::platform::Platform,
    nseg: usize,
    paths: &mut Vec<PathInfo>,
    path_of: &mut [u32],
    a: SegmentId,
    b: SegmentId,
) -> Result<u32, SegbusError> {
    if a == b {
        return Ok(NO_PATH);
    }
    let key = a.index() * nseg + b.index();
    if path_of[key] == NO_PATH {
        let segs = platform.path_segments(a, b);
        if segs.len() < 2 || segs.first() != Some(&a) || segs.last() != Some(&b) {
            return Err(SegbusError::new(
                "C005",
                format!("no route from segment {a} to segment {b}"),
            ));
        }
        let mut bu = Vec::with_capacity(segs.len() - 1);
        let mut load_left = Vec::with_capacity(segs.len() - 1);
        let mut unload_right = Vec::with_capacity(segs.len() - 1);
        for w in segs.windows(2) {
            let r = platform.bu_between(w[0], w[1]).ok_or_else(|| {
                SegbusError::new(
                    "C005",
                    format!(
                        "no border unit between adjacent segments {} and {}",
                        w[0], w[1]
                    ),
                )
            })?;
            bu.push(r.index() as u32);
            load_left.push(w[0] == r.left);
            unload_right.push(w[1] == r.right);
        }
        path_of[key] = paths.len() as u32;
        paths.push(PathInfo {
            segs,
            bu,
            load_left,
            unload_right,
        });
    }
    Ok(path_of[key])
}

/// An inter-segment route with its per-hop border units, compiled once.
#[derive(Clone, Debug)]
pub(crate) struct PathInfo {
    /// Segments on the path, source first, destination last.
    pub(crate) segs: Vec<SegmentId>,
    /// `bu[h]` is the dense index of the BU between `segs[h]` and
    /// `segs[h+1]`.
    pub(crate) bu: Vec<u32>,
    /// `segs[h]` is the *left* side of `bu[h]` (load direction).
    pub(crate) load_left: Vec<bool>,
    /// `segs[h+1]` is the *right* side of `bu[h]` (unload direction).
    pub(crate) unload_right: Vec<bool>,
}

/// Division by a run-invariant divisor, strength-reduced to a 128-bit
/// multiply and compiled into the plan once. `floor(x / d)` becomes
/// `(x * ceil(2^70 / d)) >> 70`, which is exact whenever `x` is below
/// [`FastDiv::max_exact`]; larger operands fall back to the hardware
/// divider, so every result equals plain `x / d` everywhere.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FastDiv {
    pub(crate) d: u64,
    /// `ceil(2^70 / d)`.
    inv: u128,
    /// Strict upper bound on `x` for the multiply to be exact:
    /// `min(2^70 / d, 2^57)`. The first term bounds the rounding error
    /// (see [`FastDiv::floor_div`]); the second keeps `x * inv` inside
    /// `u128` even for `d = 1`.
    max_exact: u64,
}

impl FastDiv {
    pub(crate) fn new(d: u64) -> FastDiv {
        assert!(d > 0, "divisor must be non-zero");
        let d128 = d as u128;
        FastDiv {
            d,
            inv: (1u128 << 70).div_ceil(d128),
            max_exact: ((1u128 << 70) / d128).min(1 << 57) as u64,
        }
    }

    /// `floor(x / d)`. Writing `inv = (2^70 + e) / d` with `0 <= e < d`,
    /// the multiply computes `floor(x/d + x*e/(d*2^70))`; for
    /// `x < 2^70 / d` the error term is below `1/d`, smaller than the
    /// distance from `x/d` to the next integer, so the floor is exact.
    #[inline]
    pub(crate) fn floor_div(&self, x: u64) -> u64 {
        if x < self.max_exact {
            ((x as u128 * self.inv) >> 70) as u64
        } else {
            x / self.d
        }
    }
}

/// Clock-edge arithmetic over a [`FastDiv`] of the clock period — the hot
/// loop's mirror of [`ClockDomain`], bit-identical everywhere.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FastClock {
    pub(crate) period: FastDiv,
}

impl FastClock {
    pub(crate) fn new(c: ClockDomain) -> FastClock {
        FastClock {
            period: FastDiv::new(c.period_ps()),
        }
    }

    /// See [`ClockDomain::next_edge`].
    #[inline]
    pub(crate) fn next_edge(&self, t: Picos) -> Picos {
        Picos(self.period.floor_div(t.0 + self.period.d - 1) * self.period.d)
    }

    /// See [`ClockDomain::ticks_to_picos`].
    #[inline]
    pub(crate) fn ticks_to_picos(&self, ticks: u64) -> Picos {
        Picos(ticks * self.period.d)
    }

    /// See [`ClockDomain::ticks_at`].
    #[inline]
    pub(crate) fn ticks_at(&self, t: Picos) -> u64 {
        self.period.floor_div(t.0)
    }
}

/// Everything about a PSM the engine needs, flattened into index-addressed
/// tables. Building the plan is the only part of a run that touches the
/// model crate's object graph; the event loop reads these arrays only.
#[derive(Debug)]
pub struct EnginePlan<'a> {
    pub(crate) psm: &'a Psm,
    pub(crate) s: u32,
    pub(crate) nseg: usize,
    pub(crate) nproc: usize,
    pub(crate) n_bu: usize,
    pub(crate) flow_src: Vec<ProcessId>,
    pub(crate) flow_dst: Vec<ProcessId>,
    pub(crate) flow_pkgs: Vec<u64>,
    /// Strength-reduced divisions by `flow_pkgs` (frame recovery on
    /// delivery happens once per package).
    pub(crate) flow_pkg_div: Vec<FastDiv>,
    pub(crate) flow_compute: Vec<u64>,
    /// Wave index of each flow (parallel to the flow table).
    pub(crate) flow_wave: Vec<usize>,
    /// Index into `paths`, or [`NO_PATH`] for intra-segment flows.
    pub(crate) flow_path: Vec<u32>,
    pub(crate) proc_seg: Vec<SegmentId>,
    pub(crate) seg_clock: Vec<ClockDomain>,
    pub(crate) ca_clock: ClockDomain,
    /// Strength-reduced mirrors of `seg_clock` / `ca_clock` for the event
    /// loop (report assembly keeps the plain domains).
    pub(crate) fast_seg: Vec<FastClock>,
    pub(crate) fast_ca: FastClock,
    pub(crate) waves: Vec<Vec<FlowId>>,
    pub(crate) paths: Vec<PathInfo>,
    /// Route memo behind `paths`: `path_of[a·nseg + b]` is the compiled
    /// path index from segment `a` to `b`, or [`NO_PATH`] while that pair
    /// has not been routed. Kept in the plan so [`EnginePlan::try_remap`]
    /// extends the route table instead of recompiling it.
    path_of: Vec<u32>,
    /// CSR adjacency over flows: the flow indices touching process `p`
    /// (as source or destination) are
    /// `proc_flow[proc_flow_off[p]..proc_flow_off[p+1]]`. Lets a remap
    /// rebuild only the O(degree) mapping-dependent `flow_path` entries.
    proc_flow_off: Vec<u32>,
    proc_flow: Vec<u32>,
    /// Calendar-queue bucket-width hint. A bucket of a few dozen clock
    /// ticks keeps the ring sparse — consecutive events are typically
    /// many ticks apart — without letting any single bucket collect a
    /// long scan list.
    bucket_hint_ps: u64,
}

/// Reusable accumulation buffers for
/// [`EnginePlan::makespan_lower_bound_in`]. A default-constructed value
/// works for any plan; buffers grow to the plan's process and segment
/// counts on first use and are retained across calls.
#[derive(Default)]
pub struct LowerBoundScratch {
    proc_ps: Vec<u128>,
    seg_ps: Vec<u128>,
}

/// The revertable record of one [`EnginePlan::try_remap`]: which process
/// moved, where it came from, and every `flow_path` entry the move
/// rewrote. [`EnginePlan::revert`] undoes exactly this delta.
#[derive(Clone, Debug)]
pub struct PlanDelta {
    process: ProcessId,
    from: SegmentId,
    /// `(flow index, previous flow_path entry)` for each touched flow.
    flow_path: Vec<(u32, u32)>,
}

impl PlanDelta {
    /// The process the remap moved.
    pub fn process(&self) -> ProcessId {
        self.process
    }

    /// The segment the process was mapped to before the remap.
    pub fn from(&self) -> SegmentId {
        self.from
    }

    /// Number of per-flow hop-table entries the remap rewrote — the
    /// O(degree) work the patch did instead of a full plan recompile.
    pub fn touched_flows(&self) -> usize {
        self.flow_path.len()
    }
}

impl<'a> EnginePlan<'a> {
    /// Compile the static tables for `psm`.
    ///
    /// # Panics
    /// Panics if the PSM violates an engine invariant (unplaced process,
    /// missing border unit, zero-reference cost model). Use
    /// [`EnginePlan::try_new`] for input that has not been through
    /// [`crate::precheck::strict_validate`].
    pub fn new(psm: &'a Psm) -> EnginePlan<'a> {
        match EnginePlan::try_new(psm) {
            Ok(plan) => plan,
            Err(e) => panic!("PSM violates an engine invariant: {e}"),
        }
    }

    /// Compile the static tables for `psm`, reporting engine-invariant
    /// violations as typed errors (`C0xx` codes, see [`crate::precheck`])
    /// instead of panicking.
    pub fn try_new(psm: &'a Psm) -> Result<EnginePlan<'a>, SegbusError> {
        let app = psm.application();
        let platform = psm.platform();
        let s = platform.package_size();
        let nseg = platform.segment_count();
        let nproc = app.process_count();
        let nflow = app.flows().len();

        let flow_src: Vec<ProcessId> = app.flows().iter().map(|f| f.src).collect();
        let flow_dst: Vec<ProcessId> = app.flows().iter().map(|f| f.dst).collect();
        let flow_pkgs: Vec<u64> = app.flows().iter().map(|f| f.packages(s)).collect();
        let flow_pkg_div: Vec<FastDiv> = flow_pkgs.iter().map(|&n| FastDiv::new(n)).collect();
        let flow_compute: Vec<u64> = (0..nflow)
            .map(|i| app.ticks_per_package(FlowId(i as u32), s))
            .collect();
        let proc_seg: Vec<SegmentId> = (0..nproc)
            .map(|i| {
                let p = ProcessId(i as u32);
                match psm.allocation().segment_of(p) {
                    Some(seg) if platform.contains(seg) => Ok(seg),
                    Some(seg) => Err(SegbusError::new(
                        "C002",
                        format!("process {p} is placed on non-existent segment {seg}"),
                    )),
                    None => Err(SegbusError::new(
                        "C002",
                        format!("process {p} is not placed"),
                    )),
                }
            })
            .collect::<Result<_, SegbusError>>()?;

        let waves: Vec<Vec<FlowId>> = app.waves().into_iter().map(|w| w.flows).collect();
        let mut flow_wave = vec![0usize; nflow];
        for (w, flows) in waves.iter().enumerate() {
            for f in flows {
                flow_wave[f.index()] = w;
            }
        }

        // Compile each distinct (source segment, destination segment) route
        // once: segments plus per-hop BU index and crossing direction.
        let mut paths: Vec<PathInfo> = Vec::new();
        let mut path_of = vec![NO_PATH; nseg * nseg];
        let flow_path: Vec<u32> = (0..nflow)
            .map(|i| {
                let a = proc_seg[flow_src[i].index()];
                let b = proc_seg[flow_dst[i].index()];
                compile_route(platform, nseg, &mut paths, &mut path_of, a, b)
            })
            .collect::<Result<_, SegbusError>>()?;

        // CSR adjacency: each flow is listed under both endpoints (once
        // when they coincide), so a remap of process `p` sees exactly the
        // flows whose hop table the move can change.
        let mut proc_flow_off = vec![0u32; nproc + 1];
        for i in 0..nflow {
            proc_flow_off[flow_src[i].index() + 1] += 1;
            if flow_dst[i] != flow_src[i] {
                proc_flow_off[flow_dst[i].index() + 1] += 1;
            }
        }
        for p in 0..nproc {
            proc_flow_off[p + 1] += proc_flow_off[p];
        }
        let mut proc_flow = vec![0u32; proc_flow_off[nproc] as usize];
        let mut cursor: Vec<u32> = proc_flow_off[..nproc].to_vec();
        for i in 0..nflow {
            proc_flow[cursor[flow_src[i].index()] as usize] = i as u32;
            cursor[flow_src[i].index()] += 1;
            if flow_dst[i] != flow_src[i] {
                proc_flow[cursor[flow_dst[i].index()] as usize] = i as u32;
                cursor[flow_dst[i].index()] += 1;
            }
        }

        let seg_clock: Vec<ClockDomain> = platform.segments().iter().map(|sg| sg.clock).collect();
        let ca_clock = platform.ca_clock();
        let fast_seg: Vec<FastClock> = seg_clock.iter().map(|&c| FastClock::new(c)).collect();
        let fast_ca = FastClock::new(ca_clock);
        let min_period_ps = seg_clock
            .iter()
            .map(|c| c.period_ps())
            .chain(std::iter::once(ca_clock.period_ps()))
            .min()
            .unwrap_or(1);
        // Calendar bucket width: 64 fastest-clock periods per virtual
        // bucket. Measured on the MP3 sweep: narrower buckets pay for
        // extra window advances, wider ones for longer in-bucket scans;
        // 64-128 is the flat optimum once same-edge dispatches are
        // handled inline.
        let bucket_hint_ps = min_period_ps.saturating_mul(64);

        Ok(EnginePlan {
            psm,
            s,
            nseg,
            nproc,
            n_bu: platform.border_unit_count(),
            flow_src,
            flow_dst,
            flow_pkgs,
            flow_pkg_div,
            flow_compute,
            flow_wave,
            flow_path,
            proc_seg,
            seg_clock,
            ca_clock,
            fast_seg,
            fast_ca,
            waves,
            paths,
            path_of,
            proc_flow_off,
            proc_flow,
            bucket_hint_ps,
        })
    }

    /// The PSM this plan was compiled from.
    ///
    /// After a [`EnginePlan::try_remap`] the plan's tables describe the
    /// *moved* placement while this model still carries the original
    /// allocation; callers tracking content digests across remaps must
    /// derive them from their own slot vector
    /// ([`segbus_model::digest_with_slots`]), not from this PSM.
    pub fn psm(&self) -> &'a Psm {
        self.psm
    }

    /// The segment each process is currently mapped to (reflects remaps).
    pub fn segment_of(&self, p: ProcessId) -> SegmentId {
        self.proc_seg[p.index()]
    }

    /// Re-point process `p` at segment `to`, rebuilding only the
    /// mapping-dependent plan slices: the process's segment entry and the
    /// per-flow hop tables of the O(degree) flows touching it. Routes
    /// newly exposed by the move are compiled once and memoised alongside
    /// the existing route table; everything else (package counts, clock
    /// tables, waves, picosecond slices derived at run setup) is
    /// untouched. Running a patched plan is bit-identical to compiling a
    /// fresh [`EnginePlan`] for the moved model — the differential suite
    /// pins this across the corpus.
    ///
    /// Returns the [`PlanDelta`] that [`EnginePlan::revert`] undoes. On a
    /// routing error (`C005`) the plan is left unchanged.
    pub fn try_remap(&mut self, p: ProcessId, to: SegmentId) -> Result<PlanDelta, SegbusError> {
        if p.index() >= self.nproc {
            return Err(SegbusError::new(
                "C002",
                format!("process {p} is out of range for this plan"),
            ));
        }
        let psm = self.psm;
        let platform = psm.platform();
        if !platform.contains(to) {
            return Err(SegbusError::new(
                "C002",
                format!("process {p} cannot move to non-existent segment {to}"),
            ));
        }
        let from = self.proc_seg[p.index()];
        let mut delta = PlanDelta {
            process: p,
            from,
            flow_path: Vec::new(),
        };
        if from == to {
            return Ok(delta);
        }
        // Two phases: resolve every touched flow's new route first (route
        // compilation can fail), then commit. A failed resolve may leave
        // freshly compiled routes in the memo — that cache stays valid —
        // but never a partially moved mapping.
        let lo = self.proc_flow_off[p.index()] as usize;
        let hi = self.proc_flow_off[p.index() + 1] as usize;
        let mut resolved = Vec::with_capacity(hi - lo);
        for k in lo..hi {
            let f = self.proc_flow[k] as usize;
            let a = if self.flow_src[f] == p {
                to
            } else {
                self.proc_seg[self.flow_src[f].index()]
            };
            let b = if self.flow_dst[f] == p {
                to
            } else {
                self.proc_seg[self.flow_dst[f].index()]
            };
            let idx = compile_route(
                platform,
                self.nseg,
                &mut self.paths,
                &mut self.path_of,
                a,
                b,
            )?;
            resolved.push((f as u32, idx));
        }
        self.proc_seg[p.index()] = to;
        for (f, idx) in resolved {
            delta.flow_path.push((f, self.flow_path[f as usize]));
            self.flow_path[f as usize] = idx;
        }
        Ok(delta)
    }

    /// [`EnginePlan::try_remap`] that panics on invalid moves; for input
    /// whose segments are known to exist and be routable.
    ///
    /// # Panics
    /// Panics if the move is out of range or unroutable.
    pub fn remap(&mut self, p: ProcessId, to: SegmentId) -> PlanDelta {
        match self.try_remap(p, to) {
            Ok(d) => d,
            Err(e) => panic!("invalid remap: {e}"),
        }
    }

    /// Undo a [`EnginePlan::try_remap`], restoring the process's segment
    /// and every rewritten hop-table entry. Deltas must be reverted in
    /// LIFO order relative to other remaps of the same process.
    pub fn revert(&mut self, delta: &PlanDelta) {
        self.proc_seg[delta.process.index()] = delta.from;
        for &(f, old) in &delta.flow_path {
            self.flow_path[f as usize] = old;
        }
    }

    /// An admissible lower bound on the plan's `frames`-frame makespan:
    /// the larger of a **global** term and a **wave-chain** term.
    ///
    /// The global term (scaled by `frames`) is the busiest single
    /// resource:
    ///
    /// * **producer serialisation** — a producer handles its packages
    ///   strictly one at a time: it computes a package and stays busy
    ///   until the package's bus phase completes (through final delivery
    ///   under [`ProducerRelease::AfterDelivery`], through the source
    ///   segment's serve under
    ///   [`ProducerRelease::AfterLocalPhase`]), so the sum of
    ///   compute-plus-serve over its packages bounds the run from below;
    /// * **boundary traffic** — every package transfer occupies each
    ///   segment on its path for the full bus transaction, and transfers
    ///   on one segment never overlap, so the busiest segment's occupancy
    ///   bounds the run from below.
    ///
    /// The wave-chain term exploits the barrier semantics of DESIGN.md
    /// §4: within a frame, wave `w`'s producers are armed only once wave
    /// `w−1` has *fully delivered*, so frame 0's waves execute strictly
    /// in sequence no matter how many frames pipeline around them. The
    /// single-frame chain — the sum over waves of each wave's busiest
    /// resource (the two global terms restricted to that wave's flows) —
    /// is therefore admissible for any frame count.
    ///
    /// All terms count mandatory work only (edge alignment, arbitration
    /// waits and circuit stalls can only add time), so the bound never
    /// exceeds the emulated makespan — the property tests pin
    /// `makespan_lower_bound ≤ makespan` across the corpus. Placement
    /// search uses it to skip emulating candidates that provably cannot
    /// beat an incumbent.
    pub fn makespan_lower_bound(&self, config: &EmulatorConfig, frames: u64) -> Picos {
        self.makespan_lower_bound_in(config, frames, &mut LowerBoundScratch::default())
    }

    /// [`EnginePlan::makespan_lower_bound`] with caller-owned scratch, so
    /// hot loops (placement search bounds one plan per candidate) pay no
    /// allocation per call.
    pub fn makespan_lower_bound_in(
        &self,
        config: &EmulatorConfig,
        frames: u64,
        scratch: &mut LowerBoundScratch,
    ) -> Picos {
        let bus_ticks = config.timing.bus_transaction_ticks(self.s) as u128;
        let full_path = config.producer_release == ProducerRelease::AfterDelivery;
        scratch.proc_ps.clear();
        scratch.proc_ps.resize(self.nproc, 0);
        scratch.seg_ps.clear();
        scratch.seg_ps.resize(self.nseg, 0);
        let (proc_ps, seg_ps) = (&mut scratch.proc_ps, &mut scratch.seg_ps);
        // Per-flow accumulation shared by the global pass (all flows) and
        // the per-wave passes (one wave's flows at a time): returns the
        // largest resource total after folding flow `f` in.
        let add_flow = |f: usize, proc_ps: &mut [u128], seg_ps: &mut [u128]| -> u128 {
            let pkgs = self.flow_pkgs[f] as u128;
            let src = self.flow_src[f].index();
            let src_seg = self.proc_seg[src].index();
            let src_period = self.seg_clock[src_seg].period_ps() as u128;
            let mut worst = 0u128;
            // Mandatory bus time between compute-done and the producer's
            // release, per package.
            let mut serve_ps = bus_ticks * src_period;
            let path = self.flow_path[f];
            if path == NO_PATH {
                seg_ps[src_seg] += pkgs * bus_ticks * src_period;
                worst = worst.max(seg_ps[src_seg]);
            } else {
                let mut path_ps = 0u128;
                for m in &self.paths[path as usize].segs {
                    let period = self.seg_clock[m.index()].period_ps() as u128;
                    seg_ps[m.index()] += pkgs * bus_ticks * period;
                    worst = worst.max(seg_ps[m.index()]);
                    path_ps += bus_ticks * period;
                }
                if full_path {
                    // Send-and-wait: the producer resumes only on final
                    // delivery, after the package was served on every
                    // segment along its path in turn.
                    serve_ps = path_ps;
                }
            }
            proc_ps[src] += pkgs * (self.flow_compute[f] as u128 * src_period + serve_ps);
            worst.max(proc_ps[src])
        };
        let mut bound = 0u128;
        if frames > 1 {
            // Global term. At `frames == 1` the chain term dominates it
            // (a resource's total is the sum of its per-wave loads, each
            // ≤ that wave's maximum), so the pass is skipped there.
            let mut global = 0u128;
            for f in 0..self.flow_src.len() {
                global = global.max(add_flow(f, proc_ps, seg_ps));
            }
            bound = global * frames as u128;
            proc_ps.fill(0);
            seg_ps.fill(0);
        }
        // Wave-chain term: the same accumulation one wave at a time,
        // zeroing only the touched slots between waves.
        let mut chain = 0u128;
        for flows in &self.waves {
            let mut wave_worst = 0u128;
            for f in flows {
                wave_worst = wave_worst.max(add_flow(f.index(), proc_ps, seg_ps));
            }
            chain += wave_worst;
            for f in flows {
                let fi = f.index();
                let src = self.flow_src[fi].index();
                proc_ps[src] = 0;
                let path = self.flow_path[fi];
                if path == NO_PATH {
                    seg_ps[self.proc_seg[src].index()] = 0;
                } else {
                    for m in &self.paths[path as usize].segs {
                        seg_ps[m.index()] = 0;
                    }
                }
            }
        }
        bound = bound.max(chain);
        Picos(bound.min(u64::MAX as u128) as u64)
    }
}

// ---------------------------------------------------------------------------
// scratch state

/// A pending intra-segment package transfer.
#[derive(Clone, Copy, Debug)]
struct LocalReq {
    flow: FlowId,
    pkg: u64,
}

/// An inter-segment transfer in flight. `path` indexes the plan's route
/// table, so the record stays `Copy` and transfer bookkeeping never
/// allocates on the hot path.
#[derive(Clone, Copy, Debug)]
struct InterTransfer {
    flow: FlowId,
    pkg: u64,
    path: u32,
    /// Granted yet?
    granted: bool,
}

#[derive(Clone, Copy, Default, PartialEq, Eq)]
struct Remaining {
    out: u64,
    inp: u64,
}

#[derive(Clone, Debug, Default)]
struct ProducerState {
    /// (flow, packages remaining, frame) for the armed wave instances.
    pending: Vec<(FlowId, u64, u64)>,
    /// Round-robin cursor over `pending`.
    rr: usize,
    /// Currently computing or transferring a package.
    busy: bool,
}

/// Every mutable vector of a run, kept allocated between runs.
#[derive(Default)]
struct EngineScratch {
    queue: EventQueue<Ev>,
    seq: u64,
    /// Outstanding deliveries per wave instance (`frame * waves + wave`).
    instance_remaining: Vec<u64>,
    producers: Vec<ProducerState>,
    /// Packages each process still has to send (`out`) and receive
    /// (`inp`); one struct so the flag check touches a single slot.
    remaining: Vec<Remaining>,
    bus_free: Vec<Picos>,
    /// Segment locked into a granted inter-segment circuit.
    reserved: Vec<bool>,
    sa_queue: Vec<VecDeque<LocalReq>>,
    /// Per-process local-bus service counts (fair round-robin arbitration).
    served: Vec<u64>,
    ca_queue: VecDeque<u32>,
    transfers: Vec<InterTransfer>,
    sas: Vec<SaCounters>,
    ca: CaCounters,
    bus_ctr: Vec<BuCounters>,
    fus: Vec<FuTimes>,
    makespan: Picos,
}

/// Clear and re-dimension a vector, keeping its allocation.
fn refill<T: Clone>(v: &mut Vec<T>, n: usize, value: T) {
    v.clear();
    v.resize(n, value);
}

impl EngineScratch {
    fn reset(&mut self, plan: &EnginePlan, frames: u64, cfg: &EmulatorConfig) {
        self.queue.reset(cfg.queue, plan.bucket_hint_ps);
        self.seq = 0;

        self.instance_remaining.clear();
        for _ in 0..frames {
            for flows in &plan.waves {
                self.instance_remaining
                    .push(flows.iter().map(|f| plan.flow_pkgs[f.index()]).sum::<u64>());
            }
        }

        // Producers keep their pending-vector allocations across runs.
        self.producers
            .resize_with(plan.nproc, ProducerState::default);
        self.producers.truncate(plan.nproc);
        for p in &mut self.producers {
            p.pending.clear();
            p.rr = 0;
            p.busy = false;
        }

        refill(&mut self.remaining, plan.nproc, Remaining::default());
        for i in 0..plan.flow_src.len() {
            self.remaining[plan.flow_src[i].index()].out += plan.flow_pkgs[i] * frames;
            self.remaining[plan.flow_dst[i].index()].inp += plan.flow_pkgs[i] * frames;
        }

        refill(&mut self.bus_free, plan.nseg, Picos::ZERO);
        refill(&mut self.reserved, plan.nseg, false);
        self.sa_queue.resize_with(plan.nseg, VecDeque::new);
        self.sa_queue.truncate(plan.nseg);
        for q in &mut self.sa_queue {
            q.clear();
        }
        refill(&mut self.served, plan.nproc, 0);
        self.ca_queue.clear();
        self.transfers.clear();

        refill(&mut self.sas, plan.nseg, SaCounters::default());
        self.ca = CaCounters::default();
        refill(&mut self.bus_ctr, plan.n_bu, BuCounters::default());
        refill(&mut self.fus, plan.nproc, FuTimes::default());
        // Processes with no flows at all raise their flag immediately.
        for (i, fu) in self.fus.iter_mut().enumerate() {
            if self.remaining[i] == Remaining::default() {
                fu.flag = true;
            }
        }
        self.makespan = Picos::ZERO;
    }
}

// ---------------------------------------------------------------------------
// engine

/// A reusable emulation engine: configuration plus scratch buffers.
///
/// Unlike the [`Emulator`] facade, an `Engine` is stateful — successive
/// [`Engine::run`] calls reuse every internal vector (event queue buckets,
/// per-segment queues, counters), which makes tight loops over many PSMs
/// (sweeps, placement searches) allocation-free apart from plan
/// compilation. Results are bit-identical to a fresh `Emulator` run.
pub struct Engine {
    config: EmulatorConfig,
    scratch: EngineScratch,
    fast: crate::fast::FastScratch,
}

impl Engine {
    /// Create an engine with the given configuration.
    pub fn new(config: EmulatorConfig) -> Engine {
        Engine {
            config,
            scratch: EngineScratch::default(),
            fast: crate::fast::FastScratch::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &EmulatorConfig {
        &self.config
    }

    /// Execute the PSM to completion and return the report.
    pub fn run(&mut self, psm: &Psm) -> EmulationReport {
        let plan = EnginePlan::new(psm);
        self.run_plan(&plan, 1)
    }

    /// Multi-frame execution; see [`Emulator::run_frames`].
    ///
    /// # Panics
    /// Panics if `frames` is zero.
    pub fn run_frames(&mut self, psm: &Psm, frames: u64) -> EmulationReport {
        let plan = EnginePlan::new(psm);
        self.run_plan(&plan, frames)
    }

    /// Panic-free [`Engine::run`]; see [`Emulator::try_run`].
    pub fn try_run(&mut self, psm: &Psm) -> Result<EmulationReport, SegbusError> {
        self.try_run_frames(psm, 1)
    }

    /// Panic-free [`Engine::run_frames`]: runs
    /// [`crate::precheck::strict_validate`], compiles the plan with
    /// [`EnginePlan::try_new`], and only then executes.
    pub fn try_run_frames(
        &mut self,
        psm: &Psm,
        frames: u64,
    ) -> Result<EmulationReport, SegbusError> {
        crate::precheck::strict_validate(psm, frames, &self.config)?;
        let plan = EnginePlan::try_new(psm)?;
        Ok(self.run_plan(&plan, frames))
    }

    /// Execute a pre-compiled plan. Compile once with [`EnginePlan::new`]
    /// to amortise table construction over repeated runs of one PSM.
    ///
    /// # Panics
    /// Panics if `frames` is zero.
    pub fn run_plan(&mut self, plan: &EnginePlan, frames: u64) -> EmulationReport {
        let mut out = EmulationReport::empty();
        self.run_plan_into(plan, frames, &mut out);
        out
    }

    /// [`Engine::run_plan`] assembling the result into `out`, reusing its
    /// vectors (counters, clock tables, border-unit refs) instead of
    /// allocating a fresh report per run. Tight evaluation loops —
    /// placement search emulating thousands of candidates — hold one
    /// report buffer and make the whole run allocation-free apart from
    /// first-time growth. `out`'s previous contents are overwritten; the
    /// result is bit-identical to [`Engine::run_plan`]'s.
    ///
    /// # Panics
    /// Panics if `frames` is zero.
    pub fn run_plan_into(&mut self, plan: &EnginePlan, frames: u64, out: &mut EmulationReport) {
        assert!(frames > 0, "at least one frame");
        if self.config.engine == crate::config::EngineKind::Fast {
            if self.config.trace {
                // The traced fast instantiations emit the interpreter's
                // exact event stream (differential-tested event for
                // event); collect it into the report's TraceLog.
                let mut log = TraceLog::new();
                crate::fast::run_fast_traced(
                    plan,
                    &mut self.fast,
                    &self.config,
                    frames,
                    &mut log,
                    out,
                );
                out.trace = Some(log);
                return;
            }
            crate::fast::run_fast(plan, &mut self.fast, &self.config, frames, out);
            return;
        }
        self.scratch.reset(plan, frames, &self.config);
        Run {
            plan,
            cfg: self.config,
            sc: &mut self.scratch,
            frames,
            bus_ticks: self.config.timing.bus_transaction_ticks(plan.s),
            trace: self.config.trace.then(TraceLog::new),
        }
        .execute_into(out)
    }

    /// Execute a pre-compiled plan, streaming every trace event into
    /// `sink` instead of collecting an in-memory [`TraceLog`] — the way
    /// to trace million-event runs without ballooning memory (pair with
    /// [`crate::sbt::SbtWriter`]). The returned report's `trace` field is
    /// `None`: the events went to the sink. Tracing is implied; the
    /// configured [`EmulatorConfig::trace`] flag is ignored here.
    ///
    /// On the fast engine events stream as they are emitted; the
    /// interpreter records its log first and replays it into the sink
    /// (identical event sequence either way).
    ///
    /// # Panics
    /// Panics if `frames` is zero.
    pub fn run_plan_with_sink(
        &mut self,
        plan: &EnginePlan,
        frames: u64,
        sink: &mut dyn crate::trace::TraceSink,
    ) -> EmulationReport {
        assert!(frames > 0, "at least one frame");
        let mut report = EmulationReport::empty();
        if self.config.engine == crate::config::EngineKind::Fast {
            crate::fast::run_fast_traced(
                plan,
                &mut self.fast,
                &self.config,
                frames,
                sink,
                &mut report,
            );
            return report;
        }
        self.scratch.reset(plan, frames, &self.config);
        Run {
            plan,
            cfg: self.config,
            sc: &mut self.scratch,
            frames,
            bus_ticks: self.config.timing.bus_transaction_ticks(plan.s),
            trace: Some(TraceLog::new()),
        }
        .execute_into(&mut report);
        if let Some(log) = report.trace.take() {
            for e in log.events() {
                sink.emit(e);
            }
        }
        report
    }

    /// Panic-free [`Engine::run_plan_with_sink`] over a PSM: validates,
    /// compiles the plan, then executes with trace streaming.
    pub fn try_run_frames_with_sink(
        &mut self,
        psm: &Psm,
        frames: u64,
        sink: &mut dyn crate::trace::TraceSink,
    ) -> Result<EmulationReport, SegbusError> {
        crate::precheck::strict_validate(psm, frames, &self.config)?;
        let plan = EnginePlan::try_new(psm)?;
        Ok(self.run_plan_with_sink(&plan, frames, sink))
    }
}

// ---------------------------------------------------------------------------
// one run

struct Run<'r, 'a> {
    plan: &'r EnginePlan<'a>,
    cfg: EmulatorConfig,
    sc: &'r mut EngineScratch,
    frames: u64,
    /// [`TimingParams::bus_transaction_ticks`] for the plan's package
    /// size, summed once per run instead of per bus transaction.
    bus_ticks: u64,
    trace: Option<TraceLog>,
}

impl Run<'_, '_> {
    // -- helpers ----------------------------------------------------------

    #[inline(always)]
    fn schedule(&mut self, at: Picos, ev: Ev) {
        self.sc.seq += 1;
        self.sc.queue.push(at, self.sc.seq, ev);
    }

    fn trace(&mut self, e: TraceEvent) {
        if let Some(t) = &mut self.trace {
            t.push(e);
        }
    }

    fn seg_of(&self, p: ProcessId) -> SegmentId {
        self.plan.proc_seg[p.index()]
    }

    fn touch_sa(&mut self, seg: SegmentId, at: Picos) {
        let c = &mut self.sc.sas[seg.index()];
        c.last_activity = c.last_activity.max(at);
    }

    // -- wave / producer control ------------------------------------------

    /// Arm the producers of wave instance `g` (= frame × waves + wave) at
    /// global time `t`. Empty wave instances complete immediately.
    fn start_instance(&mut self, g: usize, t: Picos) {
        let plan = self.plan;
        let w = g % plan.waves.len();
        let frame = (g / plan.waves.len()) as u64;
        let flows = &plan.waves[w];
        if flows.is_empty() {
            self.complete_instance(g, t);
            return;
        }
        for f in flows {
            let src = plan.flow_src[f.index()];
            self.sc.producers[src.index()]
                .pending
                .push((*f, plan.flow_pkgs[f.index()], frame));
        }
        // Kick every producer that has work and is idle.
        for p in 0..plan.nproc {
            let pid = ProcessId(p as u32);
            if !self.sc.producers[p].busy && !self.sc.producers[p].pending.is_empty() {
                self.start_next_package(pid, t);
            }
        }
    }

    /// A wave instance fully delivered: open its successor within the frame.
    fn complete_instance(&mut self, g: usize, now: Picos) {
        self.trace(TraceEvent {
            at: now,
            kind: TraceKind::WaveComplete,
            flow: None,
            package: None,
            process: None,
            segment: None,
        });
        let w = g % self.plan.waves.len();
        if w + 1 < self.plan.waves.len() {
            self.start_instance(g + 1, now);
        }
    }

    /// Pick the producer's next package (round-robin over its same-wave
    /// flows) and schedule its computation.
    fn start_next_package(&mut self, p: ProcessId, t: Picos) {
        let plan = self.plan;
        let st = &mut self.sc.producers[p.index()];
        if st.pending.is_empty() {
            st.busy = false;
            return;
        }
        // Round-robin index; the modulo only triggers on a stale pointer
        // (the pending list was drained and refilled), so the common path
        // avoids an integer division per package.
        let len = st.pending.len();
        let idx = if st.rr < len { st.rr } else { st.rr % len };
        let (flow, remaining, frame) = st.pending[idx];
        // Frame-global package index, so every event stays unambiguous
        // without carrying the frame separately.
        let pkg = frame * plan.flow_pkgs[flow.index()] + (plan.flow_pkgs[flow.index()] - remaining);
        if remaining == 1 {
            st.pending.remove(idx);
            // keep rr pointing at the element after the removed one
            let len = st.pending.len();
            if len > 0 && st.rr >= len {
                st.rr %= len;
            }
        } else {
            st.pending[idx].1 -= 1;
            st.rr += 1;
            if st.rr >= st.pending.len() {
                st.rr %= st.pending.len().max(1);
            }
        }
        st.busy = true;

        let seg = self.seg_of(p);
        let clk = plan.fast_seg[seg.index()];
        let start = clk.next_edge(t);
        let compute = plan.flow_compute[flow.index()];
        let dur = clk.ticks_to_picos(compute);
        let end = start + dur;
        self.sc.fus[p.index()].compute_ticks += compute;
        if self.sc.fus[p.index()].start.is_none() {
            self.sc.fus[p.index()].start = Some(start);
        }
        self.trace(TraceEvent {
            at: start,
            kind: TraceKind::ComputeStart,
            flow: Some(flow),
            package: Some(pkg),
            process: Some(p),
            segment: Some(seg),
        });
        self.schedule(end, Ev::ComputeDone { flow, pkg });
    }

    // -- event handlers ----------------------------------------------------

    fn on_compute_done(&mut self, now: Picos, flow: FlowId, pkg: u64) {
        let plan = self.plan;
        let src = plan.flow_src[flow.index()];
        let src_seg = self.seg_of(src);
        self.trace(TraceEvent {
            at: now,
            kind: TraceKind::ComputeEnd,
            flow: Some(flow),
            package: Some(pkg),
            process: Some(src),
            segment: Some(src_seg),
        });
        self.touch_sa(src_seg, now);
        let path = plan.flow_path[flow.index()];
        if path == NO_PATH {
            self.sc.sas[src_seg.index()].intra_requests += 1;
            self.sc.sa_queue[src_seg.index()].push_back(LocalReq { flow, pkg });
            let at = plan.fast_seg[src_seg.index()].next_edge(now);
            // Computation ends on a segment-clock edge, so the dispatch
            // attempt lands at exactly `now` and — freshly scheduled — would
            // carry the newest sequence number, i.e. pop after every event
            // already pending at this instant. Under FIFO arbitration the
            // serve order and serve times are a function of arrival order
            // and bus availability alone (a dispatch that finds the bus
            // busy, the segment reserved, or the queue empty touches no
            // state and is re-triggered by the blocking event), so running
            // the attempt inline is report-identical and saves a queue
            // round-trip per local package. Priority-based policies pick by
            // queue *content* at dispatch time and keep the event.
            if at == now && self.cfg.arbitration == ArbitrationPolicy::Fifo {
                self.on_sa_dispatch(now, src_seg);
            } else {
                self.schedule(at, Ev::SaDispatch { seg: src_seg });
            }
        } else {
            self.sc.sas[src_seg.index()].inter_requests += 1;
            let req = self.sc.transfers.len() as u32;
            self.sc.transfers.push(InterTransfer {
                flow,
                pkg,
                path,
                granted: false,
            });
            let at = plan.fast_ca.next_edge(now)
                + plan
                    .fast_ca
                    .ticks_to_picos(self.cfg.timing.ca_request_ticks);
            self.schedule(at, Ev::CaArrive { req });
        }
    }

    fn on_sa_dispatch(&mut self, now: Picos, seg: SegmentId) {
        let plan = self.plan;
        let si = seg.index();
        if self.sc.sa_queue[si].is_empty() {
            return;
        }
        if self.sc.reserved[si] {
            // The CA connected this segment into an inter-segment circuit;
            // local traffic resumes at the cascade release (PhaseDone
            // re-triggers dispatch).
            return;
        }
        if self.sc.bus_free[si] > now {
            // Bus busy; retry when it frees.
            let at = self.sc.bus_free[si];
            self.schedule(at, Ev::SaDispatch { seg });
            return;
        }
        let pick = match self.cfg.arbitration {
            ArbitrationPolicy::Fifo => 0,
            ArbitrationPolicy::FixedPriority => self.sc.sa_queue[si]
                .iter()
                .enumerate()
                .min_by_key(|(i, r)| (plan.flow_src[r.flow.index()], *i))
                .map(|(i, _)| i)
                .expect("checked non-empty"),
            ArbitrationPolicy::FairRoundRobin => {
                let served = &self.sc.served;
                self.sc.sa_queue[si]
                    .iter()
                    .enumerate()
                    .min_by_key(|(i, r)| {
                        let src = plan.flow_src[r.flow.index()];
                        (served[src.index()], *i)
                    })
                    .map(|(i, _)| i)
                    .expect("checked non-empty")
            }
        };
        let req = self.sc.sa_queue[si].remove(pick).expect("index in range");
        self.sc.served[plan.flow_src[req.flow.index()].index()] += 1;
        let clk = plan.fast_seg[si];
        let start = clk.next_edge(now);
        let ticks = self.bus_ticks;
        let end = start + clk.ticks_to_picos(ticks);
        self.sc.bus_free[si] = end;
        self.sc.sas[si].busy_ticks += ticks;
        self.touch_sa(seg, end);
        self.trace(TraceEvent {
            at: start,
            kind: TraceKind::BusStart,
            flow: Some(req.flow),
            package: Some(req.pkg),
            process: None,
            segment: Some(seg),
        });
        self.trace(TraceEvent {
            at: end,
            kind: TraceKind::BusEnd,
            flow: Some(req.flow),
            package: Some(req.pkg),
            process: None,
            segment: Some(seg),
        });
        self.schedule(
            end,
            Ev::IntraDone {
                flow: req.flow,
                pkg: req.pkg,
            },
        );
        // More work queued? Try again when the bus frees.
        if !self.sc.sa_queue[si].is_empty() {
            self.schedule(end, Ev::SaDispatch { seg });
        }
    }

    fn on_ca_arrive(&mut self, now: Picos, req: u32) {
        self.sc.ca.inter_requests += 1;
        self.sc.ca.busy_ticks += self.cfg.timing.ca_request_ticks;
        self.sc.ca_queue.push_back(req);
        self.schedule(now, Ev::CaDispatch);
    }

    fn on_ca_dispatch(&mut self, now: Picos) {
        // First-fit scan: reserve every queued request whose full path is
        // not already part of another circuit (the CA may run disjoint
        // same-order global flows simultaneously, §3.1). Segments still
        // draining a local transaction are reserved immediately; the
        // circuit's phases start once each bus frees.
        let plan = self.plan;
        let mut i = 0;
        while i < self.sc.ca_queue.len() {
            let req = self.sc.ca_queue[i];
            let tr = self.sc.transfers[req as usize];
            let available = plan.paths[tr.path as usize]
                .segs
                .iter()
                .all(|m| !self.sc.reserved[m.index()]);
            if available {
                self.sc.ca_queue.remove(i);
                self.grant(now, req);
            } else {
                i += 1;
            }
        }
    }

    /// Reserve the whole path and pre-schedule every hop (circuit-switched
    /// transfer with cascaded release, paper Fig. 2).
    fn grant(&mut self, now: Picos, req: u32) {
        let plan = self.plan;
        let tr = self.sc.transfers[req as usize];
        debug_assert!(!tr.granted);
        self.sc.transfers[req as usize].granted = true;
        self.sc.ca.grants += 1;
        self.sc.ca.busy_ticks += self.cfg.timing.ca_grant_ticks;
        let timing = self.cfg.timing;
        let ticks = self.bus_ticks;
        let path = &plan.paths[tr.path as usize];

        let mut prev_end = Picos::ZERO;
        for (hop, &m) in path.segs.iter().enumerate() {
            let mi = m.index();
            let clk = plan.fast_seg[mi];
            self.sc.reserved[mi] = true;
            // A reserved segment first drains its in-flight local
            // transaction; the circuit's phase starts on the later of the
            // protocol time and that drain point.
            let drain = clk.next_edge(self.sc.bus_free[mi]);
            let start = if hop == 0 {
                clk.next_edge(now).max(drain)
            } else {
                // The downstream SA samples the loaded BU, plus (in
                // detailed timing) the clock-domain synchroniser.
                let base = clk.next_edge(prev_end);
                let wait = clk.ticks_to_picos(timing.wp_sample_ticks + timing.bu_sync_ticks);
                let start = (base + wait).max(drain);
                // Record the waiting period at the BU we are unloading.
                let wp = clk.ticks_at(start - prev_end);
                let b = &mut self.sc.bus_ctr[path.bu[hop - 1] as usize];
                b.waiting_ticks += wp;
                b.tct += 2 * plan.s as u64 + wp;
                start
            };
            let end = start + clk.ticks_to_picos(ticks);
            self.sc.bus_free[mi] = end;
            self.sc.sas[mi].busy_ticks += ticks;
            self.touch_sa(m, end);
            self.trace(TraceEvent {
                at: start,
                kind: TraceKind::BusStart,
                flow: Some(tr.flow),
                package: Some(tr.pkg),
                process: None,
                segment: Some(m),
            });
            self.trace(TraceEvent {
                at: end,
                kind: TraceKind::BusEnd,
                flow: Some(tr.flow),
                package: Some(tr.pkg),
                process: None,
                segment: Some(m),
            });
            // Package movement bookkeeping at the end of this hop. The BU
            // side is the loading segment's position on that unit (which
            // also covers a ring's wrap-around BU).
            if hop + 1 < path.segs.len() {
                let b = &mut self.sc.bus_ctr[path.bu[hop] as usize];
                if path.load_left[hop] {
                    b.received_from_left += 1;
                } else {
                    b.received_from_right += 1;
                }
                self.trace(TraceEvent {
                    at: end,
                    kind: TraceKind::BuLoaded,
                    flow: Some(tr.flow),
                    package: Some(tr.pkg),
                    process: None,
                    segment: Some(m),
                });
            }
            if hop > 0 {
                // This hop unloaded the BU behind it.
                let b = &mut self.sc.bus_ctr[path.bu[hop - 1] as usize];
                if path.unload_right[hop - 1] {
                    b.transferred_to_right += 1;
                } else {
                    b.transferred_to_left += 1;
                }
                // Routing a BU delivery is an intra-segment job for this SA.
                self.sc.sas[mi].intra_requests += 1;
                self.trace(TraceEvent {
                    at: start,
                    kind: TraceKind::BuUnloaded,
                    flow: Some(tr.flow),
                    package: Some(tr.pkg),
                    process: None,
                    segment: Some(m),
                });
            }
            self.schedule(
                end,
                Ev::PhaseDone {
                    req,
                    hop: hop as u8,
                },
            );
            prev_end = end;
        }
        // The source segment pushed one package toward the destination
        // (side = the source's position on its first-hop BU).
        let src = path.segs[0];
        if path.load_left[0] {
            self.sc.sas[src.index()].packets_to_right += 1;
        } else {
            self.sc.sas[src.index()].packets_to_left += 1;
        }
    }

    fn on_intra_done(&mut self, now: Picos, flow: FlowId, pkg: u64) {
        let src = self.plan.flow_src[flow.index()];
        self.deliver(now, flow, pkg);
        self.producer_transfer_done(now, src);
        // A freed bus may unblock a queued CA request.
        if !self.sc.ca_queue.is_empty() {
            self.schedule(self.plan.fast_ca.next_edge(now), Ev::CaDispatch);
        }
    }

    fn on_phase_done(&mut self, now: Picos, req: u32, hop: u8) {
        let plan = self.plan;
        let tr = self.sc.transfers[req as usize];
        let path = &plan.paths[tr.path as usize];
        let seg = path.segs[hop as usize];
        // Cascade release: the CA resets this segment's grant.
        self.sc.reserved[seg.index()] = false;
        self.sc.ca.releases += 1;
        self.sc.ca.busy_ticks += self.cfg.timing.ca_release_ticks;
        let src = plan.flow_src[tr.flow.index()];
        let last = hop as usize == path.segs.len() - 1;
        match self.cfg.producer_release {
            ProducerRelease::AfterLocalPhase if hop == 0 => {
                // Fire-and-forget: the producer handed the package to the
                // first BU and may compute its next package now.
                self.producer_transfer_done(now, src);
            }
            ProducerRelease::AfterDelivery if last => {
                // Flow control: the producer resumes only once the package
                // reached its destination.
                self.producer_transfer_done(now, src);
            }
            _ => {}
        }
        if last {
            self.deliver(now, tr.flow, tr.pkg);
        }
        // The freed segment may serve local or queued CA work.
        if !self.sc.sa_queue[seg.index()].is_empty() {
            self.schedule(now, Ev::SaDispatch { seg });
        }
        if !self.sc.ca_queue.is_empty() {
            self.schedule(plan.fast_ca.next_edge(now), Ev::CaDispatch);
        }
    }

    /// Producer-side completion of one package's local transfer phase.
    fn producer_transfer_done(&mut self, now: Picos, p: ProcessId) {
        self.sc.fus[p.index()].packages_sent += 1;
        self.sc.fus[p.index()].end = Some(now);
        self.sc.remaining[p.index()].out -= 1;
        self.maybe_raise_flag(now, p);
        self.start_next_package(p, now);
    }

    /// Final delivery of a package at its destination process.
    fn deliver(&mut self, now: Picos, flow: FlowId, pkg: u64) {
        let plan = self.plan;
        let dst = plan.flow_dst[flow.index()];
        let fu = &mut self.sc.fus[dst.index()];
        fu.packages_received += 1;
        fu.last_received = Some(now);
        self.sc.remaining[dst.index()].inp -= 1;
        self.trace(TraceEvent {
            at: now,
            kind: TraceKind::Delivered,
            flow: Some(flow),
            package: Some(pkg),
            process: Some(dst),
            segment: Some(plan.proc_seg[dst.index()]),
        });
        self.maybe_raise_flag(now, dst);
        // Wave-instance bookkeeping: the frame is recovered from the
        // frame-global package index.
        let frame = plan.flow_pkg_div[flow.index()].floor_div(pkg);
        let g = frame as usize * plan.waves.len() + plan.flow_wave[flow.index()];
        self.sc.instance_remaining[g] -= 1;
        if self.sc.instance_remaining[g] == 0 {
            self.complete_instance(g, now);
        }
    }

    fn maybe_raise_flag(&mut self, now: Picos, p: ProcessId) {
        let i = p.index();
        if !self.sc.fus[i].flag && self.sc.remaining[i] == Remaining::default() {
            self.sc.fus[i].flag = true;
            self.trace(TraceEvent {
                at: now,
                kind: TraceKind::FlagRaised,
                flow: None,
                package: None,
                process: Some(p),
                segment: None,
            });
        }
    }

    // -- main loop ---------------------------------------------------------

    fn execute_into(mut self, out: &mut EmulationReport) {
        let plan = self.plan;
        if !plan.waves.is_empty() {
            // Wave 0 of every frame is input-ready immediately (streaming
            // with a full input buffer); later waves open as their
            // predecessors deliver, so frames pipeline.
            for frame in 0..self.frames {
                self.start_instance(frame as usize * plan.waves.len(), Picos::ZERO);
            }
        }
        while let Some((at, ev)) = self.sc.queue.pop() {
            self.sc.makespan = self.sc.makespan.max(at);
            match ev {
                Ev::ComputeDone { flow, pkg } => self.on_compute_done(at, flow, pkg),
                Ev::SaDispatch { seg } => self.on_sa_dispatch(at, seg),
                Ev::CaArrive { req } => self.on_ca_arrive(at, req),
                Ev::CaDispatch => self.on_ca_dispatch(at),
                Ev::IntraDone { flow, pkg } => self.on_intra_done(at, flow, pkg),
                Ev::PhaseDone { req, hop } => self.on_phase_done(at, req, hop),
            }
        }
        debug_assert!(
            self.sc.fus.iter().all(|f| f.flag),
            "emulation drained with unraised flags — schedule deadlock"
        );
        // Final counters: each SA's TCT runs to its last activity, the CA
        // polls until global quiescence.
        for (i, sa) in self.sc.sas.iter_mut().enumerate() {
            sa.tct = plan.seg_clock[i].ticks_covering(sa.last_activity);
        }
        self.sc.ca.tct = plan.ca_clock.ticks_covering(self.sc.makespan);
        // clone_from reuses the output report's allocations; a fresh
        // (empty) report degrades to plain clones.
        out.sas.clone_from(&self.sc.sas);
        out.ca = self.sc.ca;
        out.bus.clone_from(&self.sc.bus_ctr);
        out.bu_refs.clear();
        out.bu_refs.extend(plan.psm.platform().border_units());
        out.fus.clone_from(&self.sc.fus);
        out.segment_clocks.clone_from(&plan.seg_clock);
        out.ca_clock = plan.ca_clock;
        out.package_size = plan.s;
        out.makespan = self.sc.makespan;
        out.trace = self.trace.take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueueKind;
    use segbus_model::mapping::Allocation;
    use segbus_model::platform::Platform;
    use segbus_model::psdf::{Application, Flow, Process};

    /// The strength-reduced division (and the clock arithmetic on top of
    /// it) must agree with the hardware divider on every operand,
    /// including the boundary where the multiply hands over to fallback.
    #[test]
    fn fast_div_and_clock_match_plain_arithmetic() {
        let divisors = [1u64, 2, 3, 7, 64, 9009, 10204, 10989, 11236, 16384, 999_983];
        for &p in &divisors {
            let c = ClockDomain::from_period_ps(p);
            let f = FastClock::new(c);
            let d = FastDiv::new(p);
            let mut xs: Vec<u64> = vec![0, 1, p - 1, p, p + 1, 3 * p, 3 * p + 1];
            xs.extend([
                d.max_exact.saturating_sub(1),
                d.max_exact,
                d.max_exact.saturating_add(1),
            ]);
            let mut x = 0x9E37_79B9_7F4A_7C15u64;
            for _ in 0..1000 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                xs.push(x & ((1 << 50) - 1));
                xs.push(x);
            }
            for &v in &xs {
                assert_eq!(d.floor_div(v), v / p, "floor_div p={p} x={v}");
                assert_eq!(
                    f.ticks_at(Picos(v)),
                    c.ticks_at(Picos(v)),
                    "ticks_at p={p} x={v}"
                );
                assert_eq!(
                    f.ticks_to_picos(v % (1 << 40)),
                    c.ticks_to_picos(v % (1 << 40))
                );
                if v <= u64::MAX - p {
                    assert_eq!(
                        f.next_edge(Picos(v)),
                        c.next_edge(Picos(v)),
                        "edge p={p} x={v}"
                    );
                }
            }
        }
    }

    fn uniform(nseg: usize, s: u32) -> Platform {
        Platform::builder("t")
            .package_size(s)
            .ca_clock(ClockDomain::from_mhz(100.0))
            .uniform_segments(nseg, ClockDomain::from_mhz(100.0))
            .build()
            .unwrap()
    }

    fn run(psm: &Psm) -> EmulationReport {
        Emulator::new(EmulatorConfig::traced()).run(psm)
    }

    /// One producer, one consumer, same segment, 2 packages of 36 items.
    fn local_pair() -> Psm {
        let mut app = Application::new("pair");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::final_("B"));
        app.add_flow(Flow::new(a, b, 72, 1, 100)).unwrap();
        let mut alloc = Allocation::new(1);
        alloc.assign(a, SegmentId(0));
        alloc.assign(b, SegmentId(0));
        Psm::new(uniform(1, 36), app, alloc).unwrap()
    }

    #[test]
    fn local_pair_timing_is_exact() {
        // Period 10000 ps. Per package: 100 compute + 40 bus = 140 ticks,
        // producer blocked during transfer => 2 packages = 280 ticks.
        let r = run(&local_pair());
        assert_eq!(r.makespan, Picos(280 * 10_000));
        assert_eq!(r.fus[0].packages_sent, 2);
        assert_eq!(r.fus[1].packages_received, 2);
        assert!(r.all_flags_raised());
        assert_eq!(r.sas[0].intra_requests, 2);
        assert_eq!(r.sas[0].inter_requests, 0);
        assert_eq!(r.ca.inter_requests, 0);
        assert_eq!(r.inter_segment_packages(), 0);
        // SA busy for 2 × 40 ticks.
        assert_eq!(r.sas[0].busy_ticks, 80);
        // CA polls to the end: TCT == makespan ticks.
        assert_eq!(r.ca.tct, 280);
        assert_eq!(r.execution_time(), Picos(2_800_000));
    }

    /// Producer and consumer on different segments of a 2-segment platform.
    fn remote_pair(items: u64) -> Psm {
        let mut app = Application::new("remote");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::final_("B"));
        app.add_flow(Flow::new(a, b, items, 1, 100)).unwrap();
        let mut alloc = Allocation::new(2);
        alloc.assign(a, SegmentId(0));
        alloc.assign(b, SegmentId(1));
        Psm::new(uniform(2, 36), app, alloc).unwrap()
    }

    #[test]
    fn remote_pair_crosses_one_bu() {
        let r = run(&remote_pair(72));
        assert_eq!(r.bus[0].received_from_left, 2);
        assert_eq!(r.bus[0].transferred_to_right, 2);
        assert_eq!(r.bus[0].received_from_right, 0);
        assert_eq!(r.sas[0].inter_requests, 2);
        assert_eq!(r.sas[0].packets_to_right, 2);
        assert_eq!(r.sas[1].packets_to_left, 0);
        assert_eq!(r.ca.inter_requests, 2);
        assert_eq!(r.ca.grants, 2);
        // Cascade: 2 segments released per package.
        assert_eq!(r.ca.releases, 4);
        // Destination SA routes two BU deliveries.
        assert_eq!(r.sas[1].intra_requests, 2);
        assert!(r.all_flags_raised());
    }

    #[test]
    fn remote_transfer_timing() {
        // Package timeline (all clocks 10 ns):
        //  compute ends at 100 ticks; CA request arrives edge+1 = 101;
        //  grant at 101; hop0 occupies seg0 [101, 141); BU loaded at 141;
        //  hop1 starts 141 + wp_sample(1) = 142, ends 182 -> delivery.
        let r = run(&remote_pair(36));
        assert_eq!(r.makespan, Picos(182 * 10_000));
        // BU tct: 2 × 36 + wp(1) = 73.
        assert_eq!(r.bus[0].tct, 73);
        assert_eq!(r.bus[0].waiting_ticks, 1);
        // Default flow control: the producer is done when the package is
        // delivered (182); fire-and-forget would free it at 141.
        assert_eq!(r.fus[0].end, Some(Picos(182 * 10_000)));
        assert_eq!(r.fus[1].last_received, Some(Picos(182 * 10_000)));
        // Ablation: fire-and-forget frees the producer after hop 0.
        let cfg = EmulatorConfig {
            producer_release: ProducerRelease::AfterLocalPhase,
            ..EmulatorConfig::default()
        };
        let r2 = Emulator::new(cfg).run(&remote_pair(36));
        assert_eq!(r2.fus[0].end, Some(Picos(141 * 10_000)));
        assert_eq!(r2.makespan, r.makespan, "single package: same makespan");
    }

    #[test]
    fn useful_period_identity() {
        // UP = 2 × s × packages, exactly (paper §4 analysis).
        let r = run(&remote_pair(5 * 36));
        assert_eq!(r.bus[0].useful_period(36), 2 * 36 * 5);
        // TCT = UP + waiting ticks.
        assert_eq!(
            r.bus[0].tct,
            r.bus[0].useful_period(36) + r.bus[0].waiting_ticks
        );
    }

    /// Two waves: A -> B (wave 1), B -> C (wave 2), all local.
    #[test]
    fn waves_are_barriers() {
        let mut app = Application::new("w");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::new("B"));
        let c = app.add_process(Process::final_("C"));
        app.add_flow(Flow::new(a, b, 36, 1, 100)).unwrap();
        app.add_flow(Flow::new(b, c, 36, 2, 50)).unwrap();
        let mut alloc = Allocation::new(1);
        for p in [a, b, c] {
            alloc.assign(p, SegmentId(0));
        }
        let psm = Psm::new(uniform(1, 36), app, alloc).unwrap();
        let r = run(&psm);
        // Wave 1: 100 + 40 = 140 ticks. Wave 2 starts at 140: +50 +40 = 230.
        assert_eq!(r.makespan, Picos(230 * 10_000));
        let trace = r.trace.as_ref().unwrap();
        assert_eq!(trace.of_kind(TraceKind::WaveComplete).count(), 2);
        // B computes only after receiving its input.
        assert_eq!(r.fus[b.index()].start, Some(Picos(140 * 10_000)));
    }

    /// Two producers share one segment bus: transfers serialize.
    #[test]
    fn bus_contention_serializes() {
        let mut app = Application::new("c");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::initial("B"));
        let c = app.add_process(Process::final_("C"));
        app.add_flow(Flow::new(a, c, 36, 1, 10)).unwrap();
        app.add_flow(Flow::new(b, c, 36, 1, 10)).unwrap();
        let mut alloc = Allocation::new(1);
        for p in [a, b, c] {
            alloc.assign(p, SegmentId(0));
        }
        let psm = Psm::new(uniform(1, 36), app, alloc).unwrap();
        let r = run(&psm);
        // Both ready at tick 10; transfers 40 ticks each, serialized:
        // first [10, 50), second [50, 90).
        assert_eq!(r.makespan, Picos(90 * 10_000));
        let iv = r.trace.as_ref().unwrap().bus_intervals(SegmentId(0));
        assert_eq!(iv.len(), 2);
        assert!(iv[0].1 <= iv[1].0, "no overlap on one bus");
    }

    /// Disjoint inter-segment paths can be in flight simultaneously.
    #[test]
    fn disjoint_paths_run_in_parallel() {
        // 4 segments; A on 0 -> B on 1, C on 2 -> D on 3.
        let mut app = Application::new("par");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::final_("B"));
        let c = app.add_process(Process::initial("C"));
        let d = app.add_process(Process::final_("D"));
        app.add_flow(Flow::new(a, b, 36, 1, 100)).unwrap();
        app.add_flow(Flow::new(c, d, 36, 1, 100)).unwrap();
        let mut alloc = Allocation::new(4);
        alloc.assign(a, SegmentId(0));
        alloc.assign(b, SegmentId(1));
        alloc.assign(c, SegmentId(2));
        alloc.assign(d, SegmentId(3));
        let psm = Psm::new(uniform(4, 36), app, alloc).unwrap();
        let r = run(&psm);
        // Same timing as a single remote pair: both transfers overlap.
        assert_eq!(r.makespan, Picos(182 * 10_000));
        assert_eq!(r.bus[0].total_in(), 1);
        assert_eq!(r.bus[2].total_in(), 1);
        assert_eq!(r.bus[1].total_in(), 0);
    }

    /// A two-hop transfer traverses both BUs and the middle segment.
    #[test]
    fn two_hop_transfer() {
        let mut app = Application::new("hop2");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::final_("B"));
        app.add_flow(Flow::new(a, b, 36, 1, 100)).unwrap();
        let mut alloc = Allocation::new(3);
        alloc.assign(a, SegmentId(0));
        alloc.assign(b, SegmentId(2));
        let psm = Psm::new(uniform(3, 36), app, alloc).unwrap();
        let r = run(&psm);
        assert_eq!(r.bus[0].received_from_left, 1);
        assert_eq!(r.bus[0].transferred_to_right, 1);
        assert_eq!(r.bus[1].received_from_left, 1);
        assert_eq!(r.bus[1].transferred_to_right, 1);
        // Middle SA forwarded one BU delivery.
        assert_eq!(r.sas[1].intra_requests, 1);
        // Only the source segment counts the packet as pushed out.
        assert_eq!(r.sas[0].packets_to_right, 1);
        assert_eq!(r.sas[1].packets_to_right, 0);
        // hop0 [101,141), hop1 [142,182), hop2 [183,223).
        assert_eq!(r.makespan, Picos(223 * 10_000));
        // Cascade: 3 releases.
        assert_eq!(r.ca.releases, 3);
    }

    /// Leftward transfers mirror rightward ones.
    #[test]
    fn leftward_transfer() {
        let mut app = Application::new("left");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::final_("B"));
        app.add_flow(Flow::new(a, b, 36, 1, 100)).unwrap();
        let mut alloc = Allocation::new(2);
        alloc.assign(a, SegmentId(1));
        alloc.assign(b, SegmentId(0));
        let psm = Psm::new(uniform(2, 36), app, alloc).unwrap();
        let r = run(&psm);
        assert_eq!(r.bus[0].received_from_right, 1);
        assert_eq!(r.bus[0].transferred_to_left, 1);
        assert_eq!(r.sas[1].packets_to_left, 1);
        assert_eq!(r.sas[0].packets_to_left, 0);
    }

    #[test]
    fn empty_application_terminates_immediately() {
        let mut app = Application::new("empty");
        let a = app.add_process(Process::new("A"));
        let mut alloc = Allocation::new(1);
        alloc.assign(a, SegmentId(0));
        let psm = Psm::new(uniform(1, 36), app, alloc).unwrap();
        let r = run(&psm);
        assert_eq!(r.makespan, Picos::ZERO);
        assert!(r.all_flags_raised());
        assert_eq!(r.ca.tct, 0);
    }

    #[test]
    fn determinism() {
        let psm = remote_pair(10 * 36);
        let a = run(&psm);
        let b = run(&psm);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.sas, b.sas);
        assert_eq!(a.ca, b.ca);
        assert_eq!(a.bus, b.bus);
    }

    /// A reused engine must produce the same reports as fresh emulators,
    /// including after runs over differently shaped PSMs (scratch vectors
    /// are re-dimensioned on reset).
    #[test]
    fn engine_reuse_is_bit_identical() {
        let mut engine = Engine::new(EmulatorConfig::traced());
        let shapes = [
            remote_pair(10 * 36),
            local_pair(),
            remote_pair(36),
            local_pair(),
        ];
        for psm in &shapes {
            let fresh = run(psm);
            let reused = engine.run(psm);
            assert_eq!(fresh.makespan, reused.makespan);
            assert_eq!(fresh.sas, reused.sas);
            assert_eq!(fresh.ca, reused.ca);
            assert_eq!(fresh.bus, reused.bus);
            assert_eq!(fresh.fus, reused.fus);
        }
    }

    /// Running a compiled plan repeatedly matches per-run compilation.
    #[test]
    fn plan_reuse_matches_run() {
        let psm = remote_pair(5 * 36);
        let plan = EnginePlan::new(&psm);
        let mut engine = Engine::new(EmulatorConfig::default());
        let a = engine.run_plan(&plan, 1);
        let b = engine.run_plan(&plan, 1);
        let c = Emulator::default().run(&psm);
        assert_eq!(a.makespan, c.makespan);
        assert_eq!(b.makespan, c.makespan);
        assert_eq!(a.sas, c.sas);
        assert_eq!(a.bus, c.bus);
    }

    /// The calendar queue and the reference heap drive identical runs.
    #[test]
    fn queue_kinds_are_bit_identical() {
        for psm in [remote_pair(10 * 36), local_pair()] {
            let heap = Emulator::new(EmulatorConfig {
                queue: QueueKind::BinaryHeap,
                ..EmulatorConfig::traced()
            })
            .run(&psm);
            let indexed = Emulator::new(EmulatorConfig {
                queue: QueueKind::Indexed,
                ..EmulatorConfig::traced()
            })
            .run(&psm);
            assert_eq!(heap.makespan, indexed.makespan);
            assert_eq!(heap.sas, indexed.sas);
            assert_eq!(heap.ca, indexed.ca);
            assert_eq!(heap.bus, indexed.bus);
            assert_eq!(heap.fus, indexed.fus);
        }
    }

    /// Arbitration policies: fixed priority favours low process ids; fair
    /// round-robin balances service; totals are conserved in all cases.
    #[test]
    fn arbitration_policies_change_service_order_not_totals() {
        // Three producers on one segment flood one sink; the bus is the
        // bottleneck (tiny compute, many packages).
        let mut app = Application::new("flood");
        let producers: Vec<ProcessId> = (0..3)
            .map(|i| app.add_process(Process::initial(format!("A{i}"))))
            .collect();
        let sink = app.add_process(Process::final_("SINK"));
        for &p in &producers {
            app.add_flow(Flow::new(p, sink, 6 * 36, 1, 5)).unwrap();
        }
        let mut alloc = Allocation::new(1);
        for p in producers.iter().chain(std::iter::once(&sink)) {
            alloc.assign(*p, SegmentId(0));
        }
        let psm = Psm::new(uniform(1, 36), app, alloc).unwrap();

        let run_with = |policy| {
            let cfg = EmulatorConfig {
                arbitration: policy,
                ..EmulatorConfig::traced()
            };
            Emulator::new(cfg).run(&psm)
        };
        let fifo = run_with(ArbitrationPolicy::Fifo);
        let prio = run_with(ArbitrationPolicy::FixedPriority);
        let fair = run_with(ArbitrationPolicy::FairRoundRobin);

        // Conservation is policy-independent; makespans may differ a
        // little (service order shifts the idle gaps) but the bus-bound
        // total work keeps them close.
        for r in [&fifo, &prio, &fair] {
            assert!(r.all_flags_raised());
            assert_eq!(r.fus[sink.index()].packages_received, 18);
            let ratio = r.makespan.0 as f64 / fifo.makespan.0 as f64;
            assert!((0.9..=1.1).contains(&ratio), "makespan ratio {ratio}");
        }
        // Fixed priority finishes A0 before A2 finishes.
        assert!(
            prio.fus[0].end.unwrap() <= prio.fus[2].end.unwrap(),
            "priority must favour the low id"
        );
        // Fairness: under fair round-robin the spread between the first
        // and last finisher is no larger than under fixed priority.
        let spread = |r: &EmulationReport| {
            let ends: Vec<u64> = (0..3).map(|i| r.fus[i].end.unwrap().0).collect();
            ends.iter().max().unwrap() - ends.iter().min().unwrap()
        };
        assert!(spread(&fair) <= spread(&prio));
    }

    /// Ring topology: a transfer from the last segment to the first takes
    /// the wrap-around unit (one hop) instead of walking the whole line.
    #[test]
    fn ring_wrap_transfer_takes_one_hop() {
        let mut app = Application::new("ring");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::final_("B"));
        app.add_flow(Flow::new(a, b, 36, 1, 100)).unwrap();
        let mut alloc = Allocation::new(3);
        alloc.assign(a, SegmentId(2));
        alloc.assign(b, SegmentId(0));
        let ring = Platform::builder("ring")
            .package_size(36)
            .topology(segbus_model::platform::Topology::Ring)
            .ca_clock(ClockDomain::from_mhz(100.0))
            .uniform_segments(3, ClockDomain::from_mhz(100.0))
            .build()
            .unwrap();
        let r = run(&Psm::new(ring, app.clone(), alloc.clone()).unwrap());
        // The wrap unit is BU31 (index 2): loaded from its left (segment 3),
        // delivered to its right (segment 1).
        assert_eq!(r.bu_refs[2].to_string(), "BU31");
        assert_eq!(r.bus[2].received_from_left, 1);
        assert_eq!(r.bus[2].transferred_to_right, 1);
        assert_eq!(r.bus[0].total_in(), 0);
        assert_eq!(r.bus[1].total_in(), 0);
        assert_eq!(r.sas[2].packets_to_right, 1);
        // Same single-hop timing as a linear adjacent transfer.
        assert_eq!(r.makespan, Picos(182 * 10_000));
        // Cascade: exactly two segments released.
        assert_eq!(r.ca.releases, 2);

        // The identical mapping on a *linear* platform walks two hops.
        let linear = uniform(3, 36);
        let rl = run(&Psm::new(linear, app, alloc).unwrap());
        assert_eq!(rl.makespan, Picos(223 * 10_000));
        assert_eq!(rl.ca.releases, 3);
        assert!(r.makespan < rl.makespan, "the ring must be faster here");
    }

    #[test]
    fn smaller_packages_cost_more_overall() {
        // Per-item cost model: compute constant, protocol overhead doubles.
        // (Enough packages that the steady-state per-package overhead
        // dominates the shorter pipeline tail of the small-package run.)
        let p36 = remote_pair(10 * 36);
        let p18 = p36.with_package_size(18).unwrap();
        let r36 = run(&p36);
        let r18 = run(&p18);
        assert!(
            r18.makespan > r36.makespan,
            "{:?} !> {:?}",
            r18.makespan,
            r36.makespan
        );
    }
}
