//! ASCII Gantt rendering of a traced run — a terminal-friendly companion
//! to the Fig. 10/11 series and the VCD export.
//!
//! One row per segment bus and one per producing process, the time axis
//! scaled to a fixed width:
//!
//! ```text
//! Segment 1 |████▌ ▐██▌  ▐█▌     |
//! P0        |▐▌▐▌▐▌              |
//! ```

use segbus_model::ids::SegmentId;
use segbus_model::time::Picos;

use crate::report::EmulationReport;
use crate::trace::TraceKind;

/// Render the run as an ASCII Gantt chart, `width` columns of timeline.
///
/// # Panics
/// Panics if the report was produced without tracing or `width` is zero.
pub fn ascii_gantt(report: &EmulationReport, width: usize) -> String {
    assert!(width > 0, "gantt width must be positive");
    let trace = report
        .trace
        .as_ref()
        .expect("gantt requires a traced run: use EmulatorConfig::traced()");
    let span = report.makespan.0.max(1);
    let col = |t: Picos| (((t.0 as u128) * width as u128) / (span as u128 + 1)) as usize;

    let mut out = String::new();
    let label_w = 10usize;

    // Bus rows.
    for i in 0..report.sas.len() {
        let seg = SegmentId(i as u16);
        let mut row = vec![' '; width];
        for (a, b) in trace.bus_intervals(seg) {
            let (c0, c1) = (col(a), col(b).max(col(a)));
            for cell in row.iter_mut().take((c1 + 1).min(width)).skip(c0) {
                *cell = '#';
            }
        }
        out.push_str(&format!("{:<label_w$}|", seg.to_string()));
        out.extend(row);
        out.push_str("|\n");
    }

    // Producer rows (compute intervals).
    let mut starts: std::collections::HashMap<(u32, u64), Picos> = std::collections::HashMap::new();
    let mut rows: Vec<Vec<char>> = vec![vec![' '; width]; report.fus.len()];
    for e in trace.events() {
        let (Some(p), Some(f), Some(pkg)) = (e.process, e.flow, e.package) else {
            continue;
        };
        match e.kind {
            TraceKind::ComputeStart => {
                starts.insert((f.0, pkg), e.at);
            }
            TraceKind::ComputeEnd => {
                if let Some(a) = starts.remove(&(f.0, pkg)) {
                    let (c0, c1) = (col(a), col(e.at).max(col(a)));
                    let row = &mut rows[p.index()];
                    for cell in row.iter_mut().take((c1 + 1).min(width)).skip(c0) {
                        *cell = '=';
                    }
                }
            }
            _ => {}
        }
    }
    for (i, row) in rows.iter().enumerate() {
        if row.iter().all(|&c| c == ' ') {
            continue; // pure sinks have no compute row
        }
        out.push_str(&format!("{:<label_w$}|", format!("P{i}")));
        out.extend(row.iter());
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "{:<label_w$}|0{:>w$}|\n",
        "time",
        format!("{:.1} us", report.makespan.as_micros_f64()),
        w = width - 1
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EmulatorConfig;
    use crate::engine::Emulator;

    fn traced_mp3() -> EmulationReport {
        Emulator::new(EmulatorConfig::traced()).run(&segbus_apps::mp3::three_segment_psm())
    }

    #[test]
    fn rows_cover_segments_and_producers() {
        let g = ascii_gantt(&traced_mp3(), 72);
        assert!(g.contains("Segment 1 |"));
        assert!(g.contains("Segment 3 |"));
        assert!(g.contains("P0        |"));
        // P14 is a pure sink: no compute row.
        assert!(!g.contains("P14       |"));
        assert!(g.contains("time"));
        // All rows share the same width.
        let widths: Vec<usize> = g.lines().map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{widths:?}");
    }

    #[test]
    fn busy_marks_exist_and_fit() {
        let g = ascii_gantt(&traced_mp3(), 40);
        let seg1 = g.lines().next().unwrap();
        assert!(seg1.contains('#'), "{seg1}");
        assert!(seg1.len() <= 10 + 1 + 40 + 1);
    }

    #[test]
    fn early_waves_paint_early_columns() {
        let g = ascii_gantt(&traced_mp3(), 60);
        // P0 computes only in the first waves: its marks sit left of centre.
        let p0 = g.lines().find(|l| l.starts_with("P0 ")).unwrap();
        let body = &p0[11..p0.len() - 1];
        let last_mark = body.rfind('=').unwrap();
        assert!(last_mark < 30, "P0 compute extends to column {last_mark}");
        // P13 computes late: its first mark sits right of centre.
        let p13 = g.lines().find(|l| l.starts_with("P13")).unwrap();
        let body = &p13[11..p13.len() - 1];
        let first_mark = body.find('=').unwrap();
        assert!(first_mark > 30, "P13 starts at column {first_mark}");
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        let _ = ascii_gantt(&traced_mp3(), 0);
    }
}
