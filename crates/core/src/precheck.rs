//! Strict pre-flight validation of a PSM against the engine's own
//! execution invariants.
//!
//! [`segbus_model::validate`] checks the paper's OCL-style *structural*
//! constraints (`V0xx`). This module re-checks, immediately before
//! emulation, the cross-layer invariants the *engine* relies on — with
//! stable `C0xx` codes:
//!
//! * `C001` — the frame count must be non-zero;
//! * `C002` — every process must be placed on a segment the platform has;
//! * `C003` — every flow endpoint must reference a defined process;
//! * `C004` — the package size and every clock period must be non-zero;
//! * `C005` — the topology must provide a border unit between every pair
//!   of adjacent segments an inter-segment flow crosses;
//! * `C006` — the wave ordering must be acyclic and respect data
//!   dependencies;
//! * `C007` — retired: the cost model's reference package size is a
//!   divisor and used to be checked for zero here; it is now stored as a
//!   [`std::num::NonZeroU32`], so the invariant holds by construction and
//!   the front ends reject zero at parse/import time (`P003` / value
//!   errors);
//! * `C008` — the run must fit the engine's 64-bit picosecond timeline
//!   and its scratch tables (a conservative horizon/resource bound).
//!
//! A PSM built through [`segbus_model::Psm::new`] already satisfies most
//! of these; the pass exists so that *any* path into the engine — including
//! programmatic construction and fuzzed imports — fails with a typed
//! [`SegbusError`] instead of a panic, an overflow or an out-of-memory
//! abort deep inside the event loop.

use segbus_model::diag::SegbusError;
use segbus_model::ids::ProcessId;
use segbus_model::mapping::Psm;
use segbus_model::psdf::CostModel;

use crate::config::EmulatorConfig;

/// Upper bound on the conservative worst-case makespan, in picoseconds.
/// `2^62` leaves two bits of headroom below `u64::MAX` for every addition
/// the event loop performs on the global timeline.
const HORIZON_MAX_PS: u128 = 1 << 62;

/// Upper bound on `frames × waves` and `frames × total packages`: bounds
/// the per-run scratch allocations (`instance_remaining` et al.) and every
/// package counter.
const INSTANCE_MAX: u128 = 1 << 24;

fn err(code: &'static str, message: String) -> SegbusError {
    SegbusError::new(code, message)
}

/// Validate `psm` against the engine invariants for a `frames`-frame run.
///
/// Returns the first violated invariant as a [`SegbusError`] with a `C0xx`
/// code (see the module docs). A `Ok(())` guarantees the emulation cannot
/// panic, overflow the picosecond timeline, or allocate unboundedly.
pub fn strict_validate(psm: &Psm, frames: u64, cfg: &EmulatorConfig) -> Result<(), SegbusError> {
    let app = psm.application();
    let platform = psm.platform();
    let nproc = app.process_count();
    let nseg = platform.segment_count();

    // C001 — frames.
    if frames == 0 {
        return Err(err("C001", "frame count must be non-zero".into()));
    }

    // C004 — package size and clocks. `ClockDomain` cannot represent a
    // zero period, so the clock half is a defensive re-check.
    let s = platform.package_size();
    if s == 0 {
        return Err(err("C004", "platform package size is zero".into()));
    }
    if platform.ca_clock().period_ps() == 0 {
        return Err(err("C004", "CA clock period is zero".into()));
    }
    for (i, seg) in platform.segments().iter().enumerate() {
        if seg.clock.period_ps() == 0 {
            return Err(err("C004", format!("segment {i} clock period is zero")));
        }
    }

    // C002 — placement onto existing segments.
    for i in 0..nproc {
        let p = ProcessId(i as u32);
        match psm.allocation().segment_of(p) {
            None => return Err(err("C002", format!("process {p} is not placed"))),
            Some(seg) if !platform.contains(seg) => {
                return Err(err(
                    "C002",
                    format!("process {p} is placed on non-existent segment {seg}"),
                ))
            }
            Some(_) => {}
        }
    }

    // C003 — flow endpoints.
    for (i, f) in app.flows().iter().enumerate() {
        if f.src.index() >= nproc || f.dst.index() >= nproc {
            return Err(err(
                "C003",
                format!("flow #{i} references an undefined process"),
            ));
        }
    }

    // C007 (retired) — a zero cost-model reference is now unrepresentable:
    // `reference_package_size` is a `NonZeroU32` and the front ends reject
    // zero at parse/import time (P003 / X003), so no runtime check remains.

    // C005 — topology / border-unit consistency: every hop of every route
    // an inter-segment flow takes must have a border unit.
    for f in app.flows() {
        let a = psm.segment_of(f.src);
        let b = psm.segment_of(f.dst);
        if a == b {
            continue;
        }
        let segs = platform.path_segments(a, b);
        if segs.len() < 2 || segs.first() != Some(&a) || segs.last() != Some(&b) {
            return Err(err(
                "C005",
                format!("no route from segment {a} to segment {b}"),
            ));
        }
        for w in segs.windows(2) {
            if platform.bu_between(w[0], w[1]).is_none() {
                return Err(err(
                    "C005",
                    format!(
                        "no border unit between adjacent segments {} and {} on the {:?} topology",
                        w[0],
                        w[1],
                        platform.topology()
                    ),
                ));
            }
        }
    }

    // C006 — wave ordering.
    if !app.orders_respect_dependencies() {
        return Err(err(
            "C006",
            "flow ordering violates data dependencies (a flow is scheduled \
             no later than an input of its source)"
                .into(),
        ));
    }

    // C008 — horizon and resource bounds, in u128 so the check itself
    // cannot overflow. The bound is conservative: it assumes every package
    // is computed and then serialised over every segment of the platform
    // with full protocol overhead, all end to end.
    let waves = app.waves().len() as u128;
    let total_pkgs: u128 = app
        .flows()
        .iter()
        .map(|f| f.packages(s) as u128)
        .sum::<u128>();
    let instances = (frames as u128).saturating_mul(waves.max(1));
    let pkg_instances = (frames as u128).saturating_mul(total_pkgs);
    if instances > INSTANCE_MAX || pkg_instances > INSTANCE_MAX {
        return Err(err(
            "C008",
            format!(
                "run is too large: {frames} frame(s) x {waves} wave(s) / \
                 {total_pkgs} package(s) exceed the {INSTANCE_MAX} instance budget"
            ),
        ));
    }

    let t = &cfg.timing;
    let overhead_ticks: u128 = [
        t.request_ticks,
        t.header_ticks,
        t.release_ticks,
        t.ca_request_ticks,
        t.ca_grant_ticks,
        t.ca_release_ticks,
        t.wp_sample_ticks,
        t.bu_sync_ticks,
        t.sa_grant_ticks,
        t.master_response_ticks,
        t.sa_grant_reset_ticks,
    ]
    .iter()
    .map(|&v| v as u128)
    .sum::<u128>()
        + s as u128;
    let max_period = platform
        .segments()
        .iter()
        .map(|sg| sg.clock.period_ps())
        .chain(std::iter::once(platform.ca_clock().period_ps()))
        .max()
        .unwrap_or(1) as u128;
    let per_pkg_ticks: u128 = app
        .flows()
        .iter()
        .map(|f| {
            let compute = compute_ticks_u128(app.cost_model(), f.ticks, s);
            let transit = overhead_ticks.saturating_mul(nseg as u128 + 1);
            (f.packages(s) as u128).saturating_mul(compute.saturating_add(transit))
        })
        .fold(0u128, u128::saturating_add);
    let horizon_ps = (frames as u128)
        .saturating_mul(per_pkg_ticks)
        .saturating_mul(max_period);
    if horizon_ps > HORIZON_MAX_PS {
        return Err(err(
            "C008",
            format!(
                "worst-case horizon {horizon_ps}ps exceeds the engine's \
                 {HORIZON_MAX_PS}ps timeline budget"
            ),
        ));
    }

    Ok(())
}

/// [`CostModel::ticks_per_package`] re-derived in `u128`: the model crate
/// computes in `u64`, which can overflow for hostile inputs before this
/// pass has bounded them.
fn compute_ticks_u128(cm: CostModel, c: u64, package_size: u32) -> u128 {
    let c = c as u128;
    let s = package_size as u128;
    match cm {
        CostModel::PerItem {
            reference_package_size,
        } => {
            let r = reference_package_size.get() as u128;
            (c * s + r / 2) / r
        }
        CostModel::PerPackage => c,
        CostModel::Affine {
            base_ticks,
            reference_package_size,
        } => {
            let r = reference_package_size.get() as u128;
            let base = base_ticks as u128;
            base + ((c.saturating_sub(base)) * s + r / 2) / r
        }
    }
}

/// `true` if `psm` passes [`strict_validate`] for a single-frame run under
/// the default configuration — the common "is this emulable at all?" probe.
pub fn is_emulable(psm: &Psm) -> bool {
    strict_validate(psm, 1, &EmulatorConfig::default()).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use segbus_model::ids::SegmentId;
    use segbus_model::mapping::Allocation;
    use segbus_model::psdf::{Application, Flow, Process};
    use segbus_model::time::ClockDomain;
    use segbus_model::Platform;

    fn small_psm() -> Psm {
        let platform = Platform::builder("t")
            .uniform_segments(2, ClockDomain::from_mhz(100.0))
            .build()
            .unwrap();
        let mut app = Application::new("a");
        let p0 = app.add_process(Process::initial("P0"));
        let p1 = app.add_process(Process::final_("P1"));
        app.add_flow(Flow::new(p0, p1, 72, 1, 10)).unwrap();
        let mut alloc = Allocation::new(2);
        alloc.assign(p0, SegmentId(0));
        alloc.assign(p1, SegmentId(1));
        Psm::new(platform, app, alloc).unwrap()
    }

    #[test]
    fn valid_psm_passes() {
        let psm = small_psm();
        assert!(strict_validate(&psm, 1, &EmulatorConfig::default()).is_ok());
        assert!(is_emulable(&psm));
    }

    #[test]
    fn zero_frames_is_c001() {
        let psm = small_psm();
        let e = strict_validate(&psm, 0, &EmulatorConfig::default()).unwrap_err();
        assert_eq!(e.code, "C001");
    }

    #[test]
    fn absurd_frame_counts_are_c008() {
        let psm = small_psm();
        let e = strict_validate(&psm, u64::MAX, &EmulatorConfig::default()).unwrap_err();
        assert_eq!(e.code, "C008");
    }

    #[test]
    fn overflowing_workload_is_c008() {
        // A flow whose item count produces an astronomically long run:
        // accepted by the structural validator (warnings only), rejected
        // by the horizon bound before it can overflow the engine.
        let platform = Platform::builder("t")
            .uniform_segments(1, ClockDomain::from_mhz(100.0))
            .build()
            .unwrap();
        let mut app = Application::new("a");
        let p0 = app.add_process(Process::initial("P0"));
        let p1 = app.add_process(Process::final_("P1"));
        app.add_flow(Flow::new(p0, p1, u64::MAX, 1, u64::MAX))
            .unwrap();
        let mut alloc = Allocation::new(1);
        alloc.assign(p0, SegmentId(0));
        alloc.assign(p1, SegmentId(0));
        let psm = Psm::new(platform, app, alloc).unwrap();
        let e = strict_validate(&psm, 1, &EmulatorConfig::default()).unwrap_err();
        assert_eq!(e.code, "C008");
    }
}
