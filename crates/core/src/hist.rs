//! Shared log-linear histogram bucket scheme.
//!
//! One bucket layout serves two consumers: `segbus-serve`'s lock-free
//! latency histogram (atomic counters over these buckets) and the trace
//! analytics in [`crate::analysis`] (plain counters over the same
//! buckets, so wait-time distributions in `segbus analyze` and service
//! quantiles read identically). Buckets are **log-linear**: values 0–3
//! get exact buckets, and every power-of-two octave above that is split
//! into 4 linear sub-buckets, giving ≤ 25% relative error on reported
//! quantiles across a 0 … ~67e6 range (µs samples reach ~67 s). Values
//! beyond the range clamp into the last bucket.

/// Sub-buckets per power-of-two octave.
pub const SUBS: usize = 4;
/// Highest octave tracked: values up to `2^26 − 1`.
pub const OCTAVES: usize = 25;
/// 4 exact buckets (0–3) + 4 sub-buckets per octave ≥ 2.
pub const BUCKETS: usize = SUBS + (OCTAVES - 1) * SUBS;

/// Bucket index for a sample.
pub fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    // Octave o = floor(log2(v)) ≥ 2; 4 linear sub-buckets per octave.
    let o = 63 - v.leading_zeros() as usize;
    let o = o.min(OCTAVES);
    let sub = ((v >> (o - 2)) as usize).saturating_sub(SUBS).min(SUBS - 1);
    (o - 1) * SUBS + sub
}

/// Inclusive upper bound of the values mapped to `bucket`.
pub fn bucket_upper_bound(bucket: usize) -> u64 {
    if bucket < SUBS {
        return bucket as u64;
    }
    let o = bucket / SUBS + 1;
    let sub = (bucket % SUBS) as u64;
    ((sub + SUBS as u64 + 1) << (o - 2)) - 1
}

/// Single-threaded histogram over the shared bucket layout.
///
/// Tracks exact count/min/max/sum alongside the buckets, so analytics can
/// report precise extremes while quantiles come from the bucket walk.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean of the samples, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`) as the upper bound of the
    /// bucket containing it; 0 when the histogram is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` rows, in
    /// ascending value order — the shape `segbus analyze` prints.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper_bound(i), c))
            .collect()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_bound_agree() {
        // Every sample lands in a bucket whose upper bound is >= the
        // sample and within 25% relative error; bucket boundaries nest.
        for v in (0..4096u64).chain([10_000, 1_000_000, 50_000_000]) {
            let b = bucket_index(v);
            let hi = bucket_upper_bound(b);
            assert!(hi >= v, "v={v} bucket={b} hi={hi}");
            if v >= SUBS as u64 {
                assert!(
                    (hi - v) as f64 <= 0.25 * v as f64 + 1.0,
                    "v={v} hi={hi}: bucket too coarse"
                );
            }
            if b > 0 {
                assert!(
                    bucket_upper_bound(b - 1) < v,
                    "v={v} also fits bucket {}",
                    b - 1
                );
            }
        }
    }

    #[test]
    fn empty_histogram_is_explicit() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.99), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn exact_stats_track_samples() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 10_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(10_000));
        assert_eq!(h.mean(), Some((10.0 + 20.0 + 30.0 + 10_000.0) / 4.0));
        let p50 = h.quantile(0.50);
        assert!((20..=23).contains(&p50), "p50={p50}");
        let rows = h.nonzero_buckets();
        assert_eq!(rows.iter().map(|&(_, c)| c).sum::<u64>(), 4);
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn huge_samples_clamp_to_last_bucket() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 40);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(u64::MAX));
        assert!(h.quantile(1.0) > 0);
    }
}
