//! `.sbt` — the compact on-disk binary trace format.
//!
//! [`crate::TraceLog`] is an in-memory afterthought: fine for a report
//! binary, useless for million-event runs or for shipping a trace to
//! another machine. An `.sbt` file is the streaming counterpart — the
//! engine writes events through [`SbtWriter`] (a [`TraceSink`]) as they
//! are emitted, so memory stays flat no matter how long the run is:
//!
//! ```text
//! header:  "SBTR" magic (4 bytes) | format version (u32 LE)
//!          | segment count (u32 LE) | process count (u32 LE)
//! block:   payload length (u32 LE) | FNV-1a of payload (u64 LE) | payload
//! ```
//!
//! Each block payload packs up to [`BLOCK_EVENTS`] events:
//!
//! ```text
//! payload: event count (varint)
//!          per event: timestamp | tag byte | present id fields (varints)
//! ```
//!
//! The first timestamp in a block is an absolute varint; the rest are
//! **zigzag-encoded signed deltas** from the previous event in the block.
//! Deltas must be signed because emission order is not timestamp order:
//! the engines emit `BusEnd` at schedule time carrying a future timestamp,
//! so consecutive events can go backwards in time. The tag byte holds the
//! [`TraceKind`] in its low nibble and presence flags for
//! flow/package/process/segment in its high nibble; only present fields
//! are written, as varints.
//!
//! Corruption policy mirrors [`crate::DiskStore`]: blocks are
//! length-framed and checksummed, and the reader stops at the first block
//! whose header is short, whose length is implausible or whose checksum
//! fails — a crash mid-write loses the tail, never the file
//! ([`SbtTrace::truncated`] reports it). A wrong magic is `T001`, an
//! unknown version `T002`.

use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;

use segbus_model::diag::SegbusError;
use segbus_model::digest::Fnv64;
use segbus_model::ids::{FlowId, ProcessId, SegmentId};
use segbus_model::time::Picos;

use crate::trace::{TraceEvent, TraceKind, TraceLog, TraceSink};

const MAGIC: [u8; 4] = *b"SBTR";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 16;
/// payload length (4) + checksum (8).
const BLOCK_HEADER_LEN: usize = 12;
/// Events buffered per block before it is flushed to disk.
pub const BLOCK_EVENTS: usize = 4096;
/// Defensive bound on one block's payload, so a corrupt length field
/// cannot trigger a huge allocation during the load scan. Generous: a
/// worst-case event is < 64 bytes, a block is 4096 events.
const MAX_PAYLOAD: u32 = 4 * 1024 * 1024;

fn kind_code(k: TraceKind) -> u8 {
    match k {
        TraceKind::ComputeStart => 0,
        TraceKind::ComputeEnd => 1,
        TraceKind::BusStart => 2,
        TraceKind::BusEnd => 3,
        TraceKind::BuLoaded => 4,
        TraceKind::BuUnloaded => 5,
        TraceKind::Delivered => 6,
        TraceKind::FlagRaised => 7,
        TraceKind::WaveComplete => 8,
    }
}

fn code_kind(c: u8) -> Option<TraceKind> {
    Some(match c {
        0 => TraceKind::ComputeStart,
        1 => TraceKind::ComputeEnd,
        2 => TraceKind::BusStart,
        3 => TraceKind::BusEnd,
        4 => TraceKind::BuLoaded,
        5 => TraceKind::BuUnloaded,
        6 => TraceKind::Delivered,
        7 => TraceKind::FlagRaised,
        8 => TraceKind::WaveComplete,
        _ => return None,
    })
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && b > 1 {
            return None; // overflows u64
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn encode_event(out: &mut Vec<u8>, e: &TraceEvent, prev_at: Option<u64>) {
    match prev_at {
        None => put_varint(out, e.at.0),
        Some(p) => put_varint(out, zigzag(e.at.0.wrapping_sub(p) as i64)),
    }
    let mut tag = kind_code(e.kind);
    if e.flow.is_some() {
        tag |= 1 << 4;
    }
    if e.package.is_some() {
        tag |= 1 << 5;
    }
    if e.process.is_some() {
        tag |= 1 << 6;
    }
    if e.segment.is_some() {
        tag |= 1 << 7;
    }
    out.push(tag);
    if let Some(f) = e.flow {
        put_varint(out, u64::from(f.0));
    }
    if let Some(p) = e.package {
        put_varint(out, p);
    }
    if let Some(p) = e.process {
        put_varint(out, u64::from(p.0));
    }
    if let Some(s) = e.segment {
        put_varint(out, u64::from(s.0));
    }
}

fn decode_event(buf: &[u8], pos: &mut usize, prev_at: Option<u64>) -> Option<TraceEvent> {
    let raw = get_varint(buf, pos)?;
    let at = match prev_at {
        None => raw,
        Some(p) => p.wrapping_add(unzigzag(raw) as u64),
    };
    let tag = *buf.get(*pos)?;
    *pos += 1;
    let kind = code_kind(tag & 0x0f)?;
    let flow = if tag & (1 << 4) != 0 {
        Some(FlowId(u32::try_from(get_varint(buf, pos)?).ok()?))
    } else {
        None
    };
    let package = if tag & (1 << 5) != 0 {
        Some(get_varint(buf, pos)?)
    } else {
        None
    };
    let process = if tag & (1 << 6) != 0 {
        Some(ProcessId(u32::try_from(get_varint(buf, pos)?).ok()?))
    } else {
        None
    };
    let segment = if tag & (1 << 7) != 0 {
        Some(SegmentId(u16::try_from(get_varint(buf, pos)?).ok()?))
    } else {
        None
    };
    Some(TraceEvent {
        at: Picos(at),
        kind,
        flow,
        package,
        process,
        segment,
    })
}

/// Streams trace events to an `.sbt` file as the engine emits them.
///
/// Events accumulate in a [`BLOCK_EVENTS`]-sized block buffer that is
/// checksummed and flushed to disk when full, so memory use is constant.
/// IO errors during [`TraceSink::emit`] are latched and surfaced by
/// [`SbtWriter::finish`] — the engine's hot loop never sees them.
pub struct SbtWriter {
    out: BufWriter<File>,
    block: Vec<u8>,
    block_events: u64,
    prev_at: Option<u64>,
    total: u64,
    err: Option<io::Error>,
}

impl SbtWriter {
    /// Create (truncating) `path` and write the header. `segments` and
    /// `processes` are the platform dimensions the trace was recorded
    /// against — analytics read them back so a bare `.sbt` needs no model.
    pub fn create(path: &Path, segments: u32, processes: u32) -> io::Result<SbtWriter> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(&MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&segments.to_le_bytes())?;
        out.write_all(&processes.to_le_bytes())?;
        Ok(SbtWriter {
            out,
            block: Vec::with_capacity(BLOCK_EVENTS * 8),
            block_events: 0,
            prev_at: None,
            total: 0,
            err: None,
        })
    }

    fn flush_block(&mut self) {
        if self.block_events == 0 || self.err.is_some() {
            self.block.clear();
            self.block_events = 0;
            self.prev_at = None;
            return;
        }
        let mut payload = Vec::with_capacity(self.block.len() + 4);
        put_varint(&mut payload, self.block_events);
        payload.extend_from_slice(&self.block);
        let mut h = Fnv64::new();
        h.write_bytes(&payload);
        let res = self
            .out
            .write_all(&(payload.len() as u32).to_le_bytes())
            .and_then(|()| self.out.write_all(&h.finish().to_le_bytes()))
            .and_then(|()| self.out.write_all(&payload));
        if let Err(e) = res {
            self.err = Some(e);
        }
        self.block.clear();
        self.block_events = 0;
        self.prev_at = None;
    }

    /// Flush the trailing partial block and sync the file, returning the
    /// number of events written or the first latched IO error.
    pub fn finish(mut self) -> io::Result<u64> {
        self.flush_block();
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.total)
    }
}

impl TraceSink for SbtWriter {
    fn emit(&mut self, e: &TraceEvent) {
        encode_event(&mut self.block, e, self.prev_at);
        self.prev_at = Some(e.at.0);
        self.block_events += 1;
        self.total += 1;
        if self.block_events as usize >= BLOCK_EVENTS {
            self.flush_block();
        }
    }
}

/// A trace loaded from an `.sbt` file.
#[derive(Debug)]
pub struct SbtTrace {
    /// The decoded events, in emission order.
    pub log: TraceLog,
    /// Segment count of the platform the trace was recorded against.
    pub segments: u32,
    /// Process count of the platform the trace was recorded against.
    pub processes: u32,
    /// `true` if a corrupt or short tail was dropped during the scan.
    pub truncated: bool,
}

/// Read an `.sbt` trace back. A wrong magic or short header is `T001`,
/// an unknown format version `T002`; a corrupt tail is *not* an error —
/// the scan stops at the first bad block and flags
/// [`SbtTrace::truncated`], mirroring [`crate::DiskStore`] recovery.
pub fn read_trace(path: &Path) -> Result<SbtTrace, SegbusError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| SegbusError::new("T001", format!("cannot read trace: {e}")))?;
    if bytes.len() < HEADER_LEN || bytes[..4] != MAGIC {
        return Err(SegbusError::new(
            "T001",
            "not an .sbt trace (bad magic or short header)",
        ));
    }
    let word = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
    let version = word(4);
    if version != VERSION {
        return Err(SegbusError::new(
            "T002",
            format!("unsupported .sbt version {version} (expected {VERSION})"),
        ));
    }
    let segments = word(8);
    let processes = word(12);

    let mut log = TraceLog::new();
    let mut truncated = false;
    let mut pos = HEADER_LEN;
    'scan: while pos < bytes.len() {
        if bytes.len() - pos < BLOCK_HEADER_LEN {
            truncated = true;
            break;
        }
        let len = word(pos) as usize;
        let sum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        pos += BLOCK_HEADER_LEN;
        if len > MAX_PAYLOAD as usize || bytes.len() - pos < len {
            truncated = true;
            break;
        }
        let payload = &bytes[pos..pos + len];
        let mut h = Fnv64::new();
        h.write_bytes(payload);
        if h.finish() != sum {
            truncated = true;
            break;
        }
        let mut p = 0usize;
        let Some(count) = get_varint(payload, &mut p) else {
            truncated = true;
            break;
        };
        let mut prev_at = None;
        for _ in 0..count {
            let Some(e) = decode_event(payload, &mut p, prev_at) else {
                // A checksummed block that fails to decode is format
                // drift, not bit rot; stop like a corrupt tail.
                truncated = true;
                break 'scan;
            };
            prev_at = Some(e.at.0);
            log.push(e);
        }
        pos += len;
    }
    Ok(SbtTrace {
        log,
        segments,
        processes,
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sbt-{}-{name}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join("t.sbt")
    }

    fn sample_events() -> Vec<TraceEvent> {
        let mut v = Vec::new();
        // Deliberately non-monotone timestamps (BusEnd style) and a mix
        // of present/absent fields, spanning more than one block.
        for i in 0..(BLOCK_EVENTS as u64 * 2 + 7) {
            v.push(TraceEvent {
                at: Picos(if i % 3 == 0 { i * 100 } else { i * 100 + 5000 }),
                kind: match i % 4 {
                    0 => TraceKind::ComputeStart,
                    1 => TraceKind::BusStart,
                    2 => TraceKind::BusEnd,
                    _ => TraceKind::WaveComplete,
                },
                flow: (i % 2 == 0).then_some(FlowId((i % 7) as u32)),
                package: (i % 3 == 0).then_some(i),
                process: (i % 5 == 0).then_some(ProcessId((i % 11) as u32)),
                segment: (i % 4 != 3).then_some(SegmentId((i % 3) as u16)),
            });
        }
        v
    }

    #[test]
    fn round_trips_a_trace_log() {
        let path = tmp("roundtrip");
        let events = sample_events();
        let mut w = SbtWriter::create(&path, 3, 9).unwrap();
        for e in &events {
            w.emit(e);
        }
        assert_eq!(w.finish().unwrap(), events.len() as u64);
        let t = read_trace(&path).unwrap();
        assert_eq!(t.segments, 3);
        assert_eq!(t.processes, 9);
        assert!(!t.truncated);
        assert_eq!(t.log.events(), &events[..]);
    }

    #[test]
    fn empty_trace_round_trips() {
        let path = tmp("empty");
        let w = SbtWriter::create(&path, 2, 4).unwrap();
        assert_eq!(w.finish().unwrap(), 0);
        let t = read_trace(&path).unwrap();
        assert!(t.log.is_empty());
        assert!(!t.truncated);
        assert_eq!(t.segments, 2);
    }

    #[test]
    fn corrupt_tail_is_truncated_not_fatal() {
        let path = tmp("corrupt");
        let events = sample_events();
        let mut w = SbtWriter::create(&path, 3, 9).unwrap();
        for e in &events {
            w.emit(e);
        }
        w.finish().unwrap();
        // Flip a byte in the last block's payload: its checksum fails, the
        // scan stops there, and every earlier block survives.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let t = read_trace(&path).unwrap();
        assert!(t.truncated);
        assert_eq!(t.log.len(), BLOCK_EVENTS * 2);
        assert_eq!(t.log.events(), &events[..BLOCK_EVENTS * 2]);
    }

    #[test]
    fn short_tail_is_truncated_not_fatal() {
        let path = tmp("short");
        let events = sample_events();
        let mut w = SbtWriter::create(&path, 3, 9).unwrap();
        for e in &events {
            w.emit(e);
        }
        w.finish().unwrap();
        // Chop the file mid-record, as a crash mid-append would.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let t = read_trace(&path).unwrap();
        assert!(t.truncated);
        assert_eq!(t.log.events(), &events[..BLOCK_EVENTS * 2]);
    }

    #[test]
    fn bad_magic_and_version_are_typed_errors() {
        let path = tmp("badmagic");
        fs::write(&path, b"NOPE").unwrap();
        assert_eq!(read_trace(&path).unwrap_err().code, "T001");

        fs::write(&path, []).unwrap();
        assert_eq!(read_trace(&path).unwrap_err().code, "T001");

        let missing = path.with_file_name("absent.sbt");
        assert_eq!(read_trace(&missing).unwrap_err().code, "T001");

        let path2 = tmp("badversion");
        let w = SbtWriter::create(&path2, 1, 1).unwrap();
        w.finish().unwrap();
        let mut bytes = fs::read(&path2).unwrap();
        bytes[4] = 0xee;
        fs::write(&path2, &bytes).unwrap();
        assert_eq!(read_trace(&path2).unwrap_err().code, "T002");
    }

    #[test]
    fn varint_and_zigzag_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
        for d in [0i64, 1, -1, 5000, -5000, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
        // Truncated and over-long varints are rejected.
        assert_eq!(get_varint(&[0x80], &mut 0), None);
        assert_eq!(get_varint(&[0xff; 11], &mut 0), None);
    }
}
