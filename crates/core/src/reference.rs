//! The original estimation engine, kept verbatim as a reference.
//!
//! This is the first implementation of the emulator (fresh state per run,
//! `BinaryHeap` event queue, owned path vectors in every transfer). The
//! optimised engine in [`crate::engine`] replaced it on the hot path, and
//! this copy stays for two jobs:
//!
//! * **differential oracle** — the integration tests assert the optimised
//!   engine is bit-identical to this one on full system runs;
//! * **performance baseline** — the `exp_perf` harness times it to anchor
//!   the speedup figures in `BENCH_engine.json`.
//!
//! Apart from the type rename (`Emulator` → [`ReferenceEmulator`]), this
//! header and the additive `try_run`/`try_run_frames` wrappers (which run
//! the shared pre-flight validation and then call the verbatim engine),
//! the code is untouched; keep it that way so the baseline stays
//! meaningful.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use segbus_model::ids::{FlowId, ProcessId, SegmentId};
use segbus_model::mapping::Psm;
use segbus_model::time::{ClockDomain, Picos};
use segbus_model::SegbusError;

use crate::config::{ArbitrationPolicy, EmulatorConfig, ProducerRelease};
use crate::counters::{BuCounters, CaCounters, FuTimes, SaCounters};
use crate::report::EmulationReport;
use crate::trace::{TraceEvent, TraceKind, TraceLog};

/// The performance-estimation emulator.
///
/// Construct once with a configuration, then [`ReferenceEmulator::run`] any number
/// of PSMs (runs are independent).
#[derive(Clone, Copy, Debug, Default)]
pub struct ReferenceEmulator {
    config: EmulatorConfig,
}

impl ReferenceEmulator {
    /// Create an emulator with the given configuration.
    pub fn new(config: EmulatorConfig) -> ReferenceEmulator {
        ReferenceEmulator { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &EmulatorConfig {
        &self.config
    }

    /// Execute the PSM to completion and return the report.
    pub fn run(&self, psm: &Psm) -> EmulationReport {
        Sim::new(psm, self.config, 1).run()
    }

    /// Execute `frames` back-to-back iterations of the application — the
    /// streaming case the single-shot paper experiment abstracts away.
    ///
    /// Successive frames *pipeline* through the wave schedule: frame
    /// `k`'s wave `w` becomes eligible as soon as frame `k`'s wave `w−1`
    /// has delivered, independent of frame `k−1`'s later waves; each
    /// functional unit still produces its own packages strictly in frame
    /// order. `run_frames(psm, 1)` is identical to [`ReferenceEmulator::run`].
    ///
    /// # Panics
    /// Panics if `frames` is zero.
    pub fn run_frames(&self, psm: &Psm, frames: u64) -> EmulationReport {
        assert!(frames > 0, "at least one frame");
        Sim::new(psm, self.config, frames).run()
    }

    /// Like [`ReferenceEmulator::run`], but runs the strict pre-flight
    /// validation first and returns a typed error instead of panicking —
    /// mirrors [`crate::engine::Emulator::try_run`], so the differential
    /// harness can feed both engines un-prechecked inputs.
    pub fn try_run(&self, psm: &Psm) -> Result<EmulationReport, SegbusError> {
        self.try_run_frames(psm, 1)
    }

    /// Fallible counterpart of [`ReferenceEmulator::run_frames`]; see
    /// [`ReferenceEmulator::try_run`].
    pub fn try_run_frames(&self, psm: &Psm, frames: u64) -> Result<EmulationReport, SegbusError> {
        crate::precheck::strict_validate(psm, frames, &self.config)?;
        Ok(Sim::new(psm, self.config, frames).run())
    }
}

// ---------------------------------------------------------------------------
// events

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Ev {
    /// A producer finished computing a package of `flow`.
    ComputeDone { flow: FlowId, pkg: u64 },
    /// Try to dispatch the local request queue of `seg`.
    SaDispatch { seg: SegmentId },
    /// An inter-segment request reaches the CA.
    CaArrive { req: u32 },
    /// Try to grant queued inter-segment requests.
    CaDispatch,
    /// An intra-segment transfer completed.
    IntraDone { flow: FlowId, pkg: u64 },
    /// Hop `hop` of inter-segment transfer `req` completed.
    PhaseDone { req: u32, hop: u8 },
}

struct QEntry {
    at: Picos,
    seq: u64,
    ev: Ev,
}

impl PartialEq for QEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QEntry {}
impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QEntry {
    // Reversed: BinaryHeap is a max-heap, we need the earliest event first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

// ---------------------------------------------------------------------------
// simulation state

/// A pending intra-segment package transfer.
#[derive(Clone, Copy, Debug)]
struct LocalReq {
    flow: FlowId,
    pkg: u64,
}

/// An inter-segment transfer in flight.
#[derive(Clone, Debug)]
struct InterTransfer {
    flow: FlowId,
    pkg: u64,
    /// Segments on the path, source first, destination last.
    path: Vec<SegmentId>,
    /// Granted yet?
    granted: bool,
}

#[derive(Clone, Debug, Default)]
struct ProducerState {
    /// (flow, packages remaining, frame) for the armed wave instances.
    pending: Vec<(FlowId, u64, u64)>,
    /// Round-robin cursor over `pending`.
    rr: usize,
    /// Currently computing or transferring a package.
    busy: bool,
}

struct Sim<'a> {
    psm: &'a Psm,
    cfg: EmulatorConfig,
    s: u32,
    // static tables
    flow_pkgs: Vec<u64>,
    flow_compute: Vec<u64>,
    seg_clock: Vec<ClockDomain>,
    ca_clock: ClockDomain,
    waves: Vec<Vec<FlowId>>,
    // event queue
    queue: BinaryHeap<QEntry>,
    seq: u64,
    // schedule state
    frames: u64,
    /// Wave index of each flow (parallel to the flow table).
    flow_wave: Vec<usize>,
    /// Outstanding deliveries per wave instance (`frame * waves + wave`).
    instance_remaining: Vec<u64>,
    producers: Vec<ProducerState>,
    outputs_remaining: Vec<u64>,
    inputs_remaining: Vec<u64>,
    // platform state
    bus_free: Vec<Picos>,
    /// Segment locked into a granted inter-segment circuit.
    reserved: Vec<bool>,
    sa_queue: Vec<VecDeque<LocalReq>>,
    /// Per-process local-bus service counts (fair round-robin arbitration).
    served: Vec<u64>,
    ca_queue: VecDeque<u32>,
    transfers: Vec<InterTransfer>,
    // counters
    sas: Vec<SaCounters>,
    ca: CaCounters,
    bus_ctr: Vec<BuCounters>,
    fus: Vec<FuTimes>,
    makespan: Picos,
    trace: Option<TraceLog>,
}

impl<'a> Sim<'a> {
    fn new(psm: &'a Psm, cfg: EmulatorConfig, frames: u64) -> Sim<'a> {
        let app = psm.application();
        let platform = psm.platform();
        let s = platform.package_size();
        let nseg = platform.segment_count();
        let nproc = app.process_count();

        let flow_pkgs: Vec<u64> = app.flows().iter().map(|f| f.packages(s)).collect();
        let flow_compute: Vec<u64> = (0..app.flows().len())
            .map(|i| app.ticks_per_package(FlowId(i as u32), s))
            .collect();
        let waves: Vec<Vec<FlowId>> = app.waves().into_iter().map(|w| w.flows).collect();
        let mut flow_wave = vec![0usize; app.flows().len()];
        for (w, flows) in waves.iter().enumerate() {
            for f in flows {
                flow_wave[f.index()] = w;
            }
        }
        let instance_remaining: Vec<u64> = (0..frames)
            .flat_map(|_| {
                waves
                    .iter()
                    .map(|flows| flows.iter().map(|f| flow_pkgs[f.index()]).sum::<u64>())
            })
            .collect();

        let mut outputs_remaining = vec![0u64; nproc];
        let mut inputs_remaining = vec![0u64; nproc];
        for (i, f) in app.flows().iter().enumerate() {
            outputs_remaining[f.src.index()] += flow_pkgs[i] * frames;
            inputs_remaining[f.dst.index()] += flow_pkgs[i] * frames;
        }

        let mut fus = vec![FuTimes::default(); nproc];
        // Processes with no flows at all raise their flag immediately.
        for (i, fu) in fus.iter_mut().enumerate() {
            if outputs_remaining[i] == 0 && inputs_remaining[i] == 0 {
                fu.flag = true;
            }
        }

        Sim {
            psm,
            cfg,
            s,
            flow_pkgs,
            flow_compute,
            seg_clock: platform.segments().iter().map(|sg| sg.clock).collect(),
            ca_clock: platform.ca_clock(),
            waves,
            queue: BinaryHeap::new(),
            seq: 0,
            frames,
            flow_wave,
            instance_remaining,
            producers: vec![ProducerState::default(); nproc],
            outputs_remaining,
            inputs_remaining,
            bus_free: vec![Picos::ZERO; nseg],
            reserved: vec![false; nseg],
            sa_queue: vec![VecDeque::new(); nseg],
            served: vec![0; nproc],
            ca_queue: VecDeque::new(),
            transfers: Vec::new(),
            sas: vec![SaCounters::default(); nseg],
            ca: CaCounters::default(),
            bus_ctr: vec![BuCounters::default(); platform.border_unit_count()],
            fus,
            makespan: Picos::ZERO,
            trace: cfg.trace.then(TraceLog::new),
        }
    }

    // -- helpers ----------------------------------------------------------

    fn schedule(&mut self, at: Picos, ev: Ev) {
        self.seq += 1;
        self.queue.push(QEntry {
            at,
            seq: self.seq,
            ev,
        });
    }

    fn trace(&mut self, e: TraceEvent) {
        if let Some(t) = &mut self.trace {
            t.push(e);
        }
    }

    fn seg_of(&self, p: ProcessId) -> SegmentId {
        self.psm.segment_of(p)
    }

    fn touch_sa(&mut self, seg: SegmentId, at: Picos) {
        let c = &mut self.sas[seg.index()];
        c.last_activity = c.last_activity.max(at);
    }

    // -- wave / producer control ------------------------------------------

    /// Arm the producers of wave instance `g` (= frame × waves + wave) at
    /// global time `t`. Empty wave instances complete immediately.
    fn start_instance(&mut self, g: usize, t: Picos) {
        let w = g % self.waves.len();
        let frame = (g / self.waves.len()) as u64;
        let flows = self.waves[w].clone();
        if flows.is_empty() {
            self.complete_instance(g, t);
            return;
        }
        for f in &flows {
            let src = self.psm.application().flow(*f).src;
            self.producers[src.index()]
                .pending
                .push((*f, self.flow_pkgs[f.index()], frame));
        }
        // Kick every producer that has work and is idle.
        let nproc = self.producers.len();
        for p in 0..nproc {
            let pid = ProcessId(p as u32);
            if !self.producers[p].busy && !self.producers[p].pending.is_empty() {
                self.start_next_package(pid, t);
            }
        }
    }

    /// A wave instance fully delivered: open its successor within the frame.
    fn complete_instance(&mut self, g: usize, now: Picos) {
        self.trace(TraceEvent {
            at: now,
            kind: TraceKind::WaveComplete,
            flow: None,
            package: None,
            process: None,
            segment: None,
        });
        let w = g % self.waves.len();
        if w + 1 < self.waves.len() {
            self.start_instance(g + 1, now);
        }
    }

    /// Pick the producer's next package (round-robin over its same-wave
    /// flows) and schedule its computation.
    fn start_next_package(&mut self, p: ProcessId, t: Picos) {
        let st = &mut self.producers[p.index()];
        if st.pending.is_empty() {
            st.busy = false;
            return;
        }
        let idx = st.rr % st.pending.len();
        let (flow, remaining, frame) = st.pending[idx];
        // Frame-global package index, so every event stays unambiguous
        // without carrying the frame separately.
        let pkg = frame * self.flow_pkgs[flow.index()] + (self.flow_pkgs[flow.index()] - remaining);
        if remaining == 1 {
            st.pending.remove(idx);
            // keep rr pointing at the element after the removed one
            if !st.pending.is_empty() {
                st.rr %= st.pending.len();
            }
        } else {
            st.pending[idx].1 -= 1;
            st.rr = (st.rr + 1) % st.pending.len().max(1);
        }
        st.busy = true;

        let seg = self.seg_of(p);
        let clk = self.seg_clock[seg.index()];
        let start = clk.next_edge(t);
        let compute = self.flow_compute[flow.index()];
        let dur = clk.ticks_to_picos(compute);
        let end = start + dur;
        self.fus[p.index()].compute_ticks += compute;
        if self.fus[p.index()].start.is_none() {
            self.fus[p.index()].start = Some(start);
        }
        self.trace(TraceEvent {
            at: start,
            kind: TraceKind::ComputeStart,
            flow: Some(flow),
            package: Some(pkg),
            process: Some(p),
            segment: Some(seg),
        });
        self.schedule(end, Ev::ComputeDone { flow, pkg });
    }

    // -- event handlers ----------------------------------------------------

    fn on_compute_done(&mut self, now: Picos, flow: FlowId, pkg: u64) {
        let f = *self.psm.application().flow(flow);
        let src_seg = self.seg_of(f.src);
        let dst_seg = self.seg_of(f.dst);
        self.trace(TraceEvent {
            at: now,
            kind: TraceKind::ComputeEnd,
            flow: Some(flow),
            package: Some(pkg),
            process: Some(f.src),
            segment: Some(src_seg),
        });
        self.touch_sa(src_seg, now);
        if src_seg == dst_seg {
            self.sas[src_seg.index()].intra_requests += 1;
            self.sa_queue[src_seg.index()].push_back(LocalReq { flow, pkg });
            let at = self.seg_clock[src_seg.index()].next_edge(now);
            self.schedule(at, Ev::SaDispatch { seg: src_seg });
        } else {
            self.sas[src_seg.index()].inter_requests += 1;
            let path = self.psm.platform().path_segments(src_seg, dst_seg);
            let req = self.transfers.len() as u32;
            self.transfers.push(InterTransfer {
                flow,
                pkg,
                path,
                granted: false,
            });
            let at = self.ca_clock.next_edge(now)
                + self
                    .ca_clock
                    .ticks_to_picos(self.cfg.timing.ca_request_ticks);
            self.schedule(at, Ev::CaArrive { req });
        }
    }

    fn on_sa_dispatch(&mut self, now: Picos, seg: SegmentId) {
        let si = seg.index();
        if self.sa_queue[si].is_empty() {
            return;
        }
        if self.reserved[si] {
            // The CA connected this segment into an inter-segment circuit;
            // local traffic resumes at the cascade release (PhaseDone
            // re-triggers dispatch).
            return;
        }
        if self.bus_free[si] > now {
            // Bus busy; retry when it frees.
            let at = self.bus_free[si];
            self.schedule(at, Ev::SaDispatch { seg });
            return;
        }
        let pick = match self.cfg.arbitration {
            ArbitrationPolicy::Fifo => 0,
            ArbitrationPolicy::FixedPriority => self.sa_queue[si]
                .iter()
                .enumerate()
                .min_by_key(|(i, r)| (self.psm.application().flow(r.flow).src, *i))
                .map(|(i, _)| i)
                .expect("checked non-empty"),
            ArbitrationPolicy::FairRoundRobin => self.sa_queue[si]
                .iter()
                .enumerate()
                .min_by_key(|(i, r)| {
                    let src = self.psm.application().flow(r.flow).src;
                    (self.served[src.index()], *i)
                })
                .map(|(i, _)| i)
                .expect("checked non-empty"),
        };
        let req = self.sa_queue[si].remove(pick).expect("index in range");
        self.served[self.psm.application().flow(req.flow).src.index()] += 1;
        let clk = self.seg_clock[si];
        let start = clk.next_edge(now);
        let ticks = self.cfg.timing.bus_transaction_ticks(self.s);
        let end = start + clk.ticks_to_picos(ticks);
        self.bus_free[si] = end;
        self.sas[si].busy_ticks += ticks;
        self.touch_sa(seg, end);
        self.trace(TraceEvent {
            at: start,
            kind: TraceKind::BusStart,
            flow: Some(req.flow),
            package: Some(req.pkg),
            process: None,
            segment: Some(seg),
        });
        self.trace(TraceEvent {
            at: end,
            kind: TraceKind::BusEnd,
            flow: Some(req.flow),
            package: Some(req.pkg),
            process: None,
            segment: Some(seg),
        });
        self.schedule(
            end,
            Ev::IntraDone {
                flow: req.flow,
                pkg: req.pkg,
            },
        );
        // More work queued? Try again when the bus frees.
        if !self.sa_queue[si].is_empty() {
            self.schedule(end, Ev::SaDispatch { seg });
        }
    }

    fn on_ca_arrive(&mut self, now: Picos, req: u32) {
        let _ = now;
        self.ca.inter_requests += 1;
        self.ca.busy_ticks += self.cfg.timing.ca_request_ticks;
        self.ca_queue.push_back(req);
        self.schedule(now, Ev::CaDispatch);
    }

    fn on_ca_dispatch(&mut self, now: Picos) {
        // First-fit scan: reserve every queued request whose full path is
        // not already part of another circuit (the CA may run disjoint
        // same-order global flows simultaneously, §3.1). Segments still
        // draining a local transaction are reserved immediately; the
        // circuit's phases start once each bus frees.
        let mut i = 0;
        while i < self.ca_queue.len() {
            let req = self.ca_queue[i];
            let available = self.transfers[req as usize]
                .path
                .iter()
                .all(|m| !self.reserved[m.index()]);
            if available {
                self.ca_queue.remove(i);
                self.grant(now, req);
            } else {
                i += 1;
            }
        }
    }

    /// Reserve the whole path and pre-schedule every hop (circuit-switched
    /// transfer with cascaded release, paper Fig. 2).
    fn grant(&mut self, now: Picos, req: u32) {
        let tr = self.transfers[req as usize].clone();
        debug_assert!(!tr.granted);
        self.transfers[req as usize].granted = true;
        self.ca.grants += 1;
        self.ca.busy_ticks += self.cfg.timing.ca_grant_ticks;
        let timing = self.cfg.timing;
        let ticks = timing.bus_transaction_ticks(self.s);

        let mut prev_end = Picos::ZERO;
        for (hop, &m) in tr.path.iter().enumerate() {
            let mi = m.index();
            let clk = self.seg_clock[mi];
            self.reserved[mi] = true;
            // A reserved segment first drains its in-flight local
            // transaction; the circuit's phase starts on the later of the
            // protocol time and that drain point.
            let drain = clk.next_edge(self.bus_free[mi]);
            let start = if hop == 0 {
                clk.next_edge(now).max(drain)
            } else {
                // The downstream SA samples the loaded BU, plus (in
                // detailed timing) the clock-domain synchroniser.
                let base = clk.next_edge(prev_end);
                let wait = clk.ticks_to_picos(timing.wp_sample_ticks + timing.bu_sync_ticks);
                let start = (base + wait).max(drain);
                // Record the waiting period at the BU we are unloading.
                let bu = self
                    .psm
                    .platform()
                    .bu_between(tr.path[hop - 1], m)
                    .expect("path hops are adjacent");
                let wp = clk.ticks_at(start - prev_end);
                let b = &mut self.bus_ctr[bu.index()];
                b.waiting_ticks += wp;
                b.tct += 2 * self.s as u64 + wp;
                start
            };
            let end = start + clk.ticks_to_picos(ticks);
            self.bus_free[mi] = end;
            self.sas[mi].busy_ticks += ticks;
            self.touch_sa(m, end);
            self.trace(TraceEvent {
                at: start,
                kind: TraceKind::BusStart,
                flow: Some(tr.flow),
                package: Some(tr.pkg),
                process: None,
                segment: Some(m),
            });
            self.trace(TraceEvent {
                at: end,
                kind: TraceKind::BusEnd,
                flow: Some(tr.flow),
                package: Some(tr.pkg),
                process: None,
                segment: Some(m),
            });
            // Package movement bookkeeping at the end of this hop. The BU
            // side is the loading segment's position on that unit (which
            // also covers a ring's wrap-around BU).
            if hop + 1 < tr.path.len() {
                let next = tr.path[hop + 1];
                let bu = self.psm.platform().bu_between(m, next).expect("adjacent");
                let b = &mut self.bus_ctr[bu.index()];
                if m == bu.left {
                    b.received_from_left += 1;
                } else {
                    b.received_from_right += 1;
                }
                self.trace(TraceEvent {
                    at: end,
                    kind: TraceKind::BuLoaded,
                    flow: Some(tr.flow),
                    package: Some(tr.pkg),
                    process: None,
                    segment: Some(m),
                });
            }
            if hop > 0 {
                // This hop unloaded the BU behind it.
                let bu = self
                    .psm
                    .platform()
                    .bu_between(tr.path[hop - 1], m)
                    .expect("adjacent");
                let b = &mut self.bus_ctr[bu.index()];
                if m == bu.right {
                    b.transferred_to_right += 1;
                } else {
                    b.transferred_to_left += 1;
                }
                // Routing a BU delivery is an intra-segment job for this SA.
                self.sas[mi].intra_requests += 1;
                self.trace(TraceEvent {
                    at: start,
                    kind: TraceKind::BuUnloaded,
                    flow: Some(tr.flow),
                    package: Some(tr.pkg),
                    process: None,
                    segment: Some(m),
                });
            }
            self.schedule(
                end,
                Ev::PhaseDone {
                    req,
                    hop: hop as u8,
                },
            );
            prev_end = end;
        }
        // The source segment pushed one package toward the destination
        // (side = the source's position on its first-hop BU).
        let src = tr.path[0];
        let first_bu = self
            .psm
            .platform()
            .bu_between(src, tr.path[1])
            .expect("adjacent");
        if src == first_bu.left {
            self.sas[src.index()].packets_to_right += 1;
        } else {
            self.sas[src.index()].packets_to_left += 1;
        }
    }

    fn on_intra_done(&mut self, now: Picos, flow: FlowId, pkg: u64) {
        let f = *self.psm.application().flow(flow);
        self.deliver(now, flow, pkg);
        self.producer_transfer_done(now, f.src);
        // A freed bus may unblock a queued CA request.
        if !self.ca_queue.is_empty() {
            self.schedule(self.ca_clock.next_edge(now), Ev::CaDispatch);
        }
    }

    fn on_phase_done(&mut self, now: Picos, req: u32, hop: u8) {
        let tr = self.transfers[req as usize].clone();
        let seg = tr.path[hop as usize];
        // Cascade release: the CA resets this segment's grant.
        self.reserved[seg.index()] = false;
        self.ca.releases += 1;
        self.ca.busy_ticks += self.cfg.timing.ca_release_ticks;
        let f = *self.psm.application().flow(tr.flow);
        let last = hop as usize == tr.path.len() - 1;
        match self.cfg.producer_release {
            ProducerRelease::AfterLocalPhase if hop == 0 => {
                // Fire-and-forget: the producer handed the package to the
                // first BU and may compute its next package now.
                self.producer_transfer_done(now, f.src);
            }
            ProducerRelease::AfterDelivery if last => {
                // Flow control: the producer resumes only once the package
                // reached its destination.
                self.producer_transfer_done(now, f.src);
            }
            _ => {}
        }
        if last {
            self.deliver(now, tr.flow, tr.pkg);
        }
        // The freed segment may serve local or queued CA work.
        if !self.sa_queue[seg.index()].is_empty() {
            self.schedule(now, Ev::SaDispatch { seg });
        }
        if !self.ca_queue.is_empty() {
            self.schedule(self.ca_clock.next_edge(now), Ev::CaDispatch);
        }
    }

    /// Producer-side completion of one package's local transfer phase.
    fn producer_transfer_done(&mut self, now: Picos, p: ProcessId) {
        self.fus[p.index()].packages_sent += 1;
        self.fus[p.index()].end = Some(now);
        self.outputs_remaining[p.index()] -= 1;
        self.maybe_raise_flag(now, p);
        self.start_next_package(p, now);
    }

    /// Final delivery of a package at its destination process.
    fn deliver(&mut self, now: Picos, flow: FlowId, pkg: u64) {
        let f = *self.psm.application().flow(flow);
        let fu = &mut self.fus[f.dst.index()];
        fu.packages_received += 1;
        fu.last_received = Some(now);
        self.inputs_remaining[f.dst.index()] -= 1;
        self.trace(TraceEvent {
            at: now,
            kind: TraceKind::Delivered,
            flow: Some(flow),
            package: Some(pkg),
            process: Some(f.dst),
            segment: Some(self.seg_of(f.dst)),
        });
        self.maybe_raise_flag(now, f.dst);
        // Wave-instance bookkeeping: the frame is recovered from the
        // frame-global package index.
        let frame = pkg / self.flow_pkgs[flow.index()];
        let g = frame as usize * self.waves.len() + self.flow_wave[flow.index()];
        self.instance_remaining[g] -= 1;
        if self.instance_remaining[g] == 0 {
            self.complete_instance(g, now);
        }
    }

    fn maybe_raise_flag(&mut self, now: Picos, p: ProcessId) {
        let i = p.index();
        if !self.fus[i].flag && self.outputs_remaining[i] == 0 && self.inputs_remaining[i] == 0 {
            self.fus[i].flag = true;
            self.trace(TraceEvent {
                at: now,
                kind: TraceKind::FlagRaised,
                flow: None,
                package: None,
                process: Some(p),
                segment: None,
            });
        }
    }

    // -- main loop ---------------------------------------------------------

    fn run(mut self) -> EmulationReport {
        if !self.waves.is_empty() {
            // Wave 0 of every frame is input-ready immediately (streaming
            // with a full input buffer); later waves open as their
            // predecessors deliver, so frames pipeline.
            for frame in 0..self.frames {
                self.start_instance(frame as usize * self.waves.len(), Picos::ZERO);
            }
        }
        while let Some(QEntry { at, ev, .. }) = self.queue.pop() {
            self.makespan = self.makespan.max(at);
            match ev {
                Ev::ComputeDone { flow, pkg } => self.on_compute_done(at, flow, pkg),
                Ev::SaDispatch { seg } => self.on_sa_dispatch(at, seg),
                Ev::CaArrive { req } => self.on_ca_arrive(at, req),
                Ev::CaDispatch => self.on_ca_dispatch(at),
                Ev::IntraDone { flow, pkg } => self.on_intra_done(at, flow, pkg),
                Ev::PhaseDone { req, hop } => self.on_phase_done(at, req, hop),
            }
        }
        debug_assert!(
            self.fus.iter().all(|f| f.flag),
            "emulation drained with unraised flags — schedule deadlock"
        );
        // Final counters: each SA's TCT runs to its last activity, the CA
        // polls until global quiescence.
        for (i, sa) in self.sas.iter_mut().enumerate() {
            sa.tct = self.seg_clock[i].ticks_covering(sa.last_activity);
        }
        self.ca.tct = self.ca_clock.ticks_covering(self.makespan);
        EmulationReport {
            sas: self.sas,
            ca: self.ca,
            bus: self.bus_ctr,
            bu_refs: self.psm.platform().border_units().collect(),
            fus: self.fus,
            segment_clocks: self.seg_clock,
            ca_clock: self.ca_clock,
            package_size: self.s,
            makespan: self.makespan,
            trace: self.trace,
        }
    }
}
