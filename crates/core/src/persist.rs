//! The persistent report store: an append-only on-disk tier behind
//! [`crate::ReportCache`].
//!
//! The in-memory LRU answers repeats within one process; this module makes
//! the cache survive restarts. A [`DiskStore`] is a single append-only file
//! (`reports.sbc` inside the `--cache-dir`) of checksummed records keyed by
//! [`crate::job_digest`]:
//!
//! ```text
//! header:  "SBRC" magic (4 bytes) | format version (u32 LE)
//! record:  digest (u64 LE) | payload length (u32 LE) | FNV-1a of payload (u64 LE) | payload
//! ```
//!
//! The payload is a fixed little-endian encoding of the trace-free
//! [`EmulationReport`] fields (see [`encode_report`]). On open, the store
//! scans the file and indexes `digest → (offset, len)`; the first record
//! whose header is short, whose length is implausible or whose checksum
//! does not match ends the scan and the file is truncated there
//! (*corrupt-tail truncation*) — a crash mid-append never poisons the
//! store, it just loses the tail. Appends are write-through and
//! deduplicated on digest; lookups re-verify the checksum, so a record
//! that rots in place is dropped rather than served.
//!
//! Two deliberate scope limits, both part of the cache contract
//! (DESIGN.md §10): **traced reports are never persisted** (the trace flag
//! is part of the digest, so traced jobs simply never disk-hit — a hit
//! stays bit-identical to a fresh run), and the store trusts its directory
//! no more than the LRU trusts its process: a digest collision is accepted
//! at the same ~`n²/2⁶⁵` odds.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use segbus_model::digest::Fnv64;
use segbus_model::ids::SegmentId;
use segbus_model::platform::BorderUnitRef;
use segbus_model::time::{ClockDomain, Picos};

use crate::counters::{BuCounters, CaCounters, FuTimes, SaCounters};
use crate::report::EmulationReport;

const MAGIC: [u8; 4] = *b"SBRC";
const VERSION: u32 = 1;
const HEADER_LEN: u64 = 8;
/// digest (8) + payload length (4) + checksum (8).
const RECORD_HEADER_LEN: u64 = 20;
/// Defensive bound on one record's payload, so a corrupt length field
/// cannot trigger a multi-gigabyte allocation during the load scan.
const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// The append-only on-disk report store. See the module docs for the file
/// format and the corruption policy.
pub struct DiskStore {
    file: File,
    path: PathBuf,
    /// `digest → (record offset, payload length)`.
    index: HashMap<u64, (u64, u32)>,
    /// Append position (end of the last valid record).
    end: u64,
    /// Records dropped by corrupt-tail truncation at open.
    truncated: u64,
    /// Dead records (corrupt-in-place or superseded) found at open and
    /// removed by the compact-on-open pass.
    dead_on_load: u64,
    /// Bytes reclaimed by the compact-on-open pass.
    reclaimed_on_load: u64,
}

impl std::fmt::Debug for DiskStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskStore")
            .field("path", &self.path)
            .field("entries", &self.index.len())
            .field("end", &self.end)
            .finish()
    }
}

impl DiskStore {
    /// Open (or create) the store under `dir`, creating the directory if
    /// needed. An existing `reports.sbc` is scanned and indexed; a file
    /// with the wrong magic or version is replaced by a fresh store, and
    /// a corrupt tail is truncated away.
    pub fn open(dir: &Path) -> io::Result<DiskStore> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("reports.sbc");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut store = DiskStore {
            file,
            path,
            index: HashMap::new(),
            end: HEADER_LEN,
            truncated: 0,
            dead_on_load: 0,
            reclaimed_on_load: 0,
        };
        store.load()?;
        Ok(store)
    }

    /// Number of reports on disk.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` if the store holds no reports.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Records dropped by corrupt-tail truncation when the store was
    /// opened (0 for a clean file).
    pub fn truncated_on_load(&self) -> u64 {
        self.truncated
    }

    /// Dead records (corrupt-in-place or superseded by a later record for
    /// the same digest) found when the store was opened and rewritten away
    /// by the compact-on-open pass (0 for a clean file).
    pub fn dead_on_load(&self) -> u64 {
        self.dead_on_load
    }

    /// Bytes reclaimed by the compact-on-open pass (0 for a clean file).
    pub fn reclaimed_on_load(&self) -> u64 {
        self.reclaimed_on_load
    }

    /// Size of the backing file in bytes (header plus live records).
    pub fn file_bytes(&self) -> u64 {
        self.end
    }

    /// The backing file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// `true` if `digest` is stored (index only; the payload is verified
    /// on [`DiskStore::get`]).
    pub fn contains(&self, digest: u64) -> bool {
        self.index.contains_key(&digest)
    }

    /// Read the report stored under `digest`, re-verifying the record
    /// checksum. A record that fails verification is dropped from the
    /// index and `None` is returned (the caller re-emulates).
    pub fn get(&mut self, digest: u64) -> Option<EmulationReport> {
        let (offset, len) = *self.index.get(&digest)?;
        match self.read_record(offset, len, digest) {
            Some(report) => Some(report),
            None => {
                self.index.remove(&digest);
                None
            }
        }
    }

    /// Append `report` under `digest` unless it is already stored or
    /// carries a trace (traced reports are memory-only — module docs).
    /// Returns `true` if a record was written.
    pub fn append(&mut self, digest: u64, report: &EmulationReport) -> io::Result<bool> {
        if report.trace.is_some() || self.index.contains_key(&digest) {
            return Ok(false);
        }
        let payload = encode_report(report);
        debug_assert!(payload.len() as u64 <= MAX_PAYLOAD as u64);
        let mut record = Vec::with_capacity(RECORD_HEADER_LEN as usize + payload.len());
        record.extend_from_slice(&digest.to_le_bytes());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&fnv_of(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        self.file.seek(SeekFrom::Start(self.end))?;
        self.file.write_all(&record)?;
        self.file.flush()?;
        self.index.insert(digest, (self.end, payload.len() as u32));
        self.end += record.len() as u64;
        Ok(true)
    }

    // -- internals ---------------------------------------------------------

    /// Scan the file into the index. A record whose *frame* is plausible
    /// (length within bounds, record fully inside the file) but whose
    /// payload fails the checksum or decode is a *dead* record: it is
    /// skipped and the scan continues, so one record rotting in place no
    /// longer takes every record after it down with the tail. A record
    /// whose frame itself is implausible (short header, overlong length)
    /// ends the scan and the file is truncated there, exactly as before —
    /// that is the crash-mid-append case, where nothing after the tear can
    /// be framed. When the scan found dead records (or superseded
    /// duplicates), a compact pass rewrites the file keeping only live
    /// records. An empty or foreign file is reinitialised.
    fn load(&mut self) -> io::Result<()> {
        let file_len = self.file.seek(SeekFrom::End(0))?;
        let mut header = [0u8; HEADER_LEN as usize];
        let valid_header = file_len >= HEADER_LEN && {
            self.file.seek(SeekFrom::Start(0))?;
            self.file.read_exact(&mut header)?;
            header[..4] == MAGIC && u32::from_le_bytes(header[4..8].try_into().unwrap()) == VERSION
        };
        if !valid_header {
            self.file.set_len(0)?;
            self.file.seek(SeekFrom::Start(0))?;
            self.file.write_all(&MAGIC)?;
            self.file.write_all(&VERSION.to_le_bytes())?;
            self.file.flush()?;
            self.end = HEADER_LEN;
            return Ok(());
        }
        let mut at = HEADER_LEN;
        let mut dead = 0u64;
        let mut rec_header = [0u8; RECORD_HEADER_LEN as usize];
        while at + RECORD_HEADER_LEN <= file_len {
            self.file.seek(SeekFrom::Start(at))?;
            self.file.read_exact(&mut rec_header)?;
            let digest = u64::from_le_bytes(rec_header[0..8].try_into().unwrap());
            let len = u32::from_le_bytes(rec_header[8..12].try_into().unwrap());
            let checksum = u64::from_le_bytes(rec_header[12..20].try_into().unwrap());
            let next = at + RECORD_HEADER_LEN + len as u64;
            if len > MAX_PAYLOAD || next > file_len {
                break;
            }
            let mut payload = vec![0u8; len as usize];
            self.file.read_exact(&mut payload)?;
            if fnv_of(&payload) != checksum || decode_report(&payload).is_none() {
                // Dead in place: framing is intact, content is not. Skip
                // it — the compact pass below reclaims the bytes.
                dead += 1;
                at = next;
                continue;
            }
            if self.index.insert(digest, (at, len)).is_some() {
                // Superseded duplicate (a foreign or hand-merged file —
                // append itself dedupes): the later record wins, the
                // earlier one is dead space.
                dead += 1;
            }
            at = next;
        }
        if at < file_len {
            // Corrupt or partial tail: cut it off so the next append
            // starts from a clean boundary.
            self.truncated = 1;
            self.file.set_len(at)?;
        }
        self.end = at;
        if dead > 0 {
            self.dead_on_load = dead;
            self.reclaimed_on_load = self.compact()?;
        }
        Ok(())
    }

    /// Rewrite the backing file keeping only the live (indexed) records,
    /// reclaiming the space of dead or superseded ones. Returns the number
    /// of bytes reclaimed (0 when the store was already compact).
    ///
    /// The rewrite happens in place on the open handle (portable across
    /// the CI OS matrix, where rename-over-open-file is not): live
    /// payloads are staged in memory first, so a crash mid-compact can
    /// lose records — the same corrupt-tail contract as a crash
    /// mid-append, and the records are by definition reproducible cache
    /// entries.
    pub fn compact(&mut self) -> io::Result<u64> {
        let live_bytes: u64 = self
            .index
            .values()
            .map(|&(_, len)| RECORD_HEADER_LEN + len as u64)
            .sum();
        let compact_end = HEADER_LEN + live_bytes;
        if compact_end == self.end {
            return Ok(0);
        }
        // Stage the live records in file order, then rewrite from scratch.
        let mut entries: Vec<(u64, u64, u32)> = self
            .index
            .iter()
            .map(|(&digest, &(offset, len))| (digest, offset, len))
            .collect();
        entries.sort_by_key(|&(_, offset, _)| offset);
        let mut staged = Vec::with_capacity(entries.len());
        for &(digest, offset, len) in &entries {
            self.file
                .seek(SeekFrom::Start(offset + RECORD_HEADER_LEN))?;
            let mut payload = vec![0u8; len as usize];
            self.file.read_exact(&mut payload)?;
            staged.push((digest, payload));
        }
        let reclaimed = self.end - compact_end;
        self.file.set_len(HEADER_LEN)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&MAGIC)?;
        self.file.write_all(&VERSION.to_le_bytes())?;
        self.index.clear();
        self.end = HEADER_LEN;
        for (digest, payload) in staged {
            let mut record = Vec::with_capacity(RECORD_HEADER_LEN as usize + payload.len());
            record.extend_from_slice(&digest.to_le_bytes());
            record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            record.extend_from_slice(&fnv_of(&payload).to_le_bytes());
            record.extend_from_slice(&payload);
            self.file.write_all(&record)?;
            self.index.insert(digest, (self.end, payload.len() as u32));
            self.end += record.len() as u64;
        }
        self.file.flush()?;
        debug_assert_eq!(self.end, compact_end);
        Ok(reclaimed)
    }

    fn read_record(&mut self, offset: u64, len: u32, digest: u64) -> Option<EmulationReport> {
        let mut rec_header = [0u8; RECORD_HEADER_LEN as usize];
        self.file.seek(SeekFrom::Start(offset)).ok()?;
        self.file.read_exact(&mut rec_header).ok()?;
        let stored_digest = u64::from_le_bytes(rec_header[0..8].try_into().unwrap());
        let stored_len = u32::from_le_bytes(rec_header[8..12].try_into().unwrap());
        let checksum = u64::from_le_bytes(rec_header[12..20].try_into().unwrap());
        if stored_digest != digest || stored_len != len {
            return None;
        }
        let mut payload = vec![0u8; len as usize];
        self.file.read_exact(&mut payload).ok()?;
        if fnv_of(&payload) != checksum {
            return None;
        }
        decode_report(&payload)
    }
}

fn fnv_of(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    for &b in bytes {
        h.write_u8(b);
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// payload encoding

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encode the trace-free fields of `report`. The layout is fixed (no
/// tags): every field in struct order, lengths as `u32`, optional instants
/// as a presence bitmask plus the present values.
fn encode_report(report: &EmulationReport) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(64 + 64 * (report.sas.len() + report.bus.len() + report.fus.len()));
    put_u32(&mut out, report.package_size);
    put_u64(&mut out, report.makespan.0);
    put_u64(&mut out, report.ca_clock.period_ps());
    for v in [
        report.ca.tct,
        report.ca.inter_requests,
        report.ca.grants,
        report.ca.releases,
        report.ca.busy_ticks,
    ] {
        put_u64(&mut out, v);
    }
    put_u32(&mut out, report.sas.len() as u32);
    for (sa, clk) in report.sas.iter().zip(&report.segment_clocks) {
        put_u64(&mut out, clk.period_ps());
        for v in [
            sa.tct,
            sa.intra_requests,
            sa.inter_requests,
            sa.packets_to_left,
            sa.packets_to_right,
            sa.busy_ticks,
            sa.last_activity.0,
        ] {
            put_u64(&mut out, v);
        }
    }
    put_u32(&mut out, report.bus.len() as u32);
    for (bu, r) in report.bus.iter().zip(&report.bu_refs) {
        put_u16(&mut out, r.left.0);
        put_u16(&mut out, r.right.0);
        for v in [
            bu.received_from_left,
            bu.received_from_right,
            bu.transferred_to_left,
            bu.transferred_to_right,
            bu.tct,
            bu.waiting_ticks,
        ] {
            put_u64(&mut out, v);
        }
    }
    put_u32(&mut out, report.fus.len() as u32);
    for fu in &report.fus {
        let mask = fu.start.is_some() as u8
            | (fu.end.is_some() as u8) << 1
            | (fu.last_received.is_some() as u8) << 2
            | (fu.flag as u8) << 3;
        out.push(mask);
        for t in [fu.start, fu.end, fu.last_received].into_iter().flatten() {
            put_u64(&mut out, t.0);
        }
        for v in [fu.packages_sent, fu.compute_ticks, fu.packages_received] {
            put_u64(&mut out, v);
        }
    }
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.bytes.get(self.at..self.at + n)?;
        self.at += n;
        Some(slice)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn clock(&mut self) -> Option<ClockDomain> {
        ClockDomain::try_from_period_ps(self.u64()?)
    }
    /// Length field, bounded so a corrupt value cannot drive a huge
    /// allocation (the payload is at most `MAX_PAYLOAD` bytes anyway).
    fn len(&mut self) -> Option<usize> {
        let n = self.u32()? as usize;
        (n <= self.bytes.len()).then_some(n)
    }
}

/// Decode a payload produced by [`encode_report`]; `None` on any
/// truncation or invalid field (treated as corruption by the caller).
fn decode_report(payload: &[u8]) -> Option<EmulationReport> {
    let mut c = Cursor {
        bytes: payload,
        at: 0,
    };
    let package_size = c.u32()?;
    let makespan = Picos(c.u64()?);
    let ca_clock = c.clock()?;
    let ca = CaCounters {
        tct: c.u64()?,
        inter_requests: c.u64()?,
        grants: c.u64()?,
        releases: c.u64()?,
        busy_ticks: c.u64()?,
    };
    let nseg = c.len()?;
    let mut segment_clocks = Vec::with_capacity(nseg);
    let mut sas = Vec::with_capacity(nseg);
    for _ in 0..nseg {
        segment_clocks.push(c.clock()?);
        sas.push(SaCounters {
            tct: c.u64()?,
            intra_requests: c.u64()?,
            inter_requests: c.u64()?,
            packets_to_left: c.u64()?,
            packets_to_right: c.u64()?,
            busy_ticks: c.u64()?,
            last_activity: Picos(c.u64()?),
        });
    }
    let nbu = c.len()?;
    let mut bu_refs = Vec::with_capacity(nbu);
    let mut bus = Vec::with_capacity(nbu);
    for _ in 0..nbu {
        bu_refs.push(BorderUnitRef {
            left: SegmentId(c.u16()?),
            right: SegmentId(c.u16()?),
        });
        bus.push(BuCounters {
            received_from_left: c.u64()?,
            received_from_right: c.u64()?,
            transferred_to_left: c.u64()?,
            transferred_to_right: c.u64()?,
            tct: c.u64()?,
            waiting_ticks: c.u64()?,
        });
    }
    let nfu = c.len()?;
    let mut fus = Vec::with_capacity(nfu);
    for _ in 0..nfu {
        let mask = c.u8()?;
        let start = (mask & 1 != 0).then(|| c.u64()).flatten().map(Picos);
        if mask & 1 != 0 && start.is_none() {
            return None;
        }
        let end = (mask & 2 != 0).then(|| c.u64()).flatten().map(Picos);
        if mask & 2 != 0 && end.is_none() {
            return None;
        }
        let last_received = (mask & 4 != 0).then(|| c.u64()).flatten().map(Picos);
        if mask & 4 != 0 && last_received.is_none() {
            return None;
        }
        fus.push(FuTimes {
            start,
            end,
            last_received,
            packages_sent: c.u64()?,
            compute_ticks: c.u64()?,
            packages_received: c.u64()?,
            flag: mask & 8 != 0,
        });
    }
    if c.at != payload.len() {
        return None; // trailing bytes: not a payload this version wrote
    }
    Some(EmulationReport {
        sas,
        ca,
        bus,
        bu_refs,
        fus,
        segment_clocks,
        ca_clock,
        package_size,
        makespan,
        trace: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EmulatorConfig;
    use crate::engine::Emulator;
    use segbus_model::mapping::{Allocation, Psm};
    use segbus_model::platform::Platform;
    use segbus_model::psdf::{Application, Flow, Process};
    use segbus_model::time::ClockDomain;

    fn psm(items: u64) -> Psm {
        let mut app = Application::new("p");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::final_("B"));
        app.add_flow(Flow::new(a, b, items, 1, 50)).unwrap();
        let mut alloc = Allocation::new(2);
        alloc.assign(a, SegmentId(0));
        alloc.assign(b, SegmentId(1));
        let platform = Platform::builder("t")
            .uniform_segments(2, ClockDomain::from_mhz(100.0))
            .build()
            .unwrap();
        Psm::new(platform, app, alloc).unwrap()
    }

    fn report(items: u64) -> EmulationReport {
        Emulator::new(EmulatorConfig::default())
            .try_run(&psm(items))
            .unwrap()
    }

    fn assert_same(a: &EmulationReport, b: &EmulationReport) {
        assert_eq!(a.sas, b.sas);
        assert_eq!(a.ca, b.ca);
        assert_eq!(a.bus, b.bus);
        assert_eq!(a.bu_refs, b.bu_refs);
        assert_eq!(a.fus, b.fus);
        assert_eq!(a.segment_clocks, b.segment_clocks);
        assert_eq!(a.ca_clock, b.ca_clock);
        assert_eq!(a.package_size, b.package_size);
        assert_eq!(a.makespan, b.makespan);
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "segbus-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn payload_round_trips() {
        let r = report(72);
        let decoded = decode_report(&encode_report(&r)).unwrap();
        assert_same(&r, &decoded);
    }

    #[test]
    fn store_survives_reopen() {
        let dir = tmpdir("reopen");
        let r36 = report(36);
        let r72 = report(72);
        {
            let mut store = DiskStore::open(&dir).unwrap();
            assert!(store.is_empty());
            assert!(store.append(1, &r36).unwrap());
            assert!(store.append(2, &r72).unwrap());
            assert!(!store.append(1, &r36).unwrap(), "dedupe on digest");
        }
        let mut store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.truncated_on_load(), 0);
        assert!(store.contains(1) && store.contains(2));
        assert_same(&store.get(1).unwrap(), &r36);
        assert_same(&store.get(2).unwrap(), &r72);
        assert!(store.get(3).is_none());
    }

    #[test]
    fn corrupt_tail_is_truncated_and_store_stays_usable() {
        let dir = tmpdir("tail");
        {
            let mut store = DiskStore::open(&dir).unwrap();
            store.append(1, &report(36)).unwrap();
            store.append(2, &report(72)).unwrap();
        }
        // Chop the last record in half: record 1 must survive, record 2 go.
        let path = dir.join("reports.sbc");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        {
            let mut store = DiskStore::open(&dir).unwrap();
            assert_eq!(store.len(), 1);
            assert_eq!(store.truncated_on_load(), 1);
            assert!(store.get(1).is_some());
            assert!(store.get(2).is_none());
            // Appending after truncation lands on the clean boundary.
            store.append(2, &report(72)).unwrap();
        }
        let mut store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        assert!(store.get(2).is_some());
    }

    #[test]
    fn flipped_byte_fails_verification_on_read() {
        let dir = tmpdir("flip");
        {
            let mut store = DiskStore::open(&dir).unwrap();
            store.append(7, &report(36)).unwrap();
        }
        let path = dir.join("reports.sbc");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40; // corrupt the payload in place
        std::fs::write(&path, &bytes).unwrap();
        // The open-time scan already rejects the record…
        let mut store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.len(), 0);
        assert!(store.get(7).is_none());
        let _ = store;
    }

    #[test]
    fn foreign_file_is_reinitialised() {
        let dir = tmpdir("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("reports.sbc"), b"not a segbus cache").unwrap();
        let mut store = DiskStore::open(&dir).unwrap();
        assert!(store.is_empty());
        assert!(store.append(1, &report(36)).unwrap());
        drop(store);
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
    }

    /// Offset of record `i`'s payload (0-based), parsed from the file's
    /// own framing.
    fn payload_offset(bytes: &[u8], i: usize) -> usize {
        let mut at = HEADER_LEN as usize;
        for _ in 0..i {
            let len = u32::from_le_bytes(bytes[at + 8..at + 12].try_into().unwrap()) as usize;
            at += RECORD_HEADER_LEN as usize + len;
        }
        at + RECORD_HEADER_LEN as usize
    }

    #[test]
    fn dead_middle_record_is_compacted_away_and_survivors_kept() {
        let dir = tmpdir("compact");
        let (r36, r72, r108) = (report(36), report(72), report(108));
        {
            let mut store = DiskStore::open(&dir).unwrap();
            store.append(1, &r36).unwrap();
            store.append(2, &r72).unwrap();
            store.append(3, &r108).unwrap();
        }
        // Rot the middle record's payload in place.
        let path = dir.join("reports.sbc");
        let mut bytes = std::fs::read(&path).unwrap();
        let bloated = bytes.len() as u64;
        let at = payload_offset(&bytes, 1);
        bytes[at] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        {
            // The records on either side survive (the pre-compaction store
            // would have truncated record 3 away with the tail), the dead
            // one is rewritten out, and the file shrinks.
            let mut store = DiskStore::open(&dir).unwrap();
            assert_eq!(store.len(), 2);
            assert_eq!(store.dead_on_load(), 1);
            assert!(store.reclaimed_on_load() > 0);
            assert!(store.file_bytes() < bloated, "bloated store must shrink");
            assert_same(&store.get(1).unwrap(), &r36);
            assert!(store.get(2).is_none());
            assert_same(&store.get(3).unwrap(), &r108);
            // The freed digest can be re-appended onto the compact file.
            assert!(store.append(2, &r72).unwrap());
        }
        // …and the compacted store survives reopen, clean.
        let mut store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.dead_on_load(), 0);
        assert_eq!(store.truncated_on_load(), 0);
        assert_same(&store.get(2).unwrap(), &r72);
    }

    #[test]
    fn compact_is_a_noop_on_a_clean_store() {
        let dir = tmpdir("compact-noop");
        let mut store = DiskStore::open(&dir).unwrap();
        store.append(1, &report(36)).unwrap();
        store.append(2, &report(72)).unwrap();
        let before = store.file_bytes();
        assert_eq!(store.compact().unwrap(), 0);
        assert_eq!(store.file_bytes(), before);
        assert_eq!(store.len(), 2);
        assert_same(&store.get(1).unwrap(), &report(36));
    }

    #[test]
    fn traced_reports_are_not_persisted() {
        let dir = tmpdir("traced");
        let traced = Emulator::new(EmulatorConfig::traced())
            .try_run(&psm(36))
            .unwrap();
        let mut store = DiskStore::open(&dir).unwrap();
        assert!(!store.append(9, &traced).unwrap());
        assert!(store.is_empty());
    }
}
