//! Seeded Monte-Carlo performance estimation over stochastic PSMs.
//!
//! A stochastic model (flows annotated with distributions — see
//! `segbus_model::stochastic`) describes a *family* of concrete systems.
//! [`run_monte_carlo`] draws `samples` deterministic members of that
//! family ([`sample_psm`] with per-sample seeds derived via [`mix_seed`]),
//! runs them through the existing [`CachedPool`] → [`SweepPool`] tier and
//! summarises the makespan distribution: mean, p50/p95/p99, min/max, a
//! bootstrap 95% confidence interval on the mean, and the per-segment
//! bus-utilisation spread.
//!
//! Three properties fall out of the architecture rather than being
//! re-implemented here:
//!
//! * **Thread-count invariance** — samples are emulated by
//!   `CachedPool::run_batch`, whose [`SweepPool`] returns results in input
//!   order bit-identically for any worker count, and every statistic is
//!   computed from that ordered vector (the bootstrap uses its own seeded
//!   stream). `segbus mc --samples N --seed S --threads T` is therefore
//!   byte-identical for every `T`.
//! * **Free duplicates** — each sample is a concrete [`Psm`] keyed by its
//!   content digest, so repeated draws (a `constant` distribution, a
//!   narrow `choice`, overlapping seeds, a warm `--cache-dir`) are cache
//!   hits, not re-emulations.
//! * **NaN-freedom** — inputs are integer picosecond makespans and the
//!   clamped sampler never produces NaN, so every statistic is finite.
//!
//! [`SweepPool`]: crate::parallel::SweepPool

use std::collections::HashSet;

use segbus_model::diag::SegbusError;
use segbus_model::mapping::Psm;
use segbus_model::rng::SmallRng;
use segbus_model::stochastic::{mix_seed, sample_psm};

use crate::cache::{BatchJob, CachedPool};
use crate::config::EmulatorConfig;
use crate::report::EmulationReport;

/// Parameters of one Monte-Carlo estimation.
#[derive(Clone, Copy, Debug)]
pub struct McOptions {
    /// Number of samples to draw (clamped to at least 1).
    pub samples: u64,
    /// Master seed; sample `i` uses `mix_seed(seed, i)`.
    pub seed: u64,
    /// Pipelined frames per run (`1` = the paper's single-shot run).
    pub frames: u64,
    /// Bootstrap resamples for the confidence interval (clamped ≥ 1).
    pub bootstrap: u32,
}

impl Default for McOptions {
    fn default() -> McOptions {
        McOptions {
            samples: 100,
            seed: 0,
            frames: 1,
            bootstrap: 200,
        }
    }
}

/// Summary statistics of one sampled metric (picoseconds).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct McStats {
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Nearest-rank 50th percentile.
    pub p50: u64,
    /// Nearest-rank 95th percentile.
    pub p95: u64,
    /// Nearest-rank 99th percentile.
    pub p99: u64,
    /// Bootstrap 95% confidence interval on the mean `(lo, hi)`.
    pub ci95: (f64, f64),
}

/// Per-segment bus-utilisation spread across the samples (fractions of
/// the makespan the segment bus was occupied).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UtilisationSpread {
    /// Smallest observed fraction.
    pub min: f64,
    /// Mean fraction.
    pub mean: f64,
    /// Largest observed fraction.
    pub max: f64,
}

/// The result of a Monte-Carlo estimation.
#[derive(Clone, Debug)]
pub struct McReport {
    /// Samples drawn.
    pub samples: u64,
    /// Distinct sample digests (what actually had to be emulated on a
    /// cold cache — the rest were duplicates).
    pub distinct: u64,
    /// Per-sample makespans in sample order (picoseconds).
    pub makespans: Vec<u64>,
    /// Makespan summary statistics.
    pub makespan: McStats,
    /// Per-segment utilisation spread, indexed by segment.
    pub utilisation: Vec<UtilisationSpread>,
}

/// Arithmetic mean of integer observations (0 for an empty slice).
pub fn mean(xs: &[u64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len() as f64
}

/// Nearest-rank percentile (`p` in `(0, 100]`) of an ascending-sorted
/// slice: the smallest element with at least `p%` of the sample at or
/// below it. Exact on small `N` — `percentile(&[x], p)` is `x` for any
/// `p`, and no interpolation ever fabricates an unobserved value.
///
/// # Panics
/// Panics if `sorted` is empty.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    let n = sorted.len();
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Seeded bootstrap 95% confidence interval on the mean: `resamples`
/// with-replacement resamples of `xs`, interval at the 2.5th/97.5th
/// percentile of the resampled means. Deterministic in `(xs, resamples,
/// seed)`; degenerate inputs (singleton or all-equal samples) collapse to
/// `(mean, mean)` rather than producing NaN.
pub fn bootstrap_ci(xs: &[u64], resamples: u32, seed: u64) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    if xs.len() == 1 || xs.iter().all(|&x| x == xs[0]) {
        let m = xs[0] as f64;
        return (m, m);
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut means: Vec<f64> = (0..resamples.max(1))
        .map(|_| {
            let sum: f64 = (0..xs.len())
                .map(|_| xs[rng.range_usize(0, xs.len() - 1)] as f64)
                .sum();
            sum / xs.len() as f64
        })
        .collect();
    // Resampled means of finite integers are finite: total_cmp is exact.
    means.sort_by(|a, b| a.total_cmp(b));
    let pick = |p: f64| {
        let rank = ((p / 100.0) * means.len() as f64).ceil() as usize;
        means[rank.clamp(1, means.len()) - 1]
    };
    (pick(2.5), pick(97.5))
}

/// Summarise a vector of integer observations.
fn summarise(xs: &[u64], bootstrap: u32, seed: u64) -> McStats {
    let mut sorted = xs.to_vec();
    sorted.sort_unstable();
    McStats {
        min: sorted[0],
        max: sorted[sorted.len() - 1],
        mean: mean(xs),
        p50: percentile(&sorted, 50.0),
        p95: percentile(&sorted, 95.0),
        p99: percentile(&sorted, 99.0),
        ci95: bootstrap_ci(xs, bootstrap, seed),
    }
}

/// Per-segment bus-occupancy fraction of one run: the SA's busy ticks
/// (kept by every engine without tracing) scaled to its clock period,
/// over the run's makespan.
fn utilisation_fractions(report: &EmulationReport) -> Vec<f64> {
    let span = report.makespan.0;
    report
        .sas
        .iter()
        .zip(&report.segment_clocks)
        .map(|(sa, clk)| {
            if span == 0 {
                0.0
            } else {
                (sa.busy_ticks as f64 * clk.period_ps() as f64) / span as f64
            }
        })
        .collect()
}

/// Run a seeded Monte-Carlo estimation of `psm` on `pool`.
///
/// Sample `i` is `sample_psm(psm, mix_seed(opts.seed, i))`, emulated under
/// `config` with `opts.frames` frames. A deterministic model (no
/// annotations) collapses to one distinct job answered `samples` times
/// from the cache. The first failing sample aborts the estimation with
/// its typed error.
pub fn run_monte_carlo(
    pool: &mut CachedPool,
    psm: &Psm,
    config: EmulatorConfig,
    opts: &McOptions,
) -> Result<McReport, SegbusError> {
    let samples = opts.samples.max(1);
    let mut jobs = Vec::with_capacity(samples as usize);
    for i in 0..samples {
        let sampled = sample_psm(psm, mix_seed(opts.seed, i)).map_err(SegbusError::from)?;
        jobs.push(BatchJob {
            psm: sampled,
            config,
            frames: opts.frames,
        });
    }
    let distinct = jobs.iter().map(BatchJob::digest).collect::<HashSet<_>>();

    let mut makespans = Vec::with_capacity(jobs.len());
    let segments = psm.platform().segment_count();
    let mut util: Vec<Vec<f64>> = vec![Vec::with_capacity(jobs.len()); segments];
    for result in pool.run_batch(&jobs) {
        let report = result?;
        makespans.push(report.makespan.0);
        for (seg, f) in utilisation_fractions(&report).into_iter().enumerate() {
            util[seg].push(f);
        }
    }

    let makespan = summarise(&makespans, opts.bootstrap, mix_seed(opts.seed, u64::MAX));
    let utilisation = util
        .into_iter()
        .map(|fs| {
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            let mut sum = 0.0;
            for &f in &fs {
                min = min.min(f);
                max = max.max(f);
                sum += f;
            }
            UtilisationSpread {
                min,
                mean: sum / fs.len() as f64,
                max,
            }
        })
        .collect();

    Ok(McReport {
        samples,
        distinct: distinct.len() as u64,
        makespans,
        makespan,
        utilisation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use segbus_model::ids::SegmentId;
    use segbus_model::mapping::Allocation;
    use segbus_model::platform::Platform;
    use segbus_model::psdf::{Application, Flow, Process};
    use segbus_model::stochastic::{Dist, FlowNoise};
    use segbus_model::time::ClockDomain;

    fn stochastic_psm() -> Psm {
        let mut app = Application::new("mc");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::new("B"));
        let c = app.add_process(Process::final_("C"));
        let f0 = app.add_flow(Flow::new(a, b, 360, 1, 100)).unwrap();
        app.add_flow(Flow::new(b, c, 180, 2, 50)).unwrap();
        app.set_flow_noise(
            f0,
            FlowNoise {
                items: Some(Dist::Uniform { lo: 300, hi: 400 }),
                ticks: Some(Dist::Normal {
                    mean: 100,
                    std: 15,
                    lo: 60,
                    hi: 140,
                }),
                jitter: Some(Dist::Choice(vec![(0, 3), (20, 1)])),
            },
        )
        .unwrap();
        let mut alloc = Allocation::new(2);
        alloc.assign(a, SegmentId(0));
        alloc.assign(b, SegmentId(0));
        alloc.assign(c, SegmentId(1));
        let platform = Platform::builder("t")
            .uniform_segments(2, ClockDomain::from_mhz(100.0))
            .build()
            .unwrap();
        Psm::new(platform, app, alloc).unwrap()
    }

    #[test]
    fn percentile_nearest_rank_small_n() {
        assert_eq!(percentile(&[7], 50.0), 7);
        assert_eq!(percentile(&[7], 99.0), 7);
        assert_eq!(percentile(&[1, 2], 50.0), 1);
        assert_eq!(percentile(&[1, 2], 95.0), 2);
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&xs, 50.0), 50);
        assert_eq!(percentile(&xs, 95.0), 95);
        assert_eq!(percentile(&xs, 99.0), 99);
        assert_eq!(percentile(&xs, 100.0), 100);
    }

    #[test]
    fn mean_and_ci_on_degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[5]), 5.0);
        assert_eq!(bootstrap_ci(&[], 100, 1), (0.0, 0.0));
        assert_eq!(bootstrap_ci(&[9], 100, 1), (9.0, 9.0));
        // All-equal samples: the interval collapses, never NaN.
        assert_eq!(bootstrap_ci(&[4, 4, 4, 4], 100, 1), (4.0, 4.0));
    }

    #[test]
    fn bootstrap_ci_brackets_the_mean_and_is_seeded() {
        let xs: Vec<u64> = (0..50).map(|i| 100 + (i * 7) % 40).collect();
        let m = mean(&xs);
        let (lo, hi) = bootstrap_ci(&xs, 300, 42);
        assert!(lo <= m && m <= hi, "{lo} <= {m} <= {hi}");
        assert!(lo.is_finite() && hi.is_finite());
        assert!(hi > lo, "spread data gives a non-degenerate interval");
        assert_eq!(bootstrap_ci(&xs, 300, 42), (lo, hi), "seeded: reproducible");
        assert_ne!(bootstrap_ci(&xs, 300, 43), (lo, hi));
    }

    #[test]
    fn monte_carlo_is_thread_count_invariant() {
        use crate::parallel::SweepPool;
        let psm = stochastic_psm();
        let opts = McOptions {
            samples: 40,
            seed: 7,
            ..Default::default()
        };
        let config = EmulatorConfig::default();
        let run = |threads| {
            let mut pool = CachedPool::with_pool(SweepPool::with_threads(config, threads), 1024);
            run_monte_carlo(&mut pool, &psm, config, &opts).unwrap()
        };
        let reference = run(1);
        assert!(reference.makespan.min < reference.makespan.max, "spread");
        for threads in [2, 8] {
            let out = run(threads);
            assert_eq!(out.makespans, reference.makespans);
            assert_eq!(out.makespan, reference.makespan);
            assert_eq!(out.utilisation, reference.utilisation);
        }
    }

    #[test]
    fn deterministic_model_collapses_to_one_distinct_job() {
        let psm = {
            let mut p = stochastic_psm();
            // Same structure, no annotations.
            let mut app = p.application().clone();
            app.clear_noise();
            p = Psm::new(p.platform().clone(), app, p.allocation().clone()).unwrap();
            p
        };
        let config = EmulatorConfig::default();
        let mut pool = CachedPool::new(config, 64);
        let opts = McOptions {
            samples: 25,
            seed: 3,
            ..Default::default()
        };
        let report = run_monte_carlo(&mut pool, &psm, config, &opts).unwrap();
        assert_eq!(report.distinct, 1);
        assert_eq!(report.makespan.min, report.makespan.max);
        assert_eq!(report.makespan.ci95.0, report.makespan.ci95.1);
        let stats = pool.stats();
        assert_eq!(stats.misses, 1, "one emulation, 24 in-batch hits");
        assert_eq!(stats.hits, 24);
    }

    #[test]
    fn repeated_estimation_is_fully_cached() {
        let psm = stochastic_psm();
        let config = EmulatorConfig::default();
        let mut pool = CachedPool::new(config, 1024);
        let opts = McOptions {
            samples: 20,
            seed: 11,
            ..Default::default()
        };
        let first = run_monte_carlo(&mut pool, &psm, config, &opts).unwrap();
        let cold = pool.stats();
        let second = run_monte_carlo(&mut pool, &psm, config, &opts).unwrap();
        let warm = pool.stats();
        assert_eq!(first.makespans, second.makespans);
        assert_eq!(warm.misses, cold.misses, "warm rerun emulates nothing");
        assert!(warm.hits > cold.hits);
    }

    #[test]
    fn utilisation_spread_is_sane() {
        let psm = stochastic_psm();
        let config = EmulatorConfig::default();
        let mut pool = CachedPool::new(config, 1024);
        let report = run_monte_carlo(
            &mut pool,
            &psm,
            config,
            &McOptions {
                samples: 30,
                seed: 5,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.utilisation.len(), 2);
        for u in &report.utilisation {
            assert!(u.min.is_finite() && u.mean.is_finite() && u.max.is_finite());
            assert!(0.0 <= u.min && u.min <= u.mean && u.mean <= u.max);
            assert!(u.max <= 1.0 + 1e-9, "occupancy cannot exceed the makespan");
        }
        // The segment hosting the producer chain sees real traffic.
        assert!(report.utilisation[0].max > 0.0);
    }
}
