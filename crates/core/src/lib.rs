//! # segbus-core
//!
//! The paper's primary contribution: the **SegBus performance-estimation
//! emulator** (§3). Given a validated PSM ([`segbus_model::Psm`]) the
//! emulator executes the application schedule on a model of the platform
//! and reports, per platform element, the counters the paper prints:
//! total clock ticks (TCT), intra-/inter-segment request counts, package
//! counts through every border unit, per-process start/end times and the
//! total execution time `max(t_SA1, …, t_SAn, t_CA)`.
//!
//! The engine is a deterministic discrete-event simulation over a global
//! picosecond timeline with independent clock domains per segment and for
//! the central arbiter. The operational semantics are documented in
//! `DESIGN.md` §4; the timing knobs live in [`TimingParams`], whose
//! default is the paper's *estimator* (clock-domain synchronisation, grant
//! latencies and master-response delays deliberately skipped — §3.6
//! "Emulation and estimation").
//!
//! Beyond the paper's single-shot run, the crate provides pipelined
//! multi-frame execution ([`Emulator::run_frames`]), trace [`analysis`],
//! [`energy`] attribution, [`vcd`] waveform export and a [`parallel`]
//! sweep runner.
//!
//! ```
//! use segbus_apps::mp3;
//! use segbus_core::{Emulator, EmulatorConfig};
//!
//! let psm = mp3::three_segment_psm();
//! let report = Emulator::new(EmulatorConfig::default()).run(&psm);
//! println!("estimated execution time: {:.2} us",
//!          report.execution_time().as_micros_f64());
//! assert!(report.ca.inter_requests > 0);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod cache;
pub mod config;
pub mod counters;
pub mod energy;
pub mod engine;
pub mod fast;
pub mod gantt;
pub mod hist;
pub mod montecarlo;
pub mod parallel;
pub mod persist;
pub mod precheck;
pub mod queue;
pub mod reference;
pub mod report;
pub mod sbt;
pub mod trace;
pub mod vcd;

pub use analysis::{
    analyze_trace, bus_utilisation, gantt_csv, latency_stats, package_latencies,
    trace_latency_stats, trace_package_latencies, wave_boundaries, wave_durations, BuActivity,
    BusAnalysis, BusUtilisation, LatencyStats, SegmentActivity,
};
pub use cache::{job_digest, job_digest_from, BatchJob, CacheStats, CachedPool, ReportCache};
pub use config::{ArbitrationPolicy, EmulatorConfig, EngineKind, ProducerRelease, TimingParams};
pub use counters::{BuCounters, CaCounters, FuTimes, SaCounters};
pub use energy::{estimate_energy, EnergyBreakdown, EnergyModel};
pub use engine::{Emulator, Engine, EnginePlan, LowerBoundScratch, PlanDelta};
pub use gantt::ascii_gantt;
pub use montecarlo::{run_monte_carlo, McOptions, McReport, McStats, UtilisationSpread};
pub use parallel::{run_many, run_many_with, SweepPool};
pub use persist::DiskStore;
pub use precheck::{is_emulable, strict_validate};
pub use queue::QueueKind;
pub use reference::ReferenceEmulator;
pub use report::EmulationReport;
pub use sbt::{read_trace, SbtTrace, SbtWriter};
pub use trace::{TraceEvent, TraceKind, TraceLog, TraceSink};
pub use vcd::to_vcd;
