//! The specialised engine core: the interpreter's semantics with the
//! per-event dynamic dispatch compiled out.
//!
//! [`crate::engine`]'s event loop pays, on every popped event, for
//! decisions that are invariant over a whole run: which arbitration
//! policy picks the next local request, which release policy frees a
//! producer, whether a trace is being recorded, and which event-queue
//! implementation backs `push`/`pop`. This module removes all four, and
//! then removes events and arithmetic the interpreter performs
//! redundantly:
//!
//! * **Monomorphisation** — the run loop is generic over
//!   `<A: Arbitration, R: Release, const TRACED: bool>` and instantiated
//!   once per `(ArbitrationPolicy, ProducerRelease)` pair by [`run_fast`]'s
//!   (untraced) and [`run_fast_traced`]'s dispatch `match`es, so policy
//!   checks become compile-time constants and the arbiter's pick loop
//!   inlines into the dispatch handler.
//! * **Monomorphised tracing** — every trace hook sits behind
//!   `if TRACED`, so the untraced instantiations compile the plumbing
//!   out entirely (no `Option` checks, no side tables touched) and stay
//!   benchmark-neutral, while the traced instantiations emit the
//!   interpreter's [`crate::TraceEvent`] stream event for event into any
//!   [`TraceSink`] (an in-memory [`crate::TraceLog`], a streaming
//!   [`crate::sbt::SbtWriter`], …). Tracing needs the frame-global
//!   package index the fast core otherwise elides (see "No package
//!   indices" below), so the traced instantiations reconstruct it in
//!   side tables keyed the only way packages can be in flight: one
//!   compute per producer (`cur_pkg`), a queue position per local
//!   request (`sa_pkg`), a FIFO of in-flight serves per segment
//!   (`intra_pkg`) and one entry per inter-segment transfer
//!   (`tr_pkg`). Burst stepping is
//!   disabled under `TRACED` (it elides the serve/deliver events
//!   wholesale); every other elision drops only events whose handlers
//!   emit nothing, so the surviving emission order is the
//!   interpreter's — the differential test below checks equality event
//!   for event across the policy matrix.
//! * **Flat SoA scratch** — producer state (`pending`/`rr`/`busy`) and
//!   process bookkeeping (`remaining out`/`in`) are parallel arrays
//!   indexed by the [`EnginePlan`]'s dense ids instead of arrays of
//!   structs, so each handler touches only the columns it needs.
//! * **Unrolled per-segment dispatch tables** — the per-event clock
//!   arithmetic that multiplies run-invariant tick counts by a segment
//!   period (compute duration, bus occupancy, BU hop wait, CA request
//!   latency) is precomputed into per-flow/per-segment picosecond slices
//!   at reset. Edge-snapping (`next_edge`) survives only where a time
//!   genuinely crosses clock domains: compute ends, serve starts,
//!   `bus_free` and hop ends are all sums of `next_edge` results and
//!   whole-tick durations of the *same* segment clock, hence already
//!   multiples of its period and fixed points of `next_edge` (the
//!   debug assertions in the handlers check this).
//! * **Sorted event ring** — pending events live in a vector sorted by
//!   descending timestamp, so popping the minimum is `Vec::pop`.
//!   Insertion binary-searches to the *leftmost* slot among equal
//!   timestamps, which makes position encode the interpreter's sequence
//!   numbers: among simultaneous events the earliest-scheduled sits
//!   rightmost and pops first. The in-flight population is bounded by
//!   `O(processes + segments)` (package-level flow control keeps at most
//!   one compute/transfer event per producer), so the insertion memmove
//!   stays within a few cache lines.
//! * **Fused serve chains** — when a serve leaves the local queue
//!   non-empty, the interpreter schedules a follow-up dispatch at the
//!   transaction end: an event at the same `(time, seq)` neighbourhood
//!   as the `IntraDone` it just scheduled. Because the two carry
//!   consecutive sequence numbers, no third event can pop between them,
//!   so the fast core folds the chain into a `chain` flag on the
//!   `IntraDone` itself — one queue round-trip per contended package
//!   instead of two.
//! * **Dispatch dedup** — a dispatch attempt that finds the bus busy
//!   re-schedules itself at `bus_free`; under sustained contention the
//!   interpreter accumulates *parasite* retries (each pops, finds the
//!   bus claimed again by the serve chain, and re-propagates until the
//!   queue drains). A retry/chain is a no-op or a propagation unless it
//!   is the first dispatch to pop at its timestamp, so the fast core
//!   keeps at most one outstanding dispatch per segment (`retry_at`) and
//!   per CA tick (`ca_disp_at`) and drops provably-covered duplicates.
//!   Dropping an event whose handler performs no state change preserves
//!   the relative order — and therefore the tie-breaks — of every
//!   remaining event.
//! * **Solo-producer burst stepping** — when a local compute completes
//!   with the event queue, the CA queue and the segment's request queue
//!   all empty, the bus free and the segment unreserved, the producer is
//!   provably alone on its segment: nothing can interleave with its
//!   compute → serve → deliver cycle until the round-robin pick turns
//!   inter-segment, the frame instance completes (which may cascade into
//!   arming other producers), or the producer idles. The fast core steps
//!   those cycles in a tight loop with no event traffic at all; every
//!   implied timestamp is a whole-tick sum on one segment clock and
//!   hence a fixed point of `next_edge` (debug-asserted per iteration).
//! * **Synchronous serve completion** — an `IntraDone` scheduled at the
//!   serve's end would pop next whenever every queued event lies
//!   strictly after it: it is the unique minimum, and no event can later
//!   be inserted at or before its timestamp (dispatch dedup markers
//!   always back already-queued events). The fast core detects this at
//!   schedule time and runs the handler inline, skipping the round-trip.
//! * **No package indices** — the interpreter threads a global package
//!   index through every event only to divide it back into a frame
//!   number at delivery. The frame is already known when the package is
//!   picked from the producer's pending list, so the fast core carries
//!   the frame itself (29 bits of the packed event) and the per-package
//!   division disappears.
//! * **Batch frame stepping** — multi-frame runs arm frame 0 exactly like
//!   the interpreter (the first package picks must see frame 0's pending
//!   entries only), then collapse the arming passes of frames 1.. into
//!   plain pending appends. This is provably order-identical: all frames
//!   arm at `t = 0` before any event pops, and after frame 0's kick every
//!   wave-0 producer is busy, so the interpreter's later kick scans are
//!   no-ops (the batch falls back to per-frame arming in the degenerate
//!   empty-first-wave case, where completing the instance cascades into
//!   later waves).
//!
//! **Bit-identity contract.** For every PSM, frame count and
//! configuration, the fast core produces an [`EmulationReport`] equal to
//! the interpreter's field for field. Every surviving event is scheduled
//! in the same program order (so tie-breaks coincide), every elided
//! event is one whose handler could not have changed state, and every
//! timestamp is computed by the same strength-reduced arithmetic
//! ([`crate::engine::FastClock`]). The differential tests below and the
//! fuzz harness arm in `tests/fuzz_differential.rs` enforce the contract
//! across all arbitration × release modes.

use std::collections::VecDeque;
use std::marker::PhantomData;

use segbus_model::ids::{FlowId, ProcessId, SegmentId};
use segbus_model::time::Picos;

use crate::config::{ArbitrationPolicy, EmulatorConfig, ProducerRelease};
use crate::counters::{BuCounters, CaCounters, FuTimes, SaCounters};
use crate::engine::{EnginePlan, NO_PATH};
use crate::report::EmulationReport;
use crate::trace::{TraceEvent, TraceKind, TraceSink};

// ---------------------------------------------------------------------------
// compile-time policies

/// Local-bus arbitration, resolved at monomorphisation time. `pick`
/// mirrors the interpreter's `min_by_key` selections exactly: the keys
/// below are made unambiguous by the queue index tie-break, and the scan
/// keeps the earliest index among equal primary keys.
trait Arbitration {
    /// `true` exactly for [`ArbitrationPolicy::Fifo`]: a dispatch attempt
    /// landing on the current clock edge may run inline (see the
    /// interpreter's `on_compute_done` for the argument).
    const FIFO: bool;
    /// Index of the request to serve next (queue is non-empty).
    fn pick(queue: &VecDeque<LocalReq>, flow_src: &[ProcessId], served: &[u64]) -> usize;
}

struct FifoArb;
impl Arbitration for FifoArb {
    const FIFO: bool = true;
    #[inline(always)]
    fn pick(_q: &VecDeque<LocalReq>, _src: &[ProcessId], _served: &[u64]) -> usize {
        0
    }
}

struct PriorityArb;
impl Arbitration for PriorityArb {
    const FIFO: bool = false;
    #[inline(always)]
    fn pick(q: &VecDeque<LocalReq>, flow_src: &[ProcessId], _served: &[u64]) -> usize {
        let mut best = 0;
        let mut best_key = flow_src[q[0].flow.index()];
        for i in 1..q.len() {
            let k = flow_src[q[i].flow.index()];
            if k < best_key {
                best = i;
                best_key = k;
            }
        }
        best
    }
}

struct FairArb;
impl Arbitration for FairArb {
    const FIFO: bool = false;
    #[inline(always)]
    fn pick(q: &VecDeque<LocalReq>, flow_src: &[ProcessId], served: &[u64]) -> usize {
        let mut best = 0;
        let mut best_key = served[flow_src[q[0].flow.index()].index()];
        for i in 1..q.len() {
            let k = served[flow_src[q[i].flow.index()].index()];
            if k < best_key {
                best = i;
                best_key = k;
            }
        }
        best
    }
}

/// Producer release policy, resolved at monomorphisation time.
trait Release {
    /// `true` exactly for [`ProducerRelease::AfterLocalPhase`].
    const AFTER_LOCAL_PHASE: bool;
}

struct RelDelivery;
impl Release for RelDelivery {
    const AFTER_LOCAL_PHASE: bool = false;
}

struct RelLocal;
impl Release for RelLocal {
    const AFTER_LOCAL_PHASE: bool = true;
}

// ---------------------------------------------------------------------------
// events and scratch

/// The interpreter's event alphabet, hand-packed into one `u64` so a
/// queue entry is exactly 16 bytes: tag in bits 0..3, a 32-bit field in
/// bits 3..35 (flow / segment / request id) and a 29-bit field in bits
/// 35..64 (`frame << 1 | chain` for `IntraDone`, the hop for
/// `PhaseDone`). [`MAX_FRAMES`] bounds the frame field; runs anywhere
/// near it would exhaust memory on the per-instance bookkeeping first.
mod ev {
    pub const COMPUTE_DONE: u64 = 0;
    pub const SA_DISPATCH: u64 = 1;
    pub const CA_ARRIVE: u64 = 2;
    pub const CA_DISPATCH: u64 = 3;
    pub const INTRA_DONE: u64 = 4;
    pub const PHASE_DONE: u64 = 5;

    #[inline(always)]
    pub fn pack(tag: u64, a: u32, b: u32) -> u64 {
        debug_assert!(b < (1 << 29));
        tag | (a as u64) << 3 | (b as u64) << 35
    }

    #[inline(always)]
    pub fn tag(ev: u64) -> u64 {
        ev & 7
    }

    #[inline(always)]
    pub fn a(ev: u64) -> u32 {
        (ev >> 3) as u32
    }

    #[inline(always)]
    pub fn b(ev: u64) -> u32 {
        (ev >> 35) as u32
    }
}

/// Largest frame count the packed event representation can carry.
const MAX_FRAMES: u64 = 1 << 28;

/// One pending event of the sorted ring (descending by `at`; position
/// among equal timestamps encodes scheduling order).
#[derive(Clone, Copy)]
struct QEntry {
    at: u64,
    ev: u64,
}

/// A pending intra-segment package transfer.
#[derive(Clone, Copy)]
struct LocalReq {
    flow: FlowId,
    frame: u32,
}

/// An inter-segment transfer in flight (`path` indexes the plan's route
/// table).
#[derive(Clone, Copy)]
struct InterTransfer {
    flow: FlowId,
    frame: u32,
    path: u32,
}

/// Every mutable array of a fast-core run, kept allocated between runs
/// (same reuse contract as the interpreter's scratch). Producer and
/// process state is stored as parallel columns indexed by the plan's
/// dense ids; the `*_ps` tables are the precomputed per-flow/per-segment
/// picosecond slices described in the module docs.
#[derive(Default)]
pub(crate) struct FastScratch {
    queue: Vec<QEntry>,
    /// Outstanding deliveries per wave instance (`frame * waves + wave`).
    instance_remaining: Vec<u64>,
    /// (flow, packages remaining, frame) per producer, armed wave order.
    prod_pending: Vec<Vec<(FlowId, u64, u32)>>,
    /// Round-robin cursor over `prod_pending`.
    prod_rr: Vec<usize>,
    prod_busy: Vec<bool>,
    remaining_out: Vec<u64>,
    remaining_inp: Vec<u64>,
    bus_free: Vec<Picos>,
    reserved: Vec<bool>,
    sa_queue: Vec<VecDeque<LocalReq>>,
    served: Vec<u64>,
    /// Timestamp of the single outstanding dispatch retry/chain per
    /// segment (`u64::MAX` when none) — the dedup marker.
    retry_at: Vec<u64>,
    /// Timestamp of the outstanding CA dispatch scan (`u64::MAX` if none).
    ca_disp_at: u64,
    ca_queue: VecDeque<u32>,
    transfers: Vec<InterTransfer>,
    sas: Vec<SaCounters>,
    ca: CaCounters,
    bus_ctr: Vec<BuCounters>,
    fus: Vec<FuTimes>,
    makespan: Picos,
    /// Compute duration of one package of each flow, in picoseconds of
    /// the producer's segment clock (`flow_compute × period`).
    flow_compute_ps: Vec<u64>,
    /// Bus occupancy of one package transaction per segment
    /// (`bus_transaction_ticks × period`).
    seg_bus_ps: Vec<u64>,
    /// BU sampling + synchroniser wait per segment
    /// (`(wp_sample + bu_sync) × period`).
    seg_hop_wait_ps: Vec<u64>,
    /// CA request registration latency (`ca_request_ticks × CA period`).
    ca_req_ps: u64,
    // -- traced-only side tables (empty when `TRACED` is false) ----------
    /// Frame-global package index of each producer's in-flight compute.
    cur_pkg: Vec<u64>,
    /// Package indices paralleling `sa_queue`, same push/remove order.
    sa_pkg: Vec<VecDeque<u64>>,
    /// Package indices of each segment's outstanding `IntraDone`s, FIFO.
    /// Usually one deep, but a follow-up serve can be granted at the
    /// exact end instant of the previous one — a same-timestamp
    /// `ComputeDone` with an older sequence number pops before the
    /// pending `IntraDone` — so two can overlap at a time boundary.
    /// Serve ends are strictly increasing per segment, so pops are FIFO.
    intra_pkg: Vec<VecDeque<u64>>,
    /// Package indices paralleling `transfers` (push-only, same index).
    tr_pkg: Vec<u64>,
}

/// Clear and re-dimension a vector, keeping its allocation.
fn refill<T: Clone>(v: &mut Vec<T>, n: usize, value: T) {
    v.clear();
    v.resize(n, value);
}

impl FastScratch {
    fn reset(
        &mut self,
        plan: &EnginePlan,
        frames: u64,
        cfg: &EmulatorConfig,
        bus_ticks: u64,
        traced: bool,
    ) {
        self.queue.clear();

        if traced {
            refill(&mut self.cur_pkg, plan.nproc, 0);
            for tab in [&mut self.sa_pkg, &mut self.intra_pkg] {
                tab.resize_with(plan.nseg, VecDeque::new);
                tab.truncate(plan.nseg);
                for q in tab.iter_mut() {
                    q.clear();
                }
            }
            self.tr_pkg.clear();
        }

        // Batched frame bookkeeping: the per-wave delivery counts are
        // identical in every frame, so compute them once and repeat.
        self.instance_remaining.clear();
        for flows in &plan.waves {
            self.instance_remaining
                .push(flows.iter().map(|f| plan.flow_pkgs[f.index()]).sum::<u64>());
        }
        let per_frame = self.instance_remaining.len();
        for _ in 1..frames {
            for i in 0..per_frame {
                let v = self.instance_remaining[i];
                self.instance_remaining.push(v);
            }
        }

        self.prod_pending.resize_with(plan.nproc, Vec::new);
        self.prod_pending.truncate(plan.nproc);
        for p in &mut self.prod_pending {
            p.clear();
        }
        refill(&mut self.prod_rr, plan.nproc, 0);
        refill(&mut self.prod_busy, plan.nproc, false);

        refill(&mut self.remaining_out, plan.nproc, 0);
        refill(&mut self.remaining_inp, plan.nproc, 0);
        for i in 0..plan.flow_src.len() {
            self.remaining_out[plan.flow_src[i].index()] += plan.flow_pkgs[i] * frames;
            self.remaining_inp[plan.flow_dst[i].index()] += plan.flow_pkgs[i] * frames;
        }

        refill(&mut self.bus_free, plan.nseg, Picos::ZERO);
        refill(&mut self.reserved, plan.nseg, false);
        self.sa_queue.resize_with(plan.nseg, VecDeque::new);
        self.sa_queue.truncate(plan.nseg);
        for q in &mut self.sa_queue {
            q.clear();
        }
        refill(&mut self.served, plan.nproc, 0);
        refill(&mut self.retry_at, plan.nseg, u64::MAX);
        self.ca_disp_at = u64::MAX;
        self.ca_queue.clear();
        self.transfers.clear();

        refill(&mut self.sas, plan.nseg, SaCounters::default());
        self.ca = CaCounters::default();
        refill(&mut self.bus_ctr, plan.n_bu, BuCounters::default());
        refill(&mut self.fus, plan.nproc, FuTimes::default());
        for (i, fu) in self.fus.iter_mut().enumerate() {
            if self.remaining_out[i] == 0 && self.remaining_inp[i] == 0 {
                fu.flag = true;
            }
        }
        self.makespan = Picos::ZERO;

        // Precomputed schedule slices: every run-invariant ticks × period
        // product, evaluated by the exact multiply the interpreter's
        // `FastClock::ticks_to_picos` would perform per event.
        self.flow_compute_ps.clear();
        for i in 0..plan.flow_src.len() {
            let seg = plan.proc_seg[plan.flow_src[i].index()];
            let period = plan.fast_seg[seg.index()].period.d;
            self.flow_compute_ps.push(plan.flow_compute[i] * period);
        }
        self.seg_bus_ps.clear();
        self.seg_hop_wait_ps.clear();
        let hop_wait_ticks = cfg.timing.wp_sample_ticks + cfg.timing.bu_sync_ticks;
        for clk in &plan.fast_seg {
            self.seg_bus_ps.push(bus_ticks * clk.period.d);
            self.seg_hop_wait_ps.push(hop_wait_ticks * clk.period.d);
        }
        self.ca_req_ps = cfg.timing.ca_request_ticks * plan.fast_ca.period.d;
    }
}

// ---------------------------------------------------------------------------
// entry point

/// Execute `plan` on the fast core. Dispatches once over the
/// arbitration × release matrix to the matching monomorphised loop; the
/// report is bit-identical to the interpreter's.
///
/// # Panics
/// Panics if `frames` is zero (same contract as the interpreter).
pub(crate) fn run_fast(
    plan: &EnginePlan,
    sc: &mut FastScratch,
    cfg: &EmulatorConfig,
    frames: u64,
    out: &mut EmulationReport,
) {
    assert!(frames > 0, "at least one frame");
    assert!(
        frames <= MAX_FRAMES,
        "frame count exceeds the packed-event range"
    );
    use ArbitrationPolicy as A;
    use ProducerRelease as R;
    match (cfg.arbitration, cfg.producer_release) {
        (A::Fifo, R::AfterDelivery) => {
            run_mono::<FifoArb, RelDelivery, false>(plan, sc, cfg, frames, None, out)
        }
        (A::Fifo, R::AfterLocalPhase) => {
            run_mono::<FifoArb, RelLocal, false>(plan, sc, cfg, frames, None, out)
        }
        (A::FixedPriority, R::AfterDelivery) => {
            run_mono::<PriorityArb, RelDelivery, false>(plan, sc, cfg, frames, None, out)
        }
        (A::FixedPriority, R::AfterLocalPhase) => {
            run_mono::<PriorityArb, RelLocal, false>(plan, sc, cfg, frames, None, out)
        }
        (A::FairRoundRobin, R::AfterDelivery) => {
            run_mono::<FairArb, RelDelivery, false>(plan, sc, cfg, frames, None, out)
        }
        (A::FairRoundRobin, R::AfterLocalPhase) => {
            run_mono::<FairArb, RelLocal, false>(plan, sc, cfg, frames, None, out)
        }
    }
}

/// [`run_fast`] with trace emission: the traced instantiations stream
/// the interpreter's exact event sequence into `sink` as the run
/// executes. The report is bit-identical to [`run_fast`]'s (and the
/// interpreter's); `report.trace` stays `None` — the events went to the
/// sink, which may be an in-memory [`crate::TraceLog`] or a streaming
/// [`crate::sbt::SbtWriter`].
///
/// # Panics
/// Panics if `frames` is zero (same contract as the interpreter).
pub(crate) fn run_fast_traced(
    plan: &EnginePlan,
    sc: &mut FastScratch,
    cfg: &EmulatorConfig,
    frames: u64,
    sink: &mut dyn TraceSink,
    out: &mut EmulationReport,
) {
    assert!(frames > 0, "at least one frame");
    assert!(
        frames <= MAX_FRAMES,
        "frame count exceeds the packed-event range"
    );
    use ArbitrationPolicy as A;
    use ProducerRelease as R;
    match (cfg.arbitration, cfg.producer_release) {
        (A::Fifo, R::AfterDelivery) => {
            run_mono::<FifoArb, RelDelivery, true>(plan, sc, cfg, frames, Some(sink), out)
        }
        (A::Fifo, R::AfterLocalPhase) => {
            run_mono::<FifoArb, RelLocal, true>(plan, sc, cfg, frames, Some(sink), out)
        }
        (A::FixedPriority, R::AfterDelivery) => {
            run_mono::<PriorityArb, RelDelivery, true>(plan, sc, cfg, frames, Some(sink), out)
        }
        (A::FixedPriority, R::AfterLocalPhase) => {
            run_mono::<PriorityArb, RelLocal, true>(plan, sc, cfg, frames, Some(sink), out)
        }
        (A::FairRoundRobin, R::AfterDelivery) => {
            run_mono::<FairArb, RelDelivery, true>(plan, sc, cfg, frames, Some(sink), out)
        }
        (A::FairRoundRobin, R::AfterLocalPhase) => {
            run_mono::<FairArb, RelLocal, true>(plan, sc, cfg, frames, Some(sink), out)
        }
    }
}

fn run_mono<'r, A: Arbitration, R: Release, const TRACED: bool>(
    plan: &'r EnginePlan,
    sc: &'r mut FastScratch,
    cfg: &EmulatorConfig,
    frames: u64,
    sink: Option<&'r mut dyn TraceSink>,
    out: &mut EmulationReport,
) {
    let bus_ticks = cfg.timing.bus_transaction_ticks(plan.s);
    sc.reset(plan, frames, cfg, bus_ticks, TRACED);
    FastRun::<A, R, TRACED> {
        plan,
        sc,
        frames,
        bus_ticks,
        ca_request_ticks: cfg.timing.ca_request_ticks,
        ca_grant_ticks: cfg.timing.ca_grant_ticks,
        ca_release_ticks: cfg.timing.ca_release_ticks,
        sink,
        _policy: PhantomData,
    }
    .execute_into(out)
}

// ---------------------------------------------------------------------------
// one monomorphised run

struct FastRun<'r, 'a, A, R, const TRACED: bool> {
    plan: &'r EnginePlan<'a>,
    sc: &'r mut FastScratch,
    frames: u64,
    bus_ticks: u64,
    ca_request_ticks: u64,
    ca_grant_ticks: u64,
    ca_release_ticks: u64,
    /// `Some` exactly when `TRACED`; the untraced instantiations never
    /// read it and the branch in [`Self::trace`] folds away.
    sink: Option<&'r mut dyn TraceSink>,
    _policy: PhantomData<(A, R)>,
}

impl<A: Arbitration, R: Release, const TRACED: bool> FastRun<'_, '_, A, R, TRACED> {
    /// Emit a trace event; a no-op compiled out entirely when `!TRACED`.
    #[inline(always)]
    fn trace(&mut self, e: TraceEvent) {
        if TRACED {
            if let Some(s) = &mut self.sink {
                s.emit(&e);
            }
        }
    }

    // -- queue ------------------------------------------------------------

    /// Insert at the leftmost slot among equal timestamps: among
    /// simultaneous events the earliest-scheduled sits rightmost and
    /// [`Self::pop`] takes it first, which reproduces the interpreter's
    /// `(time, seq)` order without materialising sequence numbers.
    #[inline(always)]
    fn schedule(&mut self, at: Picos, ev: u64) {
        let q = &mut self.sc.queue;
        let i = q.partition_point(|e| e.at > at.0);
        q.insert(i, QEntry { at: at.0, ev });
    }

    #[inline(always)]
    fn pop(&mut self) -> Option<QEntry> {
        self.sc.queue.pop()
    }

    /// Schedule a local dispatch at `at` unless one is already
    /// outstanding there (see the dedup argument in the module docs).
    #[inline(always)]
    fn request_dispatch(&mut self, seg: SegmentId, at: Picos) {
        let slot = &mut self.sc.retry_at[seg.index()];
        if *slot == at.0 {
            return;
        }
        *slot = at.0;
        self.schedule(at, ev::pack(ev::SA_DISPATCH, seg.0 as u32, 0));
    }

    /// Schedule a CA first-fit scan at `at` unless one is already
    /// outstanding there. All state a scan reads is written only by
    /// events that pop *before* any same-time scan (arrivals and
    /// releases are scheduled from strictly earlier instants), so
    /// back-to-back scans at one timestamp are no-ops after the first.
    #[inline(always)]
    fn request_ca_dispatch(&mut self, at: Picos) {
        if self.sc.ca_disp_at == at.0 {
            return;
        }
        self.sc.ca_disp_at = at.0;
        self.schedule(at, ev::pack(ev::CA_DISPATCH, 0, 0));
    }

    #[inline(always)]
    fn touch_sa(&mut self, si: usize, at: Picos) {
        let c = &mut self.sc.sas[si];
        c.last_activity = c.last_activity.max(at);
    }

    // -- wave / producer control ------------------------------------------

    /// Arm wave 0 of every frame at `t = 0`, batching frames 1.. (see the
    /// module docs for the order-identity argument).
    fn arm_frames(&mut self) {
        let plan = self.plan;
        if plan.waves[0].is_empty() {
            // An empty first wave completes immediately and cascades into
            // later waves per frame; keep the interpreter's literal order.
            for frame in 0..self.frames {
                self.start_instance(frame as usize * plan.waves.len(), Picos::ZERO);
            }
            return;
        }
        // Frame 0 arms and kicks exactly like the interpreter — the first
        // package picks (and their round-robin cursor updates) must see
        // frame 0's pending entries only.
        self.start_instance(0, Picos::ZERO);
        // Every wave-0 producer is now busy, so the interpreter's kick
        // scans for frames 1.. are no-ops; batch the remaining arming
        // passes into plain pending appends. No event has popped yet, so
        // the appends land before any further pick, as they do there.
        for frame in 1..self.frames {
            for f in &plan.waves[0] {
                let src = plan.flow_src[f.index()];
                self.sc.prod_pending[src.index()].push((
                    *f,
                    plan.flow_pkgs[f.index()],
                    frame as u32,
                ));
            }
        }
    }

    /// Arm the producers of wave instance `g` at global time `t`.
    fn start_instance(&mut self, g: usize, t: Picos) {
        let plan = self.plan;
        let w = g % plan.waves.len();
        let frame = (g / plan.waves.len()) as u32;
        let flows = &plan.waves[w];
        if flows.is_empty() {
            self.complete_instance(g, t);
            return;
        }
        for f in flows {
            let src = plan.flow_src[f.index()];
            self.sc.prod_pending[src.index()].push((*f, plan.flow_pkgs[f.index()], frame));
        }
        for p in 0..plan.nproc {
            if !self.sc.prod_busy[p] && !self.sc.prod_pending[p].is_empty() {
                self.start_next_package(ProcessId(p as u32), t);
            }
        }
    }

    fn complete_instance(&mut self, g: usize, now: Picos) {
        self.trace(TraceEvent {
            at: now,
            kind: TraceKind::WaveComplete,
            flow: None,
            package: None,
            process: None,
            segment: None,
        });
        let w = g % self.plan.waves.len();
        if w + 1 < self.plan.waves.len() {
            self.start_instance(g + 1, now);
        }
    }

    /// Round-robin pick of the producer's next package, with the
    /// interpreter's exact cursor updates, and account its compute
    /// ticks. Returns `None` when nothing is pending.
    #[inline]
    fn pick_package(&mut self, pi: usize) -> Option<(FlowId, u32)> {
        let pending = &mut self.sc.prod_pending[pi];
        if pending.is_empty() {
            return None;
        }
        let len = pending.len();
        let rr = self.sc.prod_rr[pi];
        let idx = if rr < len { rr } else { rr % len };
        let (flow, remaining, frame) = pending[idx];
        if TRACED {
            // Reconstruct the interpreter's frame-global package index
            // from the pre-decrement remaining count; one compute is in
            // flight per producer, so a single slot suffices.
            let pkgs = self.plan.flow_pkgs[flow.index()];
            self.sc.cur_pkg[pi] = frame as u64 * pkgs + (pkgs - remaining);
        }
        if remaining == 1 {
            pending.remove(idx);
            let len = pending.len();
            if len > 0 && self.sc.prod_rr[pi] >= len {
                self.sc.prod_rr[pi] %= len;
            }
        } else {
            pending[idx].1 -= 1;
            let len = pending.len();
            let rr = &mut self.sc.prod_rr[pi];
            *rr += 1;
            if *rr >= len {
                *rr %= len.max(1);
            }
        }
        self.sc.fus[pi].compute_ticks += self.plan.flow_compute[flow.index()];
        Some((flow, frame))
    }

    fn start_next_package(&mut self, p: ProcessId, t: Picos) {
        let pi = p.index();
        let Some((flow, frame)) = self.pick_package(pi) else {
            self.sc.prod_busy[pi] = false;
            return;
        };
        self.sc.prod_busy[pi] = true;

        let seg = self.plan.proc_seg[pi];
        let start = self.plan.fast_seg[seg.index()].next_edge(t);
        let end = start + Picos(self.sc.flow_compute_ps[flow.index()]);
        if self.sc.fus[pi].start.is_none() {
            self.sc.fus[pi].start = Some(start);
        }
        self.trace(TraceEvent {
            at: start,
            kind: TraceKind::ComputeStart,
            flow: Some(flow),
            package: Some(if TRACED { self.sc.cur_pkg[pi] } else { 0 }),
            process: Some(p),
            segment: Some(seg),
        });
        self.schedule(end, ev::pack(ev::COMPUTE_DONE, flow.0, frame));
    }

    // -- event handlers ----------------------------------------------------

    fn on_compute_done(&mut self, now: Picos, flow: FlowId, frame: u32) {
        let plan = self.plan;
        let src = plan.flow_src[flow.index()];
        let src_seg = plan.proc_seg[src.index()];
        let si = src_seg.index();
        self.trace(TraceEvent {
            at: now,
            kind: TraceKind::ComputeEnd,
            flow: Some(flow),
            package: Some(if TRACED {
                self.sc.cur_pkg[src.index()]
            } else {
                0
            }),
            process: Some(src),
            segment: Some(src_seg),
        });
        self.touch_sa(si, now);
        let path = plan.flow_path[flow.index()];
        if path == NO_PATH {
            // Burst stepping elides the serve/deliver events wholesale,
            // so the traced instantiations never take it.
            if !TRACED
                && self.sc.queue.is_empty()
                && self.sc.ca_queue.is_empty()
                && self.sc.sa_queue[si].is_empty()
                && !self.sc.reserved[si]
                && self.sc.bus_free[si] <= now
                && self.try_burst(now, flow, frame, si)
            {
                return;
            }
            self.sc.sas[si].intra_requests += 1;
            self.sc.sa_queue[si].push_back(LocalReq { flow, frame });
            if TRACED {
                let pkg = self.sc.cur_pkg[src.index()];
                self.sc.sa_pkg[si].push_back(pkg);
            }
            // Compute ends on an edge of the producer's own segment
            // clock, so the interpreter's `next_edge(now)` is `now` and
            // the FIFO inline-dispatch condition always holds.
            debug_assert_eq!(plan.fast_seg[si].next_edge(now), now);
            if A::FIFO {
                self.on_sa_dispatch(now, src_seg);
            } else {
                self.request_dispatch(src_seg, now);
            }
        } else {
            self.sc.sas[si].inter_requests += 1;
            let req = self.sc.transfers.len() as u32;
            self.sc.transfers.push(InterTransfer { flow, frame, path });
            if TRACED {
                let pkg = self.sc.cur_pkg[src.index()];
                self.sc.tr_pkg.push(pkg);
            }
            let at = plan.fast_ca.next_edge(now) + Picos(self.sc.ca_req_ps);
            self.schedule(at, ev::pack(ev::CA_ARRIVE, req, 0));
        }
    }

    /// Burst stepping — the batch-stepping leg of the tentpole. When a
    /// `ComputeDone` pops with nothing else in flight (empty event
    /// queue, empty CA queue, idle unreserved local bus), the producer
    /// is provably alone: no other event exists to interleave, and none
    /// of the implied handlers can create one as long as every package
    /// is local and no delivery completes its wave instance. Under
    /// those conditions the compute → serve → deliver cycle is fully
    /// determined — every implied timestamp is a multiple of the
    /// segment period, so the interpreter's per-cycle `next_edge` calls
    /// are all fixed points — and the burst steps packages in a tight
    /// loop with no event traffic at all: identical counter deltas,
    /// identical timestamps, identical round-robin picks. The real
    /// event stream resumes when the producer idles (the run may drain
    /// here, so the makespan is advanced to each implied pop), when the
    /// next picked package is inter-segment (its `ComputeDone` is
    /// scheduled as a real event), or when the next delivery would
    /// complete a wave instance — arming cascades can wake other
    /// producers, so that package is handed back to the generic
    /// handler. Returns `false`, with no state touched, if not even the
    /// first cycle can be proven deterministic.
    fn try_burst(&mut self, now: Picos, flow: FlowId, frame: u32, si: usize) -> bool {
        let plan = self.plan;
        let src = plan.flow_src[flow.index()];
        let pi = src.index();
        // An empty event queue means no dispatch is outstanding, so the
        // dedup markers must be clear (their events have all popped).
        debug_assert_eq!(self.sc.retry_at[si], u64::MAX);
        debug_assert_eq!(self.sc.ca_disp_at, u64::MAX);
        debug_assert!(self.sc.prod_busy[pi]);

        let mut flow = flow;
        let mut frame = frame;
        // Time of the current package's (implied) `ComputeDone` pop.
        let mut t_cd = now;
        let mut stepped = false;
        loop {
            let g = frame as usize * plan.waves.len() + plan.flow_wave[flow.index()];
            debug_assert!(self.sc.instance_remaining[g] >= 1);
            if self.sc.instance_remaining[g] == 1 {
                // This delivery completes the wave instance; hand the
                // package back to the generic handler (whose own burst
                // check lands right back here and stops the recursion).
                if !stepped {
                    return false;
                }
                self.sc.makespan = t_cd;
                self.on_compute_done(t_cd, flow, frame);
                return true;
            }
            stepped = true;
            // Serve: the request arrives on a clock edge of an idle,
            // unreserved bus, so it is granted and served immediately.
            debug_assert_eq!(plan.fast_seg[si].next_edge(t_cd), t_cd);
            let e = Picos(t_cd.0 + self.sc.seg_bus_ps[si]);
            let sa = &mut self.sc.sas[si];
            sa.intra_requests += 1;
            sa.busy_ticks += self.bus_ticks;
            self.sc.served[pi] += 1;
            // Deliver at the serve end.
            let dst = plan.flow_dst[flow.index()];
            let fu = &mut self.sc.fus[dst.index()];
            fu.packages_received += 1;
            fu.last_received = Some(e);
            self.sc.remaining_inp[dst.index()] -= 1;
            self.maybe_raise_flag(e, dst);
            self.sc.instance_remaining[g] -= 1;
            // Release the producer.
            let fu = &mut self.sc.fus[pi];
            debug_assert!(fu.start.is_some(), "producer started this package");
            fu.packages_sent += 1;
            fu.end = Some(e);
            self.sc.remaining_out[pi] -= 1;
            self.maybe_raise_flag(e, src);
            // Pick the next package with the interpreter's round-robin.
            match self.pick_package(pi) {
                None => {
                    self.sc.prod_busy[pi] = false;
                    self.finish_burst(si, e);
                    return true;
                }
                Some((f2, fr2)) => {
                    let t2 = Picos(e.0 + self.sc.flow_compute_ps[f2.index()]);
                    if plan.flow_path[f2.index()] != NO_PATH {
                        // Inter-segment package: back to real events.
                        self.finish_burst(si, e);
                        self.schedule(t2, ev::pack(ev::COMPUTE_DONE, f2.0, fr2));
                        return true;
                    }
                    flow = f2;
                    frame = fr2;
                    t_cd = t2;
                }
            }
        }
    }

    /// Settle the deferred per-serve stores of a burst: `bus_free`, the
    /// SA activity clock and the makespan all advance to the last
    /// implied serve end (each is monotone and nothing read them while
    /// the burst ran).
    #[inline(always)]
    fn finish_burst(&mut self, si: usize, e: Picos) {
        self.sc.bus_free[si] = e;
        self.touch_sa(si, e);
        self.sc.makespan = e;
    }

    fn on_sa_dispatch(&mut self, now: Picos, seg: SegmentId) {
        let plan = self.plan;
        let si = seg.index();
        if self.sc.sa_queue[si].is_empty() {
            return;
        }
        if self.sc.reserved[si] {
            // Reserved into an inter-segment circuit; PhaseDone re-kicks.
            return;
        }
        if self.sc.bus_free[si] > now {
            let at = self.sc.bus_free[si];
            self.request_dispatch(seg, at);
            return;
        }
        let pick = A::pick(&self.sc.sa_queue[si], &plan.flow_src, &self.sc.served);
        let req = self.sc.sa_queue[si].remove(pick).expect("index in range");
        let pkg = if TRACED {
            self.sc.sa_pkg[si].remove(pick).expect("index in range")
        } else {
            0
        };
        self.sc.served[plan.flow_src[req.flow.index()].index()] += 1;
        // Dispatches run on edges of this segment's clock (see module
        // docs), so the serve starts at `now` exactly.
        debug_assert_eq!(plan.fast_seg[si].next_edge(now), now);
        let end = now + Picos(self.sc.seg_bus_ps[si]);
        self.sc.bus_free[si] = end;
        self.sc.sas[si].busy_ticks += self.bus_ticks;
        self.touch_sa(si, end);
        self.trace(TraceEvent {
            at: now,
            kind: TraceKind::BusStart,
            flow: Some(req.flow),
            package: Some(pkg),
            process: None,
            segment: Some(seg),
        });
        self.trace(TraceEvent {
            at: end,
            kind: TraceKind::BusEnd,
            flow: Some(req.flow),
            package: Some(pkg),
            process: None,
            segment: Some(seg),
        });
        let chain = !self.sc.sa_queue[si].is_empty();
        if self.sc.queue.last().is_none_or(|x| x.at > end.0) {
            // Every queued event lies strictly after `end`, so the
            // IntraDone we are about to schedule would be the unique
            // minimum and pop next; running it synchronously is
            // order-identical and skips the queue round-trip. (A dedup
            // marker equal to `end` cannot exist: markers always back a
            // queued event at their timestamp.)
            self.sc.makespan = end;
            self.on_intra_done(end, req.flow, req.frame, chain, pkg);
            return;
        }
        if TRACED {
            self.sc.intra_pkg[si].push_back(pkg);
        }
        if chain {
            // The fused follow-up dispatch doubles as the outstanding
            // retry at `end` — later busy attempts dedup against it.
            self.sc.retry_at[si] = end.0;
        }
        self.schedule(
            end,
            ev::pack(ev::INTRA_DONE, req.flow.0, req.frame << 1 | chain as u32),
        );
    }

    fn on_ca_arrive(&mut self, now: Picos, req: u32) {
        self.sc.ca.inter_requests += 1;
        self.sc.ca.busy_ticks += self.ca_request_ticks;
        self.sc.ca_queue.push_back(req);
        self.request_ca_dispatch(now);
    }

    fn on_ca_dispatch(&mut self, now: Picos) {
        // First-fit scan over the queued inter-segment requests.
        let plan = self.plan;
        let mut i = 0;
        while i < self.sc.ca_queue.len() {
            let req = self.sc.ca_queue[i];
            let tr = self.sc.transfers[req as usize];
            let available = plan.paths[tr.path as usize]
                .segs
                .iter()
                .all(|m| !self.sc.reserved[m.index()]);
            if available {
                self.sc.ca_queue.remove(i);
                self.grant(now, req);
            } else {
                i += 1;
            }
        }
    }

    /// Reserve the whole path and pre-schedule every hop.
    fn grant(&mut self, now: Picos, req: u32) {
        let plan = self.plan;
        let tr = self.sc.transfers[req as usize];
        let pkg = if TRACED {
            self.sc.tr_pkg[req as usize]
        } else {
            0
        };
        self.sc.ca.grants += 1;
        self.sc.ca.busy_ticks += self.ca_grant_ticks;
        let path = &plan.paths[tr.path as usize];

        let mut prev_end = Picos::ZERO;
        for (hop, &m) in path.segs.iter().enumerate() {
            let mi = m.index();
            let clk = plan.fast_seg[mi];
            self.sc.reserved[mi] = true;
            // `bus_free` is a past serve/hop end — already on this
            // segment's clock edge, so draining needs no re-snap.
            let drain = self.sc.bus_free[mi];
            debug_assert_eq!(clk.next_edge(drain), drain);
            let start = if hop == 0 {
                clk.next_edge(now).max(drain)
            } else {
                let base = clk.next_edge(prev_end);
                let start = (base + Picos(self.sc.seg_hop_wait_ps[mi])).max(drain);
                let wp = clk.ticks_at(start - prev_end);
                let b = &mut self.sc.bus_ctr[path.bu[hop - 1] as usize];
                b.waiting_ticks += wp;
                b.tct += 2 * plan.s as u64 + wp;
                start
            };
            let end = start + Picos(self.sc.seg_bus_ps[mi]);
            self.sc.bus_free[mi] = end;
            self.sc.sas[mi].busy_ticks += self.bus_ticks;
            self.touch_sa(mi, end);
            self.trace(TraceEvent {
                at: start,
                kind: TraceKind::BusStart,
                flow: Some(tr.flow),
                package: Some(pkg),
                process: None,
                segment: Some(m),
            });
            self.trace(TraceEvent {
                at: end,
                kind: TraceKind::BusEnd,
                flow: Some(tr.flow),
                package: Some(pkg),
                process: None,
                segment: Some(m),
            });
            if hop + 1 < path.segs.len() {
                let b = &mut self.sc.bus_ctr[path.bu[hop] as usize];
                if path.load_left[hop] {
                    b.received_from_left += 1;
                } else {
                    b.received_from_right += 1;
                }
                self.trace(TraceEvent {
                    at: end,
                    kind: TraceKind::BuLoaded,
                    flow: Some(tr.flow),
                    package: Some(pkg),
                    process: None,
                    segment: Some(m),
                });
            }
            if hop > 0 {
                let b = &mut self.sc.bus_ctr[path.bu[hop - 1] as usize];
                if path.unload_right[hop - 1] {
                    b.transferred_to_right += 1;
                } else {
                    b.transferred_to_left += 1;
                }
                self.sc.sas[mi].intra_requests += 1;
                self.trace(TraceEvent {
                    at: start,
                    kind: TraceKind::BuUnloaded,
                    flow: Some(tr.flow),
                    package: Some(pkg),
                    process: None,
                    segment: Some(m),
                });
            }
            self.schedule(end, ev::pack(ev::PHASE_DONE, req, hop as u32));
            prev_end = end;
        }
        let src = path.segs[0];
        if path.load_left[0] {
            self.sc.sas[src.index()].packets_to_right += 1;
        } else {
            self.sc.sas[src.index()].packets_to_left += 1;
        }
    }

    fn on_intra_done(&mut self, now: Picos, flow: FlowId, frame: u32, chain: bool, pkg: u64) {
        let src = self.plan.flow_src[flow.index()];
        self.deliver(now, flow, frame, pkg);
        self.producer_transfer_done(now, src);
        if !self.sc.ca_queue.is_empty() {
            self.request_ca_dispatch(self.plan.fast_ca.next_edge(now));
        }
        if chain {
            // The fused serve chain: in the interpreter this is a
            // dispatch event with the sequence number right after this
            // IntraDone's, so nothing can pop in between and running it
            // here is order-identical.
            let seg = self.plan.proc_seg[src.index()];
            if self.sc.retry_at[seg.index()] == now.0 {
                self.sc.retry_at[seg.index()] = u64::MAX;
            }
            self.on_sa_dispatch(now, seg);
        }
    }

    fn on_phase_done(&mut self, now: Picos, req: u32, hop: u8) {
        let plan = self.plan;
        let tr = self.sc.transfers[req as usize];
        let path = &plan.paths[tr.path as usize];
        let seg = path.segs[hop as usize];
        self.sc.reserved[seg.index()] = false;
        self.sc.ca.releases += 1;
        self.sc.ca.busy_ticks += self.ca_release_ticks;
        let src = plan.flow_src[tr.flow.index()];
        let last = hop as usize == path.segs.len() - 1;
        if R::AFTER_LOCAL_PHASE {
            if hop == 0 {
                self.producer_transfer_done(now, src);
            }
        } else if last {
            self.producer_transfer_done(now, src);
        }
        if last {
            let pkg = if TRACED {
                self.sc.tr_pkg[req as usize]
            } else {
                0
            };
            self.deliver(now, tr.flow, tr.frame, pkg);
        }
        if !self.sc.sa_queue[seg.index()].is_empty() {
            self.request_dispatch(seg, now);
        }
        if !self.sc.ca_queue.is_empty() {
            self.request_ca_dispatch(plan.fast_ca.next_edge(now));
        }
    }

    fn producer_transfer_done(&mut self, now: Picos, p: ProcessId) {
        let pi = p.index();
        self.sc.fus[pi].packages_sent += 1;
        self.sc.fus[pi].end = Some(now);
        self.sc.remaining_out[pi] -= 1;
        self.maybe_raise_flag(now, p);
        self.start_next_package(p, now);
    }

    fn deliver(&mut self, now: Picos, flow: FlowId, frame: u32, pkg: u64) {
        let plan = self.plan;
        let dst = plan.flow_dst[flow.index()];
        let di = dst.index();
        let fu = &mut self.sc.fus[di];
        fu.packages_received += 1;
        fu.last_received = Some(now);
        self.sc.remaining_inp[di] -= 1;
        self.trace(TraceEvent {
            at: now,
            kind: TraceKind::Delivered,
            flow: Some(flow),
            package: Some(pkg),
            process: Some(dst),
            segment: Some(plan.proc_seg[di]),
        });
        self.maybe_raise_flag(now, dst);
        // The frame travelled with the package (module docs), so no
        // package-index division is needed here.
        let g = frame as usize * plan.waves.len() + plan.flow_wave[flow.index()];
        self.sc.instance_remaining[g] -= 1;
        if self.sc.instance_remaining[g] == 0 {
            self.complete_instance(g, now);
        }
    }

    #[inline(always)]
    fn maybe_raise_flag(&mut self, now: Picos, p: ProcessId) {
        let i = p.index();
        if !self.sc.fus[i].flag && self.sc.remaining_out[i] == 0 && self.sc.remaining_inp[i] == 0 {
            self.sc.fus[i].flag = true;
            self.trace(TraceEvent {
                at: now,
                kind: TraceKind::FlagRaised,
                flow: None,
                package: None,
                process: Some(p),
                segment: None,
            });
        }
    }

    // -- main loop ---------------------------------------------------------

    fn execute_into(mut self, out: &mut EmulationReport) {
        let plan = self.plan;
        if !plan.waves.is_empty() {
            self.arm_frames();
        }
        while let Some(e) = self.pop() {
            let at = Picos(e.at);
            debug_assert!(at >= self.sc.makespan, "time ran backwards");
            // Pops are nondecreasing in time, so the makespan is simply
            // the last popped timestamp.
            self.sc.makespan = at;
            match ev::tag(e.ev) {
                ev::COMPUTE_DONE => self.on_compute_done(at, FlowId(ev::a(e.ev)), ev::b(e.ev)),
                ev::SA_DISPATCH => {
                    let seg = SegmentId(ev::a(e.ev) as u16);
                    if self.sc.retry_at[seg.index()] == at.0 {
                        self.sc.retry_at[seg.index()] = u64::MAX;
                    }
                    self.on_sa_dispatch(at, seg);
                }
                ev::CA_ARRIVE => self.on_ca_arrive(at, ev::a(e.ev)),
                ev::CA_DISPATCH => {
                    if self.sc.ca_disp_at == at.0 {
                        self.sc.ca_disp_at = u64::MAX;
                    }
                    self.on_ca_dispatch(at);
                }
                ev::INTRA_DONE => {
                    let fc = ev::b(e.ev);
                    let flow = FlowId(ev::a(e.ev));
                    let pkg = if TRACED {
                        // Serve ends are strictly increasing per segment,
                        // so outstanding IntraDones pop in push order.
                        let si = plan.proc_seg[plan.flow_src[flow.index()].index()].index();
                        self.sc.intra_pkg[si].pop_front().expect("pending serve")
                    } else {
                        0
                    };
                    self.on_intra_done(at, flow, fc >> 1, fc & 1 != 0, pkg);
                }
                _ => {
                    debug_assert_eq!(ev::tag(e.ev), ev::PHASE_DONE);
                    self.on_phase_done(at, ev::a(e.ev), ev::b(e.ev) as u8);
                }
            }
        }
        debug_assert!(
            self.sc.fus.iter().all(|f| f.flag),
            "emulation drained with unraised flags — schedule deadlock"
        );
        for (i, sa) in self.sc.sas.iter_mut().enumerate() {
            sa.tct = plan.seg_clock[i].ticks_covering(sa.last_activity);
        }
        self.sc.ca.tct = plan.ca_clock.ticks_covering(self.sc.makespan);
        // clone_from reuses the output report's allocations (see the
        // interpreter's execute_into); the result is bit-identical to a
        // freshly assembled report.
        out.sas.clone_from(&self.sc.sas);
        out.ca = self.sc.ca;
        out.bus.clone_from(&self.sc.bus_ctr);
        out.bu_refs.clear();
        out.bu_refs.extend(plan.psm.platform().border_units());
        out.fus.clone_from(&self.sc.fus);
        out.segment_clocks.clone_from(&plan.seg_clock);
        out.ca_clock = plan.ca_clock;
        out.package_size = plan.s;
        out.makespan = self.sc.makespan;
        out.trace = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineKind;
    use crate::engine::Engine;
    use segbus_model::mapping::{Allocation, Psm};
    use segbus_model::platform::Platform;
    use segbus_model::psdf::{Application, Flow, Process};
    use segbus_model::time::ClockDomain;

    fn interpreter(cfg: EmulatorConfig) -> Engine {
        Engine::new(EmulatorConfig {
            engine: EngineKind::Interpreter,
            ..cfg
        })
    }

    fn fast(cfg: EmulatorConfig) -> Engine {
        Engine::new(EmulatorConfig {
            engine: EngineKind::Fast,
            ..cfg
        })
    }

    fn assert_identical(psm: &Psm, frames: u64, cfg: EmulatorConfig, label: &str) {
        let a = interpreter(cfg).run_frames(psm, frames);
        let b = fast(cfg).run_frames(psm, frames);
        assert_eq!(a.makespan, b.makespan, "{label}: makespan");
        assert_eq!(a.sas, b.sas, "{label}: sas");
        assert_eq!(a.ca, b.ca, "{label}: ca");
        assert_eq!(a.bus, b.bus, "{label}: bus");
        assert_eq!(a.fus, b.fus, "{label}: fus");
        assert_eq!(a.bu_refs, b.bu_refs, "{label}: bu_refs");
        assert_eq!(a.segment_clocks, b.segment_clocks, "{label}: clocks");
        assert_eq!(a.makespan, b.makespan, "{label}: makespan");
    }

    /// Mixed-shape PSM zoo: local + inter-segment + multi-wave +
    /// contention + ring wrap-around.
    fn shapes() -> Vec<Psm> {
        let uniform = |nseg: usize| {
            Platform::builder("t")
                .package_size(36)
                .ca_clock(ClockDomain::from_mhz(111.0))
                .uniform_segments(nseg, ClockDomain::from_mhz(97.0))
                .build()
                .unwrap()
        };

        let mut out = Vec::new();

        // Local pair.
        let mut app = Application::new("pair");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::final_("B"));
        app.add_flow(Flow::new(a, b, 5 * 36, 1, 100)).unwrap();
        let mut alloc = Allocation::new(1);
        alloc.assign(a, SegmentId(0));
        alloc.assign(b, SegmentId(0));
        out.push(Psm::new(uniform(1), app, alloc).unwrap());

        // Remote pair over two hops.
        let mut app = Application::new("remote");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::final_("B"));
        app.add_flow(Flow::new(a, b, 7 * 36, 1, 60)).unwrap();
        let mut alloc = Allocation::new(3);
        alloc.assign(a, SegmentId(0));
        alloc.assign(b, SegmentId(2));
        out.push(Psm::new(uniform(3), app, alloc).unwrap());

        // Contention: three producers flood one sink.
        let mut app = Application::new("flood");
        let ps: Vec<ProcessId> = (0..3)
            .map(|i| app.add_process(Process::initial(format!("A{i}"))))
            .collect();
        let sink = app.add_process(Process::final_("S"));
        for &p in &ps {
            app.add_flow(Flow::new(p, sink, 6 * 36, 1, 5)).unwrap();
        }
        let mut alloc = Allocation::new(1);
        for p in ps.iter().chain(std::iter::once(&sink)) {
            alloc.assign(*p, SegmentId(0));
        }
        out.push(Psm::new(uniform(1), app, alloc).unwrap());

        // Two waves crossing segments + a ring wrap.
        let mut app = Application::new("waves");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::new("B"));
        let c = app.add_process(Process::final_("C"));
        app.add_flow(Flow::new(a, b, 4 * 36, 1, 40)).unwrap();
        app.add_flow(Flow::new(b, c, 3 * 36, 2, 30)).unwrap();
        let mut alloc = Allocation::new(3);
        alloc.assign(a, SegmentId(2));
        alloc.assign(b, SegmentId(0));
        alloc.assign(c, SegmentId(1));
        let ring = Platform::builder("ring")
            .package_size(36)
            .topology(segbus_model::platform::Topology::Ring)
            .ca_clock(ClockDomain::from_mhz(100.0))
            .uniform_segments(3, ClockDomain::from_mhz(100.0))
            .build()
            .unwrap();
        out.push(Psm::new(ring, app, alloc).unwrap());

        // The full MP3 decoder mapping.
        out.push(segbus_apps::mp3::three_segment_psm());

        out
    }

    /// The heart of the tentpole: every arbitration × release pair, every
    /// shape, single- and multi-frame, bit-identical reports.
    #[test]
    fn fast_core_is_bit_identical_across_policy_matrix() {
        let arbs = [
            ArbitrationPolicy::Fifo,
            ArbitrationPolicy::FixedPriority,
            ArbitrationPolicy::FairRoundRobin,
        ];
        let rels = [
            ProducerRelease::AfterDelivery,
            ProducerRelease::AfterLocalPhase,
        ];
        for psm in shapes() {
            for &arbitration in &arbs {
                for &producer_release in &rels {
                    let cfg = EmulatorConfig {
                        arbitration,
                        producer_release,
                        ..EmulatorConfig::default()
                    };
                    for frames in [1, 3] {
                        let label = format!("{arbitration:?}/{producer_release:?}/f{frames}");
                        assert_identical(&psm, frames, cfg, &label);
                    }
                }
            }
        }
    }

    /// Detailed timing exercises the BU synchroniser arithmetic.
    #[test]
    fn fast_core_matches_under_detailed_timing() {
        for psm in shapes() {
            assert_identical(&psm, 2, EmulatorConfig::detailed(), "detailed");
        }
    }

    /// A reused engine alternating cores and shapes must not leak state.
    #[test]
    fn fast_scratch_reuse_is_bit_identical() {
        let mut engine = Engine::new(EmulatorConfig::default());
        for psm in shapes().iter().chain(shapes().iter().rev()) {
            let fresh = interpreter(EmulatorConfig::default()).run(psm);
            let reused = engine.run(psm);
            assert_eq!(fresh.makespan, reused.makespan);
            assert_eq!(fresh.sas, reused.sas);
            assert_eq!(fresh.ca, reused.ca);
            assert_eq!(fresh.bus, reused.bus);
            assert_eq!(fresh.fus, reused.fus);
        }
    }

    /// The traced fast instantiations reproduce the interpreter's trace
    /// **event for event** — same kinds, same timestamps, same
    /// flow/package/process/segment payloads, same emission order —
    /// across every shape, the full policy matrix, and multi-frame runs;
    /// the reports stay bit-identical at the same time.
    #[test]
    fn traced_fast_core_matches_interpreter_event_for_event() {
        let arbs = [
            ArbitrationPolicy::Fifo,
            ArbitrationPolicy::FixedPriority,
            ArbitrationPolicy::FairRoundRobin,
        ];
        let rels = [
            ProducerRelease::AfterDelivery,
            ProducerRelease::AfterLocalPhase,
        ];
        for psm in shapes() {
            for &arbitration in &arbs {
                for &producer_release in &rels {
                    let cfg = EmulatorConfig {
                        arbitration,
                        producer_release,
                        ..EmulatorConfig::traced()
                    };
                    for frames in [1, 3] {
                        let label = format!("{arbitration:?}/{producer_release:?}/f{frames}");
                        let a = interpreter(cfg).run_frames(&psm, frames);
                        let b = fast(cfg).run_frames(&psm, frames);
                        let ta = a.trace.as_ref().expect("interpreter trace").events();
                        let tb = b.trace.as_ref().expect("fast trace").events();
                        assert_eq!(ta.len(), tb.len(), "{label}: event count");
                        for (i, (x, y)) in ta.iter().zip(tb.iter()).enumerate() {
                            assert_eq!(x, y, "{label}: event {i}");
                        }
                        assert_eq!(a.makespan, b.makespan, "{label}: makespan");
                        assert_eq!(a.sas, b.sas, "{label}: sas");
                        assert_eq!(a.ca, b.ca, "{label}: ca");
                        assert_eq!(a.bus, b.bus, "{label}: bus");
                        assert_eq!(a.fus, b.fus, "{label}: fus");
                    }
                }
            }
        }
    }

    /// Traced detailed timing exercises the BU synchroniser trace sites.
    #[test]
    fn traced_fast_core_matches_under_detailed_timing() {
        let cfg = EmulatorConfig {
            trace: true,
            ..EmulatorConfig::detailed()
        };
        for psm in shapes() {
            let a = interpreter(cfg).run_frames(&psm, 2);
            let b = fast(cfg).run_frames(&psm, 2);
            assert_eq!(
                a.trace.as_ref().unwrap().events(),
                b.trace.as_ref().unwrap().events(),
                "detailed traced"
            );
            assert_eq!(a.makespan, b.makespan);
        }
    }

    /// Streaming a fast-core trace through an `.sbt` round-trip loses
    /// nothing: the file's decoded events equal the in-memory log.
    #[test]
    fn traced_fast_core_streams_to_sbt() {
        use crate::sbt::{read_trace, SbtWriter};
        let psm = segbus_apps::mp3::three_segment_psm();
        let in_memory = fast(EmulatorConfig::traced()).run_frames(&psm, 2);
        let dir = std::env::temp_dir().join(format!("fast-sbt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mp3.sbt");
        let mut sink = SbtWriter::create(&path, 3, 10).unwrap();
        let plan = EnginePlan::new(&psm);
        let streamed = {
            let mut engine = fast(EmulatorConfig::traced());
            engine.run_plan_with_sink(&plan, 2, &mut sink)
        };
        sink.finish().unwrap();
        assert!(streamed.trace.is_none(), "events went to the sink");
        assert_eq!(streamed.makespan, in_memory.makespan);
        let t = read_trace(&path).unwrap();
        assert!(!t.truncated);
        assert_eq!(t.log.events(), in_memory.trace.as_ref().unwrap().events());
    }

    /// Deep frame pipelining through the batched arming path.
    #[test]
    fn batched_frame_arming_matches_interpreter() {
        let psm = segbus_apps::mp3::three_segment_psm();
        for frames in [1, 2, 7, 16] {
            assert_identical(&psm, frames, EmulatorConfig::default(), "frames");
        }
    }

    /// The packed event must stay within one 16-byte queue entry, and
    /// the bit fields must round-trip.
    #[test]
    fn event_packing_round_trips() {
        assert_eq!(std::mem::size_of::<QEntry>(), 16);
        let e = ev::pack(ev::INTRA_DONE, u32::MAX, (1 << 29) - 1);
        assert_eq!(ev::tag(e), ev::INTRA_DONE);
        assert_eq!(ev::a(e), u32::MAX);
        assert_eq!(ev::b(e), (1 << 29) - 1);
    }
}
