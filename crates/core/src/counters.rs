//! Per-component monitoring counters.
//!
//! The paper instruments the `arbitrate` methods of the SA and CA and the
//! BU transfer paths with counting statements (§3.5); these structs hold
//! the same quantities and are filled in by the engine.

use segbus_model::time::{ClockDomain, Picos};

/// Counters of one segment arbiter.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SaCounters {
    /// Total clock ticks of the segment's own clock elapsed between the
    /// start of the emulation and this SA's last activity ("TCT").
    pub tct: u64,
    /// Requests for transfers that stay within the segment, plus BU
    /// deliveries this SA routed onto its bus (see DESIGN.md §4 on how
    /// this compares to the paper's print-out).
    pub intra_requests: u64,
    /// Requests targeting another segment (forwarded to the CA).
    pub inter_requests: u64,
    /// Packages this segment pushed into its left-hand BU.
    pub packets_to_left: u64,
    /// Packages this segment pushed into its right-hand BU.
    pub packets_to_right: u64,
    /// Ticks during which the segment bus was actually occupied by a
    /// transaction (for the Fig. 11 activity analysis).
    pub busy_ticks: u64,
    /// Global instant of the SA's last activity.
    pub last_activity: Picos,
}

impl SaCounters {
    /// The SA's execution time: `TCT × period` (paper §4, "Calculation of
    /// the execution time").
    pub fn execution_time(&self, clock: ClockDomain) -> Picos {
        clock.ticks_to_picos(self.tct)
    }
}

/// Counters of the central arbiter.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CaCounters {
    /// Total clock ticks of the CA clock from the start of the emulation
    /// until global quiescence (the CA polls every tick — §3.6: "The CA
    /// increments the clock tick's counter every time it checks for any
    /// incoming inter-segment transfer request").
    pub tct: u64,
    /// Inter-segment requests received from the SAs.
    pub inter_requests: u64,
    /// Path grants issued.
    pub grants: u64,
    /// Segment-grant resets performed (cascade releases).
    pub releases: u64,
    /// Ticks actually spent processing (requests + grants + releases), for
    /// the activity analysis.
    pub busy_ticks: u64,
}

impl CaCounters {
    /// The CA's execution time: `TCT × period`.
    pub fn execution_time(&self, clock: ClockDomain) -> Picos {
        clock.ticks_to_picos(self.tct)
    }
}

/// Counters of one border unit. Sides are named after the paper's
/// print-out: `from_left` counts packages received from the lower-numbered
/// segment, `to_right` packages delivered into the higher-numbered one,
/// and vice versa.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BuCounters {
    /// Packages received from the lower-numbered segment.
    pub received_from_left: u64,
    /// Packages received from the higher-numbered segment.
    pub received_from_right: u64,
    /// Packages delivered into the lower-numbered segment.
    pub transferred_to_left: u64,
    /// Packages delivered into the higher-numbered segment.
    pub transferred_to_right: u64,
    /// Total clock ticks spent loading, waiting and unloading
    /// (`TCT = UP + Σ WP` in the paper's bottleneck analysis).
    pub tct: u64,
    /// Σ of per-package waiting periods, in ticks (`WP` analysis).
    pub waiting_ticks: u64,
}

impl BuCounters {
    /// Total packages that entered the BU.
    pub fn total_in(&self) -> u64 {
        self.received_from_left + self.received_from_right
    }

    /// Total packages that left the BU.
    pub fn total_out(&self) -> u64 {
        self.transferred_to_left + self.transferred_to_right
    }

    /// The *useful period*: ticks to load and unload every package,
    /// `2 × s × packages` (paper §4: "it amounts to twice the size of a
    /// package" per transfer).
    pub fn useful_period(&self, package_size: u32) -> u64 {
        2 * package_size as u64 * self.total_in()
    }

    /// Average waiting period per package, in ticks (the paper's `W̄P`).
    pub fn avg_waiting_period(&self) -> f64 {
        if self.total_in() == 0 {
            0.0
        } else {
            self.waiting_ticks as f64 / self.total_in() as f64
        }
    }
}

/// Observed schedule of one functional unit (for the Fig. 10 timeline).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FuTimes {
    /// Instant the process started its first package computation, if it
    /// ever ran as a producer.
    pub start: Option<Picos>,
    /// Instant the process finished its last transfer (producer side).
    pub end: Option<Picos>,
    /// Instant the process received its last package (consumer side).
    pub last_received: Option<Picos>,
    /// Packages produced.
    pub packages_sent: u64,
    /// Clock ticks spent computing (the counter ranges of §3.3's FU model).
    pub compute_ticks: u64,
    /// Packages consumed.
    pub packages_received: u64,
    /// `true` once the process raised its *Process Status Flag* (all of
    /// its flows fully emitted — §3.3).
    pub flag: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bu_totals_and_up() {
        let b = BuCounters {
            received_from_left: 32,
            transferred_to_right: 32,
            tct: 2336,
            waiting_ticks: 32,
            ..Default::default()
        };
        assert_eq!(b.total_in(), 32);
        assert_eq!(b.total_out(), 32);
        // Paper: UP12 = 2304 at s = 36 with 32 packages.
        assert_eq!(b.useful_period(36), 2304);
        assert!((b.avg_waiting_period() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_bu_has_zero_wp() {
        assert_eq!(BuCounters::default().avg_waiting_period(), 0.0);
    }

    #[test]
    fn execution_times_multiply() {
        let sa = SaCounters {
            tct: 34764,
            ..Default::default()
        };
        let clk = ClockDomain::from_mhz(91.0);
        assert_eq!(sa.execution_time(clk), Picos(382_021_596));
        let ca = CaCounters {
            tct: 54367,
            ..Default::default()
        };
        assert_eq!(
            ca.execution_time(ClockDomain::from_mhz(111.0)),
            Picos(489_792_303)
        );
    }
}
