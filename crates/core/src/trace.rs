//! Package-level trace of an emulation run.
//!
//! When [`crate::EmulatorConfig::trace`] is on, the engine records one
//! [`TraceEvent`] per package phase. The report binaries turn the log into
//! the Fig. 10 per-process timeline and the Fig. 11 activity series.

use segbus_model::ids::{FlowId, ProcessId, SegmentId};
use segbus_model::time::Picos;

/// What happened.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceKind {
    /// A producer started computing a package.
    ComputeStart,
    /// A producer finished computing a package (transfer request follows).
    ComputeEnd,
    /// A package transfer started occupying a segment bus.
    BusStart,
    /// A package finished its bus transaction on a segment.
    BusEnd,
    /// A package was loaded into a border unit.
    BuLoaded,
    /// A package left a border unit into the next segment.
    BuUnloaded,
    /// A package reached its destination process.
    Delivered,
    /// A process raised its status flag (all its flows fully emitted).
    FlagRaised,
    /// A wave barrier was crossed (all flows of a wave fully delivered).
    WaveComplete,
}

/// One trace record.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Global time of the event.
    pub at: Picos,
    /// Event kind.
    pub kind: TraceKind,
    /// The flow involved (if any).
    pub flow: Option<FlowId>,
    /// Zero-based package index within the flow (if any).
    pub package: Option<u64>,
    /// The process involved (producer, consumer or flag owner).
    pub process: Option<ProcessId>,
    /// The segment involved (bus events).
    pub segment: Option<SegmentId>,
}

/// A destination for trace events as the engine emits them.
///
/// The engines don't commit to an in-memory [`TraceLog`]: a sink may
/// buffer events ([`TraceLog`] itself), stream them to disk
/// ([`crate::sbt::SbtWriter`]) or fold them into counters on the fly.
/// Events arrive in *emission* order — the engine's deterministic handler
/// order — which is not globally sorted by timestamp (`BusEnd` is emitted
/// at schedule time carrying a future timestamp).
pub trait TraceSink {
    /// Record one event.
    fn emit(&mut self, e: &TraceEvent);
}

impl TraceSink for TraceLog {
    fn emit(&mut self, e: &TraceEvent) {
        self.push(*e);
    }
}

/// An append-only event log, ordered by emission time.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// Empty log.
    pub fn new() -> TraceLog {
        TraceLog::default()
    }

    /// Append an event.
    pub fn push(&mut self, e: TraceEvent) {
        self.events.push(e);
    }

    /// All events in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one kind.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Events touching one process.
    pub fn of_process(&self, p: ProcessId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.process == Some(p))
    }

    /// Busy intervals `[start, end)` of one segment's bus, in emission
    /// order (pairs of `BusStart`/`BusEnd`).
    pub fn bus_intervals(&self, seg: SegmentId) -> Vec<(Picos, Picos)> {
        // Keyed on the full (flow, package) identity: a packed-integer key
        // would conflate distinct packages once a flow exceeds the packing
        // width, and flow=None with large flow ids.
        type BusKey = (Option<FlowId>, Option<u64>);
        let mut out = Vec::new();
        let mut open: Vec<(BusKey, Picos)> = Vec::new();
        for e in &self.events {
            if e.segment != Some(seg) {
                continue;
            }
            let key = (e.flow, e.package);
            match e.kind {
                TraceKind::BusStart => open.push((key, e.at)),
                TraceKind::BusEnd => {
                    if let Some(pos) = open.iter().position(|(k, _)| *k == key) {
                        let (_, start) = open.swap_remove(pos);
                        out.push((start, e.at));
                    }
                }
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            at: Picos(at),
            kind,
            flow: Some(FlowId(0)),
            package: Some(0),
            process: Some(ProcessId(1)),
            segment: Some(SegmentId(0)),
        }
    }

    #[test]
    fn push_and_filter() {
        let mut log = TraceLog::new();
        assert!(log.is_empty());
        log.push(ev(10, TraceKind::ComputeStart));
        log.push(ev(20, TraceKind::ComputeEnd));
        log.push(ev(30, TraceKind::Delivered));
        assert_eq!(log.len(), 3);
        assert_eq!(log.of_kind(TraceKind::Delivered).count(), 1);
        assert_eq!(log.of_process(ProcessId(1)).count(), 3);
        assert_eq!(log.of_process(ProcessId(2)).count(), 0);
    }

    #[test]
    fn bus_intervals_pair_up() {
        let mut log = TraceLog::new();
        log.push(ev(100, TraceKind::BusStart));
        log.push(ev(140, TraceKind::BusEnd));
        let mut other = ev(200, TraceKind::BusStart);
        other.package = Some(1);
        log.push(other);
        let mut other_end = ev(240, TraceKind::BusEnd);
        other_end.package = Some(1);
        log.push(other_end);
        let iv = log.bus_intervals(SegmentId(0));
        assert_eq!(iv, vec![(Picos(100), Picos(140)), (Picos(200), Picos(240))]);
        assert!(log.bus_intervals(SegmentId(1)).is_empty());
    }

    #[test]
    fn bus_intervals_do_not_conflate_distant_packages() {
        // Packages 2^20 apart within one flow used to collide under the
        // old `flow << 20 | package` packing.
        let mut log = TraceLog::new();
        let mut a = ev(100, TraceKind::BusStart);
        a.package = Some(0);
        let mut b = ev(150, TraceKind::BusStart);
        b.package = Some(1 << 20);
        let mut b_end = ev(180, TraceKind::BusEnd);
        b_end.package = Some(1 << 20);
        let mut a_end = ev(200, TraceKind::BusEnd);
        a_end.package = Some(0);
        log.push(a);
        log.push(b);
        log.push(b_end);
        log.push(a_end);
        let iv = log.bus_intervals(SegmentId(0));
        assert_eq!(iv, vec![(Picos(150), Picos(180)), (Picos(100), Picos(200))]);
    }

    #[test]
    fn bus_intervals_do_not_conflate_flowless_events_with_flows() {
        // flow=None used to pack to the same key as certain large flow ids.
        let mut log = TraceLog::new();
        let mut anon = ev(100, TraceKind::BusStart);
        anon.flow = None;
        anon.package = None;
        let mut flowed = ev(150, TraceKind::BusStart);
        flowed.flow = Some(FlowId(u32::MAX));
        flowed.package = None;
        let mut flowed_end = ev(170, TraceKind::BusEnd);
        flowed_end.flow = Some(FlowId(u32::MAX));
        flowed_end.package = None;
        let mut anon_end = ev(190, TraceKind::BusEnd);
        anon_end.flow = None;
        anon_end.package = None;
        log.push(anon);
        log.push(flowed);
        log.push(flowed_end);
        log.push(anon_end);
        let iv = log.bus_intervals(SegmentId(0));
        assert_eq!(iv, vec![(Picos(150), Picos(170)), (Picos(100), Picos(190))]);
    }
}
