//! Robustness of the DSL front-end: the lexer and parser must never panic,
//! and near-miss sources must produce positioned errors rather than junk.
//! Inputs come from a seeded [`SmallRng`] fuzzer (no external fuzzing
//! dependency), so every case is reproducible.

use segbus_dsl::{parse_source, parse_system};
use segbus_model::rng::SmallRng;

/// Keyword/punctuation soup: syntactically adjacent to real sources but
/// almost never valid.
fn arb_tokensoup(rng: &mut SmallRng) -> String {
    const FIXED: [&str; 17] = [
        "application",
        "platform",
        "process",
        "flow",
        "segment",
        "hosts",
        "items",
        "order",
        "ticks",
        "{",
        "}",
        ";",
        "->",
        "-",
        "//x",
        "/*",
        "*/",
    ];
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
    let n = rng.range_usize(0, 49);
    let mut toks = Vec::with_capacity(n);
    for _ in 0..n {
        match rng.range_usize(0, FIXED.len() + 1) {
            i if i < FIXED.len() => toks.push(FIXED[i].to_string()),
            i if i == FIXED.len() => {
                // A random identifier `[A-Za-z][A-Za-z0-9_]{0,6}`.
                let mut s = String::new();
                s.push(FIRST[rng.range_usize(0, FIRST.len() - 1)] as char);
                for _ in 0..rng.range_usize(0, 6) {
                    s.push(REST[rng.range_usize(0, REST.len() - 1)] as char);
                }
                toks.push(s);
            }
            _ => toks.push(rng.below(10_000).to_string()),
        }
    }
    toks.join(" ")
}

/// No token soup can panic the parser.
#[test]
fn parser_never_panics() {
    let mut rng = SmallRng::seed_from_u64(0xD_0001);
    for _ in 0..256 {
        let src = arb_tokensoup(&mut rng);
        let _ = parse_source(&src);
        let _ = parse_system(&src);
    }
}

/// Arbitrary unicode cannot panic the lexer.
#[test]
fn lexer_survives_unicode() {
    let mut rng = SmallRng::seed_from_u64(0xD_0002);
    for _ in 0..256 {
        let mut src = String::new();
        for _ in 0..rng.range_usize(0, 80) {
            if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                src.push(c);
            }
        }
        let _ = parse_source(&src);
    }
}

/// Errors always point at a plausible source position.
#[test]
fn errors_carry_positions() {
    let mut rng = SmallRng::seed_from_u64(0xD_0003);
    for case in 0..256 {
        let src = arb_tokensoup(&mut rng);
        if let Err(e) = parse_source(&src) {
            let span = e
                .span
                .unwrap_or_else(|| panic!("case {case}: unspanned error {e}"));
            assert!(span.line >= 1, "case {case}: {src:?}");
            assert!(span.col >= 1, "case {case}: {src:?}");
            assert!(!e.message.is_empty(), "case {case}: {src:?}");
            assert!(!e.code.is_empty(), "case {case}: {src:?}");
        }
    }
}

/// Deleting any single character from a valid source either still parses
/// or produces a positioned error — never a panic (classic mutation test).
#[test]
fn single_character_deletions_are_handled() {
    let src = r#"application a {
        process X initial;
        process Y final;
        flow X -> Y { items 72; order 1; ticks 10; }
    }
    platform p {
        package_size 36;
        ca { freq_mhz 111; }
        segment S { freq_mhz 100; hosts X Y; }
    }"#;
    assert!(parse_system(src).is_ok(), "baseline must parse");
    for i in 0..src.len() {
        if !src.is_char_boundary(i) || !src.is_char_boundary(i + 1) {
            continue;
        }
        let mutated: String = format!("{}{}", &src[..i], &src[i + 1..]);
        let _ = parse_system(&mutated); // must not panic
    }
}
