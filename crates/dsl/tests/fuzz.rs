//! Robustness of the DSL front-end: the lexer and parser must never panic,
//! and near-miss sources must produce positioned errors rather than junk.

use proptest::prelude::*;
use segbus_dsl::{parse_source, parse_system};

fn arb_tokensoup() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just("application".to_string()),
            Just("platform".to_string()),
            Just("process".to_string()),
            Just("flow".to_string()),
            Just("segment".to_string()),
            Just("hosts".to_string()),
            Just("items".to_string()),
            Just("order".to_string()),
            Just("ticks".to_string()),
            Just("{".to_string()),
            Just("}".to_string()),
            Just(";".to_string()),
            Just("->".to_string()),
            Just("-".to_string()),
            "[A-Za-z][A-Za-z0-9_]{0,6}".prop_map(|s| s),
            (0u64..10_000).prop_map(|n| n.to_string()),
            Just("//x".to_string()),
            Just("/*".to_string()),
            Just("*/".to_string()),
        ],
        0..50,
    )
    .prop_map(|v| v.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// No token soup can panic the parser.
    #[test]
    fn parser_never_panics(src in arb_tokensoup()) {
        let _ = parse_source(&src);
        let _ = parse_system(&src);
    }

    /// Arbitrary unicode cannot panic the lexer.
    #[test]
    fn lexer_survives_unicode(src in "\\PC{0,80}") {
        let _ = parse_source(&src);
    }

    /// Errors always point at a plausible source position.
    #[test]
    fn errors_carry_positions(src in arb_tokensoup()) {
        if let Err(e) = parse_source(&src) {
            prop_assert!(e.span.line >= 1);
            prop_assert!(e.span.col >= 1);
            prop_assert!(!e.message.is_empty());
        }
    }
}

/// Deleting any single character from a valid source either still parses
/// or produces a positioned error — never a panic (classic mutation test).
#[test]
fn single_character_deletions_are_handled() {
    let src = r#"application a {
        process X initial;
        process Y final;
        flow X -> Y { items 72; order 1; ticks 10; }
    }
    platform p {
        package_size 36;
        ca { freq_mhz 111; }
        segment S { freq_mhz 100; hosts X Y; }
    }"#;
    assert!(parse_system(src).is_ok(), "baseline must parse");
    for i in 0..src.len() {
        if !src.is_char_boundary(i) || !src.is_char_boundary(i + 1) {
            continue;
        }
        let mutated: String = format!("{}{}", &src[..i], &src[i + 1..]);
        let _ = parse_system(&mutated); // must not panic
    }
}
