//! Recursive-descent parser for the SegBus DSL.
//!
//! Parsing produces model objects directly; [`ParsedSource::into_psm`]
//! resolves the process mapping and runs the full OCL-style validation,
//! converting any error-severity diagnostic into a [`DslError`].

use std::fmt;

use segbus_model::ids::SegmentId;
use segbus_model::mapping::{Allocation, Psm};
use segbus_model::platform::{Platform, Topology};
use segbus_model::psdf::{Application, CostModel, Flow, Process};
use segbus_model::time::ClockDomain;

use crate::lexer::{Lexer, Span, Token, TokenKind};

/// A parse or validation failure.
#[derive(Clone, PartialEq, Debug)]
pub struct DslError {
    /// Position (validation errors point at the top of the source).
    pub span: Span,
    /// Description.
    pub message: String,
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for DslError {}

/// A parsed `platform` block: the platform plus the `hosts` lists, with
/// process references still by name (resolved in [`ParsedSource::into_psm`]).
#[derive(Clone, Debug)]
pub struct PlatformSpec {
    /// The platform instance.
    pub platform: Platform,
    /// `(process name, segment)` pairs from the `hosts` clauses.
    pub hosts: Vec<(String, SegmentId)>,
}

/// Everything found in one DSL source.
#[derive(Clone, Debug, Default)]
pub struct ParsedSource {
    /// `application` blocks in source order.
    pub applications: Vec<Application>,
    /// `platform` blocks in source order.
    pub platforms: Vec<PlatformSpec>,
}

impl ParsedSource {
    /// Combine the first application and first platform into a validated
    /// [`Psm`].
    pub fn into_psm(self) -> Result<Psm, DslError> {
        let top = Span { line: 1, col: 1 };
        let err = |m: String| DslError {
            span: top,
            message: m,
        };
        let app = self
            .applications
            .into_iter()
            .next()
            .ok_or_else(|| err("source contains no application block".into()))?;
        let spec = self
            .platforms
            .into_iter()
            .next()
            .ok_or_else(|| err("source contains no platform block".into()))?;
        let mut alloc = Allocation::new(spec.platform.segment_count());
        for (name, seg) in &spec.hosts {
            let p = app
                .process_by_name(name)
                .ok_or_else(|| err(format!("hosts clause names unknown process {name:?}")))?;
            alloc.assign(p, *seg);
        }
        Psm::new(spec.platform, app, alloc).map_err(|e| err(e.to_string()))
    }
}

/// Parse a DSL source into its blocks.
pub fn parse_source(src: &str) -> Result<ParsedSource, DslError> {
    let tokens = Lexer::new(src).tokenize().map_err(|e| DslError {
        span: e.span,
        message: e.message,
    })?;
    Parser { tokens, pos: 0 }.source()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> DslError {
        DslError {
            span: self.peek().span,
            message: msg.into(),
        }
    }

    fn expect_kind(&mut self, k: &TokenKind) -> Result<Token, DslError> {
        if &self.peek().kind == k {
            Ok(self.bump())
        } else {
            Err(self.err(format!("expected {k}, found {}", self.peek().kind)))
        }
    }

    fn ident(&mut self) -> Result<String, DslError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected an identifier, found {other}"))),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), DslError> {
        match &self.peek().kind {
            TokenKind::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected keyword {kw:?}, found {other}"))),
        }
    }

    fn int(&mut self) -> Result<u64, DslError> {
        match self.peek().kind {
            TokenKind::Int(v) => {
                self.bump();
                Ok(v)
            }
            ref other => Err(self.err(format!("expected an integer, found {other}"))),
        }
    }

    fn number(&mut self) -> Result<f64, DslError> {
        match self.peek().kind {
            TokenKind::Int(v) => {
                self.bump();
                Ok(v as f64)
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(v)
            }
            ref other => Err(self.err(format!("expected a number, found {other}"))),
        }
    }

    fn source(&mut self) -> Result<ParsedSource, DslError> {
        let mut out = ParsedSource::default();
        loop {
            match &self.peek().kind {
                TokenKind::Eof => return Ok(out),
                TokenKind::Ident(kw) if kw == "application" => {
                    out.applications.push(self.application()?);
                }
                TokenKind::Ident(kw) if kw == "platform" => {
                    out.platforms.push(self.platform()?);
                }
                other => {
                    return Err(self.err(format!(
                        "expected 'application' or 'platform', found {other}"
                    )))
                }
            }
        }
    }

    // -- application ---------------------------------------------------------

    fn application(&mut self) -> Result<Application, DslError> {
        self.keyword("application")?;
        let name = self.ident()?;
        let mut app = Application::new(name);
        self.expect_kind(&TokenKind::LBrace)?;
        loop {
            match &self.peek().kind {
                TokenKind::RBrace => {
                    self.bump();
                    return Ok(app);
                }
                TokenKind::Ident(kw) if kw == "process" => self.process(&mut app)?,
                TokenKind::Ident(kw) if kw == "flow" => self.flow(&mut app)?,
                TokenKind::Ident(kw) if kw == "cost" => self.cost(&mut app)?,
                other => {
                    return Err(self.err(format!(
                        "expected 'process', 'flow', 'cost' or '}}', found {other}"
                    )))
                }
            }
        }
    }

    fn process(&mut self, app: &mut Application) -> Result<(), DslError> {
        self.keyword("process")?;
        let name = self.ident()?;
        if app.process_by_name(&name).is_some() {
            return Err(self.err(format!("process {name:?} is declared twice")));
        }
        let p = match &self.peek().kind {
            TokenKind::Ident(k) if k == "initial" => {
                self.bump();
                Process::initial(name)
            }
            TokenKind::Ident(k) if k == "final" => {
                self.bump();
                Process::final_(name)
            }
            _ => Process::new(name),
        };
        app.add_process(p);
        self.expect_kind(&TokenKind::Semi)?;
        Ok(())
    }

    fn flow(&mut self, app: &mut Application) -> Result<(), DslError> {
        self.keyword("flow")?;
        let src_name = self.ident()?;
        let src = app
            .process_by_name(&src_name)
            .ok_or_else(|| self.err(format!("unknown source process {src_name:?}")))?;
        self.expect_kind(&TokenKind::Arrow)?;
        let dst_name = self.ident()?;
        let dst = app
            .process_by_name(&dst_name)
            .ok_or_else(|| self.err(format!("unknown target process {dst_name:?}")))?;
        self.expect_kind(&TokenKind::LBrace)?;
        let (mut items, mut order, mut ticks) = (None, None, None);
        while self.peek().kind != TokenKind::RBrace {
            let key = self.ident()?;
            let value = self.int()?;
            self.expect_kind(&TokenKind::Semi)?;
            match key.as_str() {
                "items" => items = Some(value),
                "order" => {
                    order = Some(
                        u32::try_from(value)
                            .map_err(|_| self.err("order value out of range".to_string()))?,
                    )
                }
                "ticks" => ticks = Some(value),
                other => return Err(self.err(format!("unknown flow property {other:?}"))),
            }
        }
        self.expect_kind(&TokenKind::RBrace)?;
        let items = items.ok_or_else(|| self.err("flow lacks 'items'"))?;
        let order = order.ok_or_else(|| self.err("flow lacks 'order'"))?;
        let ticks = ticks.ok_or_else(|| self.err("flow lacks 'ticks'"))?;
        app.add_flow(Flow::new(src, dst, items, order, ticks))
            .map_err(|e| self.err(e.to_string()))?;
        Ok(())
    }

    fn cost(&mut self, app: &mut Application) -> Result<(), DslError> {
        self.keyword("cost")?;
        let kind = self.ident()?;
        let cm = match kind.as_str() {
            "per_package" => CostModel::PerPackage,
            "per_item" => {
                self.keyword("reference")?;
                let r = self.int()? as u32;
                CostModel::PerItem {
                    reference_package_size: r,
                }
            }
            "affine" => {
                self.keyword("base")?;
                let base_ticks = self.int()?;
                self.keyword("reference")?;
                let r = self.int()? as u32;
                CostModel::Affine {
                    base_ticks,
                    reference_package_size: r,
                }
            }
            other => {
                return Err(self.err(format!(
                    "unknown cost model {other:?} (per_item | per_package | affine)"
                )))
            }
        };
        app.set_cost_model(cm);
        self.expect_kind(&TokenKind::Semi)?;
        Ok(())
    }

    // -- platform ---------------------------------------------------------------

    fn platform(&mut self) -> Result<PlatformSpec, DslError> {
        self.keyword("platform")?;
        let name = self.ident()?;
        self.expect_kind(&TokenKind::LBrace)?;
        let mut package_size: Option<u32> = None;
        let mut topology: Option<Topology> = None;
        let mut ca_clock: Option<ClockDomain> = None;
        let mut segments: Vec<(String, ClockDomain)> = Vec::new();
        let mut hosts: Vec<(String, SegmentId)> = Vec::new();
        loop {
            match &self.peek().kind {
                TokenKind::RBrace => {
                    self.bump();
                    break;
                }
                TokenKind::Ident(kw) if kw == "package_size" => {
                    self.bump();
                    package_size = Some(self.int()? as u32);
                    self.expect_kind(&TokenKind::Semi)?;
                }
                TokenKind::Ident(kw) if kw == "topology" => {
                    self.bump();
                    let t = self.ident()?;
                    topology = Some(match t.as_str() {
                        "linear" => Topology::Linear,
                        "ring" => Topology::Ring,
                        other => {
                            return Err(
                                self.err(format!("unknown topology {other:?} (linear | ring)"))
                            )
                        }
                    });
                    self.expect_kind(&TokenKind::Semi)?;
                }
                TokenKind::Ident(kw) if kw == "ca" => {
                    self.bump();
                    self.expect_kind(&TokenKind::LBrace)?;
                    ca_clock = Some(self.clock()?);
                    self.expect_kind(&TokenKind::RBrace)?;
                }
                TokenKind::Ident(kw) if kw == "segment" => {
                    self.bump();
                    let sname = self.ident()?;
                    let seg = SegmentId(segments.len() as u16);
                    self.expect_kind(&TokenKind::LBrace)?;
                    let clock = self.clock()?;
                    // optional hosts clause
                    if let TokenKind::Ident(k) = &self.peek().kind {
                        if k == "hosts" {
                            self.bump();
                            while self.peek().kind != TokenKind::Semi {
                                let pname = self.ident()?;
                                hosts.push((pname, seg));
                            }
                            self.expect_kind(&TokenKind::Semi)?;
                        }
                    }
                    self.expect_kind(&TokenKind::RBrace)?;
                    segments.push((sname, clock));
                }
                other => {
                    return Err(self.err(format!(
                    "expected 'package_size', 'topology', 'ca', 'segment' or '}}', found {other}"
                )))
                }
            }
        }
        let mut builder = Platform::builder(name);
        if let Some(s) = package_size {
            builder = builder.package_size(s);
        }
        if let Some(t) = topology {
            builder = builder.topology(t);
        }
        if let Some(c) = ca_clock {
            builder = builder.ca_clock(c);
        }
        for (sname, clock) in segments {
            builder = builder.segment(sname, clock);
        }
        let platform = builder.build().map_err(|e| self.err(e.to_string()))?;
        Ok(PlatformSpec { platform, hosts })
    }

    /// `freq_mhz <number>;` or `period_ps <int>;`
    fn clock(&mut self) -> Result<ClockDomain, DslError> {
        let key = self.ident()?;
        let clock = match key.as_str() {
            "freq_mhz" => {
                let v = self.number()?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(self.err("frequency must be positive"));
                }
                ClockDomain::from_mhz(v)
            }
            "period_ps" => {
                let v = self.int()?;
                if v == 0 {
                    return Err(self.err("period must be non-zero"));
                }
                ClockDomain::from_period_ps(v)
            }
            other => {
                return Err(self.err(format!(
                    "expected 'freq_mhz' or 'period_ps', found {other:?}"
                )))
            }
        };
        self.expect_kind(&TokenKind::Semi)?;
        Ok(clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
        // a two-stage pipeline on two segments
        application demo {
            cost per_item reference 36;
            process A initial;
            process B;
            process C final;
            flow A -> B { items 72; order 1; ticks 100; }
            flow B -> C { items 36; order 2; ticks 50; }
        }
        platform duo {
            package_size 36;
            ca { freq_mhz 111; }
            segment S1 { freq_mhz 91; hosts A B; }
            segment S2 { period_ps 10204; hosts C; }
        }
    "#;

    #[test]
    fn parses_a_complete_system() {
        let psm = crate::parse_system(GOOD).unwrap();
        assert_eq!(psm.application().process_count(), 3);
        assert_eq!(psm.application().flows().len(), 2);
        assert_eq!(psm.platform().segment_count(), 2);
        assert_eq!(psm.platform().package_size(), 36);
        assert_eq!(psm.platform().ca_clock().period_ps(), 9009);
        assert_eq!(
            psm.platform().segment_clock(SegmentId(1)).period_ps(),
            10204
        );
        let a = psm.application().process_by_name("A").unwrap();
        assert_eq!(psm.segment_of(a), SegmentId(0));
        let c = psm.application().process_by_name("C").unwrap();
        assert_eq!(psm.segment_of(c), SegmentId(1));
    }

    #[test]
    fn cost_models_parse() {
        let src = |cost: &str| {
            format!(
                "application a {{ cost {cost}; process X initial; process Y final;
                 flow X -> Y {{ items 36; order 1; ticks 10; }} }}
                 platform p {{ segment S {{ freq_mhz 100; hosts X Y; }} }}"
            )
        };
        let p1 = crate::parse_system(&src("per_package")).unwrap();
        assert_eq!(p1.application().cost_model(), CostModel::PerPackage);
        let p2 = crate::parse_system(&src("per_item reference 18")).unwrap();
        assert_eq!(
            p2.application().cost_model(),
            CostModel::PerItem {
                reference_package_size: 18
            }
        );
        let p3 = crate::parse_system(&src("affine base 40 reference 36")).unwrap();
        assert_eq!(
            p3.application().cost_model(),
            CostModel::Affine {
                base_ticks: 40,
                reference_package_size: 36
            }
        );
    }

    #[test]
    fn unknown_process_in_flow() {
        let e = parse_source(
            "application a { process X initial; flow X -> GHOST { items 1; order 1; ticks 1; } }",
        )
        .unwrap_err();
        assert!(e.message.contains("GHOST"), "{e}");
    }

    #[test]
    fn unknown_process_in_hosts() {
        let src = "application a { process X initial; process Y final;
                    flow X -> Y { items 36; order 1; ticks 1; } }
                   platform p { segment S { freq_mhz 100; hosts X GHOST; } }";
        let e = parse_source(src).unwrap().into_psm().unwrap_err();
        assert!(e.message.contains("GHOST"), "{e}");
    }

    #[test]
    fn validation_errors_surface() {
        // Y is never placed: V003 fires through Psm::new.
        let src = "application a { process X initial; process Y final;
                    flow X -> Y { items 36; order 1; ticks 1; } }
                   platform p { segment S { freq_mhz 100; hosts X; } }";
        let e = parse_source(src).unwrap().into_psm().unwrap_err();
        assert!(e.message.contains("validation"), "{e}");
    }

    #[test]
    fn missing_flow_property() {
        let e = parse_source(
            "application a { process X initial; process Y final;
              flow X -> Y { items 36; order 1; } }",
        )
        .unwrap_err();
        assert!(e.message.contains("ticks"), "{e}");
    }

    #[test]
    fn duplicate_process_rejected_at_parse_time() {
        let e = parse_source("application a { process X; process X; }").unwrap_err();
        assert!(e.message.contains("twice"), "{e}");
    }

    #[test]
    fn error_spans_point_into_the_source() {
        let e = parse_source("application a {\n  process X;\n  bogus\n}").unwrap_err();
        assert_eq!(e.span.line, 3, "{e}");
    }

    #[test]
    fn empty_source_has_no_system() {
        let e = parse_source("").unwrap().into_psm().unwrap_err();
        assert!(e.message.contains("no application"), "{e}");
    }

    #[test]
    fn garbage_top_level_rejected() {
        assert!(parse_source("banana {}").is_err());
    }
}
