//! Recursive-descent parser for the SegBus DSL.
//!
//! Parsing produces model objects directly; [`ParsedSource::into_psm`]
//! resolves the process mapping and runs the full OCL-style validation,
//! converting any error-severity diagnostic into a [`SegbusError`].
//!
//! Error codes emitted by this front end:
//!
//! * `P001` — lexical error (from [`crate::lexer`]);
//! * `P002` — syntax error (unexpected token, unknown property);
//! * `P003` — integer literal out of the range its context allows;
//! * `P004` — source lacks an `application` or `platform` block;
//! * `P005` — a name references an undeclared process;
//! * `P006` — duplicate declaration;
//! * `P007` — a stochastic annotation (`items_dist`, `ticks_dist`,
//!   `jitter`) has unusable parameters (inverted range, empty choice,
//!   items distribution able to produce zero, …);
//! * `M0xx`/`V0xx` — model construction/validation failures, spanned to
//!   the block that produced them.

use segbus_model::diag::SegbusError;
use segbus_model::ids::SegmentId;
use segbus_model::mapping::{Allocation, Psm};
use segbus_model::platform::{Platform, Topology};
use segbus_model::psdf::{Application, CostModel, Flow, Process};
use segbus_model::stochastic::{Dist, FlowNoise};
use segbus_model::time::ClockDomain;

use crate::lexer::{Lexer, Span, Token, TokenKind};

/// A parsed `platform` block: the platform plus the `hosts` lists, with
/// process references still by name (resolved in [`ParsedSource::into_psm`]).
#[derive(Clone, Debug)]
pub struct PlatformSpec {
    /// The platform instance.
    pub platform: Platform,
    /// `(process name, segment, name span)` triples from the `hosts`
    /// clauses.
    pub hosts: Vec<(String, SegmentId, Span)>,
    /// Where the `platform` keyword appeared.
    pub span: Span,
}

/// Everything found in one DSL source.
#[derive(Clone, Debug, Default)]
pub struct ParsedSource {
    /// `application` blocks in source order.
    pub applications: Vec<Application>,
    /// `platform` blocks in source order.
    pub platforms: Vec<PlatformSpec>,
}

impl ParsedSource {
    /// Combine the first application and first platform into a validated
    /// [`Psm`].
    pub fn into_psm(self) -> Result<Psm, SegbusError> {
        let missing = |what: &str| {
            SegbusError::new("P004", format!("source contains no {what} block")).with_span(1, 1)
        };
        let app = self
            .applications
            .into_iter()
            .next()
            .ok_or_else(|| missing("application"))?;
        let spec = self
            .platforms
            .into_iter()
            .next()
            .ok_or_else(|| missing("platform"))?;
        let mut alloc = Allocation::new(spec.platform.segment_count());
        for (name, seg, span) in &spec.hosts {
            let p = app.process_by_name(name).ok_or_else(|| {
                SegbusError::new(
                    "P005",
                    format!("hosts clause names unknown process {name:?}"),
                )
                .with_span(span.line, span.col)
            })?;
            alloc.assign(p, *seg);
        }
        let at = spec.span;
        Psm::new(spec.platform, app, alloc)
            .map_err(|e| SegbusError::from(e).with_span(at.line, at.col))
    }
}

/// Parse a DSL source into its blocks.
pub fn parse_source(src: &str) -> Result<ParsedSource, SegbusError> {
    let tokens = Lexer::new(src).tokenize()?;
    Parser { tokens, pos: 0 }.source()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> SegbusError {
        self.err_code("P002", msg)
    }

    fn err_code(&self, code: &'static str, msg: impl Into<String>) -> SegbusError {
        let span = self.peek().span;
        SegbusError::new(code, msg).with_span(span.line, span.col)
    }

    fn expect_kind(&mut self, k: &TokenKind) -> Result<Token, SegbusError> {
        if &self.peek().kind == k {
            Ok(self.bump())
        } else {
            Err(self.err(format!("expected {k}, found {}", self.peek().kind)))
        }
    }

    fn ident(&mut self) -> Result<String, SegbusError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected an identifier, found {other}"))),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), SegbusError> {
        match &self.peek().kind {
            TokenKind::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected keyword {kw:?}, found {other}"))),
        }
    }

    fn int(&mut self) -> Result<u64, SegbusError> {
        match self.peek().kind {
            TokenKind::Int(v) => {
                self.bump();
                Ok(v)
            }
            ref other => Err(self.err(format!("expected an integer, found {other}"))),
        }
    }

    /// An integer that must fit in `u32` (package sizes, orders, reference
    /// sizes). Overflow is a spanned `P003`, never a silent truncation.
    fn int_u32(&mut self, what: &str) -> Result<u32, SegbusError> {
        let span = self.peek().span;
        let v = self.int()?;
        u32::try_from(v).map_err(|_| {
            SegbusError::new(
                "P003",
                format!("{what} value {v} is out of range (max {})", u32::MAX),
            )
            .with_span(span.line, span.col)
        })
    }

    fn number(&mut self) -> Result<f64, SegbusError> {
        match self.peek().kind {
            TokenKind::Int(v) => {
                self.bump();
                Ok(v as f64)
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(v)
            }
            ref other => Err(self.err(format!("expected a number, found {other}"))),
        }
    }

    fn source(&mut self) -> Result<ParsedSource, SegbusError> {
        let mut out = ParsedSource::default();
        loop {
            match &self.peek().kind {
                TokenKind::Eof => return Ok(out),
                TokenKind::Ident(kw) if kw == "application" => {
                    out.applications.push(self.application()?);
                }
                TokenKind::Ident(kw) if kw == "platform" => {
                    out.platforms.push(self.platform()?);
                }
                other => {
                    return Err(self.err(format!(
                        "expected 'application' or 'platform', found {other}"
                    )))
                }
            }
        }
    }

    // -- application ---------------------------------------------------------

    fn application(&mut self) -> Result<Application, SegbusError> {
        self.keyword("application")?;
        let name = self.ident()?;
        let mut app = Application::new(name);
        self.expect_kind(&TokenKind::LBrace)?;
        loop {
            match &self.peek().kind {
                TokenKind::RBrace => {
                    self.bump();
                    return Ok(app);
                }
                TokenKind::Ident(kw) if kw == "process" => self.process(&mut app)?,
                TokenKind::Ident(kw) if kw == "flow" => self.flow(&mut app)?,
                TokenKind::Ident(kw) if kw == "cost" => self.cost(&mut app)?,
                other => {
                    return Err(self.err(format!(
                        "expected 'process', 'flow', 'cost' or '}}', found {other}"
                    )))
                }
            }
        }
    }

    fn process(&mut self, app: &mut Application) -> Result<(), SegbusError> {
        self.keyword("process")?;
        let name_span = self.peek().span;
        let name = self.ident()?;
        if app.process_by_name(&name).is_some() {
            return Err(
                SegbusError::new("P006", format!("process {name:?} is declared twice"))
                    .with_span(name_span.line, name_span.col),
            );
        }
        let p = match &self.peek().kind {
            TokenKind::Ident(k) if k == "initial" => {
                self.bump();
                Process::initial(name)
            }
            TokenKind::Ident(k) if k == "final" => {
                self.bump();
                Process::final_(name)
            }
            _ => Process::new(name),
        };
        app.add_process(p);
        self.expect_kind(&TokenKind::Semi)?;
        Ok(())
    }

    fn flow(&mut self, app: &mut Application) -> Result<(), SegbusError> {
        self.keyword("flow")?;
        let src_span = self.peek().span;
        let src_name = self.ident()?;
        let src = app.process_by_name(&src_name).ok_or_else(|| {
            SegbusError::new("P005", format!("unknown source process {src_name:?}"))
                .with_span(src_span.line, src_span.col)
        })?;
        self.expect_kind(&TokenKind::Arrow)?;
        let dst_span = self.peek().span;
        let dst_name = self.ident()?;
        let dst = app.process_by_name(&dst_name).ok_or_else(|| {
            SegbusError::new("P005", format!("unknown target process {dst_name:?}"))
                .with_span(dst_span.line, dst_span.col)
        })?;
        self.expect_kind(&TokenKind::LBrace)?;
        let (mut items, mut order, mut ticks) = (None, None, None);
        let mut noise = FlowNoise::default();
        let mut noise_span: Option<Span> = None;
        while self.peek().kind != TokenKind::RBrace {
            let key_span = self.peek().span;
            let key = self.ident()?;
            match key.as_str() {
                "items" => items = Some(self.int()?),
                "order" => order = Some(self.int_u32("order")?),
                "ticks" => ticks = Some(self.int()?),
                "items_dist" => {
                    noise_span.get_or_insert(key_span);
                    noise.items = Some(self.dist()?);
                }
                "ticks_dist" => {
                    noise_span.get_or_insert(key_span);
                    noise.ticks = Some(self.dist()?);
                }
                "jitter" => {
                    noise_span.get_or_insert(key_span);
                    noise.jitter = Some(self.dist()?);
                }
                other => return Err(self.err(format!("unknown flow property {other:?}"))),
            }
            self.expect_kind(&TokenKind::Semi)?;
        }
        self.expect_kind(&TokenKind::RBrace)?;
        let items = items.ok_or_else(|| self.err("flow lacks 'items'"))?;
        let order = order.ok_or_else(|| self.err("flow lacks 'order'"))?;
        let ticks = ticks.ok_or_else(|| self.err("flow lacks 'ticks'"))?;
        let id = app
            .add_flow(Flow::new(src, dst, items, order, ticks))
            .map_err(|e| {
                let span = self.peek().span;
                SegbusError::from(e).with_span(span.line, span.col)
            })?;
        if !noise.is_empty() {
            let span = noise_span.unwrap_or(src_span);
            noise.validate().map_err(|reason| {
                SegbusError::new("P007", format!("invalid distribution: {reason}"))
                    .with_span(span.line, span.col)
            })?;
            app.set_flow_noise(id, noise).map_err(|e| {
                SegbusError::new("P007", e.to_string()).with_span(span.line, span.col)
            })?;
        }
        Ok(())
    }

    /// A distribution literal, keyword-prefixed so no new lexer tokens are
    /// needed: `constant 5`, `uniform 300 400`, `normal 100 15 60 140`,
    /// `choice 0 3 10 1` (alternating value/weight pairs).
    fn dist(&mut self) -> Result<Dist, SegbusError> {
        let kind = self.ident()?;
        Ok(match kind.as_str() {
            "constant" => Dist::Constant(self.int()?),
            "uniform" => Dist::Uniform {
                lo: self.int()?,
                hi: self.int()?,
            },
            "normal" => Dist::Normal {
                mean: self.int()?,
                std: self.int()?,
                lo: self.int()?,
                hi: self.int()?,
            },
            "choice" => {
                let mut pairs = Vec::new();
                while matches!(self.peek().kind, TokenKind::Int(_)) {
                    pairs.push((self.int()?, self.int()?));
                }
                Dist::Choice(pairs)
            }
            other => {
                return Err(self.err(format!(
                    "unknown distribution {other:?} (constant | uniform | normal | choice)"
                )))
            }
        })
    }

    fn cost(&mut self, app: &mut Application) -> Result<(), SegbusError> {
        self.keyword("cost")?;
        let kind = self.ident()?;
        let cm = match kind.as_str() {
            "per_package" => CostModel::PerPackage,
            "per_item" => {
                self.keyword("reference")?;
                let r = self.int_u32("reference")?;
                CostModel::per_item(r).ok_or_else(|| {
                    self.err_code(
                        "P003",
                        "cost reference must be at least 1 (it is a divisor)",
                    )
                })?
            }
            "affine" => {
                self.keyword("base")?;
                let base_ticks = self.int()?;
                self.keyword("reference")?;
                let r = self.int_u32("reference")?;
                CostModel::affine(base_ticks, r).ok_or_else(|| {
                    self.err_code(
                        "P003",
                        "cost reference must be at least 1 (it is a divisor)",
                    )
                })?
            }
            other => {
                return Err(self.err(format!(
                    "unknown cost model {other:?} (per_item | per_package | affine)"
                )))
            }
        };
        app.set_cost_model(cm);
        self.expect_kind(&TokenKind::Semi)?;
        Ok(())
    }

    // -- platform ---------------------------------------------------------------

    fn platform(&mut self) -> Result<PlatformSpec, SegbusError> {
        let block_span = self.peek().span;
        self.keyword("platform")?;
        let name = self.ident()?;
        self.expect_kind(&TokenKind::LBrace)?;
        let mut package_size: Option<u32> = None;
        let mut topology: Option<Topology> = None;
        let mut ca_clock: Option<ClockDomain> = None;
        let mut segments: Vec<(String, ClockDomain)> = Vec::new();
        let mut hosts: Vec<(String, SegmentId, Span)> = Vec::new();
        loop {
            match &self.peek().kind {
                TokenKind::RBrace => {
                    self.bump();
                    break;
                }
                TokenKind::Ident(kw) if kw == "package_size" => {
                    self.bump();
                    package_size = Some(self.int_u32("package_size")?);
                    self.expect_kind(&TokenKind::Semi)?;
                }
                TokenKind::Ident(kw) if kw == "topology" => {
                    self.bump();
                    let t = self.ident()?;
                    topology = Some(match t.as_str() {
                        "linear" => Topology::Linear,
                        "ring" => Topology::Ring,
                        other => {
                            return Err(
                                self.err(format!("unknown topology {other:?} (linear | ring)"))
                            )
                        }
                    });
                    self.expect_kind(&TokenKind::Semi)?;
                }
                TokenKind::Ident(kw) if kw == "ca" => {
                    self.bump();
                    self.expect_kind(&TokenKind::LBrace)?;
                    ca_clock = Some(self.clock()?);
                    self.expect_kind(&TokenKind::RBrace)?;
                }
                TokenKind::Ident(kw) if kw == "segment" => {
                    self.bump();
                    let sname = self.ident()?;
                    let seg = SegmentId(segments.len() as u16);
                    self.expect_kind(&TokenKind::LBrace)?;
                    let clock = self.clock()?;
                    // optional hosts clause
                    if let TokenKind::Ident(k) = &self.peek().kind {
                        if k == "hosts" {
                            self.bump();
                            while self.peek().kind != TokenKind::Semi {
                                let pspan = self.peek().span;
                                let pname = self.ident()?;
                                hosts.push((pname, seg, pspan));
                            }
                            self.expect_kind(&TokenKind::Semi)?;
                        }
                    }
                    self.expect_kind(&TokenKind::RBrace)?;
                    segments.push((sname, clock));
                }
                other => {
                    return Err(self.err(format!(
                    "expected 'package_size', 'topology', 'ca', 'segment' or '}}', found {other}"
                )))
                }
            }
        }
        let mut builder = Platform::builder(name);
        if let Some(s) = package_size {
            builder = builder.package_size(s);
        }
        if let Some(t) = topology {
            builder = builder.topology(t);
        }
        if let Some(c) = ca_clock {
            builder = builder.ca_clock(c);
        }
        for (sname, clock) in segments {
            builder = builder.segment(sname, clock);
        }
        let platform = builder
            .build()
            .map_err(|e| SegbusError::from(e).with_span(block_span.line, block_span.col))?;
        Ok(PlatformSpec {
            platform,
            hosts,
            span: block_span,
        })
    }

    /// `freq_mhz <number>;` or `period_ps <int>;`
    fn clock(&mut self) -> Result<ClockDomain, SegbusError> {
        let key = self.ident()?;
        let value_span = self.peek().span;
        let value_err = |msg: &str| {
            SegbusError::new("P003", msg.to_string()).with_span(value_span.line, value_span.col)
        };
        let clock = match key.as_str() {
            "freq_mhz" => {
                let v = self.number()?;
                ClockDomain::try_from_mhz(v)
                    .ok_or_else(|| value_err("frequency must be positive"))?
            }
            "period_ps" => {
                let v = self.int()?;
                ClockDomain::try_from_period_ps(v)
                    .ok_or_else(|| value_err("period must be non-zero"))?
            }
            other => {
                return Err(self.err(format!(
                    "expected 'freq_mhz' or 'period_ps', found {other:?}"
                )))
            }
        };
        self.expect_kind(&TokenKind::Semi)?;
        Ok(clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
        // a two-stage pipeline on two segments
        application demo {
            cost per_item reference 36;
            process A initial;
            process B;
            process C final;
            flow A -> B { items 72; order 1; ticks 100; }
            flow B -> C { items 36; order 2; ticks 50; }
        }
        platform duo {
            package_size 36;
            ca { freq_mhz 111; }
            segment S1 { freq_mhz 91; hosts A B; }
            segment S2 { period_ps 10204; hosts C; }
        }
    "#;

    #[test]
    fn parses_a_complete_system() {
        let psm = crate::parse_system(GOOD).unwrap();
        assert_eq!(psm.application().process_count(), 3);
        assert_eq!(psm.application().flows().len(), 2);
        assert_eq!(psm.platform().segment_count(), 2);
        assert_eq!(psm.platform().package_size(), 36);
        assert_eq!(psm.platform().ca_clock().period_ps(), 9009);
        assert_eq!(
            psm.platform().segment_clock(SegmentId(1)).period_ps(),
            10204
        );
        let a = psm.application().process_by_name("A").unwrap();
        assert_eq!(psm.segment_of(a), SegmentId(0));
        let c = psm.application().process_by_name("C").unwrap();
        assert_eq!(psm.segment_of(c), SegmentId(1));
    }

    #[test]
    fn cost_models_parse() {
        let src = |cost: &str| {
            format!(
                "application a {{ cost {cost}; process X initial; process Y final;
                 flow X -> Y {{ items 36; order 1; ticks 10; }} }}
                 platform p {{ segment S {{ freq_mhz 100; hosts X Y; }} }}"
            )
        };
        let p1 = crate::parse_system(&src("per_package")).unwrap();
        assert_eq!(p1.application().cost_model(), CostModel::PerPackage);
        let p2 = crate::parse_system(&src("per_item reference 18")).unwrap();
        assert_eq!(
            p2.application().cost_model(),
            CostModel::per_item(18).unwrap()
        );
        let p3 = crate::parse_system(&src("affine base 40 reference 36")).unwrap();
        assert_eq!(
            p3.application().cost_model(),
            CostModel::affine(40, 36).unwrap()
        );
        // A zero reference is a divisor-by-zero: rejected at parse time.
        let e = crate::parse_system(&src("per_item reference 0")).unwrap_err();
        assert_eq!(e.code, "P003");
        let e = crate::parse_system(&src("affine base 40 reference 0")).unwrap_err();
        assert_eq!(e.code, "P003");
    }

    #[test]
    fn unknown_process_in_flow() {
        let e = parse_source(
            "application a { process X initial; flow X -> GHOST { items 1; order 1; ticks 1; } }",
        )
        .unwrap_err();
        assert_eq!(e.code, "P005");
        assert!(e.message.contains("GHOST"), "{e}");
    }

    #[test]
    fn unknown_process_in_hosts() {
        let src = "application a { process X initial; process Y final;
                    flow X -> Y { items 36; order 1; ticks 1; } }
                   platform p { segment S { freq_mhz 100; hosts X GHOST; } }";
        let e = parse_source(src).unwrap().into_psm().unwrap_err();
        assert_eq!(e.code, "P005");
        assert!(e.message.contains("GHOST"), "{e}");
    }

    #[test]
    fn validation_errors_surface() {
        // Y is never placed: V003 fires through Psm::new.
        let src = "application a { process X initial; process Y final;
                    flow X -> Y { items 36; order 1; ticks 1; } }
                   platform p { segment S { freq_mhz 100; hosts X; } }";
        let e = parse_source(src).unwrap().into_psm().unwrap_err();
        assert_eq!(e.code, "V003");
        assert!(e.message.contains("validation"), "{e}");
    }

    #[test]
    fn missing_flow_property() {
        let e = parse_source(
            "application a { process X initial; process Y final;
              flow X -> Y { items 36; order 1; } }",
        )
        .unwrap_err();
        assert!(e.message.contains("ticks"), "{e}");
    }

    #[test]
    fn duplicate_process_rejected_at_parse_time() {
        let e = parse_source("application a { process X; process X; }").unwrap_err();
        assert_eq!(e.code, "P006");
        assert!(e.message.contains("twice"), "{e}");
    }

    #[test]
    fn error_spans_point_into_the_source() {
        let e = parse_source("application a {\n  process X;\n  bogus\n}").unwrap_err();
        assert_eq!(e.span.unwrap().line, 3, "{e}");
    }

    #[test]
    fn int_out_of_range_is_spanned_not_truncated() {
        // 2^32 + 1 used to truncate to package_size 1; now a P003.
        let src = "application a { process X initial; process Y final;
                    flow X -> Y { items 36; order 1; ticks 1; } }
                   platform p { package_size 4294967297;
                                segment S { freq_mhz 100; hosts X Y; } }";
        let e = parse_source(src).unwrap_err();
        assert_eq!(e.code, "P003");
        assert_eq!(e.span.unwrap().line, 3);
        assert!(e.message.contains("package_size"), "{e}");

        let e = parse_source("application a { cost per_item reference 4294967297; }").unwrap_err();
        assert_eq!(e.code, "P003");

        let e = parse_source("application a { cost affine base 1 reference 99999999999; }")
            .unwrap_err();
        assert_eq!(e.code, "P003");

        let e = parse_source(
            "application a { process X initial; process Y final;
              flow X -> Y { items 1; order 4294967297; ticks 1; } }",
        )
        .unwrap_err();
        assert_eq!(e.code, "P003");
    }

    #[test]
    fn stochastic_annotations_parse() {
        let src = "application a { process X initial; process Y final;
            flow X -> Y { items 360; order 1; ticks 100;
                items_dist uniform 300 400;
                ticks_dist normal 100 15 60 140;
                jitter choice 0 3 10 1; } }
           platform p { segment S { freq_mhz 100; hosts X Y; } }";
        let psm = crate::parse_system(src).unwrap();
        let app = psm.application();
        assert!(app.is_stochastic());
        let n = app.flow_noise(segbus_model::ids::FlowId(0)).unwrap();
        assert_eq!(n.items, Some(Dist::Uniform { lo: 300, hi: 400 }));
        assert_eq!(
            n.ticks,
            Some(Dist::Normal {
                mean: 100,
                std: 15,
                lo: 60,
                hi: 140
            })
        );
        assert_eq!(n.jitter, Some(Dist::Choice(vec![(0, 3), (10, 1)])));
        // The base values still parse: the model is usable deterministically.
        assert_eq!(app.flows()[0].items, 360);
    }

    #[test]
    fn invalid_distributions_are_p007() {
        let flow = |props: &str| {
            format!(
                "application a {{ process X initial; process Y final;
                  flow X -> Y {{ items 36; order 1; ticks 10; {props} }} }}"
            )
        };
        let e = parse_source(&flow("ticks_dist uniform 5 4;")).unwrap_err();
        assert_eq!(e.code, "P007");
        assert!(e.message.contains("inverted"), "{e}");
        let e = parse_source(&flow("jitter choice;")).unwrap_err();
        assert_eq!(e.code, "P007");
        // An items distribution must not be able to produce an empty flow.
        let e = parse_source(&flow("items_dist uniform 0 9;")).unwrap_err();
        assert_eq!(e.code, "P007");
        assert_eq!(e.span.unwrap().line, 2, "span points at the annotation");
        // Unknown distribution kinds are plain syntax errors.
        let e = parse_source(&flow("ticks_dist poisson 4;")).unwrap_err();
        assert_eq!(e.code, "P002");
        // An odd choice list is a syntax error at the missing weight.
        let e = parse_source(&flow("jitter choice 1 2 3;")).unwrap_err();
        assert_eq!(e.code, "P002");
    }

    #[test]
    fn empty_source_has_no_system() {
        let e = parse_source("").unwrap().into_psm().unwrap_err();
        assert_eq!(e.code, "P004");
        assert!(e.message.contains("no application"), "{e}");
    }

    #[test]
    fn garbage_top_level_rejected() {
        assert!(parse_source("banana {}").is_err());
    }
}
