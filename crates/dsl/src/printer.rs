//! Render a validated model back to DSL text.
//!
//! `parse_system(to_dsl(psm))` reproduces the application, platform and
//! allocation exactly (clocks are printed as `period_ps`, which is the
//! lossless representation).

use std::fmt::Write as _;

use segbus_model::ids::SegmentId;
use segbus_model::mapping::Psm;
use segbus_model::psdf::{Application, CostModel, ProcessKind};

/// Render an application block.
pub fn application_to_dsl(app: &Application) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "application {} {{", app.name());
    match app.cost_model() {
        CostModel::PerItem {
            reference_package_size,
        } => {
            let _ = writeln!(out, "    cost per_item reference {reference_package_size};");
        }
        CostModel::PerPackage => {
            let _ = writeln!(out, "    cost per_package;");
        }
        CostModel::Affine {
            base_ticks,
            reference_package_size,
        } => {
            let _ = writeln!(
                out,
                "    cost affine base {base_ticks} reference {reference_package_size};"
            );
        }
    }
    for p in app.processes() {
        let suffix = match p.kind {
            ProcessKind::Initial => " initial",
            ProcessKind::Final => " final",
            ProcessKind::Internal => "",
        };
        let _ = writeln!(out, "    process {}{suffix};", p.name);
    }
    for f in app.flows() {
        let _ = writeln!(
            out,
            "    flow {} -> {} {{ items {}; order {}; ticks {}; }}",
            app.process(f.src).name,
            app.process(f.dst).name,
            f.items,
            f.order,
            f.ticks
        );
    }
    out.push_str("}\n");
    out
}

/// Render a full system (application + platform with hosts clauses).
pub fn to_dsl(psm: &Psm) -> String {
    let mut out = application_to_dsl(psm.application());
    let platform = psm.platform();
    out.push('\n');
    let _ = writeln!(out, "platform {} {{", platform.name());
    let _ = writeln!(out, "    package_size {};", platform.package_size());
    if platform.topology() != segbus_model::platform::Topology::Linear {
        let _ = writeln!(out, "    topology {};", platform.topology());
    }
    let _ = writeln!(
        out,
        "    ca {{ period_ps {}; }}",
        platform.ca_clock().period_ps()
    );
    for i in 0..platform.segment_count() {
        let seg = SegmentId(i as u16);
        let mut hosts = String::new();
        for p in psm.allocation().processes_on(seg) {
            hosts.push(' ');
            hosts.push_str(&psm.application().process(p).name);
        }
        let _ = writeln!(
            out,
            "    segment {} {{ period_ps {}; hosts{hosts}; }}",
            platform.segment(seg).name,
            platform.segment_clock(seg).period_ps()
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_system;
    use segbus_apps::mp3;

    #[test]
    fn mp3_round_trip_is_lossless() {
        let psm = mp3::three_segment_psm();
        let text = to_dsl(&psm);
        let back = parse_system(&text).unwrap();
        assert_eq!(back.application(), psm.application());
        assert_eq!(back.platform(), psm.platform());
        assert_eq!(back.allocation(), psm.allocation());
    }

    #[test]
    fn printed_text_is_readable() {
        let text = to_dsl(&mp3::three_segment_psm());
        assert!(
            text.contains("application mp3-decoder {")
                || text.contains("application mp3_decoder {")
                || text.contains("application")
        );
        assert!(text.contains("cost affine base 40 reference 36;"));
        assert!(text.contains("flow P0 -> P1 { items 576; order 1; ticks 250; }"));
        assert!(text.contains("package_size 36;"));
        assert!(text.contains("hosts P0 P1 P2 P3 P8 P9 P10;"));
    }
}
