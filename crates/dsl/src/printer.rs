//! Render a validated model back to DSL text.
//!
//! `parse_system(to_dsl(psm))` reproduces the application, platform and
//! allocation exactly (clocks are printed as `period_ps`, which is the
//! lossless representation).

use std::fmt::Write as _;

use segbus_model::ids::{FlowId, SegmentId};
use segbus_model::mapping::Psm;
use segbus_model::psdf::{Application, CostModel, ProcessKind};

/// Render an application block.
pub fn application_to_dsl(app: &Application) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "application {} {{", app.name());
    match app.cost_model() {
        CostModel::PerItem {
            reference_package_size,
        } => {
            let _ = writeln!(out, "    cost per_item reference {reference_package_size};");
        }
        CostModel::PerPackage => {
            let _ = writeln!(out, "    cost per_package;");
        }
        CostModel::Affine {
            base_ticks,
            reference_package_size,
        } => {
            let _ = writeln!(
                out,
                "    cost affine base {base_ticks} reference {reference_package_size};"
            );
        }
    }
    for p in app.processes() {
        let suffix = match p.kind {
            ProcessKind::Initial => " initial",
            ProcessKind::Final => " final",
            ProcessKind::Internal => "",
        };
        let _ = writeln!(out, "    process {}{suffix};", p.name);
    }
    for (i, f) in app.flows().iter().enumerate() {
        let mut props = format!("items {}; order {}; ticks {};", f.items, f.order, f.ticks);
        if let Some(noise) = app.flow_noise(FlowId(i as u32)) {
            if let Some(d) = &noise.items {
                let _ = write!(props, " items_dist {d};");
            }
            if let Some(d) = &noise.ticks {
                let _ = write!(props, " ticks_dist {d};");
            }
            if let Some(d) = &noise.jitter {
                let _ = write!(props, " jitter {d};");
            }
        }
        let _ = writeln!(
            out,
            "    flow {} -> {} {{ {props} }}",
            app.process(f.src).name,
            app.process(f.dst).name,
        );
    }
    out.push_str("}\n");
    out
}

/// Render a full system (application + platform with hosts clauses).
pub fn to_dsl(psm: &Psm) -> String {
    let mut out = application_to_dsl(psm.application());
    let platform = psm.platform();
    out.push('\n');
    let _ = writeln!(out, "platform {} {{", platform.name());
    let _ = writeln!(out, "    package_size {};", platform.package_size());
    if platform.topology() != segbus_model::platform::Topology::Linear {
        let _ = writeln!(out, "    topology {};", platform.topology());
    }
    let _ = writeln!(
        out,
        "    ca {{ period_ps {}; }}",
        platform.ca_clock().period_ps()
    );
    for i in 0..platform.segment_count() {
        let seg = SegmentId(i as u16);
        let mut hosts = String::new();
        for p in psm.allocation().processes_on(seg) {
            hosts.push(' ');
            hosts.push_str(&psm.application().process(p).name);
        }
        let _ = writeln!(
            out,
            "    segment {} {{ period_ps {}; hosts{hosts}; }}",
            platform.segment(seg).name,
            platform.segment_clock(seg).period_ps()
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_system;
    use segbus_apps::mp3;

    #[test]
    fn mp3_round_trip_is_lossless() {
        let psm = mp3::three_segment_psm();
        let text = to_dsl(&psm);
        let back = parse_system(&text).unwrap();
        assert_eq!(back.application(), psm.application());
        assert_eq!(back.platform(), psm.platform());
        assert_eq!(back.allocation(), psm.allocation());
    }

    #[test]
    fn stochastic_round_trip_is_lossless() {
        let src = "application a { process X initial; process Y final;
            flow X -> Y { items 360; order 1; ticks 100;
                items_dist uniform 300 400;
                ticks_dist normal 100 15 60 140;
                jitter choice 0 3 10 1; } }
           platform p { segment S { freq_mhz 100; hosts X Y; } }";
        let psm = parse_system(src).unwrap();
        let text = to_dsl(&psm);
        assert!(text.contains("items_dist uniform 300 400;"), "{text}");
        assert!(text.contains("ticks_dist normal 100 15 60 140;"), "{text}");
        assert!(text.contains("jitter choice 0 3 10 1;"), "{text}");
        let back = parse_system(&text).unwrap();
        // Application equality includes the noise sidecar.
        assert_eq!(back.application(), psm.application());
    }

    #[test]
    fn printed_text_is_readable() {
        let text = to_dsl(&mp3::three_segment_psm());
        assert!(
            text.contains("application mp3-decoder {")
                || text.contains("application mp3_decoder {")
                || text.contains("application")
        );
        assert!(text.contains("cost affine base 40 reference 36;"));
        assert!(text.contains("flow P0 -> P1 { items 576; order 1; ticks 250; }"));
        assert!(text.contains("package_size 36;"));
        assert!(text.contains("hosts P0 P1 P2 P3 P8 P9 P10;"));
    }
}
