//! # segbus-dsl
//!
//! A textual domain-specific language for the SegBus platform — the stand-in
//! for the paper's UML profile + MagicDraw front-end (ref.\[11\], §2.2). The
//! graphical tooling is proprietary; the semantic content of the DSL is the
//! PSDF/PSM model plus the OCL structural constraints, both of which this
//! crate reproduces with a hand-written lexer/parser and precise
//! line/column diagnostics ("upon breach of any constraint requirement …
//! the tool provides appropriate error message").
//!
//! # Syntax
//!
//! ```text
//! // the application (PSDF)
//! application mp3 {
//!     cost affine base 40 reference 36;   // or: per_item reference 36 | per_package
//!     process P0 initial;
//!     process P1;
//!     process P2 final;
//!     flow P0 -> P1 { items 72; order 1; ticks 250; }
//!     flow P1 -> P2 { items 36; order 2; ticks 250; }
//! }
//!
//! // the platform and the mapping (PSM)
//! platform SBP {
//!     package_size 36;
//!     ca { freq_mhz 111; }
//!     segment Seg1 { freq_mhz 91;  hosts P0 P1; }
//!     segment Seg2 { period_ps 10204; hosts P2; }
//! }
//! ```
//!
//! # Round trip
//!
//! [`printer::to_dsl`] renders a validated PSM back to the DSL;
//! `parse(to_dsl(psm))` reproduces the same model (property-tested).
//!
//! ```
//! use segbus_dsl::{parse_system, printer};
//! let psm = segbus_apps::mp3::three_segment_psm();
//! let text = printer::to_dsl(&psm);
//! let back = parse_system(&text).unwrap();
//! assert_eq!(back.application(), psm.application());
//! assert_eq!(back.platform(), psm.platform());
//! ```

#![warn(missing_docs)]

pub mod lexer;
pub mod parser;
pub mod printer;

pub use lexer::{Lexer, Span, Token, TokenKind};
pub use parser::{parse_source, ParsedSource, PlatformSpec};
pub use segbus_model::diag::{SegbusError, SourceSpan};

use segbus_model::mapping::Psm;

/// One-call convenience: parse a source containing one application and one
/// platform, resolve the mapping, and validate into a [`Psm`].
pub fn parse_system(src: &str) -> Result<Psm, SegbusError> {
    parse_source(src)?.into_psm()
}
