//! Tokenizer for the SegBus DSL.
//!
//! Produces identifier, integer, float and punctuation tokens with
//! line/column spans; skips `//` line comments and `/* … */` block
//! comments. Lexical failures surface as [`SegbusError`]s with code
//! `P001` (malformed input) or `P003` (integer literal out of range).

use std::fmt;

use segbus_model::diag::SegbusError;

/// Position of a token in the source (re-exported model type: 1-based
/// line/column).
pub use segbus_model::diag::SourceSpan as Span;

/// Token payload.
#[derive(Clone, PartialEq, Debug)]
pub enum TokenKind {
    /// Identifier or keyword (`application`, `P0`, `freq_mhz`, …).
    Ident(String),
    /// Unsigned integer literal.
    Int(u64),
    /// Floating-point literal (used for frequencies).
    Float(f64),
    /// `->`
    Arrow,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier {s:?}"),
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::Float(v) => write!(f, "number {v}"),
            TokenKind::Arrow => f.write_str("'->'"),
            TokenKind::LBrace => f.write_str("'{'"),
            TokenKind::RBrace => f.write_str("'}'"),
            TokenKind::Semi => f.write_str("';'"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its position.
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    /// Payload.
    pub kind: TokenKind,
    /// Where it starts.
    pub span: Span,
}

/// The tokenizer.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

fn lex_err(span: Span, message: impl Into<String>) -> SegbusError {
    SegbusError::new("P001", message).with_span(span.line, span.col)
}

impl<'a> Lexer<'a> {
    /// Tokenize from the start of `src`.
    pub fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    /// Tokenize everything, ending with an [`TokenKind::Eof`] token.
    pub fn tokenize(mut self) -> Result<Vec<Token>, SegbusError> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let eof = t.kind == TokenKind::Eof;
            out.push(t);
            if eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn span(&self) -> Span {
        Span {
            line: u32::try_from(self.line).unwrap_or(u32::MAX),
            col: u32::try_from(self.col).unwrap_or(u32::MAX),
        }
    }

    fn skip_trivia(&mut self) -> Result<(), SegbusError> {
        loop {
            match (self.peek(), self.peek2()) {
                (Some(b' ' | b'\t' | b'\r' | b'\n'), _) => {
                    self.bump();
                }
                (Some(b'/'), Some(b'/')) => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.bump();
                    }
                }
                (Some(b'/'), Some(b'*')) => {
                    let start = self.span();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (None, _) => return Err(lex_err(start, "unterminated block comment")),
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, SegbusError> {
        self.skip_trivia()?;
        let span = self.span();
        let Some(c) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                span,
            });
        };
        let kind = match c {
            b'{' => {
                self.bump();
                TokenKind::LBrace
            }
            b'}' => {
                self.bump();
                TokenKind::RBrace
            }
            b';' => {
                self.bump();
                TokenKind::Semi
            }
            b'-' => {
                self.bump();
                if self.peek() == Some(b'>') {
                    self.bump();
                    TokenKind::Arrow
                } else {
                    return Err(lex_err(span, "expected '->' after '-'"));
                }
            }
            b'0'..=b'9' => {
                let start = self.pos;
                let mut is_float = false;
                while let Some(d) = self.peek() {
                    if d.is_ascii_digit() {
                        self.bump();
                    } else if d == b'.'
                        && !is_float
                        && self.peek2().is_some_and(|n| n.is_ascii_digit())
                    {
                        is_float = true;
                        self.bump();
                    } else {
                        break;
                    }
                }
                // The scanned slice is ASCII digits and dots by construction;
                // the lossy conversion can never actually lose anything.
                let text = String::from_utf8_lossy(&self.src[start..self.pos]);
                if is_float {
                    TokenKind::Float(
                        text.parse()
                            .map_err(|_| lex_err(span, format!("malformed number {text:?}")))?,
                    )
                } else {
                    TokenKind::Int(text.parse().map_err(|_| {
                        SegbusError::new("P003", format!("integer {text:?} out of range"))
                            .with_span(span.line, span.col)
                    })?)
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while let Some(d) = self.peek() {
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        self.bump();
                    } else if d == b'-'
                        && self
                            .peek2()
                            .is_some_and(|n| n.is_ascii_alphanumeric() || n == b'_')
                    {
                        // Interior hyphens are part of the name ("mp3-decoder");
                        // "P0->P1" still lexes as an arrow because '>' follows.
                        self.bump();
                    } else {
                        break;
                    }
                }
                TokenKind::Ident(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
            }
            other => {
                return Err(lex_err(
                    span,
                    format!("unexpected character {:?}", other as char),
                ))
            }
        };
        Ok(Token { kind, span })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn tokenizes_the_basic_vocabulary() {
        assert_eq!(
            kinds("flow P0 -> P1 { items 576; }"),
            vec![
                TokenKind::Ident("flow".into()),
                TokenKind::Ident("P0".into()),
                TokenKind::Arrow,
                TokenKind::Ident("P1".into()),
                TokenKind::LBrace,
                TokenKind::Ident("items".into()),
                TokenKind::Int(576),
                TokenKind::Semi,
                TokenKind::RBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn floats_and_ints() {
        assert_eq!(
            kinds("91 91.5"),
            vec![TokenKind::Int(91), TokenKind::Float(91.5), TokenKind::Eof]
        );
    }

    #[test]
    fn comments_are_trivia() {
        assert_eq!(
            kinds("a // line\n b /* block\n still */ c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn spans_track_lines() {
        let toks = Lexer::new("a\n  b").tokenize().unwrap();
        assert_eq!(toks[0].span, Span { line: 1, col: 1 });
        assert_eq!(toks[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn lex_errors() {
        assert_eq!(Lexer::new("@").tokenize().unwrap_err().code, "P001");
        assert_eq!(Lexer::new("- x").tokenize().unwrap_err().code, "P001");
        let e = Lexer::new("/* unterminated").tokenize().unwrap_err();
        assert_eq!(e.code, "P001");
        assert_eq!(e.span, Some(Span { line: 1, col: 1 }));
        let e = Lexer::new("99999999999999999999999")
            .tokenize()
            .unwrap_err();
        assert_eq!(e.code, "P003");
    }
}
