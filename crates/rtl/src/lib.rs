//! # segbus-rtl
//!
//! An independent, tick-stepped, signal-latency-accurate simulator of the
//! SegBus platform — the stand-in for the paper's **real platform**
//! (the RTL implementation against which the authors measure the
//! emulator's ~95 % estimation accuracy, §4).
//!
//! Where the estimator in `segbus-core` is an event-driven model that
//! *deliberately skips* second-order timing (clock-domain synchronisation
//! at the BUs, SA grant set/reset latency, master response time — §3.6),
//! this simulator advances every clock domain edge by edge and models each
//! platform element as an explicit finite-state machine:
//!
//! * functional units compute, raise request lines, respond to grants and
//!   drive the bus beat by beat;
//! * segment arbiters sample request lines, set and reset grants with
//!   latency, and detect transfer completion;
//! * border units carry a single package and expose their *full* flag
//!   through a two-tick synchroniser into the neighbouring clock domain;
//! * the central arbiter polls for synchronised inter-segment requests,
//!   reserves whole paths (circuit switching) and releases segments in a
//!   cascade, each action costing CA ticks.
//!
//! Because both engines implement the same operational semantics
//! (DESIGN.md §4) but this one pays for every signal, its execution times
//! are strictly larger; `estimated / actual` reproduces the paper's
//! accuracy analysis (EXPERIMENTS.md E5).
//!
//! ```
//! use segbus_apps::mp3;
//! use segbus_core::Emulator;
//! use segbus_rtl::RtlSimulator;
//!
//! let psm = mp3::three_segment_psm();
//! let estimated = Emulator::default().run(&psm).execution_time();
//! let actual = RtlSimulator::default().run(&psm).unwrap().execution_time();
//! let accuracy = estimated.0 as f64 / actual.0 as f64;
//! assert!(accuracy > 0.85 && accuracy < 1.0);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod sim;
pub mod threaded;

pub use config::RtlConfig;
pub use sim::{RtlError, RtlSimulator};
pub use threaded::ThreadedRtlSimulator;
