//! Reference-simulator configuration.

/// Signal-level latencies of the reference platform, in clock ticks of the
/// domain where each activity runs.
///
/// The defaults are the paper's stated magnitudes: "a value of two clock
/// ticks is usually considered, at the translation of any signal across two
/// clock domains" and grant/latency figures of "2 to 3 clock ticks" (§4,
/// Discussion).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RtlConfig {
    /// Synchroniser depth for any signal crossing two clock domains.
    pub sync_ticks: u64,
    /// SA latency to set a grant line.
    pub sa_grant_ticks: u64,
    /// Master latency to respond to its grant before driving the bus.
    pub master_response_ticks: u64,
    /// SA latency to detect that a transfer finished.
    pub detect_ticks: u64,
    /// SA latency to reset the grant line and re-arm arbitration.
    pub grant_reset_ticks: u64,
    /// Header/address beats preceding the payload.
    pub header_beats: u64,
    /// Per-package software/DMA setup inside a real functional unit. The
    /// emulator idealises FUs as bare counters (§3.3); the platform's FU
    /// wrappers spend a few extra ticks per transfer setting up each
    /// package, which is one of the error sources the paper's discussion
    /// attributes the estimation gap to.
    pub fu_setup_ticks: u64,
    /// CA ticks consumed to issue one path grant.
    pub ca_grant_ticks: u64,
    /// CA ticks consumed to reset one segment's grant (cascade release).
    pub ca_release_ticks: u64,
    /// Safety cap on simulated time, in ticks of the *fastest* domain;
    /// exceeding it aborts the run with [`crate::RtlError::Deadlock`].
    pub max_ticks: u64,
}

impl Default for RtlConfig {
    fn default() -> Self {
        RtlConfig {
            sync_ticks: 2,
            sa_grant_ticks: 2,
            master_response_ticks: 1,
            detect_ticks: 1,
            grant_reset_ticks: 2,
            header_beats: 2,
            fu_setup_ticks: 8,
            ca_grant_ticks: 2,
            ca_release_ticks: 1,
            max_ticks: 50_000_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_magnitudes() {
        let c = RtlConfig::default();
        assert_eq!(c.sync_ticks, 2);
        assert!(c.sa_grant_ticks >= 1 && c.sa_grant_ticks <= 3);
        assert!(c.grant_reset_ticks >= 1 && c.grant_reset_ticks <= 3);
        assert!(c.max_ticks > 1_000_000);
    }
}
