//! Thread-per-clock-domain driver for the reference simulator.
//!
//! The paper's emulator is a Java program in which every platform element
//! runs as a thread coordinated by a monitor object (§3.6). This module
//! reproduces that implementation approach in Rust: each clock domain
//! (every segment with its SA and FUs, plus the CA) runs on its own OS
//! thread; a barrier closes every edge instant, and the leader thread —
//! playing the paper's *MonitorClass* — selects the next edge time and
//! detects global quiescence.
//!
//! Because all cross-domain communication carries at least one
//! synchroniser tick of latency (see [`crate::sim`]), domains that share an
//! edge instant may execute in any order — so the threaded run is
//! **bit-identical** to the sequential one, which the differential tests
//! assert. The `engines` benchmark quantifies the barrier overhead: for
//! tick-level lock-step simulation, thread-per-component is *slower* than
//! the sequential loop — an honest negative result about the paper's
//! implementation strategy.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Barrier;

use segbus_core::report::EmulationReport;
use segbus_model::mapping::Psm;
use segbus_model::time::Picos;
use std::sync::Mutex;

use crate::config::RtlConfig;
use crate::sim::{self, RtlError};

const RUNNING: u8 = 0;
const DONE: u8 = 1;
const DEADLOCK: u8 = 2;

/// The reference simulator, driven by one thread per clock domain.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadedRtlSimulator {
    config: RtlConfig,
}

impl ThreadedRtlSimulator {
    /// Create a threaded simulator with explicit latencies.
    pub fn new(config: RtlConfig) -> ThreadedRtlSimulator {
        ThreadedRtlSimulator { config }
    }

    /// Simulate the PSM to quiescence, one thread per clock domain.
    pub fn run(&self, psm: &Psm) -> Result<EmulationReport, RtlError> {
        self.run_frames(psm, 1)
    }

    /// Simulate `frames` pipelined iterations, one thread per clock domain.
    ///
    /// # Panics
    /// Panics if `frames` is zero.
    pub fn run_frames(&self, psm: &Psm, frames: u64) -> Result<EmulationReport, RtlError> {
        assert!(frames > 0, "at least one frame");
        let (ctx, shared, domains, mut ca) = sim::build(psm, self.config, frames);
        let nseg = domains.len();
        let nthreads = nseg + 1; // + CA

        let fastest = domains
            .iter()
            .map(|d| d.clock().period_ps())
            .chain(std::iter::once(ca.clock().period_ps()))
            .min()
            .expect("at least one domain");
        let cap = self.config.max_ticks.saturating_mul(fastest);

        let barrier = Barrier::new(nthreads);
        let next_edges: Vec<AtomicU64> = (0..nthreads).map(|_| AtomicU64::new(0)).collect();
        let idle: Vec<AtomicU8> = (0..nthreads).map(|_| AtomicU8::new(1)).collect();
        let current_t = AtomicU64::new(0);
        let status = AtomicU8::new(RUNNING);
        let deadlock_at = AtomicU64::new(0);

        // Slots for the domain states to come back out of the threads.
        let returned: Vec<Mutex<Option<sim::DomainState>>> =
            (0..nseg).map(|_| Mutex::new(None)).collect();

        let ctx_ref = &ctx;
        let shared_ref = &shared;
        let ca_mut = &mut ca;

        std::thread::scope(|scope| {
            for (si, mut d) in domains.into_iter().enumerate() {
                let barrier = &barrier;
                let next_edges = &next_edges;
                let idle = &idle;
                let current_t = &current_t;
                let status = &status;
                let returned = &returned;
                scope.spawn(move || {
                    loop {
                        barrier.wait(); // A: previous round complete
                        barrier.wait(); // B: leader's decision visible
                        if status.load(Ordering::Relaxed) != RUNNING {
                            break;
                        }
                        let t = Picos(current_t.load(Ordering::Relaxed));
                        if next_edges[si].load(Ordering::Relaxed) == t.0 {
                            sim::step_segment(ctx_ref, shared_ref, &mut d, t);
                            next_edges[si].store(t.0 + d.clock().period_ps(), Ordering::Relaxed);
                        }
                        idle[si].store(d.idle() as u8, Ordering::Relaxed);
                    }
                    *returned[si].lock().unwrap() = Some(d);
                });
            }

            // The CA thread doubles as the leader / monitor.
            let ci = nseg;
            loop {
                barrier.wait(); // A
                                // Leader decision: quiescent, deadlocked, or pick next t.
                if status.load(Ordering::Relaxed) == RUNNING {
                    let all_idle = (0..nthreads).all(|i| idle[i].load(Ordering::Relaxed) == 1);
                    if all_idle
                        && shared_ref.waves_done(ctx_ref.wave_count())
                        && shared_ref.mail_quiescent()
                    {
                        status.store(DONE, Ordering::Relaxed);
                    } else {
                        let t = (0..nthreads)
                            .map(|i| next_edges[i].load(Ordering::Relaxed))
                            .min()
                            .expect("domains exist");
                        if t > cap {
                            deadlock_at.store(t, Ordering::Relaxed);
                            status.store(DEADLOCK, Ordering::Relaxed);
                        } else {
                            current_t.store(t, Ordering::Relaxed);
                        }
                    }
                }
                barrier.wait(); // B
                if status.load(Ordering::Relaxed) != RUNNING {
                    break;
                }
                let t = Picos(current_t.load(Ordering::Relaxed));
                if next_edges[ci].load(Ordering::Relaxed) == t.0 {
                    sim::step_ca(ctx_ref, shared_ref, ca_mut, t);
                    next_edges[ci].store(t.0 + ca_mut.clock().period_ps(), Ordering::Relaxed);
                }
                idle[ci].store(ca_mut.idle() as u8, Ordering::Relaxed);
            }
        });

        if status.load(Ordering::Relaxed) == DEADLOCK {
            return Err(RtlError::Deadlock {
                at: Picos(deadlock_at.load(Ordering::Relaxed)),
                detail: "tick budget exceeded (threaded driver)".into(),
            });
        }
        let domains: Vec<sim::DomainState> = returned
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("thread returned its domain"))
            .collect();
        Ok(sim::build_report(&ctx, &shared, &domains, &ca))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RtlSimulator;
    use segbus_model::ids::SegmentId;
    use segbus_model::mapping::Allocation;
    use segbus_model::platform::Platform;
    use segbus_model::psdf::{Application, Flow, Process};
    use segbus_model::time::ClockDomain;

    fn pipeline_psm(nseg: usize, stages: usize, items: u64) -> Psm {
        let mut app = Application::new("pipe");
        let ids: Vec<_> = (0..stages)
            .map(|i| {
                app.add_process(match i {
                    0 => Process::initial(format!("P{i}")),
                    i if i == stages - 1 => Process::final_(format!("P{i}")),
                    _ => Process::new(format!("P{i}")),
                })
            })
            .collect();
        for w in ids.windows(2) {
            app.add_flow(Flow::new(w[0], w[1], items, 0, 80)).unwrap();
        }
        app.assign_orders_topologically().unwrap();
        let mut alloc = Allocation::new(nseg);
        for (i, id) in ids.iter().enumerate() {
            alloc.assign(*id, SegmentId((i % nseg) as u16));
        }
        let platform = Platform::builder("t")
            .package_size(36)
            .ca_clock(ClockDomain::from_mhz(111.0))
            .segment("S1", ClockDomain::from_mhz(91.0))
            .uniform_segments(nseg - 1, ClockDomain::from_mhz(98.0))
            .build()
            .unwrap();
        Psm::new(platform, app, alloc).unwrap()
    }

    fn assert_reports_equal(a: &EmulationReport, b: &EmulationReport) {
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.sas, b.sas);
        assert_eq!(a.ca, b.ca);
        assert_eq!(a.bus, b.bus);
        assert_eq!(a.fus, b.fus);
    }

    #[test]
    fn threaded_matches_sequential_single_segment() {
        let psm = pipeline_psm(1, 3, 72);
        let seq = RtlSimulator::default().run(&psm).unwrap();
        let thr = ThreadedRtlSimulator::default().run(&psm).unwrap();
        assert_reports_equal(&seq, &thr);
    }

    #[test]
    fn threaded_matches_sequential_multi_segment() {
        let psm = pipeline_psm(3, 6, 3 * 36);
        let seq = RtlSimulator::default().run(&psm).unwrap();
        let thr = ThreadedRtlSimulator::default().run(&psm).unwrap();
        assert_reports_equal(&seq, &thr);
    }

    #[test]
    fn threaded_is_deterministic_across_runs() {
        let psm = pipeline_psm(2, 4, 2 * 36);
        let a = ThreadedRtlSimulator::default().run(&psm).unwrap();
        let b = ThreadedRtlSimulator::default().run(&psm).unwrap();
        assert_reports_equal(&a, &b);
    }

    /// Full MP3 equality between drivers. ~4 s of barrier-stepped
    /// simulation; run with `cargo test -- --ignored`.
    #[test]
    #[ignore = "slow: ~50k barrier rounds"]
    fn threaded_matches_sequential_on_full_mp3() {
        let psm = segbus_apps::mp3::three_segment_psm();
        let seq = RtlSimulator::default().run(&psm).unwrap();
        let thr = ThreadedRtlSimulator::default().run(&psm).unwrap();
        assert_reports_equal(&seq, &thr);
    }

    #[test]
    fn threaded_deadlock_guard() {
        let cfg = RtlConfig {
            max_ticks: 5,
            ..RtlConfig::default()
        };
        let err = ThreadedRtlSimulator::new(cfg)
            .run(&pipeline_psm(2, 3, 36))
            .unwrap_err();
        assert!(matches!(err, RtlError::Deadlock { .. }));
    }
}
