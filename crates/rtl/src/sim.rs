//! The tick-stepped reference simulator.
//!
//! Every clock domain (one per segment, one for the CA) advances edge by
//! edge; on each edge the domain's components execute one step of their
//! finite-state machines. Cross-domain communication goes exclusively
//! through timestamped messages and synchronised flags whose visibility is
//! **strictly later** than their emission (at least one synchroniser tick).
//! That latency discipline is what makes the threaded driver
//! ([`crate::threaded`]) bit-identical to the sequential one: domains that
//! share an edge instant can be stepped in any order, or in parallel.
//!
//! State is split accordingly:
//!
//! * `Ctx` — immutable: the PSM, the configuration, precomputed tables;
//! * `DomainState` — owned exclusively by one segment's clock domain
//!   (its SA FSM, its FUs, its counters);
//! * `CaState` — owned by the CA domain;
//! * `Shared` — cross-domain mailboxes (CA inbox, per-SA reserve inbox,
//!   per-FU delivery acks), border-unit registers, the transfer arena and
//!   the wave scoreboard, behind mutexes and atomics.

use std::sync::atomic::{AtomicU64, Ordering};

use segbus_core::counters::{BuCounters, CaCounters, FuTimes, SaCounters};
use segbus_core::report::EmulationReport;
use segbus_model::ids::{FlowId, ProcessId, SegmentId};
use segbus_model::mapping::Psm;
use segbus_model::time::{ClockDomain, Picos};
use std::sync::Mutex;

use crate::config::RtlConfig;

/// Failure modes of a reference run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RtlError {
    /// The simulation exceeded the configured tick budget without reaching
    /// quiescence — a protocol deadlock or an unschedulable model.
    Deadlock {
        /// Simulated time at the abort.
        at: Picos,
        /// Human-readable summary of the stuck state.
        detail: String,
    },
}

impl std::fmt::Display for RtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtlError::Deadlock { at, detail } => {
                write!(f, "reference simulation deadlocked at {at}: {detail}")
            }
        }
    }
}

impl std::error::Error for RtlError {}

/// The reference ("real platform") simulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct RtlSimulator {
    config: RtlConfig,
}

impl RtlSimulator {
    /// Create a simulator with explicit latencies.
    pub fn new(config: RtlConfig) -> RtlSimulator {
        RtlSimulator { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &RtlConfig {
        &self.config
    }

    /// Simulate the PSM to quiescence (sequential driver).
    pub fn run(&self, psm: &Psm) -> Result<EmulationReport, RtlError> {
        self.run_frames(psm, 1)
    }

    /// Simulate `frames` pipelined iterations of the application (the
    /// streaming counterpart of [`segbus_core::Emulator::run_frames`]).
    ///
    /// # Panics
    /// Panics if `frames` is zero.
    pub fn run_frames(&self, psm: &Psm, frames: u64) -> Result<EmulationReport, RtlError> {
        assert!(frames > 0, "at least one frame");
        let mut world = World::new(psm, self.config, frames);
        world.run_sequential()?;
        Ok(world.into_report())
    }
}

// ---------------------------------------------------------------------------
// identifiers & messages

/// Transfer id: source segment in the high bits, per-segment index below,
/// so concurrent allocation in the threaded driver stays deterministic.
pub(crate) type Tid = u32;
const TID_SEG_SHIFT: u32 = 20;

fn tid(seg: SegmentId, idx: usize) -> Tid {
    ((seg.0 as u32) << TID_SEG_SHIFT) | idx as u32
}

fn tid_seg(t: Tid) -> usize {
    (t >> TID_SEG_SHIFT) as usize
}

fn tid_idx(t: Tid) -> usize {
    (t & ((1 << TID_SEG_SHIFT) - 1)) as usize
}

/// Message to the central arbiter.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CaMsg {
    /// An SA forwards an inter-segment request.
    Request(Tid),
    /// A segment finished its part of a transfer (cascade release).
    SegmentDone(SegmentId),
}

/// A timestamped message with a deterministic order key
/// `(visible_at, sender, sender_seq)`.
#[derive(Clone, Copy, Debug)]
struct Stamped<T> {
    visible_at: Picos,
    sender: u16,
    seq: u64,
    payload: T,
}

/// Mailbox with a drain order independent of insertion interleaving.
#[derive(Debug)]
struct Mailbox<T>(Mutex<Vec<Stamped<T>>>);

impl<T: Copy> Mailbox<T> {
    fn new() -> Self {
        Mailbox(Mutex::new(Vec::new()))
    }

    fn post(&self, visible_at: Picos, sender: u16, seq: u64, payload: T) {
        self.0.lock().unwrap().push(Stamped {
            visible_at,
            sender,
            seq,
            payload,
        });
    }

    /// Remove and return every message visible at `now`, ordered by
    /// `(visible_at, sender, seq)`.
    fn drain_due(&self, now: Picos) -> Vec<Stamped<T>> {
        let mut g = self.0.lock().unwrap();
        let mut due: Vec<Stamped<T>> = Vec::new();
        let mut i = 0;
        while i < g.len() {
            if g[i].visible_at <= now {
                due.push(g.swap_remove(i));
            } else {
                i += 1;
            }
        }
        due.sort_by_key(|m| (m.visible_at, m.sender, m.seq));
        due
    }

    fn is_empty(&self) -> bool {
        self.0.lock().unwrap().is_empty()
    }
}

// ---------------------------------------------------------------------------
// shared state

/// One in-flight inter-segment transfer.
#[derive(Clone, Debug)]
struct Transfer {
    flow: FlowId,
    pkg: u64,
    path: Vec<SegmentId>,
    /// Next hop index to execute (0 = source fill).
    hop: usize,
}

/// Border-unit registers (single-package FIFO plus synchronised full flag).
#[derive(Debug, Default)]
struct BuShared {
    /// The package inside: `(transfer, visible_at, loaded_at)`.
    full: Option<(Tid, Picos, Picos)>,
    counters: BuCounters,
}

pub(crate) struct Shared {
    ca_inbox: Mailbox<CaMsg>,
    /// Per segment: path reservations arriving from the CA.
    sa_inbox: Vec<Mailbox<Tid>>,
    /// Per process: delivery acknowledgements (flow-control release).
    fu_ack: Vec<Mailbox<()>>,
    bus: Vec<Mutex<BuShared>>,
    /// Transfer arena, one sub-arena per source segment.
    transfers: Vec<Mutex<Vec<Transfer>>>,
    // wave scoreboard (instances = frame × waves + wave)
    /// Outstanding deliveries per wave instance.
    instance_remaining: Vec<AtomicU64>,
    /// Opening instant of each instance (`u64::MAX` = not open yet;
    /// wave-0 instances open at 0). Producers act strictly after the
    /// opening instant (time 0 exempt).
    instance_open_at: Vec<AtomicU64>,
    /// Deliveries still outstanding over the whole run.
    total_remaining: AtomicU64,
    makespan: AtomicU64,
}

impl Shared {
    fn transfer(&self, t: Tid) -> Transfer {
        self.transfers[tid_seg(t)].lock().unwrap()[tid_idx(t)].clone()
    }

    fn advance_hop(&self, t: Tid) {
        self.transfers[tid_seg(t)].lock().unwrap()[tid_idx(t)].hop += 1;
    }

    fn note_activity(&self, at: Picos) {
        self.makespan.fetch_max(at.0, Ordering::Relaxed);
    }

    pub(crate) fn mail_quiescent(&self) -> bool {
        self.ca_inbox.is_empty()
            && self.sa_inbox.iter().all(Mailbox::is_empty)
            && self.fu_ack.iter().all(Mailbox::is_empty)
            && self.bus.iter().all(|b| b.lock().unwrap().full.is_none())
    }

    pub(crate) fn waves_done(&self, _n_waves: usize) -> bool {
        self.total_remaining.load(Ordering::Acquire) == 0
    }

    /// `true` once instance `g` is open for producers at instant `now`.
    fn instance_openable(&self, g: usize, now: Picos) -> bool {
        let at = self.instance_open_at[g].load(Ordering::Acquire);
        at != u64::MAX && (now.0 > at || at == 0)
    }
}

// ---------------------------------------------------------------------------
// immutable context

/// Everything read-only during a run.
pub(crate) struct Ctx<'a> {
    psm: &'a Psm,
    cfg: RtlConfig,
    s: u32,
    flow_pkgs: Vec<u64>,
    flow_compute: Vec<u64>,
    /// flows grouped by wave.
    waves: Vec<Vec<FlowId>>,
    /// Wave index of each flow (parallel to the flow table).
    flow_wave: Vec<usize>,

    /// Number of pipelined frames.
    frames: u64,
    ca_clock: ClockDomain,
}

impl<'a> Ctx<'a> {
    pub(crate) fn wave_count(&self) -> usize {
        self.waves.len()
    }
}

// ---------------------------------------------------------------------------
// per-domain state

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FuState {
    Idle,
    Computing {
        left: u64,
        flow: FlowId,
        pkg: u64,
    },
    Requesting {
        flow: FlowId,
        pkg: u64,
        forwarded: bool,
    },
    InTransaction {
        flow: FlowId,
        pkg: u64,
    },
    WaitDelivery,
}

#[derive(Clone, Debug)]
struct Fu {
    id: ProcessId,
    /// `(flow, packages remaining, frame)` for the armed wave instances.
    pending: Vec<(FlowId, u64, u64)>,
    rr: usize,
    /// The waves this FU produces in, with its flows per wave (built
    /// once, so the per-tick arming scan touches only relevant waves).
    my_waves: Vec<(usize, Vec<FlowId>)>,
    /// Per entry of `my_waves`: next frame not yet pulled into `pending`.
    armed_frame: Vec<u64>,
    state: FuState,
    times: FuTimes,
    outputs_remaining: u64,
    inputs_remaining: u64,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Driver {
    /// A local master drives the bus.
    Fu {
        fu: usize,
        flow: FlowId,
        pkg: u64,
        inter: Option<Tid>,
    },
    /// The SA unloads a border unit (hop > 0 of a transfer).
    Bu { t: Tid },
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SaState {
    Idle,
    GrantSet { left: u64 },
    Response { left: u64 },
    Transfer { beats_left: u64 },
    Detect { left: u64 },
    GrantReset { left: u64 },
}

/// Everything owned exclusively by one segment's clock domain.
pub(crate) struct DomainState {
    seg: SegmentId,
    clock: ClockDomain,
    fus: Vec<Fu>,
    sa_state: SaState,
    driver: Option<Driver>,
    /// Path reservations accepted from the CA, in arrival order.
    reservations: Vec<Tid>,
    sa_rr: usize,
    transfer_started: Picos,
    counters: SaCounters,
    /// Per-sender message sequence (deterministic mailbox ordering).
    seq: u64,
    /// Next transfer index in this segment's arena.
    next_tid_idx: usize,
}

impl DomainState {
    pub(crate) fn clock(&self) -> ClockDomain {
        self.clock
    }

    /// `true` when this domain has nothing in flight and nothing pending.
    pub(crate) fn idle(&self) -> bool {
        self.sa_state == SaState::Idle
            && self.reservations.is_empty()
            && self
                .fus
                .iter()
                .all(|f| f.state == FuState::Idle && f.pending.is_empty())
    }
}

/// State owned by the CA domain.
pub(crate) struct CaState {
    clock: ClockDomain,
    queue: Vec<Tid>,
    reserved: Vec<Option<Tid>>,
    busy_left: u64,
    counters: CaCounters,
    seq: u64,
}

impl CaState {
    pub(crate) fn clock(&self) -> ClockDomain {
        self.clock
    }

    pub(crate) fn idle(&self) -> bool {
        self.queue.is_empty() && self.busy_left == 0 && self.reserved.iter().all(Option::is_none)
    }
}

// ---------------------------------------------------------------------------
// construction

pub(crate) fn build<'a>(
    psm: &'a Psm,
    cfg: RtlConfig,
    frames: u64,
) -> (Ctx<'a>, Shared, Vec<DomainState>, CaState) {
    let app = psm.application();
    let platform = psm.platform();
    let s = platform.package_size();
    let nseg = platform.segment_count();
    let nproc = app.process_count();

    let flow_pkgs: Vec<u64> = app.flows().iter().map(|f| f.packages(s)).collect();
    let flow_compute: Vec<u64> = (0..app.flows().len())
        .map(|i| app.ticks_per_package(FlowId(i as u32), s) + cfg.fu_setup_ticks)
        .collect();
    let waves: Vec<Vec<FlowId>> = app.waves().into_iter().map(|w| w.flows).collect();
    let mut flow_wave = vec![0usize; app.flows().len()];
    for (w, flows) in waves.iter().enumerate() {
        for f in flows {
            flow_wave[f.index()] = w;
        }
    }
    let wave_sources: Vec<Vec<(ProcessId, FlowId)>> = waves
        .iter()
        .map(|w| w.iter().map(|&f| (app.flow(f).src, f)).collect())
        .collect();

    let mut outputs = vec![0u64; nproc];
    let mut inputs = vec![0u64; nproc];
    for (i, f) in app.flows().iter().enumerate() {
        outputs[f.src.index()] += flow_pkgs[i] * frames;
        inputs[f.dst.index()] += flow_pkgs[i] * frames;
    }

    let mut domains: Vec<DomainState> = (0..nseg)
        .map(|si| DomainState {
            seg: SegmentId(si as u16),
            clock: platform.segment_clock(SegmentId(si as u16)),
            fus: Vec::new(),
            sa_state: SaState::Idle,
            driver: None,
            reservations: Vec::new(),
            sa_rr: 0,
            transfer_started: Picos::ZERO,
            counters: SaCounters::default(),
            seq: 0,
            next_tid_idx: 0,
        })
        .collect();
    for p in 0..nproc {
        let pid = ProcessId(p as u32);
        let seg = psm.segment_of(pid);
        let my_waves: Vec<(usize, Vec<FlowId>)> = wave_sources
            .iter()
            .enumerate()
            .filter_map(|(w, srcs)| {
                let flows: Vec<FlowId> = srcs
                    .iter()
                    .filter(|(src, _)| *src == pid)
                    .map(|(_, f)| *f)
                    .collect();
                (!flows.is_empty()).then_some((w, flows))
            })
            .collect();
        let armed_frame = vec![0; my_waves.len()];
        let mut fu = Fu {
            id: pid,
            pending: Vec::new(),
            rr: 0,
            my_waves,
            armed_frame,
            state: FuState::Idle,
            times: FuTimes::default(),
            outputs_remaining: outputs[p],
            inputs_remaining: inputs[p],
        };
        if fu.outputs_remaining == 0 && fu.inputs_remaining == 0 {
            fu.times.flag = true;
        }
        domains[seg.index()].fus.push(fu);
    }

    let per_wave: Vec<u64> = waves
        .iter()
        .map(|w| w.iter().map(|f| flow_pkgs[f.index()]).sum())
        .collect();
    let instance_remaining: Vec<AtomicU64> = (0..frames)
        .flat_map(|_| per_wave.iter().map(|&n| AtomicU64::new(n)))
        .collect();
    let total: u64 = per_wave.iter().sum::<u64>() * frames;
    // Wave-0 instances of every frame open at time zero (streaming with a
    // full input buffer); the rest open as predecessors complete.
    let instance_open_at: Vec<AtomicU64> = (0..frames)
        .flat_map(|_| (0..waves.len()).map(|w| AtomicU64::new(if w == 0 { 0 } else { u64::MAX })))
        .collect();

    let shared = Shared {
        ca_inbox: Mailbox::new(),
        sa_inbox: (0..nseg).map(|_| Mailbox::new()).collect(),
        fu_ack: (0..nproc).map(|_| Mailbox::new()).collect(),
        bus: (0..platform.border_unit_count())
            .map(|_| Mutex::new(BuShared::default()))
            .collect(),
        transfers: (0..nseg).map(|_| Mutex::new(Vec::new())).collect(),
        instance_remaining,
        instance_open_at,
        total_remaining: AtomicU64::new(total),
        makespan: AtomicU64::new(0),
    };

    let ca = CaState {
        clock: platform.ca_clock(),
        queue: Vec::new(),
        reserved: vec![None; nseg],
        busy_left: 0,
        counters: CaCounters::default(),
        seq: 0,
    };

    let ctx = Ctx {
        psm,
        cfg,
        s,
        flow_pkgs,
        flow_compute,
        waves,
        flow_wave,
        frames,
        ca_clock: platform.ca_clock(),
    };
    (ctx, shared, domains, ca)
}

// ---------------------------------------------------------------------------
// step functions (shared by the sequential and threaded drivers)

/// One clock edge of a segment domain: functional units first, then the SA.
pub(crate) fn step_segment(ctx: &Ctx<'_>, shared: &Shared, d: &mut DomainState, now: Picos) {
    step_fus(ctx, shared, d, now);
    step_sa(ctx, shared, d, now);
}

fn step_fus(ctx: &Ctx<'_>, shared: &Shared, d: &mut DomainState, now: Picos) {
    let n_waves = ctx.waves.len();
    for fu in &mut d.fus {
        if fu.state == FuState::WaitDelivery {
            let acks = shared.fu_ack[fu.id.index()].drain_due(now);
            debug_assert!(acks.len() <= 1, "one outstanding package per producer");
            if !acks.is_empty() {
                // Producer-side completion happens at acknowledge receipt,
                // inside the producer's own domain.
                fu.state = FuState::Idle;
                fu.times.packages_sent += 1;
                fu.times.end = Some(now);
                fu.outputs_remaining -= 1;
                if fu.outputs_remaining == 0 && fu.inputs_remaining == 0 {
                    fu.times.flag = true;
                }
                shared.note_activity(now);
            }
        }
        match fu.state {
            FuState::Idle => {
                // Lazily pull newly opened wave instances into the local
                // queue. Per wave, instances open in frame order (each
                // producer emits its frames in order and per-flow delivery
                // order follows production order), so a per-wave frame
                // pointer arms deterministically. Producers act strictly
                // after the opening instant (time zero exempt).
                for k in 0..fu.my_waves.len() {
                    let w = fu.my_waves[k].0;
                    while fu.armed_frame[k] < ctx.frames
                        && shared.instance_openable(fu.armed_frame[k] as usize * n_waves + w, now)
                    {
                        let frame = fu.armed_frame[k];
                        for fi in 0..fu.my_waves[k].1.len() {
                            let f = fu.my_waves[k].1[fi];
                            fu.pending.push((f, ctx.flow_pkgs[f.index()], frame));
                        }
                        fu.armed_frame[k] += 1;
                    }
                }
                if let Some((flow, pkg)) = pick_next(fu, &ctx.flow_pkgs) {
                    let left = ctx.flow_compute[flow.index()];
                    fu.times.compute_ticks += left;
                    fu.state = FuState::Computing { left, flow, pkg };
                    if fu.times.start.is_none() {
                        fu.times.start = Some(now);
                    }
                }
            }
            FuState::Computing { left, flow, pkg } => {
                fu.state = if left <= 1 {
                    FuState::Requesting {
                        flow,
                        pkg,
                        forwarded: false,
                    }
                } else {
                    FuState::Computing {
                        left: left - 1,
                        flow,
                        pkg,
                    }
                };
            }
            // Requesting / InTransaction / WaitDelivery are driven by the
            // SA FSM and the ack path.
            _ => {}
        }
    }
}

fn step_sa(ctx: &Ctx<'_>, shared: &Shared, d: &mut DomainState, now: Picos) {
    let si = d.seg.index();
    // Accept path reservations from the CA.
    for m in shared.sa_inbox[si].drain_due(now) {
        d.reservations.push(m.payload);
    }

    // Forward fresh inter-segment requests to the CA (request lines are
    // sampled in parallel with the data-path FSM).
    for fi in 0..d.fus.len() {
        if let FuState::Requesting {
            flow,
            pkg,
            forwarded: false,
        } = d.fus[fi].state
        {
            let f = *ctx.psm.application().flow(flow);
            let dst_seg = ctx.psm.segment_of(f.dst);
            if dst_seg != d.seg {
                let path = ctx.psm.platform().path_segments(d.seg, dst_seg);
                let idx = d.next_tid_idx;
                d.next_tid_idx += 1;
                let t = tid(d.seg, idx);
                shared.transfers[si].lock().unwrap().push(Transfer {
                    flow,
                    pkg,
                    path,
                    hop: 0,
                });
                let visible = now + Picos(ctx.cfg.sync_ticks * ctx.ca_clock.period_ps());
                let seq = d.seq;
                d.seq += 1;
                shared
                    .ca_inbox
                    .post(visible, si as u16, seq, CaMsg::Request(t));
                d.counters.inter_requests += 1;
                d.counters.last_activity = d.counters.last_activity.max(now);
                d.fus[fi].state = FuState::Requesting {
                    flow,
                    pkg,
                    forwarded: true,
                };
            }
        }
    }

    // The data-path FSM.
    match d.sa_state {
        SaState::Idle => sa_pick(ctx, shared, d, now),
        SaState::GrantSet { left } => {
            sa_busy(d, now);
            if left <= 1 {
                let resp = match d.driver {
                    Some(Driver::Fu { .. }) => ctx.cfg.master_response_ticks.max(1),
                    Some(Driver::Bu { .. }) => 1,
                    None => unreachable!("grant without driver"),
                };
                d.sa_state = SaState::Response { left: resp };
            } else {
                d.sa_state = SaState::GrantSet { left: left - 1 };
            }
        }
        SaState::Response { left } => {
            sa_busy(d, now);
            if left <= 1 {
                d.transfer_started = now;
                d.sa_state = SaState::Transfer {
                    beats_left: ctx.cfg.header_beats + ctx.s as u64,
                };
            } else {
                d.sa_state = SaState::Response { left: left - 1 };
            }
        }
        SaState::Transfer { beats_left } => {
            sa_busy(d, now);
            if beats_left <= 1 {
                d.sa_state = SaState::Detect {
                    left: ctx.cfg.detect_ticks.max(1),
                };
            } else {
                d.sa_state = SaState::Transfer {
                    beats_left: beats_left - 1,
                };
            }
        }
        SaState::Detect { left } => {
            sa_busy(d, now);
            if left <= 1 {
                complete_transaction(ctx, shared, d, now);
                d.sa_state = SaState::GrantReset {
                    left: ctx.cfg.grant_reset_ticks.max(1),
                };
            } else {
                d.sa_state = SaState::Detect { left: left - 1 };
            }
        }
        SaState::GrantReset { left } => {
            sa_busy(d, now);
            if left <= 1 {
                d.sa_state = SaState::Idle;
                d.driver = None;
            } else {
                d.sa_state = SaState::GrantReset { left: left - 1 };
            }
        }
    }
}

fn sa_busy(d: &mut DomainState, now: Picos) {
    d.counters.busy_ticks += 1;
    d.counters.last_activity = d.counters.last_activity.max(now);
}

/// Idle SA: pick the next bus transaction — path reservations (circuit
/// priority) first, then local intra-segment requests round-robin.
fn sa_pick(ctx: &Ctx<'_>, shared: &Shared, d: &mut DomainState, now: Picos) {
    // 1. A ready reservation?
    let mut pick: Option<(usize, Driver)> = None;
    for (ri, &t) in d.reservations.iter().enumerate() {
        let tr = shared.transfer(t);
        if tr.path[tr.hop] != d.seg {
            continue; // not this segment's turn yet
        }
        if tr.hop == 0 {
            // Source fill: the requesting FU drives the bus.
            let src = ctx.psm.application().flow(tr.flow).src;
            let fi = d
                .fus
                .iter()
                .position(|f| f.id == src)
                .expect("source FU on source segment");
            if matches!(
                d.fus[fi].state,
                FuState::Requesting {
                    forwarded: true,
                    ..
                }
            ) {
                pick = Some((
                    ri,
                    Driver::Fu {
                        fu: fi,
                        flow: tr.flow,
                        pkg: tr.pkg,
                        inter: Some(t),
                    },
                ));
                break;
            }
        } else {
            // Downstream hop: the BU behind us must be visibly full.
            let prev = tr.path[tr.hop - 1];
            let bu = ctx
                .psm
                .platform()
                .bu_between(prev, d.seg)
                .expect("path hops adjacent");
            let ready = shared.bus[bu.index()]
                .lock()
                .unwrap()
                .full
                .map(|(ft, visible_at, _)| ft == t && visible_at <= now)
                .unwrap_or(false);
            if ready {
                pick = Some((ri, Driver::Bu { t }));
                break;
            }
        }
    }
    if let Some((ri, driver)) = pick {
        d.reservations.remove(ri);
        if let Driver::Fu { fu, flow, pkg, .. } = driver {
            d.fus[fu].state = FuState::InTransaction { flow, pkg };
        }
        if matches!(driver, Driver::Bu { .. }) {
            // Routing a BU delivery is intra-segment work for this SA.
            d.counters.intra_requests += 1;
        }
        d.driver = Some(driver);
        d.sa_state = SaState::GrantSet {
            left: ctx.cfg.sa_grant_ticks.max(1),
        };
        sa_busy(d, now);
        return;
    }

    // 2. A local intra-segment request, round-robin — but only when no
    // path reservation is pending: once the CA has dynamically connected
    // this segment into an inter-segment path, the segment is locked for
    // that circuit (paper §2.1) even while the package is still upstream.
    if !d.reservations.is_empty() {
        return;
    }
    let nfus = d.fus.len();
    for k in 0..nfus {
        let fi = (d.sa_rr + k) % nfus;
        if let FuState::Requesting { flow, pkg, .. } = d.fus[fi].state {
            let f = *ctx.psm.application().flow(flow);
            if ctx.psm.segment_of(f.dst) != d.seg {
                continue; // inter-segment: waits for its CA reservation
            }
            d.sa_rr = (fi + 1) % nfus;
            d.counters.intra_requests += 1;
            d.fus[fi].state = FuState::InTransaction { flow, pkg };
            d.driver = Some(Driver::Fu {
                fu: fi,
                flow,
                pkg,
                inter: None,
            });
            d.sa_state = SaState::GrantSet {
                left: ctx.cfg.sa_grant_ticks.max(1),
            };
            sa_busy(d, now);
            return;
        }
    }
}

/// Effects of a finished bus transaction on this segment.
fn complete_transaction(ctx: &Ctx<'_>, shared: &Shared, d: &mut DomainState, now: Picos) {
    let driver = d.driver.expect("transaction has a driver");
    match driver {
        Driver::Fu {
            fu,
            flow,
            pkg,
            inter: None,
        } => {
            // Local delivery: producer done, consumer receives.
            d.fus[fu].state = FuState::Idle;
            d.fus[fu].times.packages_sent += 1;
            d.fus[fu].times.end = Some(now);
            d.fus[fu].outputs_remaining -= 1;
            if d.fus[fu].outputs_remaining == 0 && d.fus[fu].inputs_remaining == 0 {
                d.fus[fu].times.flag = true;
            }
            deliver(ctx, shared, d, flow, pkg, now);
        }
        Driver::Fu {
            fu,
            flow: _,
            pkg: _,
            inter: Some(t),
        } => {
            // Source fill completed: the package sits in the first BU.
            let tr = shared.transfer(t);
            let next = tr.path[1];
            let bu = ctx
                .psm
                .platform()
                .bu_between(d.seg, next)
                .expect("adjacent");
            let next_clock = ctx.psm.platform().segment_clock(next);
            let visible = now + Picos(ctx.cfg.sync_ticks * next_clock.period_ps());
            {
                let mut b = shared.bus[bu.index()].lock().unwrap();
                debug_assert!(b.full.is_none(), "BU overwritten");
                b.full = Some((t, visible, now));
                if d.seg == bu.left {
                    b.counters.received_from_left += 1;
                } else {
                    b.counters.received_from_right += 1;
                }
            }
            // Side = the source's position on its first-hop BU (covers a
            // ring's wrap-around unit).
            if d.seg == bu.left {
                d.counters.packets_to_right += 1;
            } else {
                d.counters.packets_to_left += 1;
            }
            shared.advance_hop(t);
            d.fus[fu].state = FuState::WaitDelivery;
            segment_done_to_ca(ctx, shared, d, now);
        }
        Driver::Bu { t } => {
            let tr = shared.transfer(t);
            let hop = tr.hop;
            let prev = tr.path[hop - 1];
            let bu_in = ctx
                .psm
                .platform()
                .bu_between(prev, d.seg)
                .expect("adjacent");
            // Unload accounting: WP runs from the load instant to the
            // moment this unload transfer started driving beats.
            let started = d.transfer_started;
            {
                let mut b = shared.bus[bu_in.index()].lock().unwrap();
                let (ft, _, loaded_at) = b.full.take().expect("BU was full");
                debug_assert_eq!(ft, t);
                let wp = d.clock.ticks_at(started.saturating_sub(loaded_at));
                b.counters.waiting_ticks += wp;
                b.counters.tct += 2 * ctx.s as u64 + wp;
                if d.seg == bu_in.right {
                    b.counters.transferred_to_right += 1;
                } else {
                    b.counters.transferred_to_left += 1;
                }
            }
            if hop == tr.path.len() - 1 {
                // Final hop: deliver, then acknowledge the producer
                // (producer-side bookkeeping happens at ack receipt in the
                // producer's own domain — see step_fus).
                deliver(ctx, shared, d, tr.flow, tr.pkg, now);
                let src = ctx.psm.application().flow(tr.flow).src;
                let src_clock = ctx.psm.platform().segment_clock(ctx.psm.segment_of(src));
                let ack_at = now
                    + Picos(
                        ctx.cfg.sync_ticks * (ctx.ca_clock.period_ps() + src_clock.period_ps()),
                    );
                let seq = d.seq;
                d.seq += 1;
                shared.fu_ack[src.index()].post(ack_at, d.seg.0, seq, ());
            } else {
                // Load the next BU.
                let next = tr.path[hop + 1];
                let bu_out = ctx
                    .psm
                    .platform()
                    .bu_between(d.seg, next)
                    .expect("adjacent");
                let next_clock = ctx.psm.platform().segment_clock(next);
                let visible = now + Picos(ctx.cfg.sync_ticks * next_clock.period_ps());
                let mut b = shared.bus[bu_out.index()].lock().unwrap();
                debug_assert!(b.full.is_none(), "BU overwritten");
                b.full = Some((t, visible, now));
                if d.seg == bu_out.left {
                    b.counters.received_from_left += 1;
                } else {
                    b.counters.received_from_right += 1;
                }
                drop(b);
                shared.advance_hop(t);
            }
            segment_done_to_ca(ctx, shared, d, now);
        }
    }
}

fn segment_done_to_ca(ctx: &Ctx<'_>, shared: &Shared, d: &mut DomainState, now: Picos) {
    let visible = now + Picos(ctx.cfg.sync_ticks * ctx.ca_clock.period_ps());
    let seq = d.seq;
    d.seq += 1;
    shared
        .ca_inbox
        .post(visible, d.seg.0, seq, CaMsg::SegmentDone(d.seg));
}

/// Final delivery of a package at its destination process (which always
/// lives on the segment executing the final hop, i.e. in this domain).
fn deliver(
    ctx: &Ctx<'_>,
    shared: &Shared,
    d: &mut DomainState,
    flow: FlowId,
    pkg: u64,
    now: Picos,
) {
    let dst = ctx.psm.application().flow(flow).dst;
    debug_assert_eq!(
        ctx.psm.segment_of(dst),
        d.seg,
        "delivery in the wrong domain"
    );
    let fu = d
        .fus
        .iter_mut()
        .find(|f| f.id == dst)
        .expect("destination on this segment");
    fu.times.packages_received += 1;
    fu.times.last_received = Some(now);
    fu.inputs_remaining -= 1;
    if fu.outputs_remaining == 0 && fu.inputs_remaining == 0 {
        fu.times.flag = true;
    }
    shared.note_activity(now);
    // Wave-instance scoreboard: the frame is recovered from the
    // frame-global package index.
    let n_waves = ctx.waves.len();
    let frame = pkg / ctx.flow_pkgs[flow.index()];
    let w = ctx.flow_wave[flow.index()];
    let g = frame as usize * n_waves + w;
    let left = shared.instance_remaining[g].fetch_sub(1, Ordering::AcqRel) - 1;
    if left == 0 && w + 1 < n_waves {
        // Open the next wave of this frame; visibility strictly after.
        shared.instance_open_at[g + 1].store(now.0, Ordering::Release);
    }
    shared.total_remaining.fetch_sub(1, Ordering::AcqRel);
}

/// One clock edge of the CA domain.
pub(crate) fn step_ca(ctx: &Ctx<'_>, shared: &Shared, ca: &mut CaState, now: Picos) {
    for m in shared.ca_inbox.drain_due(now) {
        match m.payload {
            CaMsg::Request(t) => {
                ca.counters.inter_requests += 1;
                ca.busy_left += 1; // registering the request
                ca.queue.push(t);
            }
            CaMsg::SegmentDone(seg) => {
                ca.counters.releases += 1;
                ca.busy_left += ctx.cfg.ca_release_ticks;
                ca.reserved[seg.index()] = None;
            }
        }
        shared.note_activity(now);
    }
    if ca.busy_left > 0 {
        ca.busy_left -= 1;
        ca.counters.busy_ticks += 1;
        return;
    }
    // First-fit grant scan, one grant per polling round.
    let mut i = 0;
    while i < ca.queue.len() {
        let t = ca.queue[i];
        let tr = shared.transfer(t);
        let free = tr.path.iter().all(|m| ca.reserved[m.index()].is_none());
        if free {
            ca.queue.remove(i);
            for m in &tr.path {
                ca.reserved[m.index()] = Some(t);
                let clock = ctx.psm.platform().segment_clock(*m);
                let visible = now + Picos(ctx.cfg.sync_ticks * clock.period_ps());
                let seq = ca.seq;
                ca.seq += 1;
                shared.sa_inbox[m.index()].post(visible, u16::MAX, seq, t);
            }
            ca.counters.grants += 1;
            ca.busy_left += ctx.cfg.ca_grant_ticks;
            shared.note_activity(now);
            break;
        }
        i += 1;
    }
}

/// Round-robin selection of the producer's next `(flow, package)`; the
/// package index is frame-global (`frame × packages + within-frame`).
fn pick_next(fu: &mut Fu, flow_pkgs: &[u64]) -> Option<(FlowId, u64)> {
    if fu.pending.is_empty() {
        return None;
    }
    let idx = fu.rr % fu.pending.len();
    let (flow, remaining, frame) = fu.pending[idx];
    let pkg = frame * flow_pkgs[flow.index()] + (flow_pkgs[flow.index()] - remaining);
    if remaining == 1 {
        fu.pending.remove(idx);
        if !fu.pending.is_empty() {
            fu.rr %= fu.pending.len();
        }
    } else {
        fu.pending[idx].1 -= 1;
        fu.rr = (fu.rr + 1) % fu.pending.len().max(1);
    }
    Some((flow, pkg))
}

/// Assemble the final report from the drained world.
pub(crate) fn build_report(
    ctx: &Ctx<'_>,
    shared: &Shared,
    domains: &[DomainState],
    ca: &CaState,
) -> EmulationReport {
    let mut makespan = Picos(shared.makespan.load(Ordering::Relaxed));
    for d in domains {
        makespan = makespan.max(d.counters.last_activity);
    }
    let nproc = ctx.psm.application().process_count();
    let mut fus = vec![FuTimes::default(); nproc];
    let mut sas = Vec::with_capacity(domains.len());
    let mut clocks = Vec::with_capacity(domains.len());
    for d in domains {
        for fu in &d.fus {
            fus[fu.id.index()] = fu.times;
        }
        let mut c = d.counters;
        c.tct = d.clock.ticks_covering(c.last_activity);
        sas.push(c);
        clocks.push(d.clock);
    }
    let mut cac = ca.counters;
    cac.tct = ca.clock.ticks_covering(makespan);
    let bus = shared
        .bus
        .iter()
        .map(|b| b.lock().unwrap().counters)
        .collect();
    EmulationReport {
        sas,
        ca: cac,
        bus,
        bu_refs: ctx.psm.platform().border_units().collect(),
        fus,
        segment_clocks: clocks,
        ca_clock: ca.clock,
        package_size: ctx.s,
        makespan,
        trace: None,
    }
}

// ---------------------------------------------------------------------------
// the sequential driver

pub(crate) struct World<'a> {
    pub(crate) ctx: Ctx<'a>,
    pub(crate) shared: Shared,
    pub(crate) domains: Vec<DomainState>,
    pub(crate) ca: CaState,
    next_edge: Vec<Picos>,
}

impl<'a> World<'a> {
    pub(crate) fn new(psm: &'a Psm, cfg: RtlConfig, frames: u64) -> World<'a> {
        let (ctx, shared, domains, ca) = build(psm, cfg, frames);
        let n = domains.len() + 1;
        World {
            ctx,
            shared,
            domains,
            ca,
            next_edge: vec![Picos::ZERO; n],
        }
    }

    fn quiescent(&self) -> bool {
        self.shared.waves_done(self.ctx.wave_count())
            && self.domains.iter().all(DomainState::idle)
            && self.ca.idle()
            && self.shared.mail_quiescent()
    }

    fn stuck_summary(&self) -> String {
        let mut out = String::new();
        for d in &self.domains {
            out.push_str(&format!(
                "{}: sa={:?} reservations={:?}; ",
                d.seg, d.sa_state, d.reservations
            ));
            for fu in &d.fus {
                if fu.state != FuState::Idle {
                    out.push_str(&format!("{}={:?}; ", fu.id, fu.state));
                }
            }
        }
        out.push_str(&format!(
            "ca queue={:?} reserved={:?}; deliveries remaining {}",
            self.ca.queue,
            self.ca.reserved,
            self.shared.total_remaining.load(Ordering::Relaxed),
        ));
        out
    }

    pub(crate) fn run_sequential(&mut self) -> Result<(), RtlError> {
        let fastest = self
            .domains
            .iter()
            .map(|d| d.clock.period_ps())
            .chain(std::iter::once(self.ca.clock.period_ps()))
            .min()
            .expect("at least one domain");
        let cap = Picos(self.ctx.cfg.max_ticks.saturating_mul(fastest));
        let nseg = self.domains.len();
        loop {
            let t = *self.next_edge.iter().min().expect("domains exist");
            if t > cap {
                return Err(RtlError::Deadlock {
                    at: t,
                    detail: self.stuck_summary(),
                });
            }
            for si in 0..nseg {
                if self.next_edge[si] == t {
                    step_segment(&self.ctx, &self.shared, &mut self.domains[si], t);
                    self.next_edge[si] = t + Picos(self.domains[si].clock.period_ps());
                }
            }
            if self.next_edge[nseg] == t {
                step_ca(&self.ctx, &self.shared, &mut self.ca, t);
                self.next_edge[nseg] = t + Picos(self.ca.clock.period_ps());
            }
            if self.quiescent() {
                return Ok(());
            }
        }
    }

    pub(crate) fn into_report(self) -> EmulationReport {
        build_report(&self.ctx, &self.shared, &self.domains, &self.ca)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segbus_model::mapping::Allocation;
    use segbus_model::platform::Platform;
    use segbus_model::psdf::{Application, Flow, Process};

    fn uniform(nseg: usize, s: u32) -> Platform {
        Platform::builder("t")
            .package_size(s)
            .ca_clock(ClockDomain::from_mhz(100.0))
            .uniform_segments(nseg, ClockDomain::from_mhz(100.0))
            .build()
            .unwrap()
    }

    fn local_pair() -> Psm {
        let mut app = Application::new("pair");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::final_("B"));
        app.add_flow(Flow::new(a, b, 72, 1, 100)).unwrap();
        let mut alloc = Allocation::new(1);
        alloc.assign(a, SegmentId(0));
        alloc.assign(b, SegmentId(0));
        Psm::new(uniform(1, 36), app, alloc).unwrap()
    }

    fn remote_pair(items: u64, nseg: usize, src: u16, dst: u16) -> Psm {
        let mut app = Application::new("remote");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::final_("B"));
        app.add_flow(Flow::new(a, b, items, 1, 100)).unwrap();
        let mut alloc = Allocation::new(nseg);
        alloc.assign(a, SegmentId(src));
        alloc.assign(b, SegmentId(dst));
        Psm::new(uniform(nseg, 36), app, alloc).unwrap()
    }

    #[test]
    fn local_pair_completes_with_exact_counts() {
        let r = RtlSimulator::default().run(&local_pair()).unwrap();
        assert!(r.all_flags_raised());
        assert_eq!(r.fus[0].packages_sent, 2);
        assert_eq!(r.fus[1].packages_received, 2);
        assert_eq!(r.sas[0].intra_requests, 2);
        assert_eq!(r.ca.inter_requests, 0);
        assert!(r.makespan > Picos::ZERO);
    }

    #[test]
    fn rtl_is_slower_than_estimator_locally() {
        let psm = local_pair();
        let est = segbus_core::Emulator::default().run(&psm);
        let rtl = RtlSimulator::default().run(&psm).unwrap();
        assert!(
            rtl.execution_time() > est.execution_time(),
            "detailed timing must cost more: rtl {:?} vs est {:?}",
            rtl.execution_time(),
            est.execution_time()
        );
        // ... but within a sane factor.
        assert!(rtl.execution_time().0 < est.execution_time().0 * 2);
    }

    #[test]
    fn remote_pair_structure_matches_estimator() {
        let psm = remote_pair(5 * 36, 2, 0, 1);
        let est = segbus_core::Emulator::default().run(&psm);
        let rtl = RtlSimulator::default().run(&psm).unwrap();
        assert_eq!(rtl.bus[0].received_from_left, est.bus[0].received_from_left);
        assert_eq!(
            rtl.bus[0].transferred_to_right,
            est.bus[0].transferred_to_right
        );
        assert_eq!(rtl.sas[0].inter_requests, est.sas[0].inter_requests);
        assert_eq!(rtl.sas[0].packets_to_right, est.sas[0].packets_to_right);
        assert_eq!(rtl.ca.grants, est.ca.grants);
        assert_eq!(rtl.ca.releases, est.ca.releases);
        assert!(rtl.execution_time() > est.execution_time());
    }

    #[test]
    fn two_hop_transfer_cascades() {
        let psm = remote_pair(36, 3, 0, 2);
        let r = RtlSimulator::default().run(&psm).unwrap();
        assert_eq!(r.bus[0].received_from_left, 1);
        assert_eq!(r.bus[0].transferred_to_right, 1);
        assert_eq!(r.bus[1].received_from_left, 1);
        assert_eq!(r.bus[1].transferred_to_right, 1);
        assert_eq!(r.ca.releases, 3);
        assert_eq!(r.sas[0].packets_to_right, 1);
        assert_eq!(r.sas[1].packets_to_right, 0);
        // The middle SA routed one BU delivery.
        assert_eq!(r.sas[1].intra_requests, 1);
        assert!(r.all_flags_raised());
    }

    #[test]
    fn leftward_transfer_mirrors() {
        let psm = remote_pair(36, 2, 1, 0);
        let r = RtlSimulator::default().run(&psm).unwrap();
        assert_eq!(r.bus[0].received_from_right, 1);
        assert_eq!(r.bus[0].transferred_to_left, 1);
        assert_eq!(r.sas[1].packets_to_left, 1);
    }

    #[test]
    fn waiting_period_includes_synchronisers() {
        let psm = remote_pair(36, 2, 0, 1);
        let r = RtlSimulator::default().run(&psm).unwrap();
        // WP ≥ sync depth (2) and bounded by one bus transaction.
        let wp = r.bus[0].avg_waiting_period();
        assert!(wp >= 2.0, "wp {wp}");
        assert!(wp <= (36 + 12) as f64, "wp {wp}");
        assert_eq!(
            r.bus[0].tct,
            r.bus[0].useful_period(36) + r.bus[0].waiting_ticks
        );
    }

    #[test]
    fn determinism() {
        let psm = remote_pair(10 * 36, 3, 0, 2);
        let a = RtlSimulator::default().run(&psm).unwrap();
        let b = RtlSimulator::default().run(&psm).unwrap();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.sas, b.sas);
        assert_eq!(a.ca, b.ca);
        assert_eq!(a.bus, b.bus);
    }

    #[test]
    fn deadlock_guard_fires_on_tiny_budget() {
        let cfg = RtlConfig {
            max_ticks: 10,
            ..RtlConfig::default()
        };
        let err = RtlSimulator::new(cfg).run(&local_pair()).unwrap_err();
        assert!(matches!(err, RtlError::Deadlock { .. }));
        assert!(err.to_string().contains("deadlocked"));
    }

    #[test]
    fn empty_application_is_immediately_quiescent() {
        let mut app = Application::new("empty");
        let a = app.add_process(Process::new("A"));
        let mut alloc = Allocation::new(1);
        alloc.assign(a, SegmentId(0));
        let psm = Psm::new(uniform(1, 36), app, alloc).unwrap();
        let r = RtlSimulator::default().run(&psm).unwrap();
        assert_eq!(r.makespan, Picos::ZERO);
        assert!(r.all_flags_raised());
    }

    /// Ring topology: the reference simulator routes over the wrap unit
    /// and matches the estimator structurally.
    #[test]
    fn ring_wrap_matches_estimator_structure() {
        let mut app = Application::new("ring");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::final_("B"));
        app.add_flow(Flow::new(a, b, 3 * 36, 1, 100)).unwrap();
        let mut alloc = Allocation::new(3);
        alloc.assign(a, SegmentId(2));
        alloc.assign(b, SegmentId(0));
        let ring = Platform::builder("ring")
            .package_size(36)
            .topology(segbus_model::platform::Topology::Ring)
            .ca_clock(ClockDomain::from_mhz(100.0))
            .uniform_segments(3, ClockDomain::from_mhz(100.0))
            .build()
            .unwrap();
        let psm = Psm::new(ring, app, alloc).unwrap();
        let est = segbus_core::Emulator::default().run(&psm);
        let act = RtlSimulator::default().run(&psm).unwrap();
        assert_eq!(act.bus[2].received_from_left, 3);
        assert_eq!(act.bus[2].transferred_to_right, 3);
        assert_eq!(act.bus[2].received_from_left, est.bus[2].received_from_left);
        assert_eq!(act.sas[2].packets_to_right, est.sas[2].packets_to_right);
        assert_eq!(act.ca.grants, est.ca.grants);
        assert_eq!(act.ca.releases, est.ca.releases);
        assert!(act.execution_time() > est.execution_time());
    }

    #[test]
    fn contention_on_one_bus_serializes() {
        let mut app = Application::new("c");
        let a = app.add_process(Process::initial("A"));
        let b = app.add_process(Process::initial("B"));
        let c = app.add_process(Process::final_("C"));
        app.add_flow(Flow::new(a, c, 36, 1, 10)).unwrap();
        app.add_flow(Flow::new(b, c, 36, 1, 10)).unwrap();
        let mut alloc = Allocation::new(1);
        for p in [a, b, c] {
            alloc.assign(p, SegmentId(0));
        }
        let psm = Psm::new(uniform(1, 36), app, alloc).unwrap();
        let r = RtlSimulator::default().run(&psm).unwrap();
        assert_eq!(r.fus[2].packages_received, 2);
        // Two full transactions cannot overlap on one bus; the makespan is
        // at least compute + two transactions long.
        let min_ticks = 10 + 2 * (36 + 2);
        assert!(r.makespan.0 >= min_ticks * 10_000);
    }
}
