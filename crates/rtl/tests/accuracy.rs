//! Integration test: the paper's §4 accuracy analysis (experiment E5).
//!
//! The paper reports estimated vs actual execution times of
//! (489.79, 515.2) µs at s = 36, (560.16, 600.02) µs at s = 18 and
//! (540.4, 570.12) µs with P9 moved to segment 3 — estimation accuracies of
//! ~95 %, ~93 % and just below 95 %. Here the reference simulator plays the
//! role of the real platform; we assert the accuracy band and the paper's
//! key qualitative findings:
//!
//! * the estimator always under-predicts (it skips real costs);
//! * accuracy degrades with smaller packages ("the higher the data
//!   package, the less impact of these figures should be observed").

use segbus_apps::mp3;
use segbus_core::Emulator;
use segbus_model::mapping::Psm;
use segbus_rtl::RtlSimulator;

fn accuracy(psm: &Psm) -> (f64, f64, f64) {
    let est = Emulator::default().run(psm).execution_time();
    let act = RtlSimulator::default()
        .run(psm)
        .expect("reference run completes")
        .execution_time();
    (
        est.as_micros_f64(),
        act.as_micros_f64(),
        est.0 as f64 / act.0 as f64,
    )
}

#[test]
fn three_segment_accuracy_band() {
    let (est, act, acc) = accuracy(&mp3::three_segment_psm());
    eprintln!(
        "s=36: estimated {est:.2} µs, actual {act:.2} µs, accuracy {:.1}%",
        acc * 100.0
    );
    assert!(acc < 1.0, "the estimator must under-predict");
    assert!(acc > 0.85, "accuracy {acc:.3} below the paper's band");
}

#[test]
fn package_18_accuracy_is_worse() {
    let (e36, a36, acc36) = accuracy(&mp3::three_segment_psm());
    let (e18, a18, acc18) = accuracy(&mp3::three_segment_psm().with_package_size(18).unwrap());
    eprintln!(
        "s=36: est {e36:.2} act {a36:.2} acc {:.1}% | s=18: est {e18:.2} act {a18:.2} acc {:.1}%",
        acc36 * 100.0,
        acc18 * 100.0
    );
    // Paper: 95 % at s = 36 vs ~93 % at s = 18.
    assert!(
        acc18 < acc36,
        "smaller packages must hurt accuracy: {acc18:.3} !< {acc36:.3}"
    );
    // And the actual platform is slower at s = 18 too (600.02 > 515.2).
    assert!(a18 > a36);
}

#[test]
fn p9_move_slows_both_engines() {
    let (e0, a0, acc0) = accuracy(&mp3::three_segment_psm());
    let (e1, a1, acc1) = accuracy(&mp3::three_segment_p9_moved_psm());
    eprintln!(
        "base: est {e0:.2} act {a0:.2} acc {:.1}% | P9→seg3: est {e1:.2} act {a1:.2} acc {:.1}%",
        acc0 * 100.0,
        acc1 * 100.0
    );
    // Paper: both estimated (540.4 > 489.79) and actual (570.12 > 515.2)
    // grow when P9 crosses two BUs each way.
    assert!(e1 > e0);
    assert!(a1 > a0);
    // Accuracy stays in the same band (paper: ~95 % vs just below 95 %).
    assert!(acc1 > 0.85 && acc1 < 1.0);
}

#[test]
fn reference_structure_matches_estimator_on_mp3() {
    // Same protocol-level package movement in both engines.
    let psm = mp3::three_segment_psm();
    let est = Emulator::default().run(&psm);
    let act = RtlSimulator::default().run(&psm).unwrap();
    assert_eq!(act.bus[0].received_from_left, 32);
    assert_eq!(act.bus[0].transferred_to_right, 32);
    assert_eq!(act.bus[1].received_from_left, 1);
    assert_eq!(act.bus[1].received_from_right, 1);
    assert_eq!(act.sas[0].inter_requests, est.sas[0].inter_requests);
    assert_eq!(act.sas[2].inter_requests, est.sas[2].inter_requests);
    assert_eq!(act.ca.grants, est.ca.grants);
    assert_eq!(act.ca.releases, est.ca.releases);
    assert!(act.all_flags_raised());
}

/// Streaming accuracy: the pipelined multi-frame run keeps the same
/// under-estimation band, and both engines agree on the per-frame
/// package movement.
#[test]
fn streaming_accuracy_band() {
    let psm = mp3::three_segment_psm();
    let frames = 4;
    let est = Emulator::default().run_frames(&psm, frames);
    let act = RtlSimulator::default()
        .run_frames(&psm, frames)
        .expect("reference streaming completes");
    // Structure: 32 BU12 packages per frame on both engines.
    assert_eq!(est.bus[0].total_in(), frames * 32);
    assert_eq!(act.bus[0].total_in(), frames * 32);
    assert_eq!(act.ca.grants, est.ca.grants);
    assert!(act.all_flags_raised());
    let acc = est.execution_time().0 as f64 / act.execution_time().0 as f64;
    eprintln!(
        "streaming x{frames}: est {:.2} us, act {:.2} us, accuracy {:.1}%",
        est.execution_time().as_micros_f64(),
        act.execution_time().as_micros_f64(),
        acc * 100.0
    );
    assert!(acc > 0.80 && acc < 1.05, "accuracy {acc}");
}
